#!/usr/bin/env bash
# Tier-1 gate. Everything runs with --offline: the workspace has zero
# crates.io dependencies (see "Offline build & determinism policy" in
# DESIGN.md), so a network-less, registry-less container must be able to
# build, test, and lint from a bare checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== clippy (all targets, deny warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "tier-1 gate passed"
