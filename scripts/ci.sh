#!/usr/bin/env bash
# Tier-1 gate. Everything runs with --offline: the workspace has zero
# crates.io dependencies (see "Offline build & determinism policy" in
# DESIGN.md), so a network-less, registry-less container must be able to
# build, test, and lint from a bare checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== clippy (all targets, deny warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== executor determinism: golden artifacts at MLPERF_JOBS=1 and 4 =="
# The executor contract (DESIGN.md "Execution model"): report and CSV
# bytes may depend only on the simulated numbers, never on the worker
# count or schedule. Run the golden-file tests serial and oversubscribed,
# then diff a full report built both ways.
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test golden_artifacts
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test golden_artifacts

echo "== conformance & cache batteries at MLPERF_JOBS=1 and 4 =="
# Per-section FNV fingerprints and the persistent-cache properties must
# hold serial and oversubscribed.
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test conformance
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test conformance
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test sweep_cache
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test sweep_cache
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test sweep_stream
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test sweep_stream

echo "== durability & hostile-client batteries at MLPERF_JOBS=1 and 4 =="
# The durability model (DESIGN.md "Durability model"): fuzzed cache
# tampering and seeded I/O chaos must never change output bytes, and the
# query server must survive transport-layer abuse with typed frames.
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test cache_durability
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test cache_durability
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test serve_hostile
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test serve_hostile

echo "== replication battery: MLPERF_RUNS contract at MLPERF_JOBS=1 and 4 =="
# The replication layer (DESIGN.md "Variance model"): MLPERF_RUNS=1 is
# byte-invisible, MLPERF_RUNS=8 replays bitwise at any worker count, and
# disk-cache keys are run-count-aware.
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test replication
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test replication

echo "== fault injection: suite serial and oversubscribed =="
# The fault subsystem's determinism contract: seeded plans, DES replay,
# and elastic rescheduling behave identically at any worker count.
MLPERF_JOBS=1 cargo test -q --offline -p mlperf-suite --test failure_injection
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-suite --test failure_injection
MLPERF_JOBS=4 cargo test -q --offline -p mlperf-sim fault

report_tmp="$(mktemp -d)"
trap 'rm -rf "$report_tmp"' EXIT
# Hermetic persistent cache for everything below: never read or pollute
# the checkout's artifacts/cache/. The worker-parity runs additionally
# pass --no-cache so each one demonstrably recomputes from scratch.
export MLPERF_CACHE_DIR="$report_tmp/cache"
MLPERF_JOBS=1 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache --report "$report_tmp/serial.md" >/dev/null
MLPERF_JOBS=3 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache --report "$report_tmp/three.md" >/dev/null
MLPERF_JOBS=4 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache --report "$report_tmp/pooled.md" >/dev/null
diff -u "$report_tmp/serial.md" "$report_tmp/pooled.md" \
    || { echo "report bytes depend on MLPERF_JOBS" >&2; exit 1; }
diff -u "$report_tmp/serial.md" "$report_tmp/three.md" \
    || { echo "report bytes depend on MLPERF_JOBS (3 workers)" >&2; exit 1; }
diff -u REPORT.md "$report_tmp/serial.md" \
    || { echo "committed REPORT.md is stale; regenerate with repro --report REPORT.md" >&2; exit 1; }

echo "== cache gate: warm repro is 100% hits and byte-identical =="
# The persistent result cache (DESIGN.md "Sweep & cache model"): a second
# `repro --report` run must answer every section from artifacts/cache/
# (100% hit rate, zero experiment recomputation) and write byte-identical
# output; likewise the sweep CSVs.
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/cold.md" >/dev/null 2>/dev/null
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/warm.md" >/dev/null 2>"$report_tmp/warm.log"
diff -u "$report_tmp/cold.md" "$report_tmp/warm.md" \
    || { echo "warm cached report bytes differ from cold" >&2; exit 1; }
diff -u REPORT.md "$report_tmp/warm.md" \
    || { echo "warm cached report differs from committed REPORT.md" >&2; exit 1; }
grep -q "100% hit rate" "$report_tmp/warm.log" \
    || { echo "warm report run did not report a 100% cache hit rate" >&2; \
         cat "$report_tmp/warm.log" >&2; exit 1; }
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    sweep --all --out "$report_tmp/sweeps_cold" >/dev/null 2>/dev/null
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    sweep --all --out "$report_tmp/sweeps_warm" >/dev/null 2>"$report_tmp/sweep_warm.log"
diff -ur "$report_tmp/sweeps_cold" "$report_tmp/sweeps_warm" \
    || { echo "warm sweep CSV bytes differ from cold" >&2; exit 1; }
grep -q "100% hit rate" "$report_tmp/sweep_warm.log" \
    || { echo "warm sweep run did not report a 100% cache hit rate" >&2; exit 1; }

echo "== corruption gate: tampered cache heals to byte-identical output =="
# The durability model (DESIGN.md "Durability model"): mutilate a
# deterministic subset of the warm cache's entries (append garbage to
# every 3rd, truncate every 7th), plant crash debris and foreign junk,
# then re-run. Every output byte must still match the committed
# artifacts, the tampering must be quarantined loudly on stderr, the
# orphan temp file must be swept, and the junk left alone.
i=0
for f in "$MLPERF_CACHE_DIR"/*.art; do
    i=$((i + 1))
    if [ $((i % 3)) -eq 0 ]; then
        printf 'Z' >> "$f"
    elif [ $((i % 7)) -eq 0 ]; then
        truncate -s 20 "$f"
    fi
done
[ "$i" -ge 20 ] || { echo "warm cache has suspiciously few entries ($i)" >&2; exit 1; }
orphan="$MLPERF_CACHE_DIR/00000000000000ff-00000000000000ff.tmp.12345"
printf 'half a store' > "$orphan"
printf 'hands off' > "$MLPERF_CACHE_DIR/README.txt"
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/healed.md" >/dev/null 2>"$report_tmp/healed.log"
diff -u REPORT.md "$report_tmp/healed.md" \
    || { echo "tampered cache changed report bytes" >&2; exit 1; }
grep -Eq '[1-9][0-9]* corrupt quarantined' "$report_tmp/healed.log" \
    || { echo "tampered entries were not quarantined (or not reported)" >&2; \
         cat "$report_tmp/healed.log" >&2; exit 1; }
[ ! -e "$orphan" ] \
    || { echo "orphan tmp file survived the open sweep" >&2; exit 1; }
[ -f "$MLPERF_CACHE_DIR/README.txt" ] \
    || { echo "the cache sweep deleted a non-cache file" >&2; exit 1; }
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    sweep --all --out "$report_tmp/sweeps_healed" >/dev/null 2>"$report_tmp/sweeps_healed.log"
diff -ur "$report_tmp/sweeps_cold" "$report_tmp/sweeps_healed" \
    || { echo "tampered cache changed sweep CSV bytes" >&2; exit 1; }

echo "== io-chaos gate: seeded store faults degrade loudly, output intact =="
# Seeded fault injection at the cache's I/O seam (MLPERF_IO_CHAOS): short
# writes land torn frames, torn renames strand temp files, ENOSPC fails
# stores outright. The run must still produce the committed report except
# for the one appendix line that reports the degradation, and a clean
# re-run over the same directory must heal back to the exact artifact.
chaos_cache="$report_tmp/io_chaos_cache"
MLPERF_CACHE_DIR="$chaos_cache" \
MLPERF_IO_CHAOS="seed=7,short_write=0.3,torn_rename=0.2,enospc=0.2" \
    cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/io_chaos.md" >/dev/null 2>"$report_tmp/io_chaos.log"
grep -q '^persistent-cache degradation:' "$report_tmp/io_chaos.md" \
    || { echo "io-chaos run did not surface store failures in the appendix" >&2; \
         cat "$report_tmp/io_chaos.log" >&2; exit 1; }
grep -v '^persistent-cache degradation:' "$report_tmp/io_chaos.md" > "$report_tmp/io_chaos_stripped.md"
diff -u REPORT.md "$report_tmp/io_chaos_stripped.md" \
    || { echo "io-chaos changed report bytes beyond the degradation note" >&2; exit 1; }
MLPERF_CACHE_DIR="$chaos_cache" \
    cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/io_chaos_healed.md" >/dev/null 2>"$report_tmp/io_chaos_healed.log"
diff -u REPORT.md "$report_tmp/io_chaos_healed.md" \
    || { echo "cache did not heal after io-chaos" >&2; exit 1; }

echo "== chaos gate: injected panic degrades one section, nothing else =="
# The executor failure model (DESIGN.md "Executor failure model"): an
# injected panic in one experiment must (a) exit 2 (degraded but
# complete), (b) name the victim in the failure appendix, (c) leave every
# CSV outside the victim's blast radius byte-identical to a healthy run,
# and (d) replay byte-identically — retry backoff is drawn from a seeded
# stream and recorded, never slept.
mkdir -p "$report_tmp/csv_healthy" "$report_tmp/csv_chaos"
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --csv "$report_tmp/csv_healthy" >/dev/null
set +e
MLPERF_CHAOS=figure3 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/chaos_a.md" >/dev/null 2>"$report_tmp/chaos_a.log"
chaos_status=$?
set -e
[ "$chaos_status" -eq 2 ] \
    || { echo "chaos report run must exit 2 (degraded), got $chaos_status" >&2; exit 1; }
grep -q "Failure appendix" "$report_tmp/chaos_a.md" \
    || { echo "degraded report is missing the failure appendix" >&2; exit 1; }
grep -q "figure3" "$report_tmp/chaos_a.md" \
    || { echo "failure appendix does not name the sabotaged experiment" >&2; exit 1; }
set +e
MLPERF_CHAOS=figure3 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/chaos_b.md" >/dev/null 2>/dev/null
set -e
diff -u "$report_tmp/chaos_a.md" "$report_tmp/chaos_b.md" \
    || { echo "degraded report (retry trace included) is not replayable" >&2; exit 1; }
set +e
MLPERF_CHAOS=figure3 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --csv "$report_tmp/csv_chaos" >/dev/null 2>/dev/null
chaos_status=$?
set -e
[ "$chaos_status" -eq 2 ] \
    || { echo "chaos csv run must exit 2 (degraded), got $chaos_status" >&2; exit 1; }
for f in "$report_tmp"/csv_healthy/*.csv; do
    name="$(basename "$f")"
    case "$name" in
    figure3*)
        grep -q "# degraded: figure3" "$report_tmp/csv_chaos/$name" \
            || { echo "$name: expected a degraded placeholder" >&2; exit 1; }
        ;;
    *)
        cmp -s "$f" "$report_tmp/csv_chaos/$name" \
            || { echo "$name: bytes changed under chaos in an unrelated experiment" >&2; exit 1; }
        ;;
    esac
done
set +e
MLPERF_STRICT=1 MLPERF_CHAOS=figure3 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --report "$report_tmp/strict.md" >/dev/null 2>/dev/null
strict_status=$?
set -e
[ "$strict_status" -eq 1 ] \
    || { echo "MLPERF_STRICT=1 must fail fast (exit 1), got $strict_status" >&2; exit 1; }
[ ! -s "$report_tmp/strict.md" ] \
    || { echo "strict mode must not write a degraded report" >&2; exit 1; }

echo "== fault replay smoke: fixed seed, byte-identical twice =="
# Two fresh processes replay the seeded fault study; the rendered trace
# fingerprint and every digit must match byte for byte.
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --figure fault > "$report_tmp/fault_a.txt"
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --figure fault > "$report_tmp/fault_b.txt"
diff -u "$report_tmp/fault_a.txt" "$report_tmp/fault_b.txt" \
    || { echo "fault replay is not reproducible across processes" >&2; exit 1; }

echo "== variance replay smoke: seeded decomposition byte-identical twice =="
# The variance decomposition draws every number from the fixed
# replication seed: two fresh processes must render identical bytes even
# when one sets MLPERF_RUNS (the study pins its own run count), and the
# exported CSV must match the committed golden artifact.
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --extra variance > "$report_tmp/variance_a.txt"
MLPERF_RUNS=8 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --extra variance > "$report_tmp/variance_b.txt"
diff -u "$report_tmp/variance_a.txt" "$report_tmp/variance_b.txt" \
    || { echo "variance decomposition is not reproducible across processes" >&2; exit 1; }
cmp -s "$report_tmp/csv_healthy/variance_decomposition.csv" artifacts/variance_decomposition.csv \
    || { echo "variance_decomposition.csv drifted from the committed artifact" >&2; exit 1; }

echo "== fast-path parity: MLPERF_FASTPATH=off is byte-identical =="
# The analytic fast path (DESIGN.md "Sweep scaling model") is an
# optimization, never a semantic: with the switch off, every sweep CSV —
# including the million-cell CI prefix — must come out byte-identical.
# Both runs pass --no-cache so each one demonstrably prices its cells.
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep --all --out "$report_tmp/sweeps_fast" >/dev/null
MLPERF_FASTPATH=off cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep --all --out "$report_tmp/sweeps_slow" >/dev/null
diff -ur "$report_tmp/sweeps_fast" "$report_tmp/sweeps_slow" \
    || { echo "sweep CSV bytes depend on MLPERF_FASTPATH" >&2; exit 1; }

echo "== partition gate: sliced sweeps replay; knob scoped to sweeps only =="
# Multi-tenant partitioning (DESIGN.md §2i): the partition_scaling grid
# must emit byte-identical CSV across fresh processes and worker counts;
# MLPERF_PARTITION re-bases exploratory sweeps (the CSV grows the
# partition column and the sliced rows) but must never perturb one byte
# of the conformance-pinned report; and a malformed token must fail fast
# before any output is written.
MLPERF_JOBS=1 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep partition_scaling --out "$report_tmp/part_j1" >/dev/null
MLPERF_JOBS=4 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep partition_scaling --out "$report_tmp/part_j4" >/dev/null
MLPERF_JOBS=4 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep partition_scaling --out "$report_tmp/part_j4b" >/dev/null
diff -u "$report_tmp/part_j1/partition_scaling.csv" "$report_tmp/part_j4/partition_scaling.csv" \
    || { echo "partition_scaling CSV depends on MLPERF_JOBS" >&2; exit 1; }
diff -u "$report_tmp/part_j4/partition_scaling.csv" "$report_tmp/part_j4b/partition_scaling.csv" \
    || { echo "partition_scaling CSV is not replayable" >&2; exit 1; }
head -1 "$report_tmp/part_j1/partition_scaling.csv" | grep -q "partition" \
    || { echo "partition_scaling CSV is missing the partition column" >&2; exit 1; }
MLPERF_PARTITION=1of2x2 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache sweep figure4_scaling --out "$report_tmp/part_knob" >/dev/null
grep -q "1of2x2" "$report_tmp/part_knob/figure4_scaling.csv" \
    || { echo "MLPERF_PARTITION did not re-base the sweep" >&2; exit 1; }
MLPERF_PARTITION=1of2x2 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache --report "$report_tmp/part_report.md" >/dev/null
diff -u REPORT.md "$report_tmp/part_report.md" \
    || { echo "MLPERF_PARTITION leaked into the conformance-pinned report" >&2; exit 1; }
set +e
MLPERF_PARTITION=half cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --list >/dev/null 2>"$report_tmp/part_bad.log"
part_status=$?
set -e
[ "$part_status" -eq 1 ] \
    || { echo "malformed MLPERF_PARTITION must fail fast (exit 1), got $part_status" >&2; exit 1; }
grep -q "MLPERF_PARTITION" "$report_tmp/part_bad.log" \
    || { echo "malformed-knob error does not name MLPERF_PARTITION" >&2; exit 1; }

echo "== executor bench (JSON) =="
cargo bench -q --offline -p mlperf-bench --bench executor

echo "== bench snapshots: committed BENCH_*.json within tolerance =="
# The committed perf snapshots (BENCH_sweep.json, BENCH_des.json) gate
# scale-invariant fields — speedup ratios, hit rate, cell/op counts — at
# ±20%; raw rates are recorded but machine-dependent, so never gated.
# Each bench re-asserts engine agreement before reporting any number.
cargo bench -q --offline -p mlperf-bench --bench sweep -- --check
cargo bench -q --offline -p mlperf-bench --bench des -- --check
cargo bench -q --offline -p mlperf-bench --bench serve -- --check

echo "== serve smoke: daemon up, seeded replay byte-identical, clean shutdown =="
# The query server (DESIGN.md §2f): start the daemon on a scratch socket,
# replay a fixed query mix twice through `repro query`, require the two
# transcripts byte-identical (responses carry no live counters), then
# shut down with a typed query and require a clean exit.
serve_sock="$report_tmp/serve.sock"
cat > "$report_tmp/serve_mix.ndjson" <<'EOF'
{"v":1,"id":"p","kind":"ping"}
{"v":1,"id":"c1","kind":"cell","workload":"MLPf_Res50_MX","system":"DSS_8440","gpus":4}
{"v":1,"id":"c2","kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":8,"precision":"amp"}
{"v":1,"id":"oom","kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":16384}
{"v":1,"id":"bad","kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440","gpus":16}
{"v":1,"id":"ttt","kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt","mtbf_hours":4,"interval":"daly"}
{"v":1,"id":"slice","kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":16,"partition":"1of4x2"}
{"v":1,"id":"badpart","kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"partition":"1of3"}
{"v":1,"id":"sw","kind":"sweep","sweep":"fault_ttt"}
EOF
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache serve --socket "$serve_sock" 2>"$report_tmp/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null \
        || { echo "serve daemon died before binding" >&2; cat "$report_tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -S "$serve_sock" ] || { echo "serve daemon never bound $serve_sock" >&2; exit 1; }
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$serve_sock" < "$report_tmp/serve_mix.ndjson" > "$report_tmp/serve_a.ndjson"
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$serve_sock" < "$report_tmp/serve_mix.ndjson" > "$report_tmp/serve_b.ndjson"
diff -u "$report_tmp/serve_a.ndjson" "$report_tmp/serve_b.ndjson" \
    || { echo "serve replay is not byte-identical" >&2; exit 1; }
grep -q '"id":"oom","status":"error","kind":"oom"' "$report_tmp/serve_a.ndjson" \
    || { echo "serve did not answer the OOM cell with a typed error" >&2; exit 1; }
grep -q '"id":"slice","status":"ok"' "$report_tmp/serve_a.ndjson" \
    || { echo "serve did not price the sliced cell" >&2; exit 1; }
grep -q '"id":"badpart","status":"error","kind":"bad-request"' "$report_tmp/serve_a.ndjson" \
    || { echo "serve did not reject the malformed partition token" >&2; exit 1; }
grep -q '"id":"sw","status":"done"' "$report_tmp/serve_a.ndjson" \
    || { echo "serve did not finish the streamed sweep" >&2; exit 1; }
echo '{"v":1,"id":"q","kind":"shutdown"}' | cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$serve_sock" >/dev/null
wait "$serve_pid" \
    || { echo "serve daemon did not exit cleanly after shutdown" >&2; cat "$report_tmp/serve.log" >&2; exit 1; }

echo "== serve hostile smoke: oversized frame typed, daemon survives =="
# Transport-layer hardening (DESIGN.md "Durability model"): a daemon with
# a small MLPERF_SERVE_MAX_FRAME must answer an oversized request line
# with the typed frame-too-large error, keep serving other clients, and
# still shut down cleanly. (Half-written frames and stalled readers need
# raw socket control — the serve_hostile test battery above covers them.)
hostile_sock="$report_tmp/serve_hostile.sock"
MLPERF_SERVE_MAX_FRAME=200 cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    --no-cache serve --socket "$hostile_sock" 2>"$report_tmp/serve_hostile.log" &
hostile_pid=$!
for _ in $(seq 1 100); do
    [ -S "$hostile_sock" ] && break
    kill -0 "$hostile_pid" 2>/dev/null \
        || { echo "hostile-smoke daemon died before binding" >&2; cat "$report_tmp/serve_hostile.log" >&2; exit 1; }
    sleep 0.1
done
[ -S "$hostile_sock" ] || { echo "hostile-smoke daemon never bound $hostile_sock" >&2; exit 1; }
printf '{"v":1,"id":"big","kind":"ping","pad":"%s"}\n' "$(printf 'x%.0s' $(seq 1 400))" \
    > "$report_tmp/oversized.ndjson"
cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$hostile_sock" < "$report_tmp/oversized.ndjson" > "$report_tmp/oversized_answer.ndjson"
grep -q '"status":"error","kind":"frame-too-large"' "$report_tmp/oversized_answer.ndjson" \
    || { echo "oversized frame did not get the typed frame-too-large error" >&2; \
         cat "$report_tmp/oversized_answer.ndjson" >&2; exit 1; }
echo '{"v":1,"id":"still-up","kind":"ping"}' | cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$hostile_sock" > "$report_tmp/still_up.ndjson"
grep -q '"id":"still-up","status":"ok"' "$report_tmp/still_up.ndjson" \
    || { echo "daemon stopped answering after the oversized frame" >&2; exit 1; }
echo '{"v":1,"id":"q","kind":"shutdown"}' | cargo run -q --release --offline -p mlperf-suite --bin repro -- \
    query --socket "$hostile_sock" >/dev/null
wait "$hostile_pid" \
    || { echo "hostile-smoke daemon did not exit cleanly" >&2; cat "$report_tmp/serve_hostile.log" >&2; exit 1; }

echo "tier-1 gate passed"
