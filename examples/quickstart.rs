//! Quickstart: simulate one MLPerf training run and read its telemetry.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mlperf_hw::systems::SystemId;
use mlperf_sim::{train_on_first, Simulator};
use mlperf_suite::BenchmarkId;
use mlperf_telemetry::{KernelProfile, ResourceUsage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a platform from Table III and a benchmark from Table II.
    let system = SystemId::C4140K.spec();
    let benchmark = BenchmarkId::MlpfRes50Mx;
    let job = benchmark.job();

    println!("platform : {system}");
    println!("benchmark: {benchmark} ({})", benchmark.quality_target());
    println!("model    : {}", job.model());
    println!();

    // Train to the quality target on 1, 2, and 4 GPUs.
    let sim = Simulator::new(&system);
    for n in [1u32, 2, 4] {
        let outcome = train_on_first(&sim, &job, n)?;
        let usage = ResourceUsage::from_step(&system, &outcome.step);
        println!("{n} GPU(s): {outcome}");
        println!("         {usage}");
    }
    println!();

    // What nvprof would say about one training step.
    let profile = KernelProfile::of_step(job.model(), job.per_gpu_batch(), job.precision());
    println!("kernel profile: {profile}");
    println!("top kernels by duration:");
    let timer = mlperf_sim::KernelTimer::new(system.gpu_model().spec(), job.efficiency());
    let mut times = timer.op_times(job.model(), job.per_gpu_batch(), job.precision());
    times.sort_by(|a, b| b.1.as_secs().partial_cmp(&a.1.as_secs()).expect("finite"));
    for (name, t) in times.iter().take(5) {
        println!("  {:24} {:.3} ms", name, t.as_secs() * 1e3);
    }
    Ok(())
}
