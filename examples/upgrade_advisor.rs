//! Upgrade advisor: a buyer's what-if tool built on the simulator.
//!
//! You own a T640 (4× V100 over CPU PCIe). For a given benchmark, how much
//! training time would each upgrade path buy — a PCIe-switch chassis, an
//! NVLink chassis, or an 8-GPU box? And what does a year of nightly runs
//! cost in energy on each?
//!
//! ```text
//! cargo run --release --example upgrade_advisor -- MLPf_XFMR_Py
//! ```

use mlperf_hw::power::{draw_watts, gpu_tdp_watts};
use mlperf_hw::systems::SystemId;
use mlperf_sim::{train_on_first, Simulator};
use mlperf_suite::BenchmarkId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MLPf_XFMR_Py".into());
    let benchmark = BenchmarkId::ALL
        .into_iter()
        .find(|b| b.abbreviation() == wanted)
        .ok_or_else(|| format!("unknown benchmark {wanted}"))?;
    let job = benchmark.job();

    let paths: [(SystemId, u32, &str); 5] = [
        (SystemId::T640, 4, "baseline: CPU-attached PCIe"),
        (SystemId::C4140B, 4, "PCIe-switch chassis"),
        (SystemId::C4140K, 4, "NVLink chassis"),
        (SystemId::Dss8440, 8, "8-GPU PCIe box"),
        (SystemId::Dgx1V, 8, "8-GPU NVLink cube mesh"),
    ];

    println!("upgrade paths for {benchmark}:\n");
    let mut baseline_minutes = None;
    for (id, gpus, label) in paths {
        let system = id.spec();
        let sim = Simulator::new(&system);
        let outcome = train_on_first(&sim, &job, gpus)?;
        let minutes = outcome.total_time.as_minutes();
        let base = *baseline_minutes.get_or_insert(minutes);
        // A year of one training run per night.
        let gpu_watts = gpu_tdp_watts(system.gpu_model());
        let watts = gpus as f64 * draw_watts(gpu_watts, outcome.step.gpu_busy_fraction);
        let kwh_per_year = watts * outcome.total_time.as_hours() * 365.0 / 1e3;
        println!(
            "  {label:28} ({id}, {gpus} GPUs): {minutes:7.1} min  \
             ({:+5.1}% vs baseline), {kwh_per_year:6.0} kWh/yr nightly",
            (minutes / base - 1.0) * 100.0,
        );
    }
    println!(
        "\n(interconnect sensitivity is workload-specific: compare \
         MLPf_XFMR_Py against MLPf_Res50_MX)"
    );
    Ok(())
}
