//! Topology explorer: how the GPU interconnect shapes training time.
//!
//! Classifies every GPU pair on each Table III platform, prices a gradient
//! all-reduce over each, then builds a *custom* topology (a hypothetical
//! x8-lane server) to show the library composing beyond the paper's
//! systems.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use mlperf_hw::cpu::CpuModel;
use mlperf_hw::gpu::GpuModel;
use mlperf_hw::interconnect::Link;
use mlperf_hw::systems::SystemId;
use mlperf_hw::topology::Topology;
use mlperf_hw::units::Bytes;
use mlperf_sim::allreduce::{allreduce_time, plan_allreduce, AllReduceAlgorithm};
use mlperf_suite::BenchmarkId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Gradient payload of the Transformer job (the most comm-hungry).
    let job = BenchmarkId::MlpfXfmrPy.job();
    let grads = Bytes::new(job.model().params() * 2); // FP16 gradients
    println!("payload: {grads} of Transformer gradients\n");

    for id in SystemId::FOUR_GPU_PLATFORMS {
        let spec = id.spec();
        let topo = spec.topology();
        let pair = topo.gpu_peer_path(0, 3)?;
        let plan = plan_allreduce(topo, &[0, 1, 2, 3], AllReduceAlgorithm::Ring, grads)?;
        println!(
            "{:10} GPU0-GPU3 via {:18} ({:.1} GB/s); 4-GPU ring all-reduce: {:.1} ms",
            id.name(),
            pair.class.to_string(),
            pair.bandwidth.as_gb_per_sec(),
            plan.time.as_secs() * 1e3,
        );
    }

    // Beyond the paper: a budget server with x8 slots.
    println!("\nhypothetical budget box: 4x V100 on PCIe 3.0 x8 (one socket)");
    let mut t = Topology::new("budget-x8");
    let cpu = t.add_cpu(CpuModel::XeonGold6148);
    let gpus: Vec<_> = (0..4)
        .map(|_| t.add_gpu(GpuModel::TeslaV100Pcie16))
        .collect();
    for &g in &gpus {
        t.connect(cpu, g, Link::PCIE3_X8);
    }
    let worst = t.worst_peer_path(&[0, 1, 2, 3])?;
    let flat = allreduce_time(AllReduceAlgorithm::Ring, grads, 4, &worst);
    println!(
        "  worst path {} at {:.1} GB/s; ring all-reduce {:.1} ms",
        worst.class,
        worst.bandwidth.as_gb_per_sec(),
        flat.as_secs() * 1e3
    );
    for alg in [
        AllReduceAlgorithm::Ring,
        AllReduceAlgorithm::Tree,
        AllReduceAlgorithm::Naive,
    ] {
        let time = allreduce_time(alg, grads, 4, &worst);
        println!("  {alg:>5} algorithm: {:.1} ms", time.as_secs() * 1e3);
    }
    Ok(())
}
