//! Scheduling advisor: given a GPU-pool size, find the best way to run the
//! seven MLPerf training jobs (the Fig. 4 study as a tool).
//!
//! ```text
//! cargo run --release --example scheduling_advisor -- 4
//! ```

use mlperf_analysis::scheduling::{lpt_schedule, naive_schedule, optimal_schedule};
use mlperf_suite::experiments::figure4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpus: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    if !(1..=8).contains(&gpus) {
        return Err(format!("GPU pool must be 1..=8, got {gpus}").into());
    }

    println!("measuring the 7 MLPerf jobs at every width (simulated DSS 8440)...");
    let jobs = figure4::measure_job_times()?;
    for j in &jobs {
        let widths: Vec<String> = j
            .widths()
            .map(|w| format!("{w}: {:.0} min", j.time_at(w).expect("measured")))
            .collect();
        println!("  {:16} {}", j.name(), widths.join(", "));
    }

    let naive = naive_schedule(&jobs, gpus);
    let lpt = lpt_schedule(&jobs, gpus);
    let best = optimal_schedule(&jobs, gpus);
    println!();
    println!(
        "naive (each job across all {gpus} GPUs): {:.0} min",
        naive.makespan
    );
    println!(
        "LPT heuristic:                           {:.0} min",
        lpt.makespan
    );
    println!(
        "optimal (branch-and-bound):              {:.0} min",
        best.makespan
    );
    println!(
        "optimal saves {:.1} h over naive",
        best.savings_vs(&naive) / 60.0
    );
    println!();
    println!("optimal placements:");
    for p in &best.placements {
        println!(
            "  t={:>6.0} min  {:16} on GPUs {:?} for {:.0} min",
            p.start,
            jobs[p.job].name(),
            p.gpus,
            p.duration
        );
    }
    Ok(())
}
