//! Precision study: AMP vs FP32 end to end, with a dmon-style CSV trace.
//!
//! Reruns the Fig. 3 comparison for a chosen benchmark, places both runs on
//! the V100 roofline, and exports a sampled telemetry trace the way the
//! paper's `dstat --output` workflow would.
//!
//! ```text
//! cargo run --release --example precision_study -- MLPf_SSD_Py
//! ```

use mlperf_analysis::roofline::RooflineModel;
use mlperf_hw::gpu::Precision;
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_models::PrecisionPolicy;
use mlperf_sim::{train_on_first, Simulator};
use mlperf_suite::BenchmarkId;
use mlperf_telemetry::{csv, KernelProfile, Sampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MLPf_SSD_Py".into());
    let benchmark = BenchmarkId::ALL
        .into_iter()
        .find(|b| b.abbreviation() == wanted)
        .ok_or_else(|| format!("unknown benchmark {wanted}; try MLPf_SSD_Py"))?;

    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);
    let roofline = RooflineModel::for_gpu(&system.gpu_model().spec());
    println!("{roofline}\n");

    let amp = benchmark.job();
    // FP32 activations are twice as large: halve the batch so it fits.
    let fp32 = amp
        .with_precision(PrecisionPolicy::Fp32)
        .with_per_gpu_batch((amp.per_gpu_batch() / 2).max(1));

    let mut throughputs = Vec::new();
    for (label, job) in [("AMP ", &amp), ("FP32", &fp32)] {
        let outcome = train_on_first(&sim, job, 8)?;
        let profile =
            KernelProfile::of_step(job.model(), outcome.step.per_gpu_batch, job.precision());
        let ai = profile.arithmetic_intensity();
        let tp = profile.throughput(outcome.step.step_time);
        println!(
            "{label}: {outcome}\n      AI {ai:.1} FLOP/B, {tp} \
             ({:.0}% of the matching roof)",
            tp.as_flops_per_sec()
                / roofline
                    .attainable(
                        ai,
                        match job.precision() {
                            PrecisionPolicy::Amp => Precision::TensorCore,
                            PrecisionPolicy::Fp32 => Precision::Single,
                        }
                    )
                    .as_flops_per_sec()
                * 100.0
        );
        throughputs.push(outcome.step.throughput_samples_per_sec());
    }
    println!(
        "\nmixed-precision speedup: {:.2}x",
        throughputs[0] / throughputs[1]
    );

    // Export a 200-tick dmon trace of the AMP run.
    let step = train_on_first(&sim, &amp, 8)?.step;
    let period = Seconds::new(step.step_time.as_secs() / 10.0);
    let samples = Sampler::new(step, period).collect(200);
    let trace = csv::samples_to_csv(&samples);
    let path = std::env::temp_dir().join("precision_study_trace.csv");
    std::fs::write(&path, &trace)?;
    println!(
        "wrote {} sampler ticks to {}",
        samples.len(),
        path.display()
    );
    Ok(())
}
