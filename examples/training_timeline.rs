//! Training timeline: trace one run, render per-GPU phase bars, and dump
//! dmon/dstat-style monitoring logs the way the paper's tooling would.
//!
//! ```text
//! cargo run --release --example training_timeline -- MLPf_GNMT_Py 4
//! ```

use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_sim::{RunSpec, Simulator};
use mlperf_suite::BenchmarkId;
use mlperf_telemetry::{DmonLog, DstatLog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let wanted = args.next().unwrap_or_else(|| "MLPf_GNMT_Py".into());
    let n: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let benchmark = BenchmarkId::ALL
        .into_iter()
        .find(|b| b.abbreviation() == wanted)
        .ok_or_else(|| format!("unknown benchmark {wanted}"))?;

    let system = SystemId::C4140K.spec();
    let job = benchmark.job();
    let outcome = Simulator::new(&system).execute(&RunSpec::on_first(job, n).traced())?;
    let (step, trace) = (outcome.report, outcome.trace.expect("trace requested"));
    println!("{benchmark} on {} x{} GPUs: {trace}", system.id(), n);
    println!(
        "step {:.1} ms = compute {:.1} + exposed comm {:.1} + optimizer {:.1} (stall {:.1})\n",
        step.step_time.as_secs() * 1e3,
        step.compute_time.as_secs() * 1e3,
        step.exposed_comm.as_secs() * 1e3,
        step.opt_time.as_secs() * 1e3,
        step.data_stall.as_secs() * 1e3,
    );

    // ASCII phase bars for three steady-state iterations:
    // '.' waiting for data, '#' compute, '+' collective/optimizer tail.
    let records = &trace.measured()[..3.min(trace.measured().len())];
    let t0 = records[0].step_done.as_secs()
        - records[0]
            .span(prev_done(&trace, records[0].iter))
            .as_secs();
    let t1 = records.last().expect("non-empty").step_done.as_secs();
    let cols = 100usize;
    let scale = (t1 - t0) / cols as f64;
    for g in 0..n as usize {
        let mut bar = String::with_capacity(cols);
        for c in 0..cols {
            let t = t0 + (c as f64 + 0.5) * scale;
            let ch = match records.iter().find(|r| {
                t < r.step_done.as_secs()
                    && t >= r.step_done.as_secs() - r.span(prev_done(&trace, r.iter)).as_secs()
            }) {
                Some(r) => {
                    let p = &r.gpus[g];
                    if t < p.compute_start.as_secs() {
                        '.'
                    } else if t < p.compute_done.as_secs() {
                        '#'
                    } else {
                        '+'
                    }
                }
                None => ' ',
            };
            bar.push(ch);
        }
        println!("GPU{g}: {bar}");
    }
    println!("       '.' staging   '#' fwd+bwd   '+' all-reduce/optimizer\n");

    // The monitoring logs the paper's tooling would have produced.
    let period = Seconds::new(step.step_time.as_secs() / 3.0);
    let dmon = DmonLog::record(&trace, &step, period);
    println!("nvidia-smi dmon (first 12 rows):");
    for line in dmon.render().lines().take(14) {
        println!("{line}");
    }
    let dstat = DstatLog::record(&system, &trace, &step, period);
    println!("\ndstat --output (first 6 rows):");
    for line in dstat.render_csv().lines().take(7) {
        println!("{line}");
    }
    println!(
        "\nmeans: GPU0 sm {:.0}%, host CPU {:.1}%",
        dmon.mean_sm_pct(0),
        dstat.mean_cpu_pct()
    );
    Ok(())
}

/// Completion time of the iteration preceding ordinal `iter`.
fn prev_done(trace: &mlperf_sim::RunTrace, iter: u64) -> Seconds {
    trace
        .iterations
        .iter()
        .take_while(|r| r.iter < iter)
        .last()
        .map(|r| r.step_done)
        .unwrap_or(Seconds::ZERO)
}
