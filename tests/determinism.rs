//! The simulator is a pure function of its inputs: identical runs produce
//! identical reports, and experiment outputs are stable across invocations.

use mlperf_hw::systems::SystemId;
use mlperf_sim::{train_on_first, RunSpec, Simulator};
use mlperf_suite::experiments::{figure4, table4};
use mlperf_suite::BenchmarkId;

#[test]
fn identical_runs_produce_identical_reports() {
    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);
    let job = BenchmarkId::MlpfGnmtPy.job();
    let spec = RunSpec::on_first(job, 4);
    let a = sim.execute(&spec).expect("run succeeds");
    let b = sim.execute(&spec).expect("run succeeds");
    assert_eq!(a.report, b.report);
}

#[test]
fn gpu_ordinal_choice_is_irrelevant_on_symmetric_topologies() {
    // On the fully-NVLink-meshed C4140 (K), any 2-GPU subset behaves alike.
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let job = BenchmarkId::MlpfSsdPy.job();
    let a = sim
        .execute(&RunSpec::new(job.clone(), [0, 1]))
        .expect("run succeeds");
    let b = sim.execute(&RunSpec::new(job, [2, 3])).expect("run succeeds");
    assert!((a.report.step_time.as_secs() - b.report.step_time.as_secs()).abs() < 1e-12);
}

#[test]
fn table_iv_is_reproducible() {
    let a = table4::run().expect("table runs");
    let b = table4::run().expect("table runs");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.name(), rb.name());
        assert_eq!(ra.p100_minutes(), rb.p100_minutes());
        for n in [1u64, 2, 4, 8] {
            assert_eq!(ra.v100_minutes(n), rb.v100_minutes(n), "{} @{n}", ra.name());
        }
    }
}

#[test]
fn optimal_schedule_is_stable() {
    let f1 = figure4::run().expect("figure runs");
    let f2 = figure4::run().expect("figure runs");
    for (a, b) in f1.studies.iter().zip(&f2.studies) {
        assert_eq!(a.optimal.makespan, b.optimal.makespan);
        assert_eq!(a.optimal.placements.len(), b.optimal.placements.len());
    }
}

#[test]
fn same_seed_produces_byte_identical_synthetic_shards() {
    // The offline determinism contract for generated data: two independent
    // generator instances with the same (dataset, seed) emit shards whose
    // encoded bytes are identical — not just equal record counts or sizes.
    use mlperf_data::{DatasetId, Shard, SyntheticDataset};

    let build = || {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 0xD5EED);
        let mut shards = Vec::new();
        for chunk in gen.take(64).chunks(16) {
            let mut shard = Shard::new();
            for record in chunk {
                shard.push(record);
            }
            shards.push(shard);
        }
        shards
    };
    let a = build();
    let b = build();
    assert_eq!(a.len(), b.len());
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.as_bytes(), sb.as_bytes(), "shard bytes must be identical");
    }
    // And the records round-trip: decoding gives back the generated payloads.
    let decoded = a[0].decode().expect("shard decodes");
    let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 0xD5EED);
    for (i, (label, payload)) in decoded.iter().enumerate() {
        let r = gen.record(i as u64);
        assert_eq!(*label, r.label);
        assert_eq!(*payload, r.payload);
    }
}

#[test]
fn training_outcome_scales_linearly_with_epochs() {
    // Doubling epochs-to-target exactly doubles training time: the engine
    // composes linearly, so calibration of one is calibration of the other.
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet18_cifar;
    use mlperf_sim::{ConvergenceModel, TrainingJob};

    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let build = |epochs: f64| {
        TrainingJob::builder(
            "cifar",
            resnet18_cifar(),
            InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2)),
            256,
            ConvergenceModel::new(epochs, 256, 0.0),
        )
        .build()
    };
    let t10 = train_on_first(&sim, &build(10.0), 1)
        .expect("run")
        .total_time;
    let t20 = train_on_first(&sim, &build(20.0), 1)
        .expect("run")
        .total_time;
    assert!((t20.as_secs() / t10.as_secs() - 2.0).abs() < 1e-9);
}
