//! The headline paper-shape assertions, end to end: who wins, by roughly
//! what factor, and where the crossovers fall. EXPERIMENTS.md records the
//! cell-by-cell numbers; these tests pin the shapes that must not regress.

use mlperf_analysis::scaling::{classify, ScalingClass};
use mlperf_suite::experiments::{figure3, figure5, table4};
use mlperf_suite::BenchmarkId;

/// Table IV anchors: simulated single-GPU training times stay within 10 %
/// of the published measurements they were calibrated to.
#[test]
fn table_iv_anchors_hold() {
    let t = table4::run().expect("table runs");
    for ((id, p100, v100, ..), row) in table4::PAPER_TABLE_IV.iter().zip(&t.rows) {
        assert_eq!(id.abbreviation(), row.name());
        let sim_v100 = row.v100_minutes(1).expect("anchor measured");
        assert!(
            (sim_v100 - v100).abs() / v100 < 0.10,
            "{id}: V100 {sim_v100:.0} vs paper {v100:.0} min"
        );
        let sim_p100 = row.p100_minutes();
        assert!(
            (sim_p100 - p100).abs() / p100 < 0.12,
            "{id}: P100 {sim_p100:.0} vs paper {p100:.0} min"
        );
    }
}

/// Table IV speedup columns: every simulated factor within 25 % relative of
/// the paper's (the derived quantities, not the calibrated ones).
#[test]
fn table_iv_scaling_factors_track_paper() {
    let t = table4::run().expect("table runs");
    for ((id, _, _, s2, s4, s8), row) in table4::PAPER_TABLE_IV.iter().zip(&t.rows) {
        for (n, paper) in [(2u64, s2), (4, s4), (8, s8)] {
            // Known deviation: the paper's XFMR 1-to-2 factor (1.42x) is
            // anomalous — its own 1-to-4/1-to-8 columns imply near-constant
            // per-doubling efficiency that no single mechanism reproduces.
            // See EXPERIMENTS.md.
            let tolerance = if *id == BenchmarkId::MlpfXfmrPy && n == 2 {
                0.35
            } else {
                0.25
            };
            let sim = row.speedup(n).expect("measured");
            assert!(
                (sim - paper).abs() / paper < tolerance,
                "{id} 1-to-{n}: sim {sim:.2} vs paper {paper:.2}"
            );
        }
    }
}

/// The scaling-class narrative: image classification and SSD scale well,
/// detection/translation are medium, NCF saturates.
#[test]
fn scaling_classes_match_narrative() {
    let t = table4::run().expect("table runs");
    let class = |name: &str| {
        classify(
            t.rows
                .iter()
                .find(|r| r.name() == name)
                .unwrap_or_else(|| panic!("{name} missing")),
        )
    };
    assert_eq!(class("MLPf_Res50_TF"), ScalingClass::Good);
    assert_eq!(class("MLPf_SSD_Py"), ScalingClass::Good);
    assert_eq!(class("MLPf_MRCNN_Py"), ScalingClass::Medium);
    assert_eq!(class("MLPf_XFMR_Py"), ScalingClass::Medium);
    assert_eq!(class("MLPf_NCF_Py"), ScalingClass::Poor);
}

/// P-to-V ordering: the generational speedup is smallest for the
/// heavy-weight detector and largest for NCF, with image classification in
/// the 8-10x band (Table IV).
#[test]
fn p_to_v_ordering_holds() {
    let t = table4::run().expect("table runs");
    let p2v = |name: &str| {
        t.rows
            .iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .p_to_v_speedup()
    };
    let mrcnn = p2v("MLPf_MRCNN_Py");
    let res50 = p2v("MLPf_Res50_TF");
    let ncf = p2v("MLPf_NCF_Py");
    assert!(
        mrcnn < res50 && res50 < ncf,
        "{mrcnn:.1} < {res50:.1} < {ncf:.1}"
    );
    assert!((8.0..11.0).contains(&res50));
    assert!(ncf > 15.0);
}

/// Figure 3 shape: AMP helps everything; image classification gains ~3x;
/// the heavy-weight detector sits at the bottom of the suite.
#[test]
fn amp_speedup_shape_holds() {
    let f = figure3::run().expect("figure runs");
    let by_id = |id: BenchmarkId| {
        f.speedups
            .iter()
            .find(|s| s.id == id)
            .expect("present")
            .speedup()
    };
    for s in &f.speedups {
        assert!(s.speedup() > 1.2, "{}", s.id);
    }
    assert!(by_id(BenchmarkId::MlpfRes50Tf) > by_id(BenchmarkId::MlpfMrcnnPy));
    assert!(by_id(BenchmarkId::MlpfRes50Tf) > by_id(BenchmarkId::MlpfGnmtPy));
}

/// Figure 5 shape: interconnect hierarchy holds per benchmark, and the
/// NVLink benefit is much larger for translation than image classification.
#[test]
fn topology_hierarchy_holds() {
    let f = figure5::run().expect("figure runs");
    use mlperf_hw::SystemId;
    for row in &f.rows {
        let nvlink = row.on(SystemId::C4140K).min(row.on(SystemId::C4140M));
        let switch = row.on(SystemId::C4140B);
        let worst = row.on(SystemId::T640).max(row.on(SystemId::R940Xa));
        assert!(nvlink <= switch * 1.001, "{}", row.id);
        assert!(switch <= worst * 1.001, "{}", row.id);
    }
    let imp = |id: BenchmarkId| {
        f.rows
            .iter()
            .find(|r| r.id == id)
            .expect("present")
            .nvlink_improvement()
    };
    assert!(imp(BenchmarkId::MlpfXfmrPy) > 0.30);
    assert!(imp(BenchmarkId::MlpfXfmrPy) > imp(BenchmarkId::MlpfRes50Tf) + 0.10);
}
