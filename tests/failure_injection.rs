//! Failure injection: degrade links, throttle devices, shrink memory —
//! the simulator must respond the way a real cluster would, and surface
//! errors rather than masking them.

use mlperf_data::{DatasetId, InputPipeline};
use mlperf_hw::cpu::CpuModel;
use mlperf_hw::gpu::GpuModel;
use mlperf_hw::interconnect::Link;
use mlperf_hw::systems::SystemId;
use mlperf_hw::topology::{P2pClass, Topology};
use mlperf_hw::units::Bytes;
use mlperf_sim::allreduce::{plan_allreduce, AllReduceAlgorithm};
use mlperf_sim::{ConvergenceModel, Efficiency, RunSpec, SimError, Simulator, TrainingJob};
use mlperf_suite::BenchmarkId;

/// A C4140 (K)-style box but with one NVLink brick per pair failed
/// (2 lanes → 1): the collective slows, nothing breaks.
#[test]
fn degraded_nvlink_mesh_slows_the_collective() {
    let grads = Bytes::from_mib(400);
    let build = |lanes: u32| {
        let mut t = Topology::new("degraded");
        let c0 = t.add_cpu(CpuModel::XeonGold6148);
        let sw = t.add_switch();
        t.connect(c0, sw, Link::PCIE3_X16);
        let gpus: Vec<_> = (0..4)
            .map(|_| t.add_gpu(GpuModel::TeslaV100Sxm2_16))
            .collect();
        for &g in &gpus {
            t.connect(sw, g, Link::PCIE3_X16);
        }
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                t.connect(a, b, Link::NvLink { lanes });
            }
        }
        t
    };
    let healthy = build(2);
    let degraded = build(1);
    let t_healthy =
        plan_allreduce(&healthy, &[0, 1, 2, 3], AllReduceAlgorithm::Ring, grads).unwrap();
    let t_degraded =
        plan_allreduce(&degraded, &[0, 1, 2, 3], AllReduceAlgorithm::Ring, grads).unwrap();
    assert_eq!(t_degraded.worst_class, P2pClass::NvLinkDirect);
    let ratio = t_degraded.time.as_secs() / t_healthy.time.as_secs();
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "half the lanes, twice the time: {ratio}"
    );
}

/// Losing NVLink entirely (fabric failure) falls back to the PCIe path —
/// the training still completes, just slower.
#[test]
fn nvlink_fabric_failure_falls_back_to_pcie() {
    let job = BenchmarkId::MlpfXfmrPy.job();
    // Healthy: the stock C4140 (K).
    let healthy = SystemId::C4140K.spec();
    let t_healthy = Simulator::new(&healthy)
        .execute(&RunSpec::on_first(job.clone(), 4))
        .unwrap()
        .report
        .step_time;
    // Failed fabric: same box, no NVLink edges.
    let mut t = Topology::new("c4140k-no-nvlink");
    let c0 = t.add_cpu(CpuModel::XeonGold6148);
    let sw = t.add_switch();
    t.connect(c0, sw, Link::PCIE3_X16);
    for _ in 0..4 {
        let g = t.add_gpu(GpuModel::TeslaV100Sxm2_16);
        t.connect(sw, g, Link::PCIE3_X16);
    }
    let class = t.worst_peer_path(&[0, 1, 2, 3]).unwrap().class;
    assert_eq!(
        class,
        P2pClass::PcieSwitchP2p,
        "fallback path is the switch"
    );
    // (Training through a custom topology requires a SystemSpec; the
    // class change plus the collective pricing is the observable here.)
    let grads = Bytes::new(job.model().params() * 2);
    let healthy_plan = plan_allreduce(
        healthy.topology(),
        &[0, 1, 2, 3],
        AllReduceAlgorithm::Ring,
        grads,
    )
    .unwrap();
    let failed_plan = plan_allreduce(&t, &[0, 1, 2, 3], AllReduceAlgorithm::Ring, grads).unwrap();
    assert!(failed_plan.time.as_secs() > 2.0 * healthy_plan.time.as_secs());
    assert!(t_healthy.as_secs() > 0.0);
}

/// Thermal throttling: a GPU sustaining half its tuned efficiency takes
/// proportionally longer on compute-bound work.
#[test]
fn thermal_throttling_stretches_steps() {
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let base = BenchmarkId::MlpfRes50Mx.job();
    let eff = base.efficiency();
    let throttled = base.with_efficiency(Efficiency::new(
        eff.simt * 0.5,
        eff.tensor * 0.5,
        eff.memory * 0.5,
    ));
    let t_base = sim
        .execute(&RunSpec::on_first(base, 1))
        .unwrap()
        .report
        .step_time;
    let t_hot = sim
        .execute(&RunSpec::on_first(throttled, 1))
        .unwrap()
        .report
        .step_time;
    let ratio = t_hot.as_secs() / t_base.as_secs();
    assert!((1.8..2.2).contains(&ratio), "throttled ratio {ratio}");
}

/// A half-capacity DIMM population halves what staging can cache; the
/// storage plan flips from fed to starved.
#[test]
fn dram_loss_starves_imagenet_staging() {
    use mlperf_data::storage::{ReadPattern, StagingPlan, StorageDevice};
    use mlperf_hw::units::Seconds;
    let epoch = Seconds::from_minutes(4.0);
    let healthy = StagingPlan::new(
        DatasetId::ImageNet,
        Bytes::from_gib(300),
        StorageDevice::SataSsd,
        ReadPattern::SequentialShards,
        epoch,
    );
    let degraded = StagingPlan::new(
        DatasetId::ImageNet,
        Bytes::from_gib(96),
        StorageDevice::SataSsd,
        ReadPattern::SequentialShards,
        epoch,
    );
    assert!(healthy.keeps_up(), "fully cached: {healthy}");
    assert!(!degraded.keeps_up(), "starved: {degraded}");
}

/// Corrupt shard bytes surface as decode errors, not silent bad data.
#[test]
fn shard_corruption_is_loud() {
    use mlperf_data::shards::{Shard, ShardError};
    use mlperf_data::SyntheticDataset;
    let mut gen = SyntheticDataset::new(DatasetId::Squad, 99);
    let mut shard = Shard::new();
    for r in gen.take(5) {
        shard.push(&r);
    }
    let mut bytes = shard.as_bytes().to_vec();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x01;
    assert!(matches!(
        Shard::decode_bytes(&bytes),
        Err(ShardError::Corrupt { .. }) | Err(ShardError::Truncated { .. })
    ));
}

/// Mid-run fail-stop: a GPU dies at step k, the run resumes from the
/// last checkpoint, and the recomputed-work accounting in the stats
/// matches the `lost_time` the trace reports — the whole path through
/// `RunSpec::with_faults` and the engine, not just the replay function.
#[test]
fn regression_gpu_death_resumes_from_checkpoint_with_matching_accounting() {
    use mlperf_data::storage::StorageDevice;
    use mlperf_hw::units::Seconds;
    use mlperf_sim::fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
    use mlperf_sim::CheckpointSpec;

    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);
    let job = BenchmarkId::MlpfRes50Mx.job();
    let step = sim
        .execute(&RunSpec::on_first(job.clone(), 4))
        .unwrap()
        .report;
    let checkpoint = CheckpointSpec::new(Seconds::from_minutes(2.0), StorageDevice::NvmeSsd);
    let per_ckpt = checkpoint.interval_steps(&step);
    // Die at step k = 2.5 checkpoint windows in: one full window committed
    // plus half a window of uncommitted work to roll back.
    let kill_at = step.step_time.scale(2.5 * per_ckpt as f64);
    let cfg = FaultConfig {
        plan: FaultPlan::from_events(
            9,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: kill_at,
                kind: FaultKind::GpuFailure { gpu: 1 },
            }],
        ),
        checkpoint,
        retry: RetryPolicy::default(),
    };
    let outcome = sim
        .execute(&RunSpec::on_first(job, 4).with_faults(cfg))
        .unwrap();
    let faults = outcome.faults.expect("fault replay attached");
    assert_eq!(faults.stats.gpu_failures, 1);
    assert_eq!(faults.stats.restarts, 1);
    assert!(faults.stats.recomputed_time.as_secs() > 0.0);
    // The trace and the stats must tell the same story, byte for byte.
    let text = String::from_utf8(faults.trace.to_bytes()).unwrap();
    assert!(text.contains(&format!("restart from_step={}", 2 * per_ckpt)));
    let traced_lost: f64 = text
        .lines()
        .filter_map(|l| l.split("lost_time=").nth(1))
        .map(|v| v.parse::<f64>().expect("fixed-precision float"))
        .sum();
    let drift = (traced_lost - faults.stats.recomputed_time.as_secs()).abs();
    assert!(drift < 1e-5, "trace says {traced_lost}, stats disagree");
    // Everything the run paid partitions the wall-clock.
    let s = &faults.stats;
    let accounted = s.healthy_time + s.checkpoint_time + s.recomputed_time
        + s.stalled_time
        + s.restart_time;
    assert!((accounted.as_secs() - s.total_time.as_secs()).abs() < 1e-3);
}

/// Straggler injection: the deeper one GPU throttles, the worse the
/// synchronous run's scaling efficiency — monotonically.
#[test]
fn regression_straggler_degrades_scaling_efficiency_monotonically() {
    use mlperf_data::storage::StorageDevice;
    use mlperf_hw::units::Seconds;
    use mlperf_sim::fault::{replay, FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
    use mlperf_sim::CheckpointSpec;

    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);
    let job = BenchmarkId::MlpfRes50Mx.job();
    let step = sim
        .execute(&RunSpec::on_first(job.clone(), 4))
        .unwrap()
        .report;
    let total_steps = 5_000;
    let ideal = step.step_time.scale(total_steps as f64);
    let efficiency_at = |factor: f64| {
        let cfg = FaultConfig {
            plan: FaultPlan::from_events(
                7,
                Seconds::from_hours(1.0),
                vec![FaultEvent {
                    at: step.step_time.scale(100.5),
                    kind: FaultKind::ThermalThrottle {
                        gpu: 3,
                        factor,
                        duration: step.step_time.scale(3_000.0),
                    },
                }],
            ),
            checkpoint: CheckpointSpec::new(Seconds::from_hours(10.0), StorageDevice::NvmeSsd),
            retry: RetryPolicy::default(),
        };
        let (stats, _) = replay(&cfg, &job, &step, total_steps);
        ideal.as_secs() / stats.total_time.as_secs()
    };
    let effs: Vec<f64> = [1.0, 0.9, 0.7, 0.5].map(efficiency_at).to_vec();
    assert!((effs[0] - 1.0).abs() < 1e-6, "no straggler, no loss");
    for pair in effs.windows(2) {
        assert!(
            pair[1] < pair[0],
            "deeper throttle must cost more: {effs:?}"
        );
    }
}

/// Memory pressure: shrinking HBM headroom (a leaked allocation,
/// modelled as extra overhead) turns a fitting job into an OOM.
#[test]
fn leaked_device_memory_turns_into_oom() {
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let pipeline = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2));
    let build = |overhead_gib: u64| {
        TrainingJob::builder(
            "resnet",
            mlperf_models::zoo::resnet::resnet50(),
            pipeline.clone(),
            192,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .hbm_overhead(Bytes::from_gib(overhead_gib))
        .build()
    };
    assert!(sim.execute(&RunSpec::on_first(build(1), 1)).is_ok());
    assert!(matches!(
        sim.execute(&RunSpec::on_first(build(10), 1)),
        Err(SimError::OutOfMemory { .. })
    ));
}
