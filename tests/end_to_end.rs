//! Cross-crate integration: registry → simulator → telemetry → analysis.

use mlperf_analysis::pca::Pca;
use mlperf_analysis::roofline::RooflineModel;
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_sim::{train_on_first, RunSpec, Simulator};
use mlperf_suite::{BenchmarkId, WorkloadSpec};
use mlperf_telemetry::{csv, KernelProfile, ResourceUsage, Sampler};

#[test]
fn every_benchmark_trains_on_every_multi_gpu_platform() {
    for id in BenchmarkId::MLPERF {
        let job = id.job();
        for system_id in SystemId::FOUR_GPU_PLATFORMS {
            let system = system_id.spec();
            let sim = Simulator::new(&system);
            let outcome = train_on_first(&sim, &job, 4)
                .unwrap_or_else(|e| panic!("{id} on {system_id}: {e}"));
            assert!(
                outcome.total_time.as_secs() > 0.0,
                "{id} on {system_id} finished instantly"
            );
        }
    }
}

#[test]
fn telemetry_composes_with_analysis() {
    // Run two benchmarks, profile them, and feed the roofline + PCA layers.
    let system = SystemId::C4140K.spec();
    let roofline = RooflineModel::for_gpu(&system.gpu_model().spec());

    let mut feature_rows = Vec::new();
    for id in [
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfNcfPy,
        BenchmarkId::DawnRes18Py,
    ] {
        let run = mlperf_suite::workloads::run(WorkloadSpec::Trainable(id), &system, 1)
            .expect("run succeeds");
        let point = run.roofline_point().expect("training moves bytes");
        let attain = roofline
            .attainable(point.intensity, mlperf_hw::Precision::TensorCore)
            .as_flops_per_sec();
        assert!(
            point.throughput.as_flops_per_sec() <= attain * 1.001,
            "{id} over roof"
        );
        feature_rows.push(run.characteristics().features.to_vec());
    }
    let pca = Pca::fit(&feature_rows);
    let total: f64 = pca.explained_variance_ratio().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn sampler_csv_round_trip_has_consistent_averages() {
    let system = SystemId::C4140K.spec();
    let job = BenchmarkId::MlpfSsdPy.job();
    let step = Simulator::new(&system)
        .execute(&RunSpec::on_first(job, 2))
        .expect("run succeeds")
        .report;
    let usage = ResourceUsage::from_step(&system, &step);

    let period = Seconds::new(step.step_time.as_secs() / 50.0);
    let sampler = Sampler::new(step, period);
    let samples = sampler.collect(500);
    let text = csv::samples_to_csv(&samples);
    assert_eq!(text.lines().count(), 501);

    // The sampled mean GPU activity should approximate the usage row.
    let mean_gpu: f64 = samples.iter().map(|s| s.gpu_pct).sum::<f64>() / samples.len() as f64;
    assert!(
        (mean_gpu - usage.gpu_util_pct).abs() < 25.0,
        "sampled {mean_gpu:.1} vs usage {:.1}",
        usage.gpu_util_pct
    );
}

#[test]
fn profiles_price_the_same_model_the_engine_runs() {
    let id = BenchmarkId::MlpfXfmrPy;
    let job = id.job();
    let system = SystemId::Dss8440.spec();
    let step = Simulator::new(&system)
        .execute(&RunSpec::on_first(job.clone(), 1))
        .expect("run succeeds")
        .report;
    let profile = KernelProfile::of_step(job.model(), step.per_gpu_batch, job.precision());
    // Profile FLOPs equal the engine's pass FLOPs (same graph, same batch).
    let pass = job.model().pass_cost(step.per_gpu_batch, job.precision());
    assert_eq!(profile.total_flops(), pass.total_flops());
}

#[test]
fn dgx1v_extension_outruns_the_pcie_eight_gpu_box() {
    // The extension platform: NVLink cube mesh + SXM2 clocks beat the
    // DSS 8440's PCIe V100s at 8 GPUs for every comm-sensitive benchmark.
    for id in [BenchmarkId::MlpfRes50Mx, BenchmarkId::MlpfXfmrPy] {
        let job = id.job();
        let dgx = SystemId::Dgx1V.spec();
        let dss = SystemId::Dss8440.spec();
        let t_dgx = train_on_first(&Simulator::new(&dgx), &job, 8)
            .expect("run succeeds")
            .total_time;
        let t_dss = train_on_first(&Simulator::new(&dss), &job, 8)
            .expect("run succeeds")
            .total_time;
        assert!(
            t_dgx.as_secs() < t_dss.as_secs(),
            "{id}: DGX-1V {t_dgx} vs DSS 8440 {t_dss}"
        );
    }
}

#[test]
fn oom_is_reported_not_masked() {
    let job = BenchmarkId::MlpfRes50Mx.job().with_per_gpu_batch(1 << 14);
    let system = SystemId::C4140K.spec();
    let err = Simulator::new(&system)
        .execute(&RunSpec::on_first(job, 1))
        .expect_err("64k images cannot fit");
    assert!(err.to_string().contains("device has"));
}
