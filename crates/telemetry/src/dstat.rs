//! `dstat` analogue: host-side CPU and memory time series.
//!
//! The paper samples host statistics with `dstat` (combining vmstat/iostat/
//! netstat) and exports CSV. [`DstatLog`] replays a traced run: per tick it
//! reports user/system/idle CPU percentages (split between preprocessing
//! workers and kernel/driver time) and the DRAM footprint, rendering in
//! dstat's `--output` CSV shape.

use mlperf_hw::systems::SystemSpec;
use mlperf_hw::units::Seconds;
use mlperf_sim::{RunTrace, StepReport};
use std::fmt::Write as _;

/// Fraction of host busy time spent in kernel/driver space (the `sys`
/// column): ioctls, page pinning, interrupt handling.
const SYS_FRACTION: f64 = 0.25;

/// One host sample row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DstatRow {
    /// Tick timestamp.
    pub t: Seconds,
    /// User CPU, percent of all cores.
    pub usr_pct: f64,
    /// System CPU, percent of all cores.
    pub sys_pct: f64,
    /// Idle CPU, percent of all cores.
    pub idl_pct: f64,
    /// Used DRAM, MB.
    pub used_mb: f64,
    /// Free DRAM, MB.
    pub free_mb: f64,
}

/// A host-statistics log over a traced run window.
#[derive(Debug, Clone, PartialEq)]
pub struct DstatLog {
    rows: Vec<DstatRow>,
}

impl DstatLog {
    /// Sample a traced run on a system every `period` until the trace ends.
    ///
    /// CPU activity concentrates in the *staging* window of each iteration
    /// (host preprocessing runs ahead of the GPUs), so ticks during staging
    /// read higher than ticks late in a step — the jitter real dstat logs
    /// show.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or the trace is empty.
    pub fn record(
        system: &SystemSpec,
        trace: &RunTrace,
        step: &StepReport,
        period: Seconds,
    ) -> Self {
        assert!(period.as_secs() > 0.0, "sampling period must be positive");
        assert!(!trace.iterations.is_empty(), "cannot sample an empty trace");
        let cores = system.cpu_model().spec().cores() as f64 * system.cpu_count() as f64;
        let freq = system.cpu_model().spec().base_freq_ghz();
        let total_dram_mb = system.dram_capacity().as_f64() / 1e6;
        let used_mb = step.dram_footprint.as_f64() / 1e6;

        let mean_busy_frac =
            (step.cpu_core_secs_per_step / freq) / (step.step_time.as_secs() * cores);

        let end = trace.end().as_secs();
        let ticks = (end / period.as_secs()).floor() as usize;
        let mut rows = Vec::with_capacity(ticks);
        for tick in 0..ticks {
            let t = Seconds::new(tick as f64 * period.as_secs());
            // Loader activity concentrates in the first 60% of each step.
            let phase_boost = match trace.iteration_at(t) {
                Some(rec) => {
                    let span = rec.span(prev_done(trace, rec)).as_secs();
                    let into = t.as_secs() - (rec.step_done.as_secs() - span);
                    if span > 0.0 && into / span < 0.6 {
                        1.3
                    } else {
                        0.55
                    }
                }
                None => 0.0,
            };
            let busy = (mean_busy_frac * phase_boost).min(1.0) * 100.0;
            rows.push(DstatRow {
                t,
                usr_pct: busy * (1.0 - SYS_FRACTION),
                sys_pct: busy * SYS_FRACTION,
                idl_pct: 100.0 - busy,
                used_mb,
                free_mb: (total_dram_mb - used_mb).max(0.0),
            });
        }
        DstatLog { rows }
    }

    /// The sample rows.
    pub fn rows(&self) -> &[DstatRow] {
        &self.rows
    }

    /// Mean total CPU over the log, percent.
    ///
    /// # Panics
    ///
    /// Panics on an empty log.
    pub fn mean_cpu_pct(&self) -> f64 {
        assert!(!self.rows.is_empty(), "empty log");
        self.rows.iter().map(|r| r.usr_pct + r.sys_pct).sum::<f64>() / self.rows.len() as f64
    }

    /// Render as dstat `--output`-style CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("\"time\",\"usr\",\"sys\",\"idl\",\"used\",\"free\"\n");
        for r in &self.rows {
            writeln!(
                out,
                "{:.3},{:.2},{:.2},{:.2},{:.0},{:.0}",
                r.t.as_secs(),
                r.usr_pct,
                r.sys_pct,
                r.idl_pct,
                r.used_mb,
                r.free_mb
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

/// The completion time of the iteration before `rec` (0 for the first).
fn prev_done(trace: &RunTrace, rec: &mlperf_sim::IterationRecord) -> Seconds {
    trace
        .iterations
        .iter()
        .take_while(|r| r.iter < rec.iter)
        .last()
        .map(|r| r.step_done)
        .unwrap_or(Seconds::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet50;
    use mlperf_sim::{ConvergenceModel, RunSpec, Simulator, TrainingJob};

    fn traced(n: u32) -> (SystemSpec, StepReport, RunTrace) {
        let system = SystemId::C4140K.spec();
        let job = TrainingJob::builder(
            "resnet50",
            resnet50(),
            InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        let outcome = Simulator::new(&system)
            .execute(&RunSpec::on_first(job, n).traced())
            .unwrap();
        (system, outcome.report, outcome.trace.expect("trace requested"))
    }

    #[test]
    fn rows_partition_cpu_into_usr_sys_idl() {
        let (system, step, trace) = traced(2);
        let log = DstatLog::record(&system, &trace, &step, Seconds::new(0.02));
        for r in log.rows() {
            assert!((r.usr_pct + r.sys_pct + r.idl_pct - 100.0).abs() < 1e-9);
            assert!(r.usr_pct >= 0.0 && r.idl_pct >= 0.0);
            assert!(r.used_mb > 0.0 && r.free_mb >= 0.0);
        }
    }

    #[test]
    fn mean_tracks_the_engine_accounting() {
        let (system, step, trace) = traced(4);
        let log = DstatLog::record(&system, &trace, &step, Seconds::new(0.005));
        let cores = system.cpu_model().spec().cores() as f64 * system.cpu_count() as f64;
        let expected = step.cpu_core_secs_per_step
            / system.cpu_model().spec().base_freq_ghz()
            / (step.step_time.as_secs() * cores)
            * 100.0;
        let mean = log.mean_cpu_pct();
        assert!(
            (mean - expected).abs() < expected * 0.5 + 1.0,
            "dstat mean {mean:.1}% vs engine {expected:.1}%"
        );
    }

    #[test]
    fn staging_phase_reads_hotter_than_tail() {
        let (system, step, trace) = traced(1);
        let log = DstatLog::record(
            &system,
            &trace,
            &step,
            Seconds::new(step.step_time.as_secs() / 20.0),
        );
        let busiest = log
            .rows()
            .iter()
            .map(|r| r.usr_pct + r.sys_pct)
            .fold(0.0, f64::max);
        let calmest = log
            .rows()
            .iter()
            .map(|r| r.usr_pct + r.sys_pct)
            .fold(f64::INFINITY, f64::min);
        assert!(
            busiest > calmest,
            "phase structure should show in the series"
        );
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let (system, step, trace) = traced(1);
        let log = DstatLog::record(&system, &trace, &step, Seconds::new(0.05));
        let csv = log.render_csv();
        assert!(csv.starts_with("\"time\""));
        assert_eq!(csv.lines().count(), log.rows().len() + 1);
    }
}
