//! `dstat`/`dmon`-style periodic sampling of a simulated run.
//!
//! The paper's tooling samples system counters at a fixed period (1 s for
//! `dstat`, configurable for `dmon`) and exports CSV for analysis. This
//! sampler reconstructs the within-step phase timeline of a steady-state
//! [`StepReport`] — input stall, compute, exposed communication, optimizer —
//! and reads the counters a real sampler would see at each tick.

use mlperf_hw::units::Seconds;
use mlperf_sim::StepReport;

/// One sampler tick (one `dstat`/`dmon` output row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample timestamp from run start.
    pub t: Seconds,
    /// Instantaneous GPU SM activity summed over GPUs, percent.
    pub gpu_pct: f64,
    /// Instantaneous PCIe traffic, Mbit/s (summed).
    pub pcie_mbps: f64,
    /// Instantaneous NVLink traffic, Mbit/s (summed).
    pub nvlink_mbps: f64,
    /// Host DRAM footprint, MB (flat at steady state).
    pub dram_mb: f64,
}

/// The phase a GPU is in at an offset within one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Stall,
    Compute,
    Comm,
    Opt,
}

/// Samples a steady-state step cycle at a fixed period.
#[derive(Debug, Clone)]
pub struct Sampler {
    step: StepReport,
    period: Seconds,
}

impl Sampler {
    /// Create a sampler reading a steady-state report every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(step: StepReport, period: Seconds) -> Self {
        assert!(period.as_secs() > 0.0, "sampling period must be positive");
        Sampler { step, period }
    }

    fn phase_at(&self, offset: Seconds) -> Phase {
        let stall_end = self.step.data_stall;
        let compute_end = stall_end + self.step.compute_time;
        let comm_end = compute_end + self.step.exposed_comm;
        let o = offset.as_secs();
        if o < stall_end.as_secs() {
            Phase::Stall
        } else if o < compute_end.as_secs() {
            Phase::Compute
        } else if o < comm_end.as_secs() {
            Phase::Comm
        } else {
            Phase::Opt
        }
    }

    /// Read the counters at absolute time `t` (steady state assumed).
    pub fn sample_at(&self, t: Seconds) -> Sample {
        let cycle = self.step.step_time.as_secs();
        let offset = Seconds::new(t.as_secs() % cycle.max(f64::MIN_POSITIVE));
        let phase = self.phase_at(offset);
        let n = self.step.n_gpus as f64;
        let gpu_pct = match phase {
            Phase::Stall => 0.0,
            Phase::Compute | Phase::Opt => 100.0 * n,
            // NCCL kernels keep SMs partially resident.
            Phase::Comm => 60.0 * n,
        };
        // Prefetched H2D spreads over the whole cycle; gradient wire
        // traffic bursts during compute (overlapped part) + comm phases.
        let h2d_mbps = self.step.h2d_bytes_per_step.as_f64() * 8.0 / 1e6 / cycle;
        let comm_window = (self.step.compute_time + self.step.exposed_comm).as_secs();
        let wire_mbps = if matches!(phase, Phase::Compute | Phase::Comm) && comm_window > 0.0 {
            self.step.wire_bytes_per_step.as_f64() * 8.0 / 1e6 / comm_window
        } else {
            0.0
        };
        let (pcie_wire, nvlink) = match self.step.comm_class {
            Some(mlperf_hw::P2pClass::NvLinkDirect) => (0.0, wire_mbps),
            Some(_) => (wire_mbps, 0.0),
            None => (0.0, 0.0),
        };
        Sample {
            t,
            gpu_pct,
            pcie_mbps: h2d_mbps + pcie_wire,
            nvlink_mbps: nvlink,
            dram_mb: self.step.dram_footprint.as_f64() / 1e6,
        }
    }

    /// Collect `count` samples starting at t = 0.
    pub fn collect(&self, count: usize) -> Vec<Sample> {
        (0..count)
            .map(|i| self.sample_at(Seconds::new(self.period.as_secs() * i as f64)))
            .collect()
    }

    /// Time-averaged GPU utilization over a whole cycle, percent (summed
    /// over GPUs) — converges to the dmon long-run average.
    pub fn mean_gpu_pct(&self) -> f64 {
        let cycle = self.step.step_time.as_secs();
        let busy = self.step.compute_time.as_secs()
            + self.step.opt_time.as_secs()
            + 0.6 * self.step.exposed_comm.as_secs();
        (busy / cycle).min(1.0) * 100.0 * self.step.n_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet50;
    use mlperf_sim::{ConvergenceModel, RunSpec, Simulator, TrainingJob};

    fn step(n: u32) -> StepReport {
        let system = SystemId::C4140K.spec();
        let job = TrainingJob::builder(
            "resnet50",
            resnet50(),
            InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        Simulator::new(&system)
            .execute(&RunSpec::on_first(job, n))
            .unwrap()
            .report
    }

    #[test]
    fn samples_are_periodic_and_bounded() {
        let s = Sampler::new(step(2), Seconds::new(0.01));
        let samples = s.collect(50);
        assert_eq!(samples.len(), 50);
        for sm in &samples {
            assert!(sm.gpu_pct >= 0.0 && sm.gpu_pct <= 200.0);
            assert!(sm.pcie_mbps >= 0.0);
            assert!(sm.dram_mb > 0.0);
        }
    }

    #[test]
    fn compute_phase_shows_full_gpu_activity() {
        let report = step(1);
        let s = Sampler::new(report.clone(), Seconds::new(0.001));
        // Sample right after the stall window.
        let t = report.data_stall + Seconds::new(1e-6);
        assert_eq!(s.sample_at(t).gpu_pct, 100.0);
    }

    #[test]
    fn mean_matches_step_report_busy_fraction() {
        let report = step(4);
        let s = Sampler::new(report.clone(), Seconds::new(0.01));
        let mean = s.mean_gpu_pct();
        let expected = report.gpu_busy_fraction * 100.0 * 4.0;
        assert!((mean - expected).abs() < 20.0, "{mean} vs {expected}");
    }

    #[test]
    fn nvlink_traffic_appears_only_multi_gpu() {
        let s1 = Sampler::new(step(1), Seconds::new(0.01));
        assert!(s1.collect(20).iter().all(|s| s.nvlink_mbps == 0.0));
        let s4 = Sampler::new(step(4), Seconds::new(0.005));
        assert!(s4.collect(40).iter().any(|s| s.nvlink_mbps > 0.0));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = Sampler::new(step(1), Seconds::ZERO);
    }
}
