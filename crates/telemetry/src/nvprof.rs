//! `nvprof` analogue: kernel-level profiles of a training step.
//!
//! The paper profiles each benchmark's region of interest with `nvprof`,
//! collecting kernel invocations/durations, floating-point operation counts,
//! and memory read/write transactions, then derives the roofline coordinates
//! of Fig. 2. This module produces the same records from the analytical
//! graphs: one [`KernelRecord`] per operator per step, grouped by kind, with
//! the derived FLOP throughput and arithmetic intensity.

use mlperf_hw::units::{Bytes, Flops, Seconds};
use mlperf_hw::FlopRate;
use mlperf_models::{ModelGraph, OpKind, PrecisionPolicy};
use std::collections::BTreeMap;
use std::fmt;

/// One profiled kernel class (all invocations of one operator).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name (the operator's name).
    pub name: String,
    /// Operator category.
    pub kind: OpKind,
    /// Invocations per training step (forward + backward launches).
    pub invocations: u64,
    /// FLOPs per step across those invocations.
    pub flops: Flops,
    /// Device-memory traffic per step.
    pub bytes: Bytes,
}

/// The profile of one training step of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    records: Vec<KernelRecord>,
}

impl KernelProfile {
    /// Profile one training step of `model` at the given batch and policy
    /// (forward + backward; the optimizer shows up as elementwise kernels
    /// in real traces but is priced separately by the engine).
    pub fn of_step(model: &ModelGraph, batch: u64, policy: PrecisionPolicy) -> Self {
        let records = model
            .ops()
            .iter()
            .map(|op| {
                let flops = op.fwd_flops(batch) + op.bwd_flops(batch);
                let act = (op.fwd_act_elems(batch) + op.bwd_act_elems(batch)) as f64
                    * op.fused_traffic_factor();
                let elems = act + (2 * op.params()) as f64;
                // nvprof counts transactions, which include tiling re-reads.
                let bytes = Bytes::new(
                    (elems
                        * op.profiled_traffic_factor()
                        * policy.activation_bytes(op.tensor_core_eligible()) as f64)
                        .round() as u64,
                );
                KernelRecord {
                    name: op.name().to_string(),
                    kind: op.kind(),
                    invocations: 2, // one forward + one backward launch
                    flops,
                    bytes,
                }
            })
            .collect();
        KernelProfile { records }
    }

    /// The individual kernel records.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Total FLOPs per step.
    pub fn total_flops(&self) -> Flops {
        self.records.iter().map(|r| r.flops).sum()
    }

    /// Total device-memory traffic per step.
    pub fn total_bytes(&self) -> Bytes {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Arithmetic intensity of the step (FLOP / byte) — the x-coordinate of
    /// Fig. 2.
    ///
    /// # Panics
    ///
    /// Panics if the profile moved zero bytes.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() / self.total_bytes()
    }

    /// Sustained FLOP rate given the measured step duration — the
    /// y-coordinate of Fig. 2.
    pub fn throughput(&self, step_time: Seconds) -> FlopRate {
        self.total_flops() / step_time
    }

    /// Per-kind aggregation: (invocations, FLOPs, bytes) by operator kind —
    /// the "statistic of kernels" the paper publishes alongside.
    pub fn by_kind(&self) -> BTreeMap<OpKind, (u64, Flops, Bytes)> {
        let mut map: BTreeMap<OpKind, (u64, Flops, Bytes)> = BTreeMap::new();
        for r in &self.records {
            let e = map.entry(r.kind).or_insert((0, Flops::ZERO, Bytes::ZERO));
            e.0 += r.invocations;
            e.1 += r.flops;
            e.2 += r.bytes;
        }
        map
    }

    /// The `k` kernels with the most FLOPs, descending — `nvprof`'s
    /// "top kernels by time" table, approximated by work.
    pub fn top_kernels(&self, k: usize) -> Vec<&KernelRecord> {
        let mut sorted: Vec<&KernelRecord> = self.records.iter().collect();
        sorted.sort_by(|a, b| b.flops.cmp(&a.flops).then(a.name.cmp(&b.name)));
        sorted.truncate(k);
        sorted
    }

    /// The `k` kernels with the longest *durations* on a given device —
    /// exactly `nvprof`'s headline table. Each entry pairs a record with
    /// its roofline-priced time on the timer's GPU.
    pub fn top_kernels_by_time(
        &self,
        model: &ModelGraph,
        batch: u64,
        policy: PrecisionPolicy,
        timer: &mlperf_sim::KernelTimer,
        k: usize,
    ) -> Vec<(String, Seconds)> {
        let mut times = timer.op_times(model, batch, policy);
        times.sort_by(|a, b| {
            b.1.as_secs()
                .partial_cmp(&a.1.as_secs())
                .expect("durations are finite")
                .then(a.0.cmp(&b.0))
        });
        times.truncate(k);
        times
    }
}

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernel classes, {} / step, {} / step (AI {:.2})",
            self.records.len(),
            self.total_flops(),
            self.total_bytes(),
            self.arithmetic_intensity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_models::zoo::resnet::resnet18_cifar;

    fn profile() -> KernelProfile {
        KernelProfile::of_step(&resnet18_cifar(), 128, PrecisionPolicy::Fp32)
    }

    #[test]
    fn totals_are_record_sums() {
        let p = profile();
        let f: u64 = p.records().iter().map(|r| r.flops.as_u64()).sum();
        assert_eq!(p.total_flops().as_u64(), f);
        assert!(p.total_bytes().as_u64() > 0);
    }

    #[test]
    fn intensity_and_throughput_are_consistent() {
        let p = profile();
        let step = Seconds::new(0.05);
        let ai = p.arithmetic_intensity();
        let tp = p.throughput(step);
        let bw_implied = tp.as_flops_per_sec() / ai;
        let bw_direct = p.total_bytes().as_f64() / step.as_secs();
        assert!((bw_implied - bw_direct).abs() / bw_direct < 1e-9);
    }

    #[test]
    fn amp_shrinks_bytes_not_flops() {
        let g = resnet18_cifar();
        let fp32 = KernelProfile::of_step(&g, 128, PrecisionPolicy::Fp32);
        let amp = KernelProfile::of_step(&g, 128, PrecisionPolicy::Amp);
        assert_eq!(fp32.total_flops(), amp.total_flops());
        assert!(amp.total_bytes() < fp32.total_bytes());
        assert!(amp.arithmetic_intensity() > fp32.arithmetic_intensity());
    }

    #[test]
    fn by_kind_partitions_totals() {
        let p = profile();
        let total: u64 = p.by_kind().values().map(|(_, f, _)| f.as_u64()).sum();
        assert_eq!(total, p.total_flops().as_u64());
    }

    #[test]
    fn top_kernels_sorted_descending() {
        let p = profile();
        let top = p.top_kernels(5);
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].flops >= w[1].flops));
        // Convolutions dominate a ResNet.
        assert_eq!(top[0].kind, OpKind::Conv);
    }

    #[test]
    fn invocations_count_both_passes() {
        let p = profile();
        assert!(p.records().iter().all(|r| r.invocations == 2));
    }

    #[test]
    fn duration_ranking_can_differ_from_work_ranking() {
        use mlperf_hw::GpuModel;
        use mlperf_sim::{Efficiency, KernelTimer};
        let g = resnet18_cifar();
        let p = KernelProfile::of_step(&g, 128, PrecisionPolicy::Amp);
        let timer = KernelTimer::new(GpuModel::TeslaV100Sxm2_16.spec(), Efficiency::tuned());
        let by_time = p.top_kernels_by_time(&g, 128, PrecisionPolicy::Amp, &timer, 8);
        assert_eq!(by_time.len(), 8);
        assert!(by_time
            .windows(2)
            .all(|w| w[0].1.as_secs() >= w[1].1.as_secs()));
        // Under AMP, memory-bound batch norms take disproportionate time
        // relative to their FLOPs: they appear earlier by time than by work.
        let by_work: Vec<&str> = p.top_kernels(8).iter().map(|r| r.name.as_str()).collect();
        assert!(by_work
            .iter()
            .all(|n| n.contains("conv") || n.contains("proj")));
    }
}
