//! Table V-style resource-usage summaries.
//!
//! `dstat` gave the paper CPU utilization and system-memory statistics;
//! `nvidia-smi dmon` gave per-GPU SM utilization, memory footprint, and
//! PCIe/NVLink counters. [`ResourceUsage`] assembles the same six columns —
//! CPU %, GPU % (summed over GPUs), DRAM MB, HBM MB (summed), PCIe Mbps
//! (summed), NVLink Mbps (summed) — from an engine [`StepReport`].

use mlperf_hw::systems::SystemSpec;
use mlperf_hw::topology::P2pClass;
use mlperf_sim::StepReport;
use std::fmt;

/// One row of Table V: chassis-wide resource usage for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// GPUs in the run.
    pub n_gpus: u64,
    /// Average CPU utilization over all chassis cores, percent.
    pub cpu_util_pct: f64,
    /// Summed GPU SM utilization, percent (one GPU maxes at 100).
    pub gpu_util_pct: f64,
    /// Host DRAM footprint, MB.
    pub dram_mb: f64,
    /// Summed device HBM footprint, MB.
    pub hbm_mb: f64,
    /// Summed bidirectional PCIe traffic, Mbit/s.
    pub pcie_mbps: f64,
    /// Summed NVLink traffic, Mbit/s.
    pub nvlink_mbps: f64,
}

impl ResourceUsage {
    /// Derive the Table V row for a steady-state step on a system.
    pub fn from_step(system: &SystemSpec, step: &StepReport) -> Self {
        let total_cores = system.cpu_model().spec().cores() as f64 * system.cpu_count() as f64;
        // Reference-core-seconds normalize by frequency; convert to busy
        // core-seconds on this chassis's cores.
        let busy_cores = step.cpu_core_secs_per_step / system.cpu_model().spec().base_freq_ghz();
        let cpu_util_pct =
            (busy_cores / (step.step_time.as_secs() * total_cores) * 100.0).min(100.0);

        let gpu_util_pct = step.gpu_busy_fraction * 100.0 * step.n_gpus as f64;

        let secs = step.step_time.as_secs();
        // H2D input always crosses PCIe; gradient exchange lands on NVLink
        // only when the worst peer path is NVLink, else it shares PCIe.
        let h2d_mbps = step.h2d_bytes_per_step.as_f64() * 8.0 / 1e6 / secs;
        let wire_mbps = step.wire_bytes_per_step.as_f64() * 8.0 / 1e6 / secs;
        let (pcie_extra, nvlink_mbps) = match step.comm_class {
            Some(P2pClass::NvLinkDirect) => (0.0, wire_mbps),
            Some(_) => (wire_mbps, 0.0),
            None => (0.0, 0.0),
        };

        ResourceUsage {
            n_gpus: step.n_gpus,
            cpu_util_pct,
            gpu_util_pct,
            dram_mb: step.dram_footprint.as_f64() / 1e6,
            hbm_mb: step.hbm_per_gpu.as_f64() / 1e6 * step.n_gpus as f64,
            pcie_mbps: h2d_mbps + pcie_extra,
            nvlink_mbps,
        }
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} GPU(s): CPU {:.2}%, GPU {:.2}%, DRAM {:.0} MB, HBM {:.0} MB, PCIe {:.0} Mbps, NVLink {:.0} Mbps",
            self.n_gpus,
            self.cpu_util_pct,
            self.gpu_util_pct,
            self.dram_mb,
            self.hbm_mb,
            self.pcie_mbps,
            self.nvlink_mbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet50;
    use mlperf_sim::{ConvergenceModel, RunSpec, Simulator, TrainingJob};

    fn run(n: u32) -> (SystemSpec, StepReport) {
        let system = SystemId::C4140K.spec();
        let job = TrainingJob::builder(
            "resnet50",
            resnet50(),
            InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        let step = Simulator::new(&system)
            .execute(&RunSpec::on_first(job, n))
            .unwrap()
            .report;
        (system, step)
    }

    #[test]
    fn single_gpu_row_is_bounded() {
        let (system, step) = run(1);
        let u = ResourceUsage::from_step(&system, &step);
        assert!(u.cpu_util_pct > 0.0 && u.cpu_util_pct < 100.0);
        assert!(u.gpu_util_pct > 30.0 && u.gpu_util_pct <= 100.0);
        assert_eq!(u.nvlink_mbps, 0.0, "no peer traffic on one GPU");
        assert!(u.pcie_mbps > 0.0, "input H2D always crosses PCIe");
    }

    #[test]
    fn usage_grows_with_gpu_count() {
        let (system, s1) = run(1);
        let (_, s4) = run(4);
        let u1 = ResourceUsage::from_step(&system, &s1);
        let u4 = ResourceUsage::from_step(&system, &s4);
        assert!(u4.cpu_util_pct > 2.0 * u1.cpu_util_pct);
        assert!(u4.gpu_util_pct > 3.0 * u1.gpu_util_pct);
        assert!(u4.hbm_mb > 3.5 * u1.hbm_mb);
        assert!(u4.pcie_mbps > 2.0 * u1.pcie_mbps);
        // NVLink lights up on the C4140 (K) mesh.
        assert!(u4.nvlink_mbps > 0.0);
    }

    #[test]
    fn upi_platform_routes_gradients_over_pcie() {
        let system = SystemId::T640.spec();
        let job = TrainingJob::builder(
            "resnet50",
            resnet50(),
            InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        let step = Simulator::new(&system)
            .execute(&RunSpec::on_first(job, 4))
            .unwrap()
            .report;
        let u = ResourceUsage::from_step(&system, &step);
        assert_eq!(u.nvlink_mbps, 0.0);
        assert!(u.pcie_mbps > 0.0);
    }

    #[test]
    fn display_has_all_columns() {
        let (system, step) = run(2);
        let s = ResourceUsage::from_step(&system, &step).to_string();
        for col in ["CPU", "GPU", "DRAM", "HBM", "PCIe", "NVLink"] {
            assert!(s.contains(col), "missing {col} in {s}");
        }
    }
}
