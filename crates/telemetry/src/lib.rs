//! Profiling-tool analogues over simulated runs.
//!
//! The study instruments real training with `nvprof` (kernel FLOP and
//! memory-transaction counts), `dstat` (CPU/DRAM time series), and
//! `nvidia-smi dmon` (per-GPU SM/HBM/PCIe/NVLink counters). This crate
//! reads the same quantities out of the simulation engine:
//!
//! * [`nvprof`] — [`KernelProfile`]: per-kernel FLOPs/bytes, arithmetic
//!   intensity, sustained throughput (the Fig. 2 coordinates);
//! * [`usage`] — [`ResourceUsage`]: the six Table V columns;
//! * [`sampler`] — periodic `dstat`/`dmon`-style ticks over a steady-state
//!   step cycle;
//! * [`dmon`] / [`dstat`] — high-fidelity per-GPU and host loggers that
//!   replay exact engine [`RunTrace`](mlperf_sim::RunTrace)s;
//! * [`characteristics`] — the 8-feature vector §IV-A feeds to PCA;
//! * [`csv`] — CSV export matching the paper's analysis workflow.

pub mod characteristics;
pub mod csv;
pub mod dmon;
pub mod dstat;
pub mod nvprof;
pub mod sampler;
pub mod usage;

pub use characteristics::{WorkloadCharacteristics, FEATURE_NAMES};
pub use dmon::{DmonLog, DmonRow};
pub use dstat::{DstatLog, DstatRow};
pub use nvprof::{KernelProfile, KernelRecord};
pub use sampler::{Sample, Sampler};
pub use usage::ResourceUsage;
