//! The 8-dimensional workload-characteristics vector of the PCA study.
//!
//! Section IV-A reduces each workload to eight measured features — PCIe
//! utilization, GPU utilization, CPU utilization, DDR memory footprint,
//! HBM2 footprint, FLOP throughput, memory throughput, and number of
//! epochs — and runs PCA over the suite. [`WorkloadCharacteristics`]
//! assembles that exact vector from a run's telemetry.

use crate::nvprof::KernelProfile;
use crate::usage::ResourceUsage;
use std::fmt;

/// Names of the eight features, in vector order.
pub const FEATURE_NAMES: [&str; 8] = [
    "PCIe util (Mbps)",
    "GPU util (%)",
    "CPU util (%)",
    "DDR footprint (MB)",
    "HBM2 footprint (MB)",
    "FLOP throughput (GFLOP/s)",
    "Memory throughput (GB/s)",
    "Epochs",
];

/// One workload's eight measured characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCharacteristics {
    /// Workload label (e.g. `"MLPf_Res50_TF"`).
    pub name: String,
    /// Which suite the workload belongs to (for plot grouping).
    pub suite: String,
    /// The eight features, ordered as [`FEATURE_NAMES`].
    pub features: [f64; 8],
}

impl WorkloadCharacteristics {
    /// Assemble the vector from a usage row, a kernel profile, the measured
    /// step time, and the epoch count.
    pub fn from_telemetry(
        name: impl Into<String>,
        suite: impl Into<String>,
        usage: &ResourceUsage,
        profile: &KernelProfile,
        step_secs: f64,
        epochs: f64,
    ) -> Self {
        assert!(step_secs > 0.0, "step time must be positive");
        let flop_tp = profile.total_flops().as_f64() / step_secs / 1e9;
        let mem_tp = profile.total_bytes().as_f64() / step_secs / 1e9;
        WorkloadCharacteristics {
            name: name.into(),
            suite: suite.into(),
            features: [
                usage.pcie_mbps + usage.nvlink_mbps,
                usage.gpu_util_pct,
                usage.cpu_util_pct,
                usage.dram_mb,
                usage.hbm_mb,
                flop_tp,
                mem_tp,
                epochs,
            ],
        }
    }

    /// Build directly from raw feature values (DeepBench kernels have no
    /// training loop, so some features are synthesized).
    pub fn from_raw(name: impl Into<String>, suite: impl Into<String>, features: [f64; 8]) -> Self {
        assert!(
            features.iter().all(|f| f.is_finite()),
            "all features must be finite"
        );
        WorkloadCharacteristics {
            name: name.into(),
            suite: suite.into(),
            features,
        }
    }
}

impl fmt::Display for WorkloadCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]:", self.name, self.suite)?;
        for (n, v) in FEATURE_NAMES.iter().zip(self.features) {
            write!(f, " {n}={v:.1}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_construction_validates() {
        let w = WorkloadCharacteristics::from_raw("k", "DeepBench", [1.0; 8]);
        assert_eq!(w.features, [1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_feature_rejected() {
        let _ = WorkloadCharacteristics::from_raw("k", "s", [f64::NAN; 8]);
    }

    #[test]
    fn feature_names_cover_the_vector() {
        assert_eq!(FEATURE_NAMES.len(), 8);
        let w = WorkloadCharacteristics::from_raw("k", "s", [2.0; 8]);
        let s = w.to_string();
        assert!(s.contains("Epochs=2.0"));
    }
}
