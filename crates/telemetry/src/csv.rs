//! CSV export, mirroring `dstat --output` and `nvidia-smi dmon` logs.
//!
//! The paper's workflow exports sampler output to comma-separated values
//! "for further analysis"; these helpers write the same shape so downstream
//! tooling (or a spreadsheet) can consume simulated runs identically.

use crate::characteristics::{WorkloadCharacteristics, FEATURE_NAMES};
use crate::sampler::Sample;
use std::fmt::Write as _;

/// Render sampler ticks as a `dstat`-style CSV document.
pub fn samples_to_csv(samples: &[Sample]) -> String {
    let mut out = String::from("time_s,gpu_pct,pcie_mbps,nvlink_mbps,dram_mb\n");
    for s in samples {
        writeln!(
            out,
            "{:.4},{:.2},{:.1},{:.1},{:.0}",
            s.t.as_secs(),
            s.gpu_pct,
            s.pcie_mbps,
            s.nvlink_mbps,
            s.dram_mb
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Render workload-characteristics rows (the PCA input matrix) as CSV.
pub fn characteristics_to_csv(rows: &[WorkloadCharacteristics]) -> String {
    let mut out = String::from("workload,suite");
    for name in FEATURE_NAMES {
        // Normalize header tokens: lowercase, no spaces/punctuation.
        let token: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        write!(out, ",{token}").expect("writing to a String cannot fail");
    }
    out.push('\n');
    for row in rows {
        write!(out, "{},{}", row.name, row.suite).expect("writing to a String cannot fail");
        for v in row.features {
            write!(out, ",{v:.4}").expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::units::Seconds;

    #[test]
    fn samples_csv_has_header_and_rows() {
        let samples = vec![
            Sample {
                t: Seconds::ZERO,
                gpu_pct: 50.0,
                pcie_mbps: 10.0,
                nvlink_mbps: 0.0,
                dram_mb: 4096.0,
            },
            Sample {
                t: Seconds::new(1.0),
                gpu_pct: 100.0,
                pcie_mbps: 20.0,
                nvlink_mbps: 5.0,
                dram_mb: 4096.0,
            },
        ];
        let csv = samples_to_csv(&samples);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_s,"));
        assert!(lines[2].starts_with("1.0000,100.00"));
    }

    #[test]
    fn characteristics_csv_round_trips_columns() {
        let rows = vec![WorkloadCharacteristics::from_raw(
            "MLPf_NCF_Py",
            "MLPerf",
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )];
        let csv = characteristics_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 10); // name + suite + 8 features
        assert!(lines[1].starts_with("MLPf_NCF_Py,MLPerf,1.0000"));
        assert!(lines[1].ends_with("8.0000"));
    }

    #[test]
    fn empty_inputs_yield_header_only() {
        assert_eq!(samples_to_csv(&[]).lines().count(), 1);
        assert_eq!(characteristics_to_csv(&[]).lines().count(), 1);
    }
}
