//! `nvidia-smi dmon` analogue: per-GPU periodic device monitoring.
//!
//! Where [`Sampler`](crate::Sampler) reconstructs one aggregate phase cycle,
//! [`DmonLog`] replays an exact [`RunTrace`] from the engine: each tick
//! reports, *per GPU*, the fraction of the window with kernels resident
//! (the `sm` column), the device-memory footprint, and PCIe/NVLink traffic —
//! formatted like the real tool's output.

use mlperf_hw::topology::P2pClass;
use mlperf_hw::units::Seconds;
use mlperf_sim::{RunTrace, StepReport};
use std::fmt::Write as _;

/// One per-GPU sample row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmonRow {
    /// Tick timestamp.
    pub t: Seconds,
    /// GPU ordinal.
    pub gpu: u32,
    /// SM activity over the tick window, percent.
    pub sm_pct: f64,
    /// Device-memory footprint, MB.
    pub mem_mb: f64,
    /// PCIe traffic attributed to this GPU, MB/s.
    pub pcie_mb_s: f64,
    /// NVLink traffic attributed to this GPU, MB/s.
    pub nvlink_mb_s: f64,
}

/// A per-GPU monitoring log over a traced run window.
#[derive(Debug, Clone, PartialEq)]
pub struct DmonLog {
    rows: Vec<DmonRow>,
    n_gpus: u32,
}

impl DmonLog {
    /// Sample a traced run every `period`, producing one row per GPU per
    /// tick, until the trace ends.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or the trace is empty.
    pub fn record(trace: &RunTrace, step: &StepReport, period: Seconds) -> Self {
        assert!(period.as_secs() > 0.0, "sampling period must be positive");
        assert!(!trace.iterations.is_empty(), "cannot sample an empty trace");
        let n_gpus = step.n_gpus as u32;
        let end = trace.end().as_secs();
        let ticks = (end / period.as_secs()).floor() as usize;

        // Steady-state per-GPU bus rates (bytes spread over the step).
        let pcie_per_gpu =
            step.h2d_bytes_per_step.as_f64() / step.n_gpus as f64 / step.step_time.as_secs() / 1e6;
        let wire_per_gpu =
            step.wire_bytes_per_step.as_f64() / step.n_gpus as f64 / step.step_time.as_secs() / 1e6;
        let (pcie_wire, nvlink_wire) = match step.comm_class {
            Some(P2pClass::NvLinkDirect) => (0.0, wire_per_gpu),
            Some(_) => (wire_per_gpu, 0.0),
            None => (0.0, 0.0),
        };

        /// Sub-samples per tick window when integrating busy time.
        const RESOLUTION: u32 = 20;
        let mut rows = Vec::with_capacity(ticks * n_gpus as usize);
        for tick in 0..ticks {
            let t0 = tick as f64 * period.as_secs();
            for gpu in 0..n_gpus {
                let busy = (0..RESOLUTION)
                    .filter(|i| {
                        let t = t0 + (*i as f64 + 0.5) / RESOLUTION as f64 * period.as_secs();
                        trace.gpu_busy_at(gpu as usize, Seconds::new(t))
                    })
                    .count() as f64
                    / RESOLUTION as f64;
                rows.push(DmonRow {
                    t: Seconds::new(t0),
                    gpu,
                    sm_pct: busy * 100.0,
                    mem_mb: step.hbm_per_gpu.as_f64() / 1e6,
                    pcie_mb_s: (pcie_per_gpu + pcie_wire) * busy.max(0.1),
                    nvlink_mb_s: nvlink_wire * busy,
                });
            }
        }
        DmonLog { rows, n_gpus }
    }

    /// The sample rows, tick-major then GPU-major.
    pub fn rows(&self) -> &[DmonRow] {
        &self.rows
    }

    /// GPUs monitored.
    pub fn gpu_count(&self) -> u32 {
        self.n_gpus
    }

    /// Mean SM activity of one GPU over the log, percent.
    ///
    /// # Panics
    ///
    /// Panics if the GPU has no samples.
    pub fn mean_sm_pct(&self, gpu: u32) -> f64 {
        let xs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.gpu == gpu)
            .map(|r| r.sm_pct)
            .collect();
        assert!(!xs.is_empty(), "no samples for GPU {gpu}");
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Render in `nvidia-smi dmon`'s column format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# gpu    sm    mem   rxtxpci  nvlink\n# Idx     %     MB      MB/s    MB/s\n",
        );
        for r in &self.rows {
            writeln!(
                out,
                "{:>5} {:>5.0} {:>6.0} {:>9.0} {:>7.0}",
                r.gpu, r.sm_pct, r.mem_mb, r.pcie_mb_s, r.nvlink_mb_s
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet50;
    use mlperf_sim::{ConvergenceModel, RunSpec, Simulator, TrainingJob};

    fn traced(n: u32) -> (StepReport, RunTrace) {
        let system = SystemId::C4140K.spec();
        let job = TrainingJob::builder(
            "resnet50",
            resnet50(),
            InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        let outcome = Simulator::new(&system)
            .execute(&RunSpec::on_first(job, n).traced())
            .unwrap();
        (outcome.report, outcome.trace.expect("trace requested"))
    }

    #[test]
    fn per_gpu_rows_cover_every_tick() {
        let (step, trace) = traced(2);
        let period = Seconds::new(step.step_time.as_secs() / 4.0);
        let log = DmonLog::record(&trace, &step, period);
        assert_eq!(log.gpu_count(), 2);
        // Rows come in GPU pairs.
        assert_eq!(log.rows().len() % 2, 0);
        assert!(log.rows().len() > 8);
    }

    #[test]
    fn mean_sm_tracks_the_busy_fraction() {
        let (step, trace) = traced(1);
        let period = Seconds::new(step.step_time.as_secs() / 50.0);
        let log = DmonLog::record(&trace, &step, period);
        let mean = log.mean_sm_pct(0);
        let expected = step.gpu_busy_fraction * 100.0;
        assert!(
            (mean - expected).abs() < 15.0,
            "dmon mean {mean:.0}% vs engine busy {expected:.0}%"
        );
    }

    #[test]
    fn nvlink_column_zero_on_single_gpu() {
        let (step, trace) = traced(1);
        let log = DmonLog::record(&trace, &step, Seconds::new(0.01));
        assert!(log.rows().iter().all(|r| r.nvlink_mb_s == 0.0));
        let (step4, trace4) = traced(4);
        let log4 = DmonLog::record(&trace4, &step4, Seconds::new(0.01));
        assert!(log4.rows().iter().any(|r| r.nvlink_mb_s > 0.0));
    }

    #[test]
    fn render_matches_dmon_format() {
        let (step, trace) = traced(2);
        let log = DmonLog::record(&trace, &step, Seconds::new(0.05));
        let s = log.render();
        assert!(s.starts_with("# gpu"));
        assert!(s.lines().count() > 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let (step, trace) = traced(1);
        let _ = DmonLog::record(&trace, &step, Seconds::ZERO);
    }
}
