//! Figure 1: PCA of the workload space.
//!
//! §IV-A standardizes eight measured characteristics per workload — PCIe
//! utilization, GPU utilization, CPU utilization, DDR footprint, HBM2
//! footprint, FLOP throughput, memory throughput, epochs — and plots all
//! thirteen workloads in the PC1-PC2 and PC3-PC4 planes. Key published
//! findings, each checked here:
//!
//! * MLPerf and (DAWNBench ∪ DeepBench) form separated clusters on PC1;
//! * PC1 is dominated by GPU memory footprint;
//! * PC1–PC4 cover ~88 % of the variance;
//! * no two MLPerf benchmarks sit close together (intra-suite diversity).

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::workloads::{DeepBenchId, WorkloadRun, WorkloadSpec};
use mlperf_analysis::pca::Pca;
use mlperf_hw::systems::SystemId;
use mlperf_sim::SimError;
use mlperf_telemetry::FEATURE_NAMES;

/// The fitted PCA plus every workload's projection.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The fitted model.
    pub pca: Pca,
    /// `(name, suite, PC1..PC4 projection)` per workload.
    pub projections: Vec<(String, String, Vec<f64>)>,
}

impl Figure1 {
    /// Cumulative variance of PC1..PC4.
    pub fn variance_pc1_to_pc4(&self) -> f64 {
        self.pca.cumulative_variance(4.min(self.pca.n_features()))
    }

    /// The dominant metric (feature name) of a component.
    pub fn dominant_metric(&self, pc: usize) -> &'static str {
        FEATURE_NAMES[self.pca.dominant_feature(pc)]
    }

    /// Mean PC1 coordinate of one suite's workloads.
    pub fn suite_mean_pc1(&self, suite: &str) -> f64 {
        let coords: Vec<f64> = self
            .projections
            .iter()
            .filter(|(_, s, _)| s == suite)
            .map(|(_, _, p)| p[0])
            .collect();
        assert!(!coords.is_empty(), "no workloads in suite {suite}");
        coords.iter().sum::<f64>() / coords.len() as f64
    }
}

/// Collect the 13 workloads' characteristics on the C4140 (K), each at its
/// study configuration (quad-GPU for the scalable MLPerf suite and the
/// all-reduce benchmark, single-GPU for the DAWNBench submissions and the
/// DeepBench kernel loops — the same shapes Table V measures).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn collect_runs() -> Result<Vec<WorkloadRun>, SimError> {
    collect_runs_ctx(&Ctx::new())
}

/// [`collect_runs`] through a shared executor context, so the quad-GPU
/// C4140 (K) points are computed once across Figure 1, Table V, and the
/// CSV exports.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn collect_runs_ctx(ctx: &Ctx) -> Result<Vec<WorkloadRun>, SimError> {
    let system = SystemId::C4140K;
    let mut runs = Vec::new();
    for id in BenchmarkId::MLPERF {
        runs.push(ctx.workload(WorkloadSpec::Trainable(id), system, 4)?);
    }
    runs.push(ctx.workload(WorkloadSpec::Trainable(BenchmarkId::DawnRes18Py), system, 1)?);
    runs.push(ctx.workload(WorkloadSpec::Trainable(BenchmarkId::DawnDrqaPy), system, 1)?);
    for id in [DeepBenchId::GemmCu, DeepBenchId::ConvCu, DeepBenchId::RnnCu] {
        runs.push(ctx.workload(WorkloadSpec::DeepBench(id), system, 1)?);
    }
    runs.push(ctx.workload(WorkloadSpec::DeepBench(DeepBenchId::RedCu), system, 4)?);
    Ok(runs)
}

/// Run the Figure 1 experiment standalone.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Figure1, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Figure 1 experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Figure1, SimError> {
    let runs = collect_runs_ctx(ctx)?;
    let rows: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| r.characteristics().features.to_vec())
        .collect();
    let pca = Pca::fit(&rows);
    let projections = runs
        .iter()
        .zip(&rows)
        .map(|(r, row)| {
            (
                r.name.clone(),
                r.suite.to_string(),
                pca.project(row, 4.min(pca.n_features())),
            )
        })
        .collect();
    Ok(Figure1 { pca, projections })
}

/// Extension: algorithmic clustering of the 13 workloads in PC1-PC4 space
/// (the paper eyeballs its clusters; this makes them reproducible). Returns
/// `(workload name, suite, cluster label)` at a 3-way cut.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn clustered(f: &Figure1) -> Vec<(String, String, usize)> {
    use mlperf_analysis::clustering::{cluster, Linkage};
    let rows: Vec<Vec<f64>> = f.projections.iter().map(|(_, _, p)| p.clone()).collect();
    let labels = cluster(&rows, Linkage::Average).cut(3);
    f.projections
        .iter()
        .zip(labels)
        .map(|((name, suite, _), label)| (name.clone(), suite.clone(), label))
        .collect()
}

/// Render the projections and variance summary.
pub fn render(f: &Figure1) -> String {
    let mut t = Table::new(
        "Figure 1: Workload-space PCA projections",
        ["Workload", "Suite", "PC1", "PC2", "PC3", "PC4"],
    );
    for (name, suite, p) in &f.projections {
        t.add_row([
            name.clone(),
            suite.clone(),
            format!("{:+.2}", p[0]),
            format!("{:+.2}", p[1]),
            format!("{:+.2}", p[2]),
            format!("{:+.2}", p[3]),
        ]);
    }
    let ratios = f.pca.explained_variance_ratio();
    format!(
        "{t}PC1-PC4 cumulative variance: {:.0}% (paper: 88%)\n\
         Dominant metrics: PC1={}, PC2={}, PC3={}, PC4={}\n\
         Variance by component: {}\n",
        f.variance_pc1_to_pc4() * 100.0,
        f.dominant_metric(0),
        f.dominant_metric(1),
        f.dominant_metric(2),
        f.dominant_metric(3),
        ratios
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, r)| format!("PC{}={:.0}%", i + 1, r * 100.0))
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// Figure 1 as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "figure1"
    }

    fn title(&self) -> &'static str {
        "Figure 1: PCA of the workload space"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Figure1).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Figure1(f) => render(f),
            other => unreachable!("figure1 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_workloads_projected() {
        let f = run().unwrap();
        assert_eq!(f.projections.len(), 13);
    }

    #[test]
    fn pc1_to_pc4_cover_most_variance() {
        // Paper: 88%.
        let f = run().unwrap();
        let v = f.variance_pc1_to_pc4();
        assert!(v > 0.75, "PC1-4 cover only {:.0}%", v * 100.0);
    }

    #[test]
    fn mlperf_separates_from_deepbench_on_pc1() {
        // Fig. 1a: "two isolated clusters sitting in two sides".
        let f = run().unwrap();
        let mlperf = f.suite_mean_pc1("MLPerf");
        let deepbench = f.suite_mean_pc1("DeepBench");
        assert!(
            (mlperf - deepbench).abs() > 1.0,
            "PC1 means: MLPerf {mlperf:.2} vs DeepBench {deepbench:.2}"
        );
        // At least 5 of 7 MLPerf workloads sit on their cluster's side of
        // the midpoint (Fig. 1a shows clusters "with outliers labeled" —
        // NCF's small footprints put it near the kernel suites).
        let mid = (mlperf + deepbench) / 2.0;
        let sign = (mlperf - mid).signum();
        let on_side = f
            .projections
            .iter()
            .filter(|(_, s, p)| s == "MLPerf" && (p[0] - mid).signum() == sign)
            .count();
        assert!(
            on_side >= 5,
            "only {on_side} / 7 MLPerf points on cluster side"
        );
    }

    #[test]
    fn pc1_is_dominated_by_a_memory_footprint() {
        // Paper: "PC1 is dominated by GPU memory footprint".
        let f = run().unwrap();
        let dom = f.dominant_metric(0);
        assert!(
            dom.contains("footprint"),
            "PC1 dominated by {dom}, expected a footprint metric"
        );
    }

    #[test]
    fn no_two_mlperf_benchmarks_coincide() {
        // §IV-A: "there are no two MLPerf benchmarks that are very close".
        let f = run().unwrap();
        let mlperf: Vec<&Vec<f64>> = f
            .projections
            .iter()
            .filter(|(_, s, _)| s == "MLPerf")
            .map(|(_, _, p)| p)
            .collect();
        for (i, a) in mlperf.iter().enumerate() {
            for b in &mlperf[i + 1..] {
                let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
                assert!(d2.sqrt() > 0.2, "two MLPerf points nearly coincide");
            }
        }
    }

    #[test]
    fn algorithmic_clustering_groups_the_kernel_suite() {
        // The three DeepBench compute kernels must land in one cluster,
        // apart from the heavyweight MLPerf workloads.
        let f = run().unwrap();
        let labels = clustered(&f);
        let of = |name: &str| {
            labels
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, l)| *l)
                .expect("workload present")
        };
        assert_eq!(of("Deep_GEMM_Cu"), of("Deep_Conv_Cu"));
        assert_eq!(of("Deep_Conv_Cu"), of("Deep_RNN_Cu"));
        assert_ne!(of("Deep_GEMM_Cu"), of("MLPf_Res50_TF"));
    }

    #[test]
    fn render_reports_variance_and_dominants() {
        let f = run().unwrap();
        let s = render(&f);
        assert!(s.contains("cumulative variance"));
        assert!(s.contains("Dominant metrics"));
    }
}
