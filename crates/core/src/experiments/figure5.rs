//! Figure 5: training time across five 4-GPU interconnect topologies.
//!
//! §V-E trains every MLPerf benchmark on the five 4-GPU platforms of Table
//! III. Expected ordering: the NVLink systems (C4140 M/K) fastest, the
//! PCIe-switch C4140 (B) next (parity on image classification), and the
//! CPU-attached T640 / R940 XA slowest; NVLink-vs-worst improvements range
//! from ~11 % (ResNet) to ~42 % (Transformer).

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_hw::systems::SystemId;
use mlperf_sim::SimError;

/// One benchmark's times across the five platforms (minutes), in
/// [`SystemId::FOUR_GPU_PLATFORMS`] order.
#[derive(Debug, Clone)]
pub struct TopologyRow {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Training minutes per platform.
    pub minutes: Vec<(SystemId, f64)>,
}

impl TopologyRow {
    /// Training minutes on one platform.
    pub fn on(&self, system: SystemId) -> f64 {
        self.minutes
            .iter()
            .find(|(s, _)| *s == system)
            .map(|(_, m)| *m)
            .expect("all five platforms measured")
    }

    /// Best-NVLink vs worst-platform improvement, as a fraction.
    pub fn nvlink_improvement(&self) -> f64 {
        let nvlink = self.on(SystemId::C4140M).min(self.on(SystemId::C4140K));
        let worst = self.minutes.iter().map(|(_, m)| *m).fold(0.0f64, f64::max);
        1.0 - nvlink / worst
    }
}

/// The full Figure 5 result.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// One row per MLPerf benchmark.
    pub rows: Vec<TopologyRow>,
}

/// Run the Figure 5 experiment (all 7 MLPerf benchmarks × 5 platforms,
/// 4 GPUs each).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Figure5, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Figure 5 experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Figure5, SimError> {
    let mut rows = Vec::new();
    for id in BenchmarkId::MLPERF {
        let mut minutes = Vec::new();
        for system_id in SystemId::FOUR_GPU_PLATFORMS {
            let outcome = ctx.outcome(&TrainPoint::new(id, system_id, 4))?;
            minutes.push((system_id, outcome.total_time.as_minutes()));
        }
        rows.push(TopologyRow { id, minutes });
    }
    Ok(Figure5 { rows })
}

/// Render the grouped bars as a table.
pub fn render(f: &Figure5) -> String {
    let mut headers = vec!["Benchmark".to_string()];
    headers.extend(
        SystemId::FOUR_GPU_PLATFORMS
            .iter()
            .map(|s| s.name().to_string()),
    );
    headers.push("NVLink gain".to_string());
    let mut t = Table::new(
        "Figure 5: Training time on 4-GPU systems, minutes (NCF in seconds)",
        headers,
    );
    for row in &f.rows {
        let mut cells = vec![row.id.abbreviation().to_string()];
        for system_id in SystemId::FOUR_GPU_PLATFORMS {
            let m = row.on(system_id);
            if row.id == BenchmarkId::MlpfNcfPy {
                cells.push(format!("{:.1} s", m * 60.0));
            } else {
                cells.push(format!("{m:.1}"));
            }
        }
        cells.push(format!("{:.0}%", row.nvlink_improvement() * 100.0));
        t.add_row(cells);
    }
    t.to_string()
}

/// Figure 5 as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "figure5"
    }

    fn title(&self) -> &'static str {
        "Figure 5: training time across interconnect topologies"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Figure5).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Figure5(f) => render(f),
            other => unreachable!("figure5 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id(f: &Figure5, id: BenchmarkId) -> &TopologyRow {
        f.rows.iter().find(|r| r.id == id).expect("row present")
    }

    #[test]
    fn nvlink_systems_are_fastest_for_every_benchmark() {
        let f = run().unwrap();
        for row in &f.rows {
            let nvlink_best = row.on(SystemId::C4140M).min(row.on(SystemId::C4140K));
            for slower in [SystemId::T640, SystemId::R940Xa] {
                assert!(
                    nvlink_best <= row.on(slower) * 1.001,
                    "{}: NVLink {} vs {} {}",
                    row.id,
                    nvlink_best,
                    slower,
                    row.on(slower)
                );
            }
        }
    }

    #[test]
    fn switch_platform_beats_cpu_attached_platforms() {
        let f = run().unwrap();
        for row in &f.rows {
            let b = row.on(SystemId::C4140B);
            let worst_cpu = row.on(SystemId::T640).max(row.on(SystemId::R940Xa));
            assert!(
                b <= worst_cpu * 1.001,
                "{}: B {} vs worst {}",
                row.id,
                b,
                worst_cpu
            );
        }
    }

    #[test]
    fn image_classification_shows_platform_parity() {
        // §V-E: C4140 (B) shows "performance parity to the NVLink platform
        // for the Image Classification benchmarks". The residual K-vs-B
        // gap is the SXM2-vs-PCIe clock difference, not topology, so we
        // compare B against the *PCIe-GPU* platforms: for image
        // classification B ties T640 (within 1%) while for translation it
        // beats it clearly.
        let f = run().unwrap();
        for id in [BenchmarkId::MlpfRes50Tf, BenchmarkId::MlpfRes50Mx] {
            let row = by_id(&f, id);
            let switch = row.on(SystemId::C4140B);
            let t640 = row.on(SystemId::T640);
            let nvlink = row.on(SystemId::C4140K);
            assert!(
                switch < t640,
                "{id}: switch should beat the CPU-attached T640"
            );
            // B sits within ~12% of the SXM2 NVLink machine — the residual
            // is clocks, i.e. topology parity.
            assert!(
                switch / nvlink < 1.12,
                "{id}: switch {switch:.0} vs NVLink {nvlink:.0}"
            );
        }
        let xfmr = by_id(&f, BenchmarkId::MlpfXfmrPy);
        assert!(
            xfmr.on(SystemId::T640) > 1.2 * xfmr.on(SystemId::C4140B),
            "XFMR should pay heavily for the non-P2P topology"
        );
    }

    #[test]
    fn translation_benefits_most_from_nvlink() {
        // Paper: 42% (XFMR) and 30% (MRCNN) vs 11% (image classification).
        let f = run().unwrap();
        let xfmr = by_id(&f, BenchmarkId::MlpfXfmrPy).nvlink_improvement();
        let res50 = by_id(&f, BenchmarkId::MlpfRes50Tf).nvlink_improvement();
        assert!(xfmr > 0.20, "XFMR improvement {xfmr}");
        assert!(res50 < 0.20, "Res50 improvement {res50}");
        assert!(xfmr > 2.0 * res50, "XFMR {xfmr} vs Res50 {res50}");
    }

    #[test]
    fn render_mentions_all_platforms() {
        let f = run().unwrap();
        let s = render(&f);
        for id in SystemId::FOUR_GPU_PLATFORMS {
            assert!(s.contains(id.name()), "{id}");
        }
    }
}
