//! Extension: batch-size sensitivity sweep.
//!
//! §IV-D attributes NCF's scaling ceiling to "the small dataset \[that\]
//! limits the maximum batch size which as a result restricts the
//! scalability". This ablation makes the batch-size axis explicit: sweep a
//! benchmark's per-GPU batch over powers of two and report step time,
//! throughput, device-memory footprint, and the epochs the convergence
//! model charges — up to the OOM wall.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::sweep;
use mlperf_sim::SimError;

/// One batch point of the sweep.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Per-GPU batch size.
    pub batch: u64,
    /// Steady-state step milliseconds.
    pub step_ms: f64,
    /// Samples per second.
    pub throughput: f64,
    /// Device memory per GPU, GiB.
    pub hbm_gib: f64,
    /// Epochs-to-target at this global batch.
    pub epochs: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct BatchSweep {
    /// Benchmark swept.
    pub id: BenchmarkId,
    /// Feasible points, ascending batch.
    pub points: Vec<BatchPoint>,
    /// The first power-of-two batch that no longer fits, if reached.
    pub oom_at: Option<u64>,
}

/// Sweep `id` on a single GPU of the C4140 (K) from batch 16 upward.
///
/// # Errors
///
/// Propagates non-OOM [`SimError`]s from the engine.
pub fn run(id: BenchmarkId) -> Result<BatchSweep, SimError> {
    run_ctx(&Ctx::new(), id)
}

/// Sweep `id` through a shared executor context. The grid is the
/// declarative [`sweep::batch_wall`] sweep; the rendered table still
/// stops at the first OOM batch, exactly as the hand-rolled loop did.
///
/// # Errors
///
/// Propagates non-OOM [`SimError`]s from the engine.
pub fn run_ctx(ctx: &Ctx, id: BenchmarkId) -> Result<BatchSweep, SimError> {
    use sweep::CellKind::Training;
    let spec = sweep::batch_wall(id);
    let swept = sweep::run_serial(ctx, &spec, None);
    let mut points = Vec::new();
    let mut oom_at = None;
    for cell in &swept.cells {
        let batch = cell.spec.batch.expect("batch axis set on every cell");
        match &cell.outcome {
            Ok(v) => points.push(BatchPoint {
                batch,
                step_ms: v.get(Training, "step_ms"),
                throughput: v.get(Training, "throughput_sps"),
                hbm_gib: v.get(Training, "hbm_gib"),
                epochs: v.get(Training, "epochs"),
            }),
            Err(e) if e.is_oom() => {
                oom_at = Some(batch);
                break;
            }
            Err(e) => return Err(e.to_sim()),
        }
    }
    Ok(BatchSweep { id, points, oom_at })
}

/// Render the sweep as a table.
pub fn render(s: &BatchSweep) -> String {
    let mut t = Table::new(
        format!("Batch-size sweep: {} on one V100-SXM2 (C4140 K)", s.id),
        ["Batch", "Step (ms)", "Samples/s", "HBM (GiB)", "Epochs"],
    );
    for p in &s.points {
        t.add_row([
            p.batch.to_string(),
            format!("{:.1}", p.step_ms),
            format!("{:.0}", p.throughput),
            format!("{:.2}", p.hbm_gib),
            format!("{:.1}", p.epochs),
        ]);
    }
    let tail = match s.oom_at {
        Some(b) => format!("batch {b} exceeds the 16 GB HBM2 (OOM)\n"),
        None => "sweep ended within memory\n".to_string(),
    };
    format!("{t}{tail}")
}

/// The batch sweep as the executor schedules it (the report sweeps
/// ResNet-50/MXNet, the benchmark §IV-D's batch-size argument centres on).
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "batch_sweep"
    }

    fn title(&self) -> &'static str {
        "Extension: batch-size sweep (ResNet-50/MXNet)"
    }

    fn spec_bytes(&self) -> Vec<u8> {
        let mut s = format!("exp:{};", self.id()).into_bytes();
        s.extend_from_slice(&sweep::batch_wall(BenchmarkId::MlpfRes50Mx).canonical_bytes());
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx, BenchmarkId::MlpfRes50Mx).map(Artifact::BatchSweep).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::BatchSweep(s) => render(s),
            other => unreachable!("batch_sweep asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_sweep_hits_the_memory_wall() {
        let s = run(BenchmarkId::MlpfRes50Mx).unwrap();
        assert!(s.points.len() >= 3);
        assert!(s.oom_at.is_some(), "ResNet-50 must eventually OOM on 16 GB");
        // Footprint grows monotonically with batch.
        assert!(s.points.windows(2).all(|w| w[1].hbm_gib > w[0].hbm_gib));
        // Throughput improves (weakly) with batch: fixed overhead amortizes.
        assert!(s
            .points
            .windows(2)
            .all(|w| w[1].throughput >= w[0].throughput * 0.98));
    }

    #[test]
    fn epochs_charge_grows_past_reference_batch() {
        let s = run(BenchmarkId::MlpfRes50Mx).unwrap();
        let last = s.points.last().expect("non-empty");
        let first = s.points.first().expect("non-empty");
        assert!(last.epochs >= first.epochs);
    }

    #[test]
    fn render_reports_the_wall() {
        let s = run(BenchmarkId::MlpfRes50Mx).unwrap();
        assert!(render(&s).contains("OOM"));
    }
}
