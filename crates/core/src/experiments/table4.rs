//! Table IV: training time and scaling efficiency.
//!
//! For the six Table IV benchmarks, measure training time on the single-P100
//! reference machine and on 1/2/4/8 V100s of the DSS 8440, then derive the
//! P-to-V and 1-to-N speedups. Paper values are embedded for the
//! side-by-side comparison EXPERIMENTS.md records.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_analysis::scaling::{amdahl_serial_fraction, ScalingRow};
use mlperf_hw::systems::SystemId;
use mlperf_sim::SimError;

/// The paper's published Table IV numbers for comparison:
/// (benchmark, P100 min, 1xV100 min, 1→2, 1→4, 1→8 speedups).
pub const PAPER_TABLE_IV: [(BenchmarkId, f64, f64, f64, f64, f64); 6] = [
    (BenchmarkId::MlpfRes50Tf, 8831.3, 1016.9, 1.92, 3.84, 7.04),
    (BenchmarkId::MlpfRes50Mx, 8831.1, 957.0, 1.92, 3.76, 5.92),
    (BenchmarkId::MlpfSsdPy, 827.7, 206.1, 1.94, 3.72, 7.28),
    (BenchmarkId::MlpfMrcnnPy, 4999.5, 1840.4, 1.76, 2.64, 5.60),
    (BenchmarkId::MlpfXfmrPy, 1869.8, 636.0, 1.42, 2.92, 5.60),
    (BenchmarkId::MlpfNcfPy, 46.7, 2.2, 1.88, 2.16, 2.32),
];

/// The simulated Table IV: one [`ScalingRow`] per benchmark, plus the
/// GNMT prediction the paper omitted.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Measured rows, in Table IV order.
    pub rows: Vec<ScalingRow>,
    /// Extension: the GNMT row Table IV omits, predicted by the simulator.
    pub gnmt: ScalingRow,
}

/// Run the Table IV experiment standalone.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Table4, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Table IV experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Table4, SimError> {
    let mut rows = Vec::new();
    for id in BenchmarkId::TABLE_IV {
        rows.push(scaling_row(ctx, id)?);
    }
    // The paper measured GNMT elsewhere (Table V, Fig. 5) but published no
    // scaling row for it; fill the gap with the calibrated model.
    let gnmt = scaling_row(ctx, BenchmarkId::MlpfGnmtPy)?;
    Ok(Table4 { rows, gnmt })
}

fn scaling_row(ctx: &Ctx, id: BenchmarkId) -> Result<ScalingRow, SimError> {
    // The P100 anchor is the FP32 reference implementation (§III-B:
    // "MLPerf's reference machine which has an NVIDIA Tesla P100").
    let p100_min = ctx
        .outcome(&TrainPoint::reference(id, SystemId::ReferenceP100, 1))?
        .total_time
        .as_minutes();
    let mut v100 = Vec::new();
    for n in [1u32, 2, 4, 8] {
        let t = ctx
            .outcome(&TrainPoint::new(id, SystemId::Dss8440, n))?
            .total_time
            .as_minutes();
        v100.push((n as u64, t));
    }
    Ok(ScalingRow::new(id.abbreviation(), p100_min, v100))
}

/// Extension: the GNMT row Table IV omits, predicted by the simulator.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn gnmt_prediction() -> Result<ScalingRow, SimError> {
    scaling_row(&Ctx::new(), BenchmarkId::MlpfGnmtPy)
}

/// Render the simulated table with the paper's numbers interleaved.
pub fn render(t: &Table4) -> String {
    let mut table = Table::new(
        "Table IV: Scaling efficiency (simulated vs paper; Amdahl column is an extension)",
        [
            "Benchmark",
            "source",
            "1xP100 (min)",
            "1xV100 (min)",
            "P-to-V",
            "1-to-2",
            "1-to-4",
            "1-to-8",
            "Amdahl s",
        ],
    );
    for (row, paper) in t.rows.iter().zip(PAPER_TABLE_IV) {
        table.add_row([
            row.name().to_string(),
            "sim".into(),
            format!("{:.1}", row.p100_minutes()),
            format!("{:.1}", row.v100_minutes(1).expect("anchor present")),
            format!("{:.2}x", row.p_to_v_speedup()),
            format!("{:.2}x", row.speedup(2).expect("2-GPU run present")),
            format!("{:.2}x", row.speedup(4).expect("4-GPU run present")),
            format!("{:.2}x", row.speedup(8).expect("8-GPU run present")),
            format!("{:.3}", amdahl_serial_fraction(row)),
        ]);
        let (_, p100, v100, s2, s4, s8) = paper;
        table.add_row([
            String::new(),
            "paper".into(),
            format!("{p100:.1}"),
            format!("{v100:.1}"),
            format!("{:.2}x", p100 / v100),
            format!("{s2:.2}x"),
            format!("{s4:.2}x"),
            format!("{s8:.2}x"),
            String::new(),
        ]);
    }
    let gnmt = &t.gnmt;
    table.add_row([
        gnmt.name().to_string(),
        "sim (prediction; row absent from the paper)".into(),
        format!("{:.1}", gnmt.p100_minutes()),
        format!("{:.1}", gnmt.v100_minutes(1).expect("anchor measured")),
        format!("{:.2}x", gnmt.p_to_v_speedup()),
        format!("{:.2}x", gnmt.speedup(2).expect("measured")),
        format!("{:.2}x", gnmt.speedup(4).expect("measured")),
        format!("{:.2}x", gnmt.speedup(8).expect("measured")),
        format!("{:.3}", amdahl_serial_fraction(gnmt)),
    ]);
    table.to_string()
}

/// Table IV as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table IV: training time and scaling efficiency"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Table4).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table4(t) => render(t),
            other => unreachable!("table4 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_analysis::scaling::{classify, ScalingClass};

    #[test]
    fn table_runs_for_all_six_benchmarks() {
        let t = run().unwrap();
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            assert!(row.p100_minutes() > 0.0);
            assert!(
                row.p_to_v_speedup() > 1.0,
                "{}: V100 must beat P100",
                row.name()
            );
        }
    }

    #[test]
    fn scaling_shape_matches_paper() {
        let t = run().unwrap();
        let by_name = |n: &str| {
            t.rows
                .iter()
                .find(|r| r.name() == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        // Image classification and SSD scale well; NCF saturates (§IV-D).
        assert_eq!(classify(by_name("MLPf_Res50_TF")), ScalingClass::Good);
        assert_eq!(classify(by_name("MLPf_SSD_Py")), ScalingClass::Good);
        assert_eq!(classify(by_name("MLPf_NCF_Py")), ScalingClass::Poor);
        // NCF's 8-GPU speedup stays below 3x.
        assert!(by_name("MLPf_NCF_Py").speedup(8).unwrap() < 3.0);
    }

    #[test]
    fn render_interleaves_paper_rows() {
        let t = run().unwrap();
        let s = render(&t);
        assert!(s.contains("sim"));
        assert!(s.contains("paper"));
        assert!(s.contains("MLPf_NCF_Py"));
    }
}
