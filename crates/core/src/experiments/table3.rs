//! Table III: hardware specifications of the experimental platforms.

use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use mlperf_hw::systems::SystemId;
use mlperf_hw::topology::P2pClass;

/// Render the platform-specification table, including the derived
/// GPU-to-GPU path classification that drives §V-E.
pub fn render() -> String {
    let mut t = Table::new(
        "Table III: Hardware specifications of systems for experimentation",
        [
            "System",
            "CPUs",
            "DIMMs",
            "GPUs",
            "GPU model",
            "Interconnect",
            "Worst GPU-GPU path",
        ],
    );
    for id in SystemId::ALL {
        let spec = id.spec();
        let worst = if spec.gpu_count() >= 2 {
            let gpus: Vec<u32> = (0..spec.gpu_count() as u32).collect();
            spec.topology()
                .worst_peer_path(&gpus)
                .map(|p| p.class.to_string())
                .unwrap_or_else(|e| format!("error: {e}"))
        } else {
            "n/a (single GPU)".to_string()
        };
        t.add_row([
            id.name().to_string(),
            format!("{}x {}", spec.cpu_count(), spec.cpu_model().spec().name()),
            spec.dimms().to_string(),
            spec.gpu_count().to_string(),
            spec.gpu_model().spec().name().to_string(),
            spec.interconnect_label().to_string(),
            worst,
        ]);
    }
    t.to_string()
}

/// The derived worst-path class per 4-GPU platform (used by Table I's
/// insight checks).
pub fn worst_path_classes() -> Vec<(SystemId, P2pClass)> {
    SystemId::FOUR_GPU_PLATFORMS
        .iter()
        .map(|&id| {
            let spec = id.spec();
            let class = spec
                .topology()
                .worst_peer_path(&[0, 1, 2, 3])
                .expect("4-GPU platforms are connected")
                .class;
            (id, class)
        })
        .collect()
}

/// Table III as the executor schedules it. The table derives from static
/// platform specs — `run` prices nothing and the artifact carries no
/// payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table III: platform hardware specifications"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        Ok(Artifact::Table3)
    }

    fn render(&self, _artifact: &Artifact) -> String {
        render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_rendered() {
        let s = render();
        for id in SystemId::ALL {
            assert!(s.contains(id.name()), "{id}");
        }
        assert!(s.contains("NVLink P2P"));
        assert!(s.contains("PCIe-switch P2P"));
    }

    #[test]
    fn class_hierarchy_matches_section_v_e() {
        let classes: std::collections::HashMap<_, _> = worst_path_classes().into_iter().collect();
        assert_eq!(classes[&SystemId::C4140M], P2pClass::NvLinkDirect);
        assert_eq!(classes[&SystemId::C4140K], P2pClass::NvLinkDirect);
        assert_eq!(classes[&SystemId::C4140B], P2pClass::PcieSwitchP2p);
        assert_eq!(classes[&SystemId::T640], P2pClass::ThroughUpi);
        assert_eq!(classes[&SystemId::R940Xa], P2pClass::ThroughUpi);
    }
}
