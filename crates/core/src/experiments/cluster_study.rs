//! Extension: online cluster scheduling of the MLPerf mix.
//!
//! §IV-D's closing suggestion — "an effective algorithm to schedule various
//! machine learning training jobs submitted from researchers" — made
//! concrete: the seven MLPerf jobs (with their simulated per-width times)
//! run through the event-driven cluster of [`mlperf_sim::cluster`] under
//! several policies, both as an offline batch and as a staggered online
//! arrival stream.

use crate::experiments::figure4;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use mlperf_sim::cluster::{
    AreaEfficient, Cluster, ClusterJobSpec, ClusterTrace, FcfsWidestFit, GreedyBestFinish,
    NaiveWidest, SchedulingPolicy, Submission,
};
use mlperf_sim::SimError;

/// One policy's results on one scenario.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// Policy display name.
    pub policy: &'static str,
    /// The execution trace.
    pub trace: ClusterTrace,
}

/// The study: each policy on the offline batch and the online stream.
#[derive(Debug, Clone)]
pub struct ClusterStudy {
    /// All jobs present at t = 0.
    pub offline: Vec<PolicyResult>,
    /// Jobs arriving every 30 simulated minutes.
    pub online: Vec<PolicyResult>,
}

/// GPUs in the study cluster.
const GPUS: u64 = 4;
/// Minutes between online arrivals.
const ARRIVAL_GAP_MIN: f64 = 30.0;

fn job_specs(ctx: &Ctx) -> Result<Vec<ClusterJobSpec>, SimError> {
    Ok(figure4::measure_job_times_ctx(ctx)?
        .into_iter()
        .map(|j| {
            let times: Vec<(u64, f64)> = j
                .widths()
                .filter(|&w| w <= GPUS)
                .map(|w| (w, j.time_at(w).expect("measured")))
                .collect();
            ClusterJobSpec::new(j.name(), times)
        })
        .collect())
}

fn run_policies(make_subs: impl Fn() -> Vec<Submission>) -> Vec<PolicyResult> {
    let mut naive = NaiveWidest;
    let mut greedy = GreedyBestFinish;
    let mut area = AreaEfficient;
    let mut fcfs = FcfsWidestFit;
    let policies: Vec<&mut dyn SchedulingPolicy> =
        vec![&mut naive, &mut greedy, &mut area, &mut fcfs];
    policies
        .into_iter()
        .map(|p| {
            let name = p.name();
            let trace = Cluster::new(GPUS).run(make_subs(), p);
            PolicyResult {
                policy: name,
                trace,
            }
        })
        .collect()
}

/// Run the cluster-scheduling study.
///
/// # Errors
///
/// Propagates [`SimError`] from the job-time measurement.
pub fn run() -> Result<ClusterStudy, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the cluster-scheduling study through a shared executor context
/// (the job-time inputs are Figure 4's, so they memoize across the two).
///
/// # Errors
///
/// Propagates [`SimError`] from the job-time measurement.
pub fn run_ctx(ctx: &Ctx) -> Result<ClusterStudy, SimError> {
    let specs = job_specs(ctx)?;
    let offline = run_policies(|| specs.iter().cloned().map(Submission::at_start).collect());
    let online = run_policies(|| {
        specs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, j)| Submission::after_minutes(j, i as f64 * ARRIVAL_GAP_MIN))
            .collect()
    });
    Ok(ClusterStudy { offline, online })
}

/// Render both scenarios.
pub fn render(s: &ClusterStudy) -> String {
    let mut out = String::new();
    for (label, results) in [
        ("offline batch", &s.offline),
        ("online (30-min arrivals)", &s.online),
    ] {
        let mut t = Table::new(
            format!("Cluster study, {label}: 7 MLPerf jobs on {GPUS} GPUs"),
            [
                "Policy",
                "Makespan (min)",
                "Mean wait (min)",
                "GPU utilization",
            ],
        );
        for r in results {
            t.add_row([
                r.policy.to_string(),
                format!("{:.0}", r.trace.makespan.as_minutes()),
                format!("{:.0}", r.trace.mean_wait().as_minutes()),
                format!("{:.0}%", r.trace.utilization() * 100.0),
            ]);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// The cluster study as the executor schedules it. Depends on Figure 4 so
/// the shared DSS-8440 job-time points are warm in the memo cache by the
/// time this experiment prices them.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "cluster_study"
    }

    fn title(&self) -> &'static str {
        "Extension: online cluster scheduling of the MLPerf mix"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["figure4"]
    }

    fn spec_bytes(&self) -> Vec<u8> {
        // Job times come from Figure 4's scaling grid; a grid edit must
        // invalidate this section's cache too.
        let mut s = format!("exp:{};", self.id()).into_bytes();
        s.extend_from_slice(&crate::sweep::figure4_scaling().canonical_bytes());
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Cluster).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Cluster(s) => render(s),
            other => unreachable!("cluster_study asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_policy<'a>(rs: &'a [PolicyResult], name: &str) -> &'a ClusterTrace {
        &rs.iter()
            .find(|r| r.policy == name)
            .expect("policy ran")
            .trace
    }

    #[test]
    fn all_policies_complete_all_jobs() {
        let s = run().unwrap();
        for r in s.offline.iter().chain(&s.online) {
            assert_eq!(r.trace.completions.len(), 7, "{}", r.policy);
            assert!(r.trace.utilization() > 0.0 && r.trace.utilization() <= 1.0);
        }
    }

    #[test]
    fn area_packing_trades_makespan_for_responsiveness() {
        // The study's finding on the real MLPerf mix: packing jobs at
        // their efficient widths slashes queueing delay (researchers get
        // results sooner) at a makespan cost — narrow placements leave
        // long single-GPU tails. Exact offline search (Figure 4) beats
        // every online policy on makespan.
        let s = run().unwrap();
        let naive = by_policy(&s.offline, "naive-widest");
        let area = by_policy(&s.offline, "area-efficient");
        assert!(
            area.mean_wait().as_secs() < 0.5 * naive.mean_wait().as_secs(),
            "area wait {} vs naive wait {}",
            area.mean_wait(),
            naive.mean_wait()
        );
        let jobs = figure4::measure_job_times().unwrap();
        let optimal = mlperf_analysis::scheduling::optimal_schedule(&jobs, GPUS);
        for r in &s.offline {
            assert!(
                r.trace.makespan.as_minutes() >= optimal.makespan - 1e-6,
                "{} beat the offline optimum",
                r.policy
            );
        }
    }

    #[test]
    fn online_waiting_is_worst_under_naive() {
        // Exclusive pool use makes later arrivals queue behind everything.
        let s = run().unwrap();
        let naive = by_policy(&s.online, "naive-widest").mean_wait();
        let fcfs = by_policy(&s.online, "fcfs-widest-fit").mean_wait();
        assert!(
            fcfs.as_secs() <= naive.as_secs() + 1e-9,
            "fcfs {fcfs} vs naive {naive}"
        );
    }

    #[test]
    fn des_naive_matches_analytic_naive() {
        // Cross-validation: the event-driven cluster under the naive
        // policy reproduces the analytic naive schedule's makespan.
        let jobs = figure4::measure_job_times().unwrap();
        let analytic = mlperf_analysis::scheduling::naive_schedule(&jobs, GPUS);
        let s = run().unwrap();
        let des = by_policy(&s.offline, "naive-widest").makespan.as_minutes();
        assert!(
            (des - analytic.makespan).abs() < 1e-6,
            "DES {des} vs analytic {}",
            analytic.makespan
        );
    }

    #[test]
    fn render_covers_both_scenarios() {
        let s = run().unwrap();
        let text = render(&s);
        assert!(text.contains("offline batch"));
        assert!(text.contains("online (30-min arrivals)"));
        assert!(text.contains("area-efficient"));
    }
}
