//! Table I: the paper's key insights, re-verified against the simulator.
//!
//! Each row of the published summary table is turned into a concrete check
//! over the reproduced experiments; `run()` evaluates all of them and
//! reports which hold in this reproduction.

use crate::experiments::{figure1, figure2, figure3, figure4, figure5, table4};
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use mlperf_analysis::roofline::Boundedness;
use mlperf_analysis::scaling::{classify, ScalingClass};
use mlperf_hw::gpu::Precision;
use mlperf_sim::SimError;

/// One verified insight.
#[derive(Debug, Clone)]
pub struct Insight {
    /// The paper's claim (condensed).
    pub claim: &'static str,
    /// Where the paper locates it.
    pub location: &'static str,
    /// Whether the reproduction confirms it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// The verified insight set.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All insights, in Table I order.
    pub insights: Vec<Insight>,
}

/// Run every underlying experiment and evaluate the Table I claims.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Table1, SimError> {
    run_ctx(&Ctx::new())
}

/// Evaluate the Table I claims over a shared executor context. Each
/// underlying artifact is taken from the context's store when the
/// executor already produced it, and recomputed (against the shared memo
/// cache, so cheaply) otherwise.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Table1, SimError> {
    let f1 = ctx.dep_or("figure1", Artifact::as_figure1, figure1::run_ctx)?;
    let f2 = ctx.dep_or("figure2", Artifact::as_figure2, figure2::run_ctx)?;
    let f3 = ctx.dep_or("figure3", Artifact::as_figure3, figure3::run_ctx)?;
    let f4 = ctx.dep_or("figure4", Artifact::as_figure4, figure4::run_ctx)?;
    let f5 = ctx.dep_or("figure5", Artifact::as_figure5, figure5::run_ctx)?;
    let t4 = ctx.dep_or("table4", Artifact::as_table4, table4::run_ctx)?;

    let mut insights = Vec::new();

    // 1. Disjoint envelope: MLPerf separates from DeepBench on PC1.
    let mlperf_pc1 = f1.suite_mean_pc1("MLPerf");
    let deep_pc1 = f1.suite_mean_pc1("DeepBench");
    insights.push(Insight {
        claim: "MLPerf has a disjoint envelope from DAWNBench and DeepBench",
        location: "Figure 1a",
        holds: (mlperf_pc1 - deep_pc1).abs() > 1.0,
        evidence: format!("PC1 means: MLPerf {mlperf_pc1:+.2}, DeepBench {deep_pc1:+.2}"),
    });

    // 2. Suites occupy different roofline regions.
    let ai_mlperf = f2.suite_median_intensity("MLPerf");
    let ai_deep = f2.suite_median_intensity("DeepBench");
    let tp_mlperf = f2.suite_median_throughput("MLPerf");
    let tp_deep = f2.suite_median_throughput("DeepBench");
    insights.push(Insight {
        claim: "Suites sit in different roofline regions (Deep lowest)",
        location: "Figure 2",
        holds: ai_mlperf > ai_deep && tp_mlperf > tp_deep,
        evidence: format!(
            "median AI MLPerf {ai_mlperf:.0} vs Deep {ai_deep:.0}; \
             median TFLOP/s {:.1} vs {:.1}",
            tp_mlperf / 1e3,
            tp_deep / 1e3,
        ),
    });

    // 3. ML workloads hug the slanted (memory) roof.
    let memory_bound = f2
        .points
        .iter()
        .filter(|p| f2.roofline.classify(p, Precision::TensorCore) == Boundedness::MemoryBound)
        .count();
    insights.push(Insight {
        claim: "ML workloads are memory-bound (near the slanted roof)",
        location: "Figure 2",
        holds: memory_bound + 1 >= f2.points.len(),
        evidence: format!(
            "{memory_bound} / {} points left of the FP16 ridge",
            f2.points.len()
        ),
    });

    // 4. Mixed precision earns significant speedups.
    let min_speedup = f3
        .speedups
        .iter()
        .map(|s| s.speedup())
        .fold(f64::INFINITY, f64::min);
    let max_speedup = f3
        .speedups
        .iter()
        .map(|s| s.speedup())
        .fold(0.0f64, f64::max);
    insights.push(Insight {
        claim: "Mixed precision with Tensor Cores earns 1.5x-3.3x speedups",
        location: "Figure 3",
        holds: min_speedup > 1.2 && max_speedup > 2.5,
        evidence: format!("speedups span {min_speedup:.2}x to {max_speedup:.2}x"),
    });

    // 5. Benchmarks scale differently; smart scheduling saves hours.
    let classes: Vec<ScalingClass> = t4.rows.iter().map(classify).collect();
    let diverse = classes.contains(&ScalingClass::Good) && classes.contains(&ScalingClass::Poor);
    let savings4 = f4
        .studies
        .iter()
        .find(|s| s.gpu_count == 4)
        .expect("4-GPU study present")
        .savings_hours();
    insights.push(Insight {
        claim: "Scaling diversity lets optimal scheduling save hours (4 GPUs)",
        location: "Table IV / Figure 4",
        holds: diverse && savings4 > 1.0,
        evidence: format!("scaling classes {classes:?}; 4-GPU saving {savings4:.1} h"),
    });

    // 6. Bus utilization grows super-linearly with GPU count (checked via
    //    the NVLink counters of Table V's Red_Cu rows in their own test;
    //    here: the NVLink systems win Figure 5 for every benchmark).
    let nvlink_wins = f5.rows.iter().all(|row| {
        let nv = row
            .on(mlperf_hw::SystemId::C4140K)
            .min(row.on(mlperf_hw::SystemId::C4140M));
        nv <= row.on(mlperf_hw::SystemId::T640) * 1.001
            && nv <= row.on(mlperf_hw::SystemId::R940Xa) * 1.001
    });
    insights.push(Insight {
        claim: "NVLink < PCIe switch < CPU-attached PCIe in training time",
        location: "Figure 5 / Table III",
        holds: nvlink_wins,
        evidence: format!(
            "NVLink best on {} / {} benchmarks",
            f5.rows
                .iter()
                .filter(|row| {
                    let nv = row
                        .on(mlperf_hw::SystemId::C4140K)
                        .min(row.on(mlperf_hw::SystemId::C4140M));
                    nv <= row.on(mlperf_hw::SystemId::T640) * 1.001
                })
                .count(),
            f5.rows.len()
        ),
    });

    Ok(Table1 { insights })
}

/// Render the verified-insight table.
pub fn render(t: &Table1) -> String {
    let mut table = Table::new(
        "Table I: Key insights, re-verified on the simulator",
        ["Insight", "Location", "Holds", "Evidence"],
    );
    for i in &t.insights {
        table.add_row([
            i.claim.to_string(),
            i.location.to_string(),
            if i.holds {
                "yes".into()
            } else {
                "NO".to_string()
            },
            i.evidence.clone(),
        ]);
    }
    table.to_string()
}

/// Table I as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I: key insights, re-verified"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[
            "figure1", "figure2", "figure3", "figure4", "figure5", "table4",
        ]
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Table1).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table1(t) => render(t),
            other => unreachable!("table1 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_insights_hold() {
        let t = run().unwrap();
        assert_eq!(t.insights.len(), 6);
        for i in &t.insights {
            assert!(i.holds, "insight failed: {} ({})", i.claim, i.evidence);
        }
    }

    #[test]
    fn render_marks_confirmations() {
        let t = run().unwrap();
        let s = render(&t);
        assert!(s.contains("yes"));
        assert!(s.contains("Figure 5"));
    }
}
