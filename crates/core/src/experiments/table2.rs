//! Table II: the composition of the three suites under study.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::workloads::DeepBenchId;
use mlperf_models::zoo::deepbench;

/// Render the benchmark-composition table (MLPerf + DAWNBench top, the
/// DeepBench kernel workloads below).
pub fn render() -> String {
    let mut top = Table::new(
        "Table II (top/middle): MLPerf and DAWNBench benchmarks",
        [
            "Abbreviation",
            "Domain",
            "Model",
            "Framework",
            "Submitter",
            "Dataset",
            "Quality Target",
        ],
    );
    for id in BenchmarkId::ALL {
        top.add_row([
            id.abbreviation(),
            id.domain(),
            id.model_name(),
            id.framework(),
            id.submitter(),
            id.dataset().spec().name(),
            id.quality_target(),
        ]);
    }

    let mut bottom = Table::new(
        "Table II (bottom): DeepBench kernel workloads",
        ["Abbreviation", "Operation", "Kernels"],
    );
    for id in DeepBenchId::ALL {
        let (operation, count) = match id {
            DeepBenchId::GemmCu => ("Dense Matrix Multiply", deepbench::gemm_kernels().len()),
            DeepBenchId::ConvCu => ("Convolution", deepbench::conv_kernels().len()),
            DeepBenchId::RnnCu => (
                "Recurrent (vanilla/GRU/LSTM)",
                deepbench::rnn_kernels().len(),
            ),
            DeepBenchId::RedCu => (
                "Communication (AllReduce)",
                deepbench::allreduce_sizes().len(),
            ),
        };
        bottom.add_row([
            id.abbreviation().to_string(),
            operation.to_string(),
            count.to_string(),
        ]);
    }
    format!("{top}\n{bottom}")
}

/// Table II as the executor schedules it. The table is a static registry
/// listing — `run` prices nothing and the artifact carries no payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table II: suite composition"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        Ok(Artifact::Table2)
    }

    fn render(&self, _artifact: &Artifact) -> String {
        render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_workloads_listed() {
        let s = render();
        for id in BenchmarkId::ALL {
            assert!(s.contains(id.abbreviation()), "{id}");
        }
        for id in DeepBenchId::ALL {
            assert!(s.contains(id.abbreviation()), "{id:?}");
        }
    }

    #[test]
    fn quality_targets_present() {
        let s = render();
        assert!(s.contains("Accuracy: 0.749"));
        assert!(s.contains("Hit rate @ 10: 0.635"));
        assert!(s.contains("F1 score: 0.75"));
    }

    #[test]
    fn rnn_bench_lists_six_configs() {
        assert!(render().contains("Recurrent (vanilla/GRU/LSTM)"));
        assert_eq!(mlperf_models::zoo::deepbench::rnn_kernels().len(), 6);
    }
}
