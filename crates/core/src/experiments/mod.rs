//! Experiment runners: one module per table and figure of the paper.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — key insights, re-verified |
//! | [`table2`] | Table II — suite composition |
//! | [`table3`] | Table III — platform specifications |
//! | [`table4`] | Table IV — training time and scaling efficiency |
//! | [`table5`] | Table V — resource usage on the C4140 (K) |
//! | [`figure1`] | Fig. 1 — PCA of the workload space |
//! | [`figure2`] | Fig. 2 — V100 roofline placement |
//! | [`figure3`] | Fig. 3 — mixed-precision speedups |
//! | [`figure4`] | Fig. 4 — naive vs optimal scheduling |
//! | [`figure5`] | Fig. 5 — interconnect-topology impact |
//! | [`cluster_study`] | extension: online cluster scheduling (§IV-D's call) |
//! | [`batch_sweep`] | extension: batch-size sensitivity to the OOM wall |
//! | [`energy_cost`] | extension: kWh + USD to train (DAWNBench's 2nd metric) |
//! | [`storage_study`] | extension: disk-staging feasibility (§V-C's tier) |
//! | [`fault_study`] | extension: faults, checkpoint/restart, expected TTT |
//! | [`variance_decomposition`] | extension: run-to-run variance shares (seed/batch/precision) |
//! | [`partition_study`] | extension: suite throughput under k-way device partitioning |
//! | [`colocation_study`] | extension: training + inference co-location on slices |

pub mod batch_sweep;
pub mod cluster_study;
pub mod colocation_study;
pub mod energy_cost;
pub mod fault_study;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod partition_study;
pub mod storage_study;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod variance_decomposition;
