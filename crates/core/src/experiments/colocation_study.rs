//! Extension: training + inference co-location on partitioned devices.
//!
//! Two questions, one device model. First, *interference*: a training
//! tenant and a latency-sensitive inference proxy (batch-1 forward/
//! backward step, the engine's smallest schedulable unit) each hold a
//! quarter slice of a C4140 (K) V100 while the number of busy co-tenants
//! grows from 1 to 4 — the per-step latency of both degrades along the
//! interference model's memory-bandwidth and L2 contention curve.
//! Second, *placement*: the seven MLPerf jobs, priced at their packed
//! half-slice rates, run through the event-driven cluster on a
//! 2-GPU × 2-slice partition layout together with a stream of short
//! inference bursts, under all five scheduling policies — widths count
//! *slots* (slices), so the policies place fractional devices without
//! any new machinery.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::sweep::{self, partition_scaling, CellKind, CellSpec};
use mlperf_hw::{PartitionProfile, PartitionSpec};
use mlperf_sim::cluster::{
    AreaEfficient, Cluster, ClusterJobSpec, ClusterTrace, FcfsWidestFit, GreedyBestFinish,
    NaiveWidest, PartitionLayout, SchedulingPolicy, ShortestJobFirst, Submission,
};

/// Training tenant's benchmark (the suite's canonical vision workload).
const TRAIN_WORKLOAD: BenchmarkId = BenchmarkId::MlpfRes50Mx;
/// Training tenant's per-GPU batch (small enough to fit a quarter slice).
const TRAIN_BATCH: u64 = 16;
/// The inference proxy's batch (single-sample step latency).
const INFER_BATCH: u64 = 1;
/// Cluster layout of the placement scenario: 2 GPUs × 2 half slices.
const LAYOUT_GPUS: u64 = 2;
const LAYOUT_SLICES: u64 = 2;
/// The inference-burst stream: short width-1 jobs arriving periodically.
const INFER_BURSTS: u64 = 6;
const INFER_BURST_MIN: f64 = 5.0;
const INFER_GAP_MIN: f64 = 15.0;

/// Step latency of the training and inference tenants at one co-tenant
/// count on the quarter-slice layout.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Busy tenants sharing the device (1 = solo).
    pub tenants: u32,
    /// Training tenant's step time, ms (or the cell's error token).
    pub train_step_ms: Result<f64, String>,
    /// Inference proxy's step time, ms (or the cell's error token).
    pub infer_step_ms: Result<f64, String>,
}

/// One policy's trace on the partitioned cluster scenario.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy display name.
    pub policy: &'static str,
    /// The execution trace.
    pub trace: ClusterTrace,
}

/// The study result.
#[derive(Debug, Clone)]
pub struct ColocationStudy {
    /// Interference rows at 1..=4 busy tenants.
    pub interference: Vec<TenantRow>,
    /// Five policies on the partitioned training + inference mix.
    pub policies: Vec<PolicyRow>,
    /// Workloads whose half-slice cell could not price (excluded from
    /// the placement mix), by abbreviation.
    pub skipped: Vec<&'static str>,
}

/// The quarter-slice cell of one tenant at one co-tenant count.
fn tenant_cell(batch: u64, tenants: u32) -> CellSpec {
    let mut cell = CellSpec {
        batch: Some(batch),
        ..partition_scaling().cell_at(0)
    };
    cell.workload = Some(TRAIN_WORKLOAD);
    cell.partition = Some(
        PartitionSpec::new(PartitionProfile::Quarter, tenants).expect("valid quarter layout"),
    );
    cell
}

fn step_ms(ctx: &Ctx, cell: &CellSpec) -> Result<f64, String> {
    sweep::price_cell(ctx, cell)
        .map(|v| v.get(CellKind::Training, "step_ms"))
        .map_err(|e| e.kind)
}

/// The placement mix: every MLPerf job at its packed half-slice rate
/// (widths are *slots*; multi-slot times scale linearly — the contention
/// cost is already priced into the per-slice rate), or its abbreviation
/// in the skip list when the half slice cannot hold it.
fn job_specs(ctx: &Ctx) -> (Vec<ClusterJobSpec>, Vec<&'static str>) {
    let grid = partition_scaling();
    let layouts = super::partition_study::LAYOUTS.len();
    let mut specs = Vec::new();
    let mut skipped = Vec::new();
    for (w, &workload) in BenchmarkId::MLPERF.iter().enumerate() {
        // Index 1 of each workload's block is the packed half slice.
        let cell = grid.cell_at(w * layouts + 1);
        debug_assert_eq!(cell.partition.map(|p| p.to_string()).as_deref(), Some("1of2x2"));
        match sweep::price_cell(ctx, &cell) {
            Ok(v) => {
                let m1 = v.get(CellKind::Training, "total_minutes");
                let widths: Vec<(u64, f64)> =
                    [1u64, 2, 4].iter().map(|&s| (s, m1 / s as f64)).collect();
                specs.push(ClusterJobSpec::new(workload.abbreviation(), widths));
            }
            Err(_) => skipped.push(workload.abbreviation()),
        }
    }
    (specs, skipped)
}

fn submissions(specs: &[ClusterJobSpec]) -> Vec<Submission> {
    let mut subs: Vec<Submission> = specs.iter().cloned().map(Submission::at_start).collect();
    for i in 0..INFER_BURSTS {
        let job = ClusterJobSpec::new(
            format!("infer-burst-{i}"),
            [(1u64, INFER_BURST_MIN)],
        );
        subs.push(Submission::after_minutes(job, i as f64 * INFER_GAP_MIN));
    }
    subs
}

/// Run the co-location study through a shared executor context.
///
/// # Errors
///
/// Never fails as a whole: unpriceable cells degrade to their error
/// token (interference rows) or the skip list (placement mix).
pub fn run_ctx(ctx: &Ctx) -> Result<ColocationStudy, ExperimentError> {
    let interference = (1..=4u32)
        .map(|t| TenantRow {
            tenants: t,
            train_step_ms: step_ms(ctx, &tenant_cell(TRAIN_BATCH, t)),
            infer_step_ms: step_ms(ctx, &tenant_cell(INFER_BATCH, t)),
        })
        .collect();
    let (specs, skipped) = job_specs(ctx);
    let layout = PartitionLayout::new(LAYOUT_GPUS, LAYOUT_SLICES);
    let mut naive = NaiveWidest;
    let mut greedy = GreedyBestFinish;
    let mut area = AreaEfficient;
    let mut sjf = ShortestJobFirst;
    let mut fcfs = FcfsWidestFit;
    let policies: Vec<&mut dyn SchedulingPolicy> =
        vec![&mut naive, &mut greedy, &mut area, &mut sjf, &mut fcfs];
    let policies = policies
        .into_iter()
        .map(|p| {
            let name = p.name();
            let trace = Cluster::partitioned(layout).run(submissions(&specs), p);
            PolicyRow {
                policy: name,
                trace,
            }
        })
        .collect();
    Ok(ColocationStudy {
        interference,
        policies,
        skipped,
    })
}

fn ms_cell(v: &Result<f64, String>) -> String {
    match v {
        Ok(ms) => format!("{ms:.2}"),
        Err(kind) => kind.clone(),
    }
}

/// Render both tables.
pub fn render(s: &ColocationStudy) -> String {
    let mut t = Table::new(
        "Co-location interference: quarter slices of a C4140 (K) V100",
        [
            "Busy tenants",
            "Train step (ms, b=16)",
            "Infer step (ms, b=1)",
        ],
    );
    for row in &s.interference {
        t.add_row([
            row.tenants.to_string(),
            ms_cell(&row.train_step_ms),
            ms_cell(&row.infer_step_ms),
        ]);
    }
    let mut out = t.to_string();
    out.push('\n');
    let slots = PartitionLayout::new(LAYOUT_GPUS, LAYOUT_SLICES).slots();
    let mut p = Table::new(
        format!(
            "Co-location placement: training + {INFER_BURSTS} inference bursts on {LAYOUT_GPUS} GPUs x {LAYOUT_SLICES} slices ({slots} slots)"
        ),
        [
            "Policy",
            "Makespan (min)",
            "Mean wait (min)",
            "Slot utilization",
        ],
    );
    for r in &s.policies {
        p.add_row([
            r.policy.to_string(),
            format!("{:.0}", r.trace.makespan.as_minutes()),
            format!("{:.0}", r.trace.mean_wait().as_minutes()),
            format!("{:.0}%", r.trace.utilization() * 100.0),
        ]);
    }
    out.push_str(&p.to_string());
    if !s.skipped.is_empty() {
        out.push_str(&format!(
            "excluded (half slice cannot hold them): {}\n",
            s.skipped.join(", ")
        ));
    }
    out.push('\n');
    out
}

/// The co-location study as the executor schedules it. Depends on the
/// partition study so the shared half-slice points are warm in the memo
/// cache by the time this experiment prices them.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "colocation_study"
    }

    fn title(&self) -> &'static str {
        "Extension: training + inference co-location on partitioned devices"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["partition_study"]
    }

    fn spec_bytes(&self) -> Vec<u8> {
        // The placement mix prices the partition-scaling grid's half
        // slices and the interference table prices the tenant cells; both
        // identities must invalidate this section's cache.
        let mut s = format!("exp:{};", self.id()).into_bytes();
        s.extend_from_slice(&partition_scaling().canonical_bytes());
        for t in 1..=4u32 {
            s.push(b';');
            s.extend_from_slice(&tenant_cell(TRAIN_BATCH, t).canonical_bytes());
            s.push(b';');
            s.extend_from_slice(&tenant_cell(INFER_BATCH, t).canonical_bytes());
        }
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Colocation)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Colocation(s) => render(s),
            other => unreachable!("colocation_study asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_degrades_latency_monotonically() {
        let s = run_ctx(&Ctx::new()).unwrap();
        assert_eq!(s.interference.len(), 4);
        let steps: Vec<f64> = s
            .interference
            .iter()
            .map(|r| *r.train_step_ms.as_ref().expect("b=16 fits a quarter slice"))
            .collect();
        for w in steps.windows(2) {
            assert!(w[1] > w[0], "co-tenancy must slow the step: {steps:?}");
        }
        let infer: Vec<f64> = s
            .interference
            .iter()
            .map(|r| *r.infer_step_ms.as_ref().expect("b=1 fits a quarter slice"))
            .collect();
        for w in infer.windows(2) {
            assert!(w[1] > w[0], "co-tenancy must slow inference: {infer:?}");
        }
    }

    #[test]
    fn every_policy_schedules_the_whole_mix() {
        let s = run_ctx(&Ctx::new()).unwrap();
        assert_eq!(s.policies.len(), 5, "all five policies run");
        let expected = (BenchmarkId::MLPERF.len() - s.skipped.len()) + INFER_BURSTS as usize;
        for r in &s.policies {
            assert_eq!(
                r.trace.completions.len(),
                expected,
                "{} dropped jobs",
                r.policy
            );
            assert!(r.trace.utilization() > 0.0 && r.trace.utilization() <= 1.0);
        }
    }

    #[test]
    fn render_covers_both_tables() {
        let s = run_ctx(&Ctx::new()).unwrap();
        let text = render(&s);
        assert!(text.contains("Co-location interference"));
        assert!(text.contains("Co-location placement"));
        assert!(text.contains("shortest-job-first"));
    }
}
