//! Table V: system resource-usage statistics on the C4140 (K).
//!
//! The published table samples CPU/GPU utilization, DRAM/HBM footprints,
//! and PCIe/NVLink traffic for every workload at 1, 2, and 4 GPUs (where
//! the workload scales). Row labels per suite follow the reconstruction
//! documented in DESIGN.md: MLPerf rows are Res50_TF, Res50_MX, SSD, MRCNN,
//! XFMR, GNMT, NCF; DAWNBench rows are Res18 and DrQA (single-GPU);
//! DeepBench rows are GEMM, Conv, RNN (single-GPU) and Red (1/2/4).

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::workloads::{DeepBenchId, WorkloadRun, WorkloadSpec};
use mlperf_hw::systems::SystemId;
use mlperf_sim::SimError;

/// The complete Table V measurement set.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// All runs, in table row order.
    pub runs: Vec<WorkloadRun>,
}

/// GPU counts measured for each multi-GPU workload.
const GPU_COUNTS: [u32; 3] = [1, 2, 4];

/// Run the Table V experiment on the C4140 (K) standalone.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Table5, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Table V experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Table5, SimError> {
    let system = SystemId::C4140K;
    let mut runs = Vec::new();

    for id in BenchmarkId::MLPERF {
        for n in GPU_COUNTS {
            runs.push(ctx.workload(WorkloadSpec::Trainable(id), system, n)?);
        }
    }
    // DAWNBench entries are single-GPU submissions.
    runs.push(ctx.workload(WorkloadSpec::Trainable(BenchmarkId::DawnRes18Py), system, 1)?);
    runs.push(ctx.workload(WorkloadSpec::Trainable(BenchmarkId::DawnDrqaPy), system, 1)?);

    for id in [DeepBenchId::GemmCu, DeepBenchId::ConvCu, DeepBenchId::RnnCu] {
        runs.push(ctx.workload(WorkloadSpec::DeepBench(id), system, 1)?);
    }
    for n in GPU_COUNTS {
        runs.push(ctx.workload(WorkloadSpec::DeepBench(DeepBenchId::RedCu), system, n)?);
    }
    Ok(Table5 { runs })
}

/// Render the table in the paper's column layout.
pub fn render(t: &Table5) -> String {
    let mut table = Table::new(
        "Table V: System resource usage statistics on C4140 (K) [simulated]",
        [
            "Workload",
            "#GPU",
            "CPU %",
            "GPU %",
            "DRAM MB",
            "HBM MB",
            "PCIe Mbps",
            "NVLink Mbps",
        ],
    );
    for run in &t.runs {
        table.add_row([
            run.name.clone(),
            run.n_gpus.to_string(),
            format!("{:.2}", run.usage.cpu_util_pct),
            format!("{:.2}", run.usage.gpu_util_pct),
            format!("{:.0}", run.usage.dram_mb),
            format!("{:.0}", run.usage.hbm_mb),
            format!("{:.0}", run.usage.pcie_mbps),
            format!("{:.0}", run.usage.nvlink_mbps),
        ]);
    }
    table.to_string()
}

/// Table V as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table5"
    }

    fn title(&self) -> &'static str {
        "Table V: system resource usage on the C4140 (K)"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Table5).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Table5(t) => render(t),
            other => unreachable!("table5 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(t: &'a Table5, name: &str, n: u64) -> &'a WorkloadRun {
        t.runs
            .iter()
            .find(|r| r.name == name && r.n_gpus == n)
            .unwrap_or_else(|| panic!("{name} @ {n} missing"))
    }

    #[test]
    fn row_count_matches_published_layout() {
        let t = run().unwrap();
        // 7 MLPerf x 3 + 2 DAWNBench + 3 DeepBench compute + 3 Red.
        assert_eq!(t.runs.len(), 7 * 3 + 2 + 3 + 3);
    }

    #[test]
    fn cpu_util_roughly_doubles_with_gpus() {
        // §V-A: "as we double the number of GPUs ... CPU utilization
        // roughly doubles", for every MLPerf submission.
        let t = run().unwrap();
        for id in BenchmarkId::MLPERF {
            let name = id.abbreviation();
            let u1 = find(&t, name, 1).usage.cpu_util_pct;
            let u2 = find(&t, name, 2).usage.cpu_util_pct;
            let u4 = find(&t, name, 4).usage.cpu_util_pct;
            // The paper's own ratios range ~1.5x (Res50_TF) to ~3.2x
            // (NCF, whose NCCL polling threads make it super-linear).
            assert!(u2 / u1 > 1.3 && u2 / u1 < 4.2, "{name}: {u1} -> {u2}");
            assert!(u4 / u2 > 1.3 && u4 / u2 < 4.2, "{name}: {u2} -> {u4}");
        }
    }

    #[test]
    fn cpu_util_ordering_matches_section_v_a() {
        let t = run().unwrap();
        let u = |n: &str| find(&t, n, 1).usage.cpu_util_pct;
        // Res50_TF highest, then Res50_MX; NCF lowest among MLPerf.
        assert!(u("MLPf_Res50_TF") > u("MLPf_Res50_MX"));
        assert!(u("MLPf_Res50_MX") > u("MLPf_NCF_Py"));
        for id in BenchmarkId::MLPERF {
            if id != BenchmarkId::MlpfNcfPy {
                assert!(u(id.abbreviation()) >= u("MLPf_NCF_Py"), "{id} below NCF");
            }
        }
        // DrQA has the highest CPU usage of every workload in the table.
        let drqa = find(&t, "Dawn_DrQA_Py", 1).usage.cpu_util_pct;
        for r in &t.runs {
            if r.name != "Dawn_DrQA_Py" {
                assert!(drqa > r.usage.cpu_util_pct, "{} >= DrQA", r.name);
            }
        }
    }

    #[test]
    fn drqa_has_lowest_gpu_utilization() {
        // §V-A: DrQA shows ~20% GPU utilization, least of all workloads.
        let t = run().unwrap();
        let drqa = find(&t, "Dawn_DrQA_Py", 1);
        assert!(
            drqa.usage.gpu_util_pct < 45.0,
            "{}",
            drqa.usage.gpu_util_pct
        );
        for r in &t.runs {
            if r.n_gpus == 1 && r.name != "Dawn_DrQA_Py" {
                assert!(
                    r.usage.gpu_util_pct > drqa.usage.gpu_util_pct,
                    "{} below DrQA",
                    r.name
                );
            }
        }
    }

    #[test]
    fn footprints_grow_with_gpu_count() {
        // §V-C: system memory footprint roughly doubles with GPU count;
        // HBM footprint is the sum over GPUs.
        let t = run().unwrap();
        for id in BenchmarkId::MLPERF {
            let name = id.abbreviation();
            let f1 = find(&t, name, 1).usage;
            let f4 = find(&t, name, 4).usage;
            assert!(f4.dram_mb > f1.dram_mb, "{name} DRAM");
            assert!(f4.hbm_mb > 3.0 * f1.hbm_mb, "{name} HBM");
        }
    }

    #[test]
    fn nvlink_appears_only_at_multi_gpu() {
        let t = run().unwrap();
        for r in &t.runs {
            if r.n_gpus == 1 {
                assert_eq!(r.usage.nvlink_mbps, 0.0, "{}", r.name);
            }
        }
        for id in BenchmarkId::MLPERF {
            let r4 = find(&t, id.abbreviation(), 4);
            assert!(r4.usage.nvlink_mbps > 0.0, "{}", r4.name);
        }
    }

    #[test]
    fn red_cu_has_the_highest_nvlink_rate() {
        // §V-D: Deep_Red_Cu uses the highest NVLink bandwidth.
        let t = run().unwrap();
        let red = find(&t, "Deep_Red_Cu", 4).usage.nvlink_mbps;
        for r in &t.runs {
            if r.name != "Deep_Red_Cu" {
                assert!(red > r.usage.nvlink_mbps, "{} >= Red_Cu", r.name);
            }
        }
    }

    #[test]
    fn ncf_per_gpu_utilization_drops_at_four_gpus() {
        // §V-B: NCF shows decreasing individual GPU usage at 4 GPUs.
        let t = run().unwrap();
        let per_gpu = |n: u64| find(&t, "MLPf_NCF_Py", n).usage.gpu_util_pct / n as f64;
        assert!(per_gpu(4) < per_gpu(2));
    }

    #[test]
    fn render_contains_all_rows() {
        let t = run().unwrap();
        let s = render(&t);
        assert!(s.contains("Deep_Red_Cu"));
        assert!(s.contains("Dawn_DrQA_Py"));
        assert!(s.contains("MLPf_GNMT_Py"));
    }
}
