//! Extension: fault injection, checkpoint/restart, and expected
//! time-to-train.
//!
//! MLPerf scores healthy runs, but the paper's closing cluster discussion
//! (§IV-D) is really about operating training at scale — where GPUs die,
//! links flap, and the metric that matters is the *expected* time-to-train
//! under a checkpoint policy. This study prices that end to end on the
//! simulated substrate:
//!
//! 1. an analytic MTBF × checkpoint-interval sweep of Daly's expected
//!    runtime for the Transformer's measured time-to-train, with the
//!    Young/Daly-optimal interval beside the naive fixed choices;
//! 2. a seeded DES fault replay ([`mlperf_sim::fault`]) at one fixed
//!    point — same seed, byte-identical trace at any `MLPERF_JOBS`
//!    (the rendered fingerprint is what the CI diff pins);
//! 3. the elastic cluster: all five scheduling policies re-placing the
//!    MLPerf mix after a mid-run node failure.

use crate::benchmark::BenchmarkId;
use crate::experiments::figure4;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_data::storage::StorageDevice;
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_sim::checkpoint::daly_interval;
use mlperf_sim::cluster::{
    AreaEfficient, Cluster, ClusterJobSpec, ClusterTrace, FcfsWidestFit, GreedyBestFinish,
    NaiveWidest, NodeFailure, SchedulingPolicy, ShortestJobFirst, Submission,
};
use mlperf_sim::fault::{replay, FaultConfig, FaultPlan, FaultStats, RetryPolicy};
use mlperf_sim::{CheckpointSpec, SimError};
use mlperf_testkit::hash::fnv1a64;

/// The fault-study workload: the Transformer has the suite's heaviest
/// checkpoint (Adam keeps two FP32 moments per parameter), so the
/// interval trade-off is visible.
const BENCH: BenchmarkId = BenchmarkId::MlpfXfmrPy;
/// Platform and width of the base run.
const SYSTEM: SystemId = SystemId::Dss8440;
const GPUS: u32 = 4;
/// Checkpoints go to the shared filer tier, not local NVMe.
const DEVICE: StorageDevice = StorageDevice::SataSsd;
/// The fixed seed of the DES replay point (the CI replay-smoke contract).
const SEED: u64 = 0xF00D;
/// MTBF column of the analytic sweep, hours (the `sweep::fault_ttt` grid;
/// kept here as the test oracle for the rendered rows).
#[cfg(test)]
const MTBF_HOURS: [f64; 3] = [1.0, 4.0, 24.0];
/// Naive fixed checkpoint intervals, minutes (likewise `sweep::fault_ttt`).
#[cfg(test)]
const INTERVAL_MIN: [f64; 4] = [1.0, 10.0, 60.0, 240.0];
/// MTBF of the replayed sample path, hours.
const REPLAY_MTBF_HOURS: f64 = 1.0;
/// When the elastic study's node dies, and how many GPUs it takes.
const NODE_LOSS_MIN: f64 = 60.0;
const NODE_LOSS_GPUS: u64 = 2;

/// One point of the analytic sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepRow {
    /// Mean time between failures, hours.
    pub mtbf_hours: f64,
    /// Checkpoint interval, minutes.
    pub interval_min: f64,
    /// Daly's expected time-to-train, hours.
    pub expected_hours: f64,
    /// Expected overhead over the failure-free run, percent.
    pub overhead_pct: f64,
    /// Whether this row's interval is the Daly-optimal one.
    pub daly: bool,
}

/// The fixed-seed DES replay summary.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// The plan seed.
    pub seed: u64,
    /// MTBF the plan was drawn at, hours.
    pub mtbf_hours: f64,
    /// Checkpoint interval used (Daly-optimal), seconds.
    pub interval_secs: f64,
    /// Faults the plan scheduled.
    pub planned_faults: usize,
    /// The replay accounting.
    pub stats: FaultStats,
    /// FNV-1a fingerprint of the full trace bytes (draw log + replay
    /// log) — rendered, so a report diff catches any replay divergence.
    pub fingerprint: u64,
    /// Trace line count (draw log + replay actions).
    pub trace_lines: usize,
}

/// One policy's elastic-cluster result.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// Policy display name.
    pub policy: &'static str,
    /// The execution trace under the node failure.
    pub trace: ClusterTrace,
}

/// Everything the fault study produced.
#[derive(Debug, Clone)]
pub struct FaultStudy {
    /// Failure-free time-to-train of the base run, hours.
    pub work_hours: f64,
    /// One checkpoint write, seconds.
    pub write_cost_secs: f64,
    /// One restart (relaunch + state read), seconds.
    pub restart_cost_secs: f64,
    /// The analytic MTBF × interval sweep.
    pub sweep: Vec<SweepRow>,
    /// The fixed-seed DES replay.
    pub replay: ReplaySummary,
    /// The five policies under the node failure.
    pub elastic: Vec<ElasticRow>,
}

fn checkpoint_spec(interval: Seconds) -> CheckpointSpec {
    CheckpointSpec::new(interval, DEVICE)
}

/// Run the fault study.
///
/// # Errors
///
/// Propagates [`SimError`] from the base-run measurement.
pub fn run() -> Result<FaultStudy, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the fault study through a shared executor context (the base run
/// and the elastic job times are Figure 4 / Table IV points, so they
/// memoize across the report).
///
/// # Errors
///
/// Propagates [`SimError`] from the base-run measurement.
pub fn run_ctx(ctx: &Ctx) -> Result<FaultStudy, SimError> {
    let point = TrainPoint::new(BENCH, SYSTEM, GPUS);
    let outcome = ctx.outcome(&point)?;
    let step = ctx.step(&point)?;
    let job = BENCH.job();
    let work = outcome.total_time;
    let total_steps = outcome.total_steps();

    let probe = checkpoint_spec(Seconds::from_minutes(10.0));
    let write_cost = probe.write_cost(&job);
    let restart_cost = probe.restart_cost(&job);

    // 1. Analytic sweep: fixed intervals vs the Daly-optimal one, as the
    // declarative `sweep::fault_ttt` grid (MTBF outermost, interval
    // inner — the exact order the hand-rolled loop produced).
    let spec = crate::sweep::fault_ttt();
    let swept = crate::sweep::run_serial(ctx, &spec, None);
    let mut sweep = Vec::new();
    for cell in &swept.cells {
        use crate::sweep::{CellKind, IntervalChoice};
        let v = cell.outcome.as_ref().map_err(crate::sweep::CellError::to_sim)?;
        sweep.push(SweepRow {
            mtbf_hours: cell.spec.mtbf_hours.expect("mtbf axis set"),
            interval_min: v.get(CellKind::ExpectedTtt, "interval_min"),
            expected_hours: v.get(CellKind::ExpectedTtt, "expected_hours"),
            overhead_pct: v.get(CellKind::ExpectedTtt, "overhead_pct"),
            daly: cell.spec.interval == Some(IntervalChoice::Daly),
        });
    }

    // 2. One seeded sample path through the DES replay.
    let mtbf = Seconds::from_hours(REPLAY_MTBF_HOURS);
    let interval = daly_interval(write_cost, mtbf);
    let cfg = FaultConfig {
        plan: FaultPlan::generate(SEED, work.scale(3.0), mtbf, GPUS),
        checkpoint: checkpoint_spec(interval),
        retry: RetryPolicy::default(),
    };
    let planned_faults = cfg.plan.events().len();
    let (stats, trace) = replay(&cfg, &job, &step, total_steps);
    let bytes = trace.to_bytes();
    let replay_summary = ReplaySummary {
        seed: SEED,
        mtbf_hours: REPLAY_MTBF_HOURS,
        interval_secs: interval.as_secs(),
        planned_faults,
        fingerprint: fnv1a64(&bytes),
        trace_lines: bytes.iter().filter(|&&b| b == b'\n').count(),
        stats,
    };

    // 3. The elastic cluster: the MLPerf mix loses half its pool mid-run.
    let specs: Vec<ClusterJobSpec> = figure4::measure_job_times_ctx(ctx)?
        .into_iter()
        .map(|j| {
            let times: Vec<(u64, f64)> = j
                .widths()
                .filter(|&w| w <= u64::from(GPUS))
                .map(|w| (w, j.time_at(w).expect("measured")))
                .collect();
            ClusterJobSpec::new(j.name(), times)
        })
        .collect();
    let failure = [NodeFailure::after_minutes(NODE_LOSS_MIN, NODE_LOSS_GPUS)];
    let mut naive = NaiveWidest;
    let mut greedy = GreedyBestFinish;
    let mut area = AreaEfficient;
    let mut sjf = ShortestJobFirst;
    let mut fcfs = FcfsWidestFit;
    let policies: Vec<&mut dyn SchedulingPolicy> =
        vec![&mut naive, &mut greedy, &mut area, &mut sjf, &mut fcfs];
    let elastic = policies
        .into_iter()
        .map(|p| {
            let policy = p.name();
            let subs: Vec<Submission> =
                specs.iter().cloned().map(Submission::at_start).collect();
            let trace = Cluster::new(u64::from(GPUS)).run_with_faults(subs, p, &failure);
            ElasticRow { policy, trace }
        })
        .collect();

    Ok(FaultStudy {
        work_hours: work.as_hours(),
        write_cost_secs: write_cost.as_secs(),
        restart_cost_secs: restart_cost.as_secs(),
        sweep,
        replay: replay_summary,
        elastic,
    })
}

/// Render all three parts.
pub fn render(s: &FaultStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fault study: {} on {} x{GPUS}, checkpoints to {DEVICE}\n\
         failure-free time-to-train {:.2} h; one checkpoint write {:.1} s, \
         one restart {:.1} s\n\n",
        BENCH.abbreviation(),
        SYSTEM.name(),
        s.work_hours,
        s.write_cost_secs,
        s.restart_cost_secs,
    ));

    let mut t = Table::new(
        "Expected time-to-train vs MTBF and checkpoint interval (Daly)",
        [
            "MTBF (h)",
            "Interval",
            "E[TTT] (h)",
            "Overhead",
            "Policy",
        ],
    );
    for r in &s.sweep {
        t.add_row([
            format!("{:.0}", r.mtbf_hours),
            format!("{:.1} min", r.interval_min),
            format!("{:.2}", r.expected_hours),
            format!("{:.2}%", r.overhead_pct),
            if r.daly { "daly-optimal" } else { "fixed" }.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');

    let rp = &s.replay;
    let st = &rp.stats;
    out.push_str(&format!(
        "Seeded DES replay (seed {:#x}, MTBF {:.0} h, Daly interval {:.0} s):\n\
         {} faults planned; {} GPU failures, {} link flaps, {} throttles, \
         {} host stalls\n\
         {} restarts, {} retries, {} checkpoints written\n\
         healthy {:.2} h + checkpoint {:.3} h + recomputed {:.3} h + stalled \
         {:.3} h + restart {:.3} h = total {:.2} h (slowdown {:.3}x)\n\
         trace: {} lines, fingerprint {:#018x}\n\n",
        rp.seed,
        rp.mtbf_hours,
        rp.interval_secs,
        rp.planned_faults,
        st.gpu_failures,
        st.link_flaps,
        st.throttle_events,
        st.host_stalls,
        st.restarts,
        st.retries,
        st.checkpoints_written,
        st.healthy_time.as_hours(),
        st.checkpoint_time.as_hours(),
        st.recomputed_time.as_hours(),
        st.stalled_time.as_hours(),
        st.restart_time.as_hours(),
        st.total_time.as_hours(),
        st.slowdown(),
        rp.trace_lines,
        rp.fingerprint,
    ));

    let mut t = Table::new(
        format!(
            "Elastic rescheduling: {NODE_LOSS_GPUS} of {GPUS} GPUs die at \
             {NODE_LOSS_MIN:.0} min"
        ),
        [
            "Policy",
            "Makespan (min)",
            "Mean wait (min)",
            "Utilization",
            "Preempted",
            "Abandoned",
        ],
    );
    for r in &s.elastic {
        t.add_row([
            r.policy.to_string(),
            format!("{:.0}", r.trace.makespan.as_minutes()),
            format!("{:.0}", r.trace.mean_wait().as_minutes()),
            format!("{:.0}%", r.trace.utilization() * 100.0),
            r.trace.preemptions.to_string(),
            r.trace.abandoned.len().to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

/// The fault study as the executor schedules it. Depends on Figure 4 so
/// the shared DSS-8440 job-time points are warm in the memo cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "fault_study"
    }

    fn title(&self) -> &'static str {
        "Extension: fault injection, checkpoint/restart, expected TTT"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["figure4"]
    }

    fn spec_bytes(&self) -> Vec<u8> {
        // The analytic grid plus the elastic part's Figure 4 grid: a
        // change to either sweep must invalidate this section's cache.
        let mut s = format!("exp:{};seed={SEED:x};", self.id()).into_bytes();
        s.extend_from_slice(&crate::sweep::fault_ttt().canonical_bytes());
        s.push(b'|');
        s.extend_from_slice(&crate::sweep::figure4_scaling().canonical_bytes());
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Fault).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Fault(s) => render(s),
            other => unreachable!("fault_study asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> FaultStudy {
        run().unwrap()
    }

    #[test]
    fn daly_interval_beats_every_naive_interval() {
        let s = study();
        for &mtbf in &MTBF_HOURS {
            let group: Vec<&SweepRow> = s
                .sweep
                .iter()
                .filter(|r| (r.mtbf_hours - mtbf).abs() < 1e-9)
                .collect();
            let daly = group.iter().find(|r| r.daly).expect("daly row present");
            for fixed in group.iter().filter(|r| !r.daly) {
                assert!(
                    daly.expected_hours <= fixed.expected_hours + 1e-9,
                    "daly {} h loses to {} min fixed ({} h) at MTBF {mtbf} h",
                    daly.expected_hours,
                    fixed.interval_min,
                    fixed.expected_hours
                );
            }
        }
    }

    #[test]
    fn sweep_overheads_grow_as_mtbf_shrinks() {
        let s = study();
        // At any fixed interval, a flakier cluster pays more.
        for &interval in &INTERVAL_MIN {
            let at = |mtbf: f64| {
                s.sweep
                    .iter()
                    .find(|r| {
                        !r.daly
                            && (r.mtbf_hours - mtbf).abs() < 1e-9
                            && (r.interval_min - interval).abs() < 1e-9
                    })
                    .expect("grid point present")
                    .overhead_pct
            };
            assert!(at(1.0) > at(4.0));
            assert!(at(4.0) > at(24.0));
        }
    }

    #[test]
    fn replay_exercises_faults_and_is_reproducible() {
        let a = study();
        assert!(a.replay.planned_faults > 0, "seed drew no faults");
        let st = &a.replay.stats;
        assert!(
            st.gpu_failures + st.link_flaps + st.throttle_events + st.host_stalls > 0,
            "no fault landed inside the run"
        );
        assert!(st.checkpoints_written > 0);
        assert!(st.slowdown() >= 1.0);
        // Fresh context, same seed: byte-identical trace.
        let b = run_ctx(&Ctx::new()).unwrap();
        assert_eq!(a.replay.fingerprint, b.replay.fingerprint);
        assert_eq!(a.replay.stats, b.replay.stats);
    }

    #[test]
    fn every_policy_finishes_the_mix_despite_the_node_loss() {
        let s = study();
        assert_eq!(s.elastic.len(), 5);
        for r in &s.elastic {
            assert_eq!(r.trace.completions.len(), 7, "{}", r.policy);
            assert!(r.trace.abandoned.is_empty(), "{}", r.policy);
            // Nothing runs wider than the surviving pool afterwards.
            for c in &r.trace.completions {
                assert!(
                    c.start.as_minutes() < NODE_LOSS_MIN
                        || c.width <= u64::from(GPUS) - NODE_LOSS_GPUS,
                    "{} placed width {} after the loss",
                    r.policy,
                    c.width
                );
            }
        }
        // The mix runs past the failure, so someone gets preempted.
        let preemptions: u32 = s.elastic.iter().map(|r| r.trace.preemptions).sum();
        assert!(preemptions > 0, "node loss never interrupted anything");
    }

    #[test]
    fn render_covers_all_three_parts() {
        let s = study();
        let text = render(&s);
        assert!(text.contains("Fault study:"));
        assert!(text.contains("daly-optimal"));
        assert!(text.contains("Seeded DES replay"));
        assert!(text.contains("fingerprint"));
        assert!(text.contains("Elastic rescheduling"));
        assert!(text.contains("shortest-job-first"));
    }
}
