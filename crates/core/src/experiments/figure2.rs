//! Figure 2: the V100 roofline and workload placement.
//!
//! §IV-B runs single-GPU profiles on the T640 and places every workload on
//! the empirically-measured V100 roofline (double/single/half-precision
//! ceilings from the Empirical Roofline Toolkit). Published findings:
//! every workload is memory-bound (left of the half-precision ridge), and
//! both arithmetic intensity and throughput order as DAWNBench > MLPerf >
//! DeepBench.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::workloads::{DeepBenchId, WorkloadRun, WorkloadSpec};
use mlperf_analysis::roofline::{RooflineModel, RooflinePoint};
use mlperf_hw::gpu::Precision;
use mlperf_hw::systems::SystemId;
use mlperf_sim::SimError;

/// The roofline model plus workload points.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The empirical V100 roofline.
    pub roofline: RooflineModel,
    /// Workload coordinates (Deep_Red_Cu is absent: zero counted FLOPs).
    pub points: Vec<RooflinePoint>,
}

impl Figure2 {
    fn suite_values(&self, suite: &str, f: impl Fn(&RooflinePoint) -> f64) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.suite == suite)
            .map(f)
            .collect();
        assert!(!xs.is_empty(), "no points for suite {suite}");
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        xs
    }

    /// Median arithmetic intensity of a suite's points.
    pub fn suite_median_intensity(&self, suite: &str) -> f64 {
        let xs = self.suite_values(suite, |p| p.intensity);
        xs[xs.len() / 2]
    }

    /// Median throughput of a suite's points (GFLOP/s).
    pub fn suite_median_throughput(&self, suite: &str) -> f64 {
        let xs = self.suite_values(suite, |p| p.throughput.as_gflops());
        xs[xs.len() / 2]
    }

    /// Highest throughput of a suite's points (GFLOP/s).
    pub fn suite_max_throughput(&self, suite: &str) -> f64 {
        *self
            .suite_values(suite, |p| p.throughput.as_gflops())
            .last()
            .expect("non-empty")
    }
}

/// Run the Figure 2 experiment: single-GPU runs on the T640, ERT-style
/// ceilings for its V100.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Figure2, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Figure 2 experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Figure2, SimError> {
    let system = SystemId::T640;
    let roofline = RooflineModel::for_gpu(&system.spec().gpu_model().spec());

    let mut runs: Vec<WorkloadRun> = Vec::new();
    for id in BenchmarkId::ALL {
        runs.push(ctx.workload(WorkloadSpec::Trainable(id), system, 1)?);
    }
    for id in [
        DeepBenchId::GemmCu,
        DeepBenchId::ConvCu,
        DeepBenchId::RnnCu,
        DeepBenchId::RedCu,
    ] {
        runs.push(ctx.workload(WorkloadSpec::DeepBench(id), system, 1)?);
    }
    let points = runs
        .iter()
        .filter_map(WorkloadRun::roofline_point)
        .collect();
    Ok(Figure2 { roofline, points })
}

/// Render the ceilings, the ERT sweep, and the workload points.
pub fn render(f: &Figure2) -> String {
    let mut out = format!("{}\n", f.roofline);
    out.push_str("Empirical ceilings: ");
    for p in Precision::ALL {
        out.push_str(&format!(
            "{}={:.1} TFLOP/s  ",
            p,
            f.roofline.ceiling(p).as_tflops()
        ));
    }
    out.push('\n');

    let mut t = Table::new(
        "Figure 2: Workload placement on the V100 roofline",
        [
            "Workload",
            "Suite",
            "AI (FLOP/B)",
            "TFLOP/s",
            "vs FP16 roof",
            "Bound",
        ],
    );
    for p in &f.points {
        t.add_row([
            p.name.clone(),
            p.suite.clone(),
            format!("{:.1}", p.intensity),
            format!("{:.2}", p.throughput.as_tflops()),
            format!(
                "{:.0}%",
                f.roofline.roof_fraction(p, Precision::TensorCore) * 100.0
            ),
            f.roofline.classify(p, Precision::TensorCore).to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 2 as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "figure2"
    }

    fn title(&self) -> &'static str {
        "Figure 2: V100 roofline and workload placement"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Figure2).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Figure2(f) => render(f),
            other => unreachable!("figure2 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_analysis::roofline::Boundedness;

    #[test]
    fn all_points_are_under_the_roof() {
        let f = run().unwrap();
        assert!(!f.points.is_empty());
        for p in &f.points {
            let frac = f.roofline.roof_fraction(p, Precision::TensorCore);
            assert!(frac <= 1.0 + 1e-9, "{} exceeds the roof: {frac}", p.name);
            assert!(frac > 0.0);
        }
    }

    #[test]
    fn workloads_are_memory_bound_against_the_half_roof() {
        // §IV-B: "all the workloads are memory-bound (have not cross the
        // turn point)". We allow one excursion (SSD's dense 38x38 stage
        // pushes it just past the ridge in our traffic model).
        let f = run().unwrap();
        let compute_bound = f
            .points
            .iter()
            .filter(|p| f.roofline.classify(p, Precision::TensorCore) == Boundedness::ComputeBound)
            .count();
        assert!(
            compute_bound <= 1,
            "{compute_bound} of {} points crossed the FP16 ridge",
            f.points.len()
        );
        // And none *touches the flat roof*: no workload saturates compute.
        for p in &f.points {
            let frac = f.roofline.roof_fraction(p, Precision::TensorCore);
            assert!(
                frac < 1.0 + 1e-6,
                "{} saturates the roof ({frac:.2})",
                p.name
            );
        }
    }

    #[test]
    fn suite_ordering_matches_paper_narrative() {
        // Fig. 2 narrative: MLPerf shows more data reuse (higher AI) than
        // DeepBench; DAWNBench reaches comparable-or-higher intensity and
        // the suites order Dawn/MLPerf > DeepBench on throughput
        // ("DeepBench provides low compute rate benchmarks").
        let f = run().unwrap();
        let mlperf_ai = f.suite_median_intensity("MLPerf");
        let deep_ai = f.suite_median_intensity("DeepBench");
        assert!(
            mlperf_ai > deep_ai,
            "MLPerf median AI {mlperf_ai:.1} should exceed DeepBench {deep_ai:.1}"
        );
        let dawn_max_ai = f
            .points
            .iter()
            .filter(|p| p.suite == "DAWNBench")
            .map(|p| p.intensity)
            .fold(0.0f64, f64::max);
        assert!(
            dawn_max_ai > 0.9 * mlperf_ai,
            "Dawn peak AI {dawn_max_ai:.1}"
        );

        let mlperf_tp = f.suite_median_throughput("MLPerf");
        let deep_tp = f.suite_median_throughput("DeepBench");
        assert!(
            mlperf_tp > 1.5 * deep_tp,
            "MLPerf {mlperf_tp:.0} vs Deep {deep_tp:.0}"
        );
        assert!(f.suite_max_throughput("DAWNBench") > 1.5 * deep_tp);
    }

    #[test]
    fn red_cu_has_no_roofline_point() {
        // Zero counted FLOPs -> no Fig. 2 coordinates.
        let f = run().unwrap();
        assert!(f.points.iter().all(|p| p.name != "Deep_Red_Cu"));
    }

    #[test]
    fn ert_sweep_brackets_the_points() {
        let f = run().unwrap();
        let sweep = f.roofline.sweep(Precision::Single, 0.01, 1000.0, 32);
        let max_attainable = sweep.last().expect("non-empty").1;
        assert_eq!(max_attainable, f.roofline.ceiling(Precision::Single));
    }

    #[test]
    fn render_shows_ceilings_and_points() {
        let f = run().unwrap();
        let s = render(&f);
        assert!(s.contains("Empirical ceilings"));
        assert!(s.contains("memory-bound"));
    }
}
