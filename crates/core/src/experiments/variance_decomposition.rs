//! Extension: run-to-run variance decomposition.
//!
//! MLPerf scores the *median over several runs* because epochs-to-target
//! is stochastic in the seed — yet seed noise is only one of the levers a
//! submitter controls. This study decomposes the variance of end-to-end
//! training minutes into three factors, per benchmark, on 4 GPUs of the
//! DSS 8440:
//!
//! * **seed** — [`VARIANCE_RUNS`] deterministic replications of the
//!   convergence draw (the [`Replication`] layer's seeded lognormal
//!   around the calibration point);
//! * **batch** — halving and doubling the per-GPU batch around the tuned
//!   point (cells past the OOM wall are skipped);
//! * **precision** — fp32 vs mixed precision.
//!
//! Every number is a pure function of the fixed replication seed and the
//! calibrated models, so the rendered section carries a conformance
//! fingerprint like any other.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::sweep::{self, CellKind, CellSpec, Replication, ReplicationScratch, RunStats};
use mlperf_analysis::stats::variance;
use mlperf_hw::systems::SystemId;
use mlperf_models::PrecisionPolicy;
use mlperf_sim::SimError;

/// Seeded replications behind the seed factor (fixed: part of the
/// section's byte contract, independent of `MLPERF_RUNS`).
pub const VARIANCE_RUNS: u32 = 16;

/// The system every cell of the study runs on.
const SYSTEM: SystemId = SystemId::Dss8440;

/// GPUs per cell.
const GPUS: u32 = 4;

/// The benchmarks decomposed: the batch-sensitive extremes (NCF, SSD)
/// bracket the batch-robust ones (ResNet-50, Transformer).
const WORKLOADS: [BenchmarkId; 4] = [
    BenchmarkId::MlpfRes50Mx,
    BenchmarkId::MlpfSsdPy,
    BenchmarkId::MlpfXfmrPy,
    BenchmarkId::MlpfNcfPy,
];

/// One benchmark's decomposition.
#[derive(Debug, Clone)]
pub struct VarianceRow {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Distribution summary of the seeded epochs-to-target replications.
    pub stats: RunStats,
    /// Variance of end-to-end minutes across the seeded runs.
    pub seed_var: f64,
    /// Variance of end-to-end minutes across the batch halving/doubling.
    pub batch_var: f64,
    /// Variance of end-to-end minutes across fp32 vs mixed precision.
    pub precision_var: f64,
}

impl VarianceRow {
    /// `(seed, batch, precision)` shares of the total variance, percent.
    /// All zeros when every factor is degenerate.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.seed_var + self.batch_var + self.precision_var;
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.seed_var / total * 100.0,
            self.batch_var / total * 100.0,
            self.precision_var / total * 100.0,
        )
    }
}

/// The study result.
#[derive(Debug, Clone)]
pub struct VarianceDecomposition {
    /// One row per benchmark, in [`WORKLOADS`] order.
    pub rows: Vec<VarianceRow>,
}

/// The study's base cell for one benchmark (batch/precision at the tuned
/// defaults, replication pinned off so the point pricing is independent
/// of `MLPERF_RUNS`).
fn cell(id: BenchmarkId) -> CellSpec {
    CellSpec {
        kind: CellKind::Training,
        workload: Some(id),
        system: Some(SYSTEM),
        gpus: Some(GPUS),
        batch: None,
        precision: None,
        mtbf_hours: None,
        interval: None,
        runs: Some(1),
        partition: None,
    }
}

/// End-to-end minutes of one cell, or its typed error.
fn minutes(ctx: &Ctx, spec: &CellSpec) -> Result<f64, sweep::CellError> {
    sweep::price_cell(ctx, spec).map(|v| v.get(CellKind::Training, "total_minutes"))
}

/// Run the decomposition through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`]s from the base points (a benchmark whose tuned
/// configuration cannot be priced at all); batch cells past the OOM wall
/// are part of the design and skipped, not errors.
pub fn run_ctx(ctx: &Ctx) -> Result<VarianceDecomposition, SimError> {
    let rep = Replication {
        seed: sweep::REPLICATION_SEED,
        runs: VARIANCE_RUNS,
    };
    let mut scratch = ReplicationScratch::new();
    let mut rows = Vec::with_capacity(WORKLOADS.len());
    for id in WORKLOADS {
        let base_cell = cell(id);
        let point = sweep::price_cell(ctx, &base_cell).map_err(|e| e.to_sim())?;
        let minutes_pt = point.get(CellKind::Training, "total_minutes");
        let epochs_pt = point.get(CellKind::Training, "epochs");

        // Seed factor: the replication layer's epochs draws, scaled to
        // minutes (time is linear in epochs at a fixed step time). The
        // cell id is the runs-stripped canonical spelling — the same
        // streams a MLPERF_RUNS=16 sweep of this cell would draw.
        let job = ctx.base_job(id, false);
        let global_batch = job.per_gpu_batch() * u64::from(GPUS);
        let convergence = job.convergence();
        let cell_id = base_cell.replication_id();
        let stats = rep
            .epochs_stats(&cell_id, &convergence, global_batch, &mut scratch)
            .map_err(|e| SimError::NonFinite {
                context: format!("variance replication: {e}"),
            })?;
        let seed_minutes: Vec<f64> = scratch
            .samples
            .iter()
            .map(|e| minutes_pt * e / epochs_pt)
            .collect();
        let seed_var = variance(&seed_minutes);

        // Batch factor: halve and double the tuned per-GPU batch. A cell
        // past the OOM wall is skipped — the wall is the finding, not a
        // failure; a single surviving point is zero variance.
        let tuned = job.per_gpu_batch();
        let mut batch_minutes = Vec::new();
        let mut tried = Vec::new();
        for b in [(tuned / 2).max(1), tuned, tuned * 2] {
            if tried.contains(&b) {
                continue;
            }
            tried.push(b);
            let mut spec = base_cell.clone();
            spec.batch = Some(b);
            if let Ok(m) = minutes(ctx, &spec) {
                batch_minutes.push(m);
            }
        }
        let batch_var = if batch_minutes.len() >= 2 {
            variance(&batch_minutes)
        } else {
            0.0
        };

        // Precision factor: the fp32 <-> amp swap. The tuned batch is
        // sized for the default precision, so fp32 can land past the OOM
        // wall — skipped like the batch factor's wall cells.
        let mut precision_minutes = Vec::new();
        for p in [PrecisionPolicy::Fp32, PrecisionPolicy::Amp] {
            let mut spec = base_cell.clone();
            spec.precision = Some(p);
            if let Ok(m) = minutes(ctx, &spec) {
                precision_minutes.push(m);
            }
        }
        let precision_var = if precision_minutes.len() >= 2 {
            variance(&precision_minutes)
        } else {
            0.0
        };

        rows.push(VarianceRow {
            id,
            stats,
            seed_var,
            batch_var,
            precision_var,
        });
    }
    Ok(VarianceDecomposition { rows })
}

/// Render the decomposition as the report section.
pub fn render(v: &VarianceDecomposition) -> String {
    let mut t = Table::new(
        format!(
            "Run-to-run variance decomposition (DSS 8440, {GPUS} GPUs, {VARIANCE_RUNS} seeded runs)"
        ),
        [
            "Benchmark",
            "Epochs med",
            "p5",
            "p95",
            "CI95 lo",
            "CI95 hi",
            "Seed %",
            "Batch %",
            "Prec %",
        ],
    );
    for row in &v.rows {
        let (seed, batch, precision) = row.shares();
        t.add_row([
            row.id.to_string(),
            format!("{:.2}", row.stats.median),
            format!("{:.2}", row.stats.p5),
            format!("{:.2}", row.stats.p95),
            format!("{:.2}", row.stats.ci_lo),
            format!("{:.2}", row.stats.ci_hi),
            format!("{seed:.1}"),
            format!("{batch:.1}"),
            format!("{precision:.1}"),
        ]);
    }
    format!(
        "{t}shares of end-to-end-minutes variance across seeded convergence \
         replications, per-GPU batch halving/doubling, and fp32 vs amp\n"
    )
}

/// The decomposition as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "variance_decomposition"
    }

    fn title(&self) -> &'static str {
        "Extension: run-to-run variance decomposition (seed vs batch vs precision)"
    }

    fn spec_bytes(&self) -> Vec<u8> {
        let mut s = format!(
            "exp:{};seed={:016x};runs={VARIANCE_RUNS};",
            self.id(),
            sweep::REPLICATION_SEED,
        )
        .into_bytes();
        for id in WORKLOADS {
            s.extend_from_slice(&cell(id).canonical_bytes());
            s.push(b';');
        }
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Variance).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Variance(v) => render(v),
            other => unreachable!("variance_decomposition asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_replays_bitwise_and_covers_every_workload() {
        let a = run_ctx(&Ctx::new()).unwrap();
        let b = run_ctx(&Ctx::new()).unwrap();
        assert_eq!(a.rows.len(), WORKLOADS.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.stats, y.stats, "{}", x.id);
            assert_eq!(
                (x.seed_var.to_bits(), x.batch_var.to_bits(), x.precision_var.to_bits()),
                (y.seed_var.to_bits(), y.batch_var.to_bits(), y.precision_var.to_bits()),
                "{}",
                x.id
            );
        }
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn shares_sum_to_one_hundred_and_factors_are_nonnegative() {
        let v = run_ctx(&Ctx::new()).unwrap();
        for row in &v.rows {
            assert!(row.seed_var >= 0.0 && row.batch_var >= 0.0 && row.precision_var >= 0.0);
            assert!(row.stats.p5 <= row.stats.median && row.stats.median <= row.stats.p95);
            let (s, b, p) = row.shares();
            assert!(
                (s + b + p - 100.0).abs() < 1e-6,
                "{}: shares {s}+{b}+{p}",
                row.id
            );
        }
    }

    #[test]
    fn output_is_independent_of_the_context_run_count() {
        // The study pins its own replication count; MLPERF_RUNS must not
        // leak into the section bytes (the conformance fingerprint runs
        // in a default environment).
        let a = render(&run_ctx(&Ctx::new()).unwrap());
        let b = render(&run_ctx(&Ctx::new().with_runs(8)).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn precision_always_moves_the_clock() {
        let v = run_ctx(&Ctx::new()).unwrap();
        assert!(
            v.rows.iter().any(|r| r.precision_var > 0.0),
            "fp32 vs amp must matter somewhere"
        );
    }
}
