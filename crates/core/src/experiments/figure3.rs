//! Figure 3: mixed-precision (Tensor Core) speedups.
//!
//! §IV-C trains every MLPerf benchmark on the DSS 8440 with 8 GPUs twice —
//! single precision and AMP — and reports speedups from 1.5× (Mask R-CNN)
//! to 3.3× (ResNet-50/TF). FP32 activations are twice as large, so the FP32
//! leg halves the per-GPU batch until the replica fits, exactly as a real
//! run would have to; speedup is measured in training throughput.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_hw::systems::SystemId;
use mlperf_models::PrecisionPolicy;
use mlperf_sim::{SimError, StepReport};

/// GPUs used for the comparison (the paper uses all 8 of the DSS 8440).
const GPUS: u32 = 8;

/// One benchmark's AMP-vs-FP32 measurement.
#[derive(Debug, Clone)]
pub struct AmpSpeedup {
    /// Benchmark measured.
    pub id: BenchmarkId,
    /// Samples/second under AMP.
    pub amp_throughput: f64,
    /// Samples/second under FP32 (at the largest batch that fits).
    pub fp32_throughput: f64,
    /// Per-GPU batch the FP32 leg ran at.
    pub fp32_batch: u64,
}

impl AmpSpeedup {
    /// The Fig. 3 speedup factor.
    pub fn speedup(&self) -> f64 {
        self.amp_throughput / self.fp32_throughput
    }
}

/// The full Figure 3 result.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Per-benchmark speedups, in MLPerf registry order.
    pub speedups: Vec<AmpSpeedup>,
}

/// Run a training point, halving the per-GPU batch on OOM until it fits
/// (batch 1 OOM is a genuine failure). Keys use effective values, so the
/// first AMP attempt at the default batch shares Table IV's cache entry.
fn run_shrinking(
    ctx: &Ctx,
    base: &TrainPoint,
    mut batch: u64,
) -> Result<(StepReport, u64), SimError> {
    loop {
        match ctx.step(&base.clone().with_per_gpu_batch(batch)) {
            Ok(report) => return Ok((report, batch)),
            Err(SimError::OutOfMemory { .. }) if batch > 1 => batch /= 2,
            Err(e) => return Err(e),
        }
    }
}

/// Run the Figure 3 experiment standalone.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Figure3, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Figure 3 experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Figure3, SimError> {
    let mut speedups = Vec::new();
    for id in BenchmarkId::MLPERF {
        let batch = id.job().per_gpu_batch();
        let amp = TrainPoint::new(id, SystemId::Dss8440, GPUS);
        let fp32 = amp.clone().with_precision(PrecisionPolicy::Fp32);
        let (amp_report, _) = run_shrinking(ctx, &amp, batch)?;
        let (fp32_report, fp32_batch) = run_shrinking(ctx, &fp32, batch)?;
        speedups.push(AmpSpeedup {
            id,
            amp_throughput: amp_report.throughput_samples_per_sec(),
            fp32_throughput: fp32_report.throughput_samples_per_sec(),
            fp32_batch,
        });
    }
    Ok(Figure3 { speedups })
}

/// Render the speedup bars as a table.
pub fn render(f: &Figure3) -> String {
    let mut t = Table::new(
        "Figure 3: Mixed-precision speedup over FP32 (DSS 8440, 8 GPUs)",
        [
            "Benchmark",
            "AMP samples/s",
            "FP32 samples/s",
            "FP32 batch",
            "Speedup",
        ],
    );
    for s in &f.speedups {
        t.add_row([
            s.id.abbreviation().to_string(),
            format!("{:.1}", s.amp_throughput),
            format!("{:.1}", s.fp32_throughput),
            s.fp32_batch.to_string(),
            format!("{:.2}x", s.speedup()),
        ]);
    }
    t.to_string()
}

/// Figure 3 as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "figure3"
    }

    fn title(&self) -> &'static str {
        "Figure 3: mixed-precision speedups"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Figure3).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Figure3(f) => render(f),
            other => unreachable!("figure3 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_speeds_up() {
        let f = run().unwrap();
        assert_eq!(f.speedups.len(), 7);
        for s in &f.speedups {
            assert!(s.speedup() > 1.0, "{}: {:.2}", s.id, s.speedup());
        }
    }

    #[test]
    fn speedups_span_the_paper_range() {
        // Paper: 1.5x (MRCNN) to 3.3x (Res50_TF). Our range lands at
        // [1.4x, 3.9x] with MRCNN/NCF/GNMT at the low end — see
        // EXPERIMENTS.md for the per-benchmark comparison.
        let f = run().unwrap();
        let by_id = |id: BenchmarkId| {
            f.speedups
                .iter()
                .find(|s| s.id == id)
                .expect("present")
                .speedup()
        };
        let min = f
            .speedups
            .iter()
            .map(AmpSpeedup::speedup)
            .fold(f64::INFINITY, f64::min);
        let max = f
            .speedups
            .iter()
            .map(AmpSpeedup::speedup)
            .fold(0.0f64, f64::max);
        assert!((1.2..2.2).contains(&min), "suite minimum {min:.2}");
        assert!((2.9..4.2).contains(&max), "suite maximum {max:.2}");
        // The heavy-weight detector sits at the low end of the suite...
        let mrcnn = by_id(BenchmarkId::MlpfMrcnnPy);
        assert!(mrcnn < 2.5, "MRCNN speedup {mrcnn:.2}");
        // ...and image classification at the high end.
        let res50 = by_id(BenchmarkId::MlpfRes50Tf);
        assert!((2.7..4.0).contains(&res50), "Res50_TF speedup {res50:.2}");
    }

    #[test]
    fn render_lists_speedups() {
        let f = run().unwrap();
        let s = render(&f);
        assert!(s.contains("Speedup"));
        assert!(s.contains("MLPf_NCF_Py"));
    }
}
