//! Figure 4: naive vs. optimal scheduling of the 7 MLPerf workloads.
//!
//! §IV-D searches the schedule space for the seven MLPerf benchmarks on a
//! multi-GPU box: the naive baseline runs every job across all GPUs one by
//! one; the optimum co-schedules poorly-scaling jobs on fewer GPUs. The
//! paper reports savings of ≈4.1 h (2 GPUs), ≈3.0 h (4 GPUs), and ≈0.4 h
//! (8 GPUs).

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::sweep;
use mlperf_analysis::scheduling::{
    lpt_schedule, naive_schedule, optimal_schedule, JobTimes, Schedule,
};
use mlperf_sim::SimError;

/// The scheduling study at one GPU-pool size.
#[derive(Debug, Clone)]
pub struct SchedulingStudy {
    /// GPUs in the pool.
    pub gpu_count: u64,
    /// The paper's baseline: each job across all GPUs, sequentially.
    pub naive: Schedule,
    /// The LPT heuristic (extension beyond the paper).
    pub lpt: Schedule,
    /// The exact optimum from branch-and-bound.
    pub optimal: Schedule,
    /// Job names, indexed by the schedules' job ids.
    pub job_names: Vec<String>,
}

impl SchedulingStudy {
    /// Hours saved by the optimum over the naive baseline.
    pub fn savings_hours(&self) -> f64 {
        self.optimal.savings_vs(&self.naive) / 60.0
    }
}

/// The full Figure 4 result: studies at 2, 4, and 8 GPUs.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Per-pool-size studies.
    pub studies: Vec<SchedulingStudy>,
}

/// Measure each MLPerf benchmark's training time at every GPU width on the
/// DSS 8440, producing the scheduler's input.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn measure_job_times() -> Result<Vec<JobTimes>, SimError> {
    measure_job_times_ctx(&Ctx::new())
}

/// [`measure_job_times`] through a shared executor context; the grid is
/// the declarative [`sweep::figure4_scaling`] sweep (workload outermost,
/// GPU width inner), and its 1/2/4/8-GPU DSS-8440 points are the same
/// ones Table IV prices, so in a shared context this costs nothing extra.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn measure_job_times_ctx(ctx: &Ctx) -> Result<Vec<JobTimes>, SimError> {
    let spec = sweep::figure4_scaling();
    let run = sweep::run_serial(ctx, &spec, None);
    let widths = [1u64, 2, 4, 8];
    let mut jobs = Vec::new();
    for (i, id) in BenchmarkId::MLPERF.iter().enumerate() {
        let mut times = Vec::new();
        for (j, &n) in widths.iter().enumerate() {
            let cell = &run.cells[i * widths.len() + j];
            let v = cell.outcome.as_ref().map_err(sweep::CellError::to_sim)?;
            times.push((n, v.get(sweep::CellKind::Training, "total_minutes")));
        }
        jobs.push(JobTimes::new(id.abbreviation(), times));
    }
    Ok(jobs)
}

/// Run the Figure 4 experiment standalone.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Figure4, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the Figure 4 experiment through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Figure4, SimError> {
    let jobs = measure_job_times_ctx(ctx)?;
    let job_names: Vec<String> = jobs.iter().map(|j| j.name().to_string()).collect();
    let mut studies = Vec::new();
    for g in [2u64, 4, 8] {
        studies.push(SchedulingStudy {
            gpu_count: g,
            naive: naive_schedule(&jobs, g),
            lpt: lpt_schedule(&jobs, g),
            optimal: optimal_schedule(&jobs, g),
            job_names: job_names.clone(),
        });
    }
    Ok(Figure4 { studies })
}

/// Render an ASCII Gantt chart of a schedule (the Fig. 4 timelines).
/// Each job gets the letter `A` + its index; a legend follows the rows.
pub fn render_gantt(study: &SchedulingStudy, schedule: &Schedule) -> String {
    let tag = |job: usize| (b'A' + (job as u8 % 26)) as char;
    let mut out = String::new();
    let scale = 60.0; // minutes per character column
    for (gpu, row) in schedule.gantt().iter().enumerate() {
        out.push_str(&format!("GPU{gpu}: "));
        let mut cursor = 0.0;
        for &(job, start, end) in row {
            let gap = ((start - cursor) / scale).round() as usize;
            out.push_str(&".".repeat(gap));
            let width = (((end - start) / scale).round() as usize).max(1);
            out.push_str(&tag(job).to_string().repeat(width));
            cursor = end;
        }
        out.push('\n');
    }
    out.push_str("legend: ");
    for (i, name) in study.job_names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}={}", tag(i), name.trim_start_matches("MLPf_")));
    }
    out.push('\n');
    out
}

/// Render the summary table plus the 4-GPU Gantt charts.
pub fn render(f: &Figure4) -> String {
    let mut t = Table::new(
        "Figure 4: Scheduling the 7 MLPerf workloads (makespans in minutes)",
        ["GPUs", "Naive", "LPT", "Optimal", "Saved vs naive"],
    );
    for s in &f.studies {
        t.add_row([
            s.gpu_count.to_string(),
            format!("{:.1}", s.naive.makespan),
            format!("{:.1}", s.lpt.makespan),
            format!("{:.1}", s.optimal.makespan),
            format!("{:.1} h", s.savings_hours()),
        ]);
    }
    let four = f
        .studies
        .iter()
        .find(|s| s.gpu_count == 4)
        .expect("4-GPU study present");
    format!(
        "{t}\n(a) naive scheduling, 4 GPUs:\n{}\n(b) optimal scheduling, 4 GPUs:\n{}",
        render_gantt(four, &four.naive),
        render_gantt(four, &four.optimal),
    )
}

/// Figure 4 as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "figure4"
    }

    fn title(&self) -> &'static str {
        "Figure 4: naive vs optimal multi-job scheduling"
    }

    fn spec_bytes(&self) -> Vec<u8> {
        let mut s = format!("exp:{};", self.id()).into_bytes();
        s.extend_from_slice(&sweep::figure4_scaling().canonical_bytes());
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Figure4).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Figure4(f) => render(f),
            other => unreachable!("figure4 asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_beats_naive_at_small_pools() {
        let f = run().unwrap();
        for s in &f.studies {
            assert!(
                s.optimal.makespan <= s.naive.makespan + 1e-9,
                "{} GPUs",
                s.gpu_count
            );
            assert!(s.optimal.makespan <= s.lpt.makespan + 1e-9);
        }
    }

    #[test]
    fn savings_shrink_as_the_pool_grows() {
        // Paper: ~4.1 h at 2 GPUs, ~3.0 h at 4, ~0.4 h at 8.
        let f = run().unwrap();
        let by_g = |g: u64| {
            f.studies
                .iter()
                .find(|s| s.gpu_count == g)
                .expect("study present")
                .savings_hours()
        };
        assert!(by_g(2) > by_g(8), "2-GPU savings should exceed 8-GPU");
        assert!(by_g(4) > by_g(8));
        // Multi-hour savings at 2 and 4 GPUs, sub-hour-ish at 8.
        assert!(by_g(2) > 1.0, "2-GPU savings {} h", by_g(2));
        assert!(by_g(4) > 1.0, "4-GPU savings {} h", by_g(4));
        assert!(by_g(8) < 2.0, "8-GPU savings {} h", by_g(8));
    }

    #[test]
    fn poorly_scaling_jobs_get_narrow_placements() {
        // The optimum should not give NCF all four GPUs.
        let f = run().unwrap();
        let four = f.studies.iter().find(|s| s.gpu_count == 4).unwrap();
        let ncf_idx = four
            .job_names
            .iter()
            .position(|n| n == "MLPf_NCF_Py")
            .expect("NCF present");
        let placement = four
            .optimal
            .placements
            .iter()
            .find(|p| p.job == ncf_idx)
            .expect("NCF scheduled");
        assert!(
            placement.gpus.len() < 4,
            "NCF got {} GPUs",
            placement.gpus.len()
        );
    }

    #[test]
    fn gantt_renders_every_gpu_row() {
        let f = run().unwrap();
        let four = f.studies.iter().find(|s| s.gpu_count == 4).unwrap();
        let gantt = render_gantt(four, &four.optimal);
        assert_eq!(gantt.lines().count(), 5); // 4 GPU rows + legend
        assert!(gantt.contains("GPU0:"));
        assert!(gantt.contains("legend:"));
    }

    #[test]
    fn full_render_includes_both_charts() {
        let f = run().unwrap();
        let s = render(&f);
        assert!(s.contains("(a) naive"));
        assert!(s.contains("(b) optimal"));
    }
}
