//! Extension: energy and dollar cost to train.
//!
//! DAWNBench's headline metrics are time-to-accuracy *and cost (in USD) of
//! training* (§II-B); the paper reproduces only the time axis. This
//! extension prices every Table IV training run in kilowatt-hours (from the
//! TDP models in [`mlperf_hw::power`]) and in dollars on a 2019-era cloud
//! instance matching each platform.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_hw::power::{cpu_tdp_watts, draw_watts, gpu_tdp_watts};
use mlperf_hw::systems::{SystemId, SystemSpec};
use mlperf_sim::{SimError, TrainingOutcome};

/// 2019-era cloud hourly rate for a platform-equivalent instance, USD.
/// (8× V100 ≈ p3.16xlarge at ~$24.48/h; single P100 ≈ ~$1.46/h.)
pub fn hourly_rate_usd(system: SystemId, gpus: u32) -> f64 {
    let per_gpu_hour = match system {
        SystemId::ReferenceP100 => 1.46,
        SystemId::Dgx1V => 3.06,
        _ => 3.06, // V100-class on-demand
    };
    // Host share amortized into the GPU rate, as cloud pricing does.
    per_gpu_hour * gpus as f64
}

/// One benchmark's energy/cost row.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// The benchmark.
    pub id: BenchmarkId,
    /// GPUs used.
    pub gpus: u32,
    /// Training hours.
    pub hours: f64,
    /// Chassis energy, kWh.
    pub kwh: f64,
    /// Cloud cost, USD.
    pub usd: f64,
}

/// The full study on one platform.
#[derive(Debug, Clone)]
pub struct EnergyCost {
    /// The platform used.
    pub system: SystemId,
    /// Per-benchmark rows.
    pub rows: Vec<EnergyRow>,
}

/// Chassis power during a run: every used GPU at its busy fraction, CPUs
/// at the host utilization, idle GPUs at their floor.
fn chassis_watts(system: &SystemSpec, outcome: &TrainingOutcome) -> f64 {
    let gpu_tdp = gpu_tdp_watts(system.gpu_model());
    let used = outcome.step.n_gpus as f64;
    let total_gpus = system.gpu_count() as f64;
    let gpu_power = used * draw_watts(gpu_tdp, outcome.step.gpu_busy_fraction)
        + (total_gpus - used) * draw_watts(gpu_tdp, 0.0);
    let cores = system.cpu_model().spec().cores() as f64 * system.cpu_count() as f64;
    let cpu_util = (outcome.step.cpu_core_secs_per_step
        / system.cpu_model().spec().base_freq_ghz()
        / (outcome.step.step_time.as_secs() * cores))
        .min(1.0);
    let cpu_power =
        system.cpu_count() as f64 * draw_watts(cpu_tdp_watts(system.cpu_model()), cpu_util);
    gpu_power + cpu_power
}

/// Run the study: the Table IV benchmarks at 8 GPUs on the DSS 8440.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<EnergyCost, SimError> {
    run_on(SystemId::Dss8440, 8)
}

/// Run the study on a specific platform and GPU count.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_on(system_id: SystemId, gpus: u32) -> Result<EnergyCost, SimError> {
    run_on_ctx(&Ctx::new(), system_id, gpus)
}

/// Run the study through a shared executor context (the default DSS-8440
/// 8-GPU points are the same ones Table IV prices).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_on_ctx(ctx: &Ctx, system_id: SystemId, gpus: u32) -> Result<EnergyCost, SimError> {
    let system = system_id.spec();
    let mut rows = Vec::new();
    for id in BenchmarkId::TABLE_IV {
        let outcome = ctx.outcome(&TrainPoint::new(id, system_id, gpus))?;
        let hours = outcome.total_time.as_hours();
        let watts = chassis_watts(&system, &outcome);
        rows.push(EnergyRow {
            id,
            gpus,
            hours,
            kwh: watts * hours / 1e3,
            usd: hourly_rate_usd(system_id, gpus) * hours,
        });
    }
    Ok(EnergyCost {
        system: system_id,
        rows,
    })
}

/// Render the study as a table.
pub fn render(e: &EnergyCost) -> String {
    let mut t = Table::new(
        format!(
            "Energy & cost to train ({} at {} GPUs) — DAWNBench's second metric",
            e.system,
            e.rows.first().map(|r| r.gpus).unwrap_or(0)
        ),
        ["Benchmark", "Hours", "Energy (kWh)", "Cloud cost (USD)"],
    );
    for r in &e.rows {
        t.add_row([
            r.id.abbreviation().to_string(),
            format!("{:.2}", r.hours),
            format!("{:.1}", r.kwh),
            format!("${:.0}", r.usd),
        ]);
    }
    t.to_string()
}

/// The energy/cost study as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "energy_cost"
    }

    fn title(&self) -> &'static str {
        "Extension: energy and dollar cost to train"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_on_ctx(ctx, SystemId::Dss8440, 8).map(Artifact::Energy).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Energy(e) => render(e),
            other => unreachable!("energy_cost asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_training_time() {
        let e = run().unwrap();
        assert_eq!(e.rows.len(), 6);
        for pair in e.rows.windows(1) {
            let r = &pair[0];
            assert!(r.kwh > 0.0 && r.usd > 0.0, "{}", r.id);
        }
        // NCF trains in minutes: it must be the cheapest by far.
        let ncf = e
            .rows
            .iter()
            .find(|r| r.id == BenchmarkId::MlpfNcfPy)
            .unwrap();
        for r in &e.rows {
            if r.id != BenchmarkId::MlpfNcfPy {
                assert!(r.usd > 10.0 * ncf.usd, "{} vs NCF", r.id);
            }
        }
    }

    #[test]
    fn energy_roughly_tracks_dollar_cost_ordering() {
        let e = run().unwrap();
        let mut by_kwh: Vec<&EnergyRow> = e.rows.iter().collect();
        by_kwh.sort_by(|a, b| a.kwh.partial_cmp(&b.kwh).expect("finite"));
        let mut by_usd: Vec<&EnergyRow> = e.rows.iter().collect();
        by_usd.sort_by(|a, b| a.usd.partial_cmp(&b.usd).expect("finite"));
        let kwh_order: Vec<BenchmarkId> = by_kwh.iter().map(|r| r.id).collect();
        let usd_order: Vec<BenchmarkId> = by_usd.iter().map(|r| r.id).collect();
        assert_eq!(kwh_order, usd_order, "fixed platform: same ordering");
    }

    #[test]
    fn single_gpu_run_is_cheaper_per_hour_but_longer() {
        let eight = run().unwrap();
        let one = run_on(SystemId::Dss8440, 1).unwrap();
        let r8 = &eight.rows[0];
        let r1 = &one.rows[0];
        assert!(r1.hours > r8.hours, "1 GPU takes longer");
        // Sub-linear scaling makes the 8-GPU run cost *more* dollars.
        assert!(r8.usd > r1.usd * 0.9);
    }

    #[test]
    fn render_prints_dollars() {
        let e = run().unwrap();
        assert!(render(&e).contains('$'));
    }
}
