//! Extension: suite throughput under k-way device partitioning.
//!
//! MIG-style fractional slices let one V100-class device serve several
//! tenants at once; the question the study answers is what that costs.
//! Every MLPerf benchmark is priced on one GPU of the C4140 (K), whole
//! and at the packed 2-/4-/7-way slice layouts (every co-tenant busy —
//! the worst-case memory-bandwidth and L2 contention point), through the
//! [`partition_scaling`](crate::sweep::partition_scaling) grid. Device
//! throughput at k-way is k × the per-slice rate; the efficiency column
//! is that aggregate against the whole device. The slices pay the
//! interference model's multiplicative slowdown, so device-bound
//! workloads aggregate below 100% even though the SM and HBM shares add
//! up exactly. Host-bound workloads (NCF, whose input pipeline — not the
//! GPU — sets its step time) can aggregate *above* 100%: every tenant
//! brings its own host feed, so slicing converts idle device time into
//! useful co-tenant work. That asymmetry is the study's finding.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use crate::sweep::{self, partition_scaling, CellKind};

/// Display labels of the partition axis, aligned with the grid's
/// expansion order (whole device first, then packed 2/4/7-way).
pub const LAYOUTS: [&str; 4] = ["full", "1of2x2", "1of4x4", "1of7x7"];

/// Slices per device of each layout, aligned with [`LAYOUTS`].
pub const SLICES: [u32; 4] = [1, 2, 4, 7];

/// One benchmark's per-slice throughput across the layouts.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// The benchmark.
    pub workload: BenchmarkId,
    /// Per-slice samples/sec at each layout (aligned with [`LAYOUTS`]),
    /// or the cell's stable error token (`oom`, ...).
    pub per_slice: Vec<Result<f64, String>>,
}

impl PartitionRow {
    /// Aggregate per-device samples/sec at layout `i` (k × per-slice).
    pub fn per_device(&self, i: usize) -> Option<f64> {
        self.per_slice[i].as_ref().ok().map(|s| s * f64::from(SLICES[i]))
    }

    /// Aggregate efficiency of layout `i` against the whole device.
    pub fn efficiency(&self, i: usize) -> Option<f64> {
        let full = self.per_slice[0].as_ref().ok()?;
        Some(self.per_device(i)? / full)
    }
}

/// The study result: one row per MLPerf benchmark.
#[derive(Debug, Clone)]
pub struct PartitionStudy {
    /// Rows in [`BenchmarkId::MLPERF`] order.
    pub rows: Vec<PartitionRow>,
}

/// Run the partition study through a shared executor context. The cells
/// are exactly the [`partition_scaling`] grid's, so a `repro sweep
/// partition_scaling` run and this experiment share their memoized
/// simulation points.
///
/// # Errors
///
/// Never fails as a whole: a cell that cannot price (an OOM'd slice)
/// degrades to its error token in the row.
pub fn run_ctx(ctx: &Ctx) -> Result<PartitionStudy, ExperimentError> {
    let grid = partition_scaling();
    let per_workload = LAYOUTS.len();
    assert_eq!(grid.len(), BenchmarkId::MLPERF.len() * per_workload);
    let mut rows = Vec::new();
    for (w, &workload) in BenchmarkId::MLPERF.iter().enumerate() {
        let mut per_slice = Vec::with_capacity(per_workload);
        for i in 0..per_workload {
            let cell = grid.cell_at(w * per_workload + i);
            debug_assert_eq!(cell.workload, Some(workload));
            let outcome = sweep::price_cell(ctx, &cell)
                .map(|v| v.get(CellKind::Training, "throughput_sps"))
                .map_err(|e| e.kind);
            per_slice.push(outcome);
        }
        rows.push(PartitionRow {
            workload,
            per_slice,
        });
    }
    Ok(PartitionStudy { rows })
}

/// Render the study table.
pub fn render(s: &PartitionStudy) -> String {
    let mut t = Table::new(
        "Partition study: per-device throughput under packed k-way slicing (C4140 K, 1 GPU)",
        [
            "Workload",
            "Full (sps)",
            "2-way (sps)",
            "2-way eff",
            "4-way (sps)",
            "4-way eff",
            "7-way (sps)",
            "7-way eff",
        ],
    );
    for row in &s.rows {
        let mut cells = vec![row.workload.abbreviation().to_string()];
        cells.push(match &row.per_slice[0] {
            Ok(v) => format!("{v:.1}"),
            Err(kind) => kind.clone(),
        });
        for i in 1..LAYOUTS.len() {
            match row.per_device(i) {
                Some(v) => {
                    cells.push(format!("{v:.1}"));
                    cells.push(
                        row.efficiency(i)
                            .map_or_else(|| "-".to_string(), |e| format!("{:.0}%", e * 100.0)),
                    );
                }
                None => {
                    let kind = row.per_slice[i].as_ref().err().cloned();
                    cells.push(kind.unwrap_or_else(|| "-".to_string()));
                    cells.push("-".to_string());
                }
            }
        }
        t.add_row(cells);
    }
    let mut out = t.to_string();
    out.push('\n');
    out
}

/// The partition study as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "partition_study"
    }

    fn title(&self) -> &'static str {
        "Extension: suite throughput under k-way device partitioning"
    }

    fn spec_bytes(&self) -> Vec<u8> {
        // The rows are exactly the partition-scaling grid's cells; a grid
        // edit must invalidate this section's cache.
        let mut s = format!("exp:{};", self.id()).into_bytes();
        s.extend_from_slice(&partition_scaling().canonical_bytes());
        s
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Partition)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Partition(s) => render(s),
            other => unreachable!("partition_study asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_full_device_rate() {
        let s = run_ctx(&Ctx::new()).unwrap();
        assert_eq!(s.rows.len(), BenchmarkId::MLPERF.len());
        for row in &s.rows {
            assert!(
                row.per_slice[0].is_ok(),
                "{} failed whole-device",
                row.workload.abbreviation()
            );
        }
    }

    #[test]
    fn efficiency_splits_on_the_binding_resource() {
        // Device-bound workloads pay the interference tax: k slices each
        // run slower than 1/k of the device, so the aggregate lands
        // strictly under 100%. Host-bound NCF inverts: every tenant
        // brings its own input pipeline, so the aggregate beats the whole
        // device (the known MIG result for input-bound jobs) — but never
        // by more than the slice count.
        let s = run_ctx(&Ctx::new()).unwrap();
        for row in &s.rows {
            let device_bound = row.workload != BenchmarkId::MlpfNcfPy;
            for i in 1..LAYOUTS.len() {
                if let Some(eff) = row.efficiency(i) {
                    assert!(
                        eff <= f64::from(SLICES[i]) + 1e-9,
                        "{} at {} has impossible efficiency {eff}",
                        row.workload.abbreviation(),
                        LAYOUTS[i]
                    );
                    if device_bound {
                        assert!(
                            eff < 1.0 + 1e-9,
                            "{} at {} has efficiency {eff}",
                            row.workload.abbreviation(),
                            LAYOUTS[i]
                        );
                    }
                }
            }
        }
        let ncf = s
            .rows
            .iter()
            .find(|r| r.workload == BenchmarkId::MlpfNcfPy)
            .expect("NCF is in the suite");
        assert!(
            ncf.efficiency(1).is_some_and(|e| e > 1.0),
            "host-bound NCF should aggregate above the whole device"
        );
    }

    #[test]
    fn render_names_every_layout() {
        let s = run_ctx(&Ctx::new()).unwrap();
        let text = render(&s);
        for label in ["Full", "2-way", "4-way", "7-way"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
