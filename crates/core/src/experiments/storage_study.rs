//! Extension: storage staging feasibility (§V-C's disk tier).
//!
//! For every MLPerf benchmark, derive the epoch wall-clock from the
//! simulator (C4140 K, 4 GPUs), subtract the framework's DRAM needs from
//! the chassis capacity to get the page-cache budget, and ask which
//! storage devices keep the run fed under sequential-shard and
//! random-record reading.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_data::storage::{ReadPattern, StagingPlan, StorageDevice};
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_sim::SimError;

/// One benchmark's staging verdicts.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Simulated epoch wall-clock.
    pub epoch: Seconds,
    /// Plans per (device, pattern) in [`CONFIGS`] order.
    pub plans: Vec<StagingPlan>,
}

/// The (device, pattern) grid assessed.
pub const CONFIGS: [(StorageDevice, ReadPattern); 4] = [
    (StorageDevice::Hdd, ReadPattern::SequentialShards),
    (StorageDevice::Hdd, ReadPattern::RandomRecords),
    (StorageDevice::SataSsd, ReadPattern::RandomRecords),
    (StorageDevice::NvmeSsd, ReadPattern::RandomRecords),
];

/// Run the study on the C4140 (K) at 4 GPUs.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Vec<StorageRow>, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the study through a shared executor context (the quad-GPU C4140 (K)
/// points are the same ones Table V and Figure 1 price).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Vec<StorageRow>, SimError> {
    let system = SystemId::C4140K.spec();
    let mut rows = Vec::new();
    for id in BenchmarkId::MLPERF {
        let outcome = ctx.outcome(&TrainPoint::new(id, SystemId::C4140K, 4))?;
        let epoch = outcome.step.step_time.scale(outcome.steps_per_epoch as f64);
        // Page cache gets what the run itself does not pin.
        let cache = system
            .dram_capacity()
            .saturating_sub(outcome.step.dram_footprint);
        let plans = CONFIGS
            .iter()
            .map(|&(device, pattern)| StagingPlan::new(id.dataset(), cache, device, pattern, epoch))
            .collect();
        rows.push(StorageRow { id, epoch, plans });
    }
    Ok(rows)
}

/// Render the verdict grid.
pub fn render(rows: &[StorageRow]) -> String {
    let mut t = Table::new(
        "Storage staging study (C4140 K, 4 GPUs): does the device keep up?",
        [
            "Benchmark",
            "Epoch",
            "HDD seq",
            "HDD rand",
            "SATA rand",
            "NVMe rand",
        ],
    );
    for r in rows {
        let mut cells = vec![r.id.abbreviation().to_string(), format!("{}", r.epoch)];
        for p in &r.plans {
            cells.push(if p.keeps_up() {
                "ok".to_string()
            } else {
                format!("{:.0}x slow", p.slowdown())
            });
        }
        t.add_row(cells);
    }
    t.to_string()
}

/// The storage study as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "storage_study"
    }

    fn title(&self) -> &'static str {
        "Extension: storage staging feasibility"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Storage).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Storage(rows) => render(rows),
            other => unreachable!("storage_study asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id(rows: &[StorageRow], id: BenchmarkId) -> &StorageRow {
        rows.iter().find(|r| r.id == id).expect("row present")
    }

    #[test]
    fn imagenet_demands_more_than_an_hdd_at_random() {
        let rows = run().unwrap();
        let res50 = by_id(&rows, BenchmarkId::MlpfRes50Mx);
        // HDD random-record reads cannot feed a 4-GPU ResNet-50 epoch.
        assert!(!res50.plans[1].keeps_up(), "{}", res50.plans[1]);
        // NVMe does.
        assert!(res50.plans[3].keeps_up(), "{}", res50.plans[3]);
    }

    #[test]
    fn small_datasets_never_touch_the_disk() {
        let rows = run().unwrap();
        for id in [BenchmarkId::MlpfNcfPy, BenchmarkId::MlpfXfmrPy] {
            let row = by_id(&rows, id);
            for p in &row.plans {
                assert!(p.keeps_up(), "{id}: {p}");
                assert_eq!(p.disk_bytes_per_epoch.as_u64(), 0, "{id} fits in DRAM");
            }
        }
    }

    #[test]
    fn render_prints_verdicts() {
        let rows = run().unwrap();
        let s = render(&rows);
        assert!(s.contains("ok"));
        assert!(s.contains("slow"));
    }
}
