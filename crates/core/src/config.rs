//! One typed view of every `MLPERF_*` environment knob.
//!
//! Until this module, each subsystem read its own knobs straight from the
//! environment at whatever moment it was constructed — the pool read
//! `MLPERF_JOBS`, the context read `MLPERF_FASTPATH`, the persistent
//! cache read `MLPERF_CACHE`/`MLPERF_CACHE_DIR` (and peeked at
//! `MLPERF_CHAOS`), and the resilience layer read the rest. That worked
//! for a batch CLI where everything is constructed once, but a long-lived
//! `repro serve` daemon needs *one* configuration resolved at startup and
//! then explicit per-request overrides — never a mid-flight env read that
//! could split the server's view of its own knobs.
//!
//! [`Config::from_env`] resolves every knob exactly once; the legacy
//! `from_env` constructors ([`Pool::from_env`](crate::runner::Pool),
//! [`Ctx::new`](crate::runner::Ctx),
//! [`DiskCache::from_env`](crate::sweep::DiskCache),
//! [`ResilienceConfig::from_env`](crate::runner::ResilienceConfig)) all
//! delegate here, so there is a single parsing truth. Parsing is pure
//! ([`Config::resolve`] takes the lookup as a closure), which is what the
//! unit tests drive — tests must not mutate the process environment,
//! because the suite runs multi-threaded.

use crate::runner::{
    ChaosSpec, CHAOS_ATTEMPTS_ENV, CHAOS_ENV, FASTPATH_ENV, JOBS_ENV, PARTITION_ENV,
    RETRIES_ENV, RUNS_ENV, STEP_BUDGET_ENV, STRICT_ENV,
};
use crate::serve::{
    DEFAULT_MAX_FRAME, DEFAULT_READ_TIMEOUT_MS, DEFAULT_WRITE_TIMEOUT_MS, SERVE_MAX_FRAME_ENV,
    SERVE_READ_TIMEOUT_ENV, SERVE_WRITE_TIMEOUT_ENV,
};
use crate::sweep::cache::{CACHE_DIR_ENV, CACHE_ENV, DEFAULT_CACHE_DIR, IO_CHAOS_ENV};
use crate::sweep::MAX_RUNS;
use mlperf_hw::PartitionSpec;
use mlperf_testkit::iochaos::{IoChaosParseError, IoChaosSpec};
use std::fmt;
use std::path::PathBuf;

/// Why a knob was rejected by the strict resolver
/// ([`Config::try_resolve`]). The lenient [`Config::resolve`] logs the
/// same error to stderr and falls back to the knob's default; the `repro`
/// CLI and the serve daemon go through the strict path, so a typo'd knob
/// fails fast instead of silently running with a default — a mistyped
/// `MLPERF_IO_CHAOS` that injected nothing would make a durability gate
/// vacuously green.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A knob's value did not parse as its type.
    BadKnob {
        /// The environment variable.
        name: &'static str,
        /// The rejected value text.
        value: String,
        /// What the knob expects, for the error message.
        expected: &'static str,
    },
    /// `MLPERF_IO_CHAOS` was present but malformed.
    BadIoChaos {
        /// The rejected spec text.
        value: String,
        /// The typed parse failure.
        error: IoChaosParseError,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadKnob {
                name,
                value,
                expected,
            } => write!(f, "{name}={value:?}: expected {expected}"),
            ConfigError::BadIoChaos { value, error } => {
                write!(f, "{IO_CHAOS_ENV}={value:?}: {error}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Every `MLPERF_*` knob, resolved once.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker-thread count (`MLPERF_JOBS`, else `available_parallelism`).
    pub jobs: usize,
    /// Whether the persistent result cache is enabled (`MLPERF_CACHE` not
    /// `off`/`0`, and no chaos injection active — injected failures must
    /// never be masked by warm entries).
    pub cache_enabled: bool,
    /// Persistent-cache directory (`MLPERF_CACHE_DIR`, else
    /// `artifacts/cache`).
    pub cache_dir: PathBuf,
    /// Whether the engine's analytic fast path may be attempted
    /// (`MLPERF_FASTPATH` not `off`/`0`/`false`/`no`). Output bytes are
    /// identical either way; this only trades throughput.
    pub fastpath: bool,
    /// Per-experiment (and, for the server, per-client) simulation-request
    /// budget (`MLPERF_STEP_BUDGET`). Counted in requests, never
    /// wall-clock, so verdicts are deterministic.
    pub step_budget: Option<u64>,
    /// Fail-fast mode (`MLPERF_STRICT=1`).
    pub strict: bool,
    /// Retry-count override for transient failures (`MLPERF_RETRIES`);
    /// ignored under strict mode, which forces zero retries.
    pub retries: Option<u32>,
    /// Deterministic chaos injection (`MLPERF_CHAOS`,
    /// `MLPERF_CHAOS_ATTEMPTS`), if configured.
    pub chaos: Option<ChaosSpec>,
    /// Seeded runs per Training cell (`MLPERF_RUNS`, clamped to
    /// 1..=[`MAX_RUNS`]; default 1 = point pricing with no replication
    /// columns, byte-identical to the pre-replication suite).
    pub runs: u32,
    /// Fractional-device partition applied to the base cell of every
    /// `repro sweep` run (`MLPERF_PARTITION`, e.g. `1of4x3`; `full` and
    /// unset both mean the whole device). Sweeps that declare their own
    /// partition axis override it per cell, and pinned report
    /// experiments ignore it entirely — like `MLPERF_RUNS`, the knob
    /// reshapes exploratory sweeps, never conformance-pinned sections.
    pub partition: Option<PartitionSpec>,
    /// Seeded I/O fault injection at the persistent cache's filesystem
    /// seam (`MLPERF_IO_CHAOS`), if configured. Unlike `MLPERF_CHAOS`,
    /// this keeps the cache *enabled*: the property under test is that a
    /// sabotaged cache still yields byte-identical output.
    pub io_chaos: Option<IoChaosSpec>,
    /// Serve per-connection read deadline in milliseconds
    /// (`MLPERF_SERVE_READ_TIMEOUT_MS`; `0` disables it).
    pub serve_read_timeout_ms: u64,
    /// Serve per-connection write deadline in milliseconds
    /// (`MLPERF_SERVE_WRITE_TIMEOUT_MS`; `0` disables it).
    pub serve_write_timeout_ms: u64,
    /// Serve maximum request-frame size in bytes
    /// (`MLPERF_SERVE_MAX_FRAME`; `0` removes the bound).
    pub serve_max_frame: usize,
}

/// Strictly parse one unsigned knob: absent or blank means the default,
/// anything else must parse or the typed error is recorded (and the
/// default used, for the lenient path).
fn strict_unsigned(
    raw: Option<String>,
    name: &'static str,
    default: u64,
    errors: &mut Vec<ConfigError>,
) -> u64 {
    let Some(raw) = raw else { return default };
    let text = raw.trim();
    if text.is_empty() {
        return default;
    }
    match text.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            errors.push(ConfigError::BadKnob {
                name,
                value: raw,
                expected: "a non-negative integer (no overflow)",
            });
            default
        }
    }
}

impl Config {
    /// Resolve every knob from the process environment, once.
    pub fn from_env() -> Config {
        Config::resolve(|name| std::env::var(name).ok())
    }

    /// Strict [`Config::from_env`]: the first malformed knob is a typed
    /// error instead of a logged fallback. The `repro` CLI calls this
    /// before doing anything else.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the strictly parsed knobs.
    pub fn try_from_env() -> Result<Config, ConfigError> {
        Config::try_resolve(|name| std::env::var(name).ok())
    }

    /// Strict [`Config::resolve`]: the first malformed strictly-parsed
    /// knob (`MLPERF_IO_CHAOS`, the serve deadline/frame knobs) is
    /// returned as a typed error. The legacy knobs keep their documented
    /// lenient fallbacks either way.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the strictly parsed knobs.
    pub fn try_resolve(
        get: impl Fn(&str) -> Option<String>,
    ) -> Result<Config, ConfigError> {
        let (config, mut errors) = Config::resolve_inner(get);
        match errors.is_empty() {
            true => Ok(config),
            false => Err(errors.remove(0)),
        }
    }

    /// Resolve every knob through `get` (the pure core of
    /// [`Config::from_env`]; tests inject a map instead of mutating the
    /// process environment). Malformed strictly-parsed knobs are logged
    /// to stderr and defaulted; use [`Config::try_resolve`] to get them
    /// as typed errors instead.
    pub fn resolve(get: impl Fn(&str) -> Option<String>) -> Config {
        let (config, errors) = Config::resolve_inner(get);
        for e in errors {
            eprintln!("config: {e} (using the default)");
        }
        config
    }

    fn resolve_inner(get: impl Fn(&str) -> Option<String>) -> (Config, Vec<ConfigError>) {
        let jobs = get(JOBS_ENV)
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let chaos = get(CHAOS_ENV).and_then(|target| {
            let target = target.trim().to_string();
            if target.is_empty() {
                return None;
            }
            let attempts = get(CHAOS_ATTEMPTS_ENV)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map_or(u32::MAX, |n| n.min(u64::from(u32::MAX)) as u32);
            Some(ChaosSpec { target, attempts })
        });
        let cache_enabled = !get(CACHE_ENV).is_some_and(|v| matches!(v.trim(), "off" | "0"))
            && chaos.is_none();
        let cache_dir = get(CACHE_DIR_ENV)
            .map_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR), PathBuf::from);
        let fastpath = !get(FASTPATH_ENV).is_some_and(|v| {
            matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            )
        });
        let step_budget = get(STEP_BUDGET_ENV).and_then(|v| v.trim().parse::<u64>().ok());
        let strict = get(STRICT_ENV).is_some_and(|v| v.trim() == "1");
        let retries = get(RETRIES_ENV)
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|n| n.min(u64::from(u32::MAX)) as u32);
        let runs = get(RUNS_ENV)
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|n| (1..=MAX_RUNS).contains(n))
            .unwrap_or(1);
        let mut errors = Vec::new();
        let partition = get(PARTITION_ENV).and_then(|raw| {
            let text = raw.trim();
            if text.is_empty() {
                return None;
            }
            match PartitionSpec::parse(text) {
                Ok(p) => p,
                Err(_) => {
                    errors.push(ConfigError::BadKnob {
                        name: PARTITION_ENV,
                        value: raw,
                        expected: "a partition token: 'full', '1of{2|4|7}', or '1of{k}x{tenants}'",
                    });
                    None
                }
            }
        });
        let io_chaos = get(IO_CHAOS_ENV).and_then(|text| match IoChaosSpec::parse(&text) {
            Ok(spec) => spec,
            Err(error) => {
                errors.push(ConfigError::BadIoChaos { value: text, error });
                None
            }
        });
        let serve_read_timeout_ms = strict_unsigned(
            get(SERVE_READ_TIMEOUT_ENV),
            SERVE_READ_TIMEOUT_ENV,
            DEFAULT_READ_TIMEOUT_MS,
            &mut errors,
        );
        let serve_write_timeout_ms = strict_unsigned(
            get(SERVE_WRITE_TIMEOUT_ENV),
            SERVE_WRITE_TIMEOUT_ENV,
            DEFAULT_WRITE_TIMEOUT_MS,
            &mut errors,
        );
        let serve_max_frame = strict_unsigned(
            get(SERVE_MAX_FRAME_ENV),
            SERVE_MAX_FRAME_ENV,
            DEFAULT_MAX_FRAME as u64,
            &mut errors,
        )
        .min(usize::MAX as u64) as usize;
        (
            Config {
                jobs,
                cache_enabled,
                cache_dir,
                fastpath,
                step_budget,
                strict,
                retries,
                chaos,
                runs,
                partition,
                io_chaos,
                serve_read_timeout_ms,
                serve_write_timeout_ms,
                serve_max_frame,
            },
            errors,
        )
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::resolve(|_| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with(pairs: &[(&str, &str)]) -> Config {
        let pairs: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Config::resolve(move |name| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        })
    }

    #[test]
    fn empty_environment_gives_defaults() {
        let cfg = with(&[]);
        assert!(cfg.jobs >= 1);
        assert!(cfg.cache_enabled);
        assert_eq!(cfg.cache_dir, PathBuf::from(DEFAULT_CACHE_DIR));
        assert!(cfg.fastpath);
        assert_eq!(cfg.step_budget, None);
        assert!(!cfg.strict);
        assert_eq!(cfg.retries, None);
        assert!(cfg.chaos.is_none());
        assert_eq!(cfg.runs, 1, "default is point pricing");
        assert!(cfg.partition.is_none(), "default is the whole device");
        assert!(cfg.io_chaos.is_none());
        assert_eq!(cfg.serve_read_timeout_ms, DEFAULT_READ_TIMEOUT_MS);
        assert_eq!(cfg.serve_write_timeout_ms, DEFAULT_WRITE_TIMEOUT_MS);
        assert_eq!(cfg.serve_max_frame, DEFAULT_MAX_FRAME);
    }

    #[test]
    fn every_knob_parses() {
        let cfg = with(&[
            (JOBS_ENV, "3"),
            (CACHE_ENV, "on"),
            (CACHE_DIR_ENV, "/tmp/alt"),
            (FASTPATH_ENV, "off"),
            (STEP_BUDGET_ENV, "250"),
            (STRICT_ENV, "1"),
            (RETRIES_ENV, "7"),
            (RUNS_ENV, "8"),
            (PARTITION_ENV, "1of4x3"),
            (IO_CHAOS_ENV, "seed=3,bit_flip=0.5"),
            (SERVE_READ_TIMEOUT_ENV, "1500"),
            (SERVE_WRITE_TIMEOUT_ENV, "0"),
            (SERVE_MAX_FRAME_ENV, "4096"),
        ]);
        assert_eq!(cfg.jobs, 3);
        assert!(cfg.cache_enabled);
        assert_eq!(cfg.cache_dir, PathBuf::from("/tmp/alt"));
        assert!(!cfg.fastpath);
        assert_eq!(cfg.step_budget, Some(250));
        assert!(cfg.strict);
        assert_eq!(cfg.retries, Some(7));
        assert_eq!(cfg.runs, 8);
        assert_eq!(
            cfg.partition.map(|p| p.to_string()).as_deref(),
            Some("1of4x3")
        );
        let io = cfg.io_chaos.expect("io-chaos spec parsed");
        assert_eq!((io.seed, io.bit_flip), (3, 0.5));
        assert_eq!(cfg.serve_read_timeout_ms, 1500);
        assert_eq!(cfg.serve_write_timeout_ms, 0, "0 = deadline disabled");
        assert_eq!(cfg.serve_max_frame, 4096);
    }

    #[test]
    fn cache_disables_on_off_or_chaos() {
        assert!(!with(&[(CACHE_ENV, "off")]).cache_enabled);
        assert!(!with(&[(CACHE_ENV, "0")]).cache_enabled);
        let chaotic = with(&[(CHAOS_ENV, "figure3"), (CHAOS_ATTEMPTS_ENV, "2")]);
        assert!(!chaotic.cache_enabled, "chaos runs must not read warm entries");
        let chaos = chaotic.chaos.expect("chaos spec parsed");
        assert_eq!(chaos.target, "figure3");
        assert_eq!(chaos.attempts, 2);
        // A blank chaos target is no chaos at all.
        assert!(with(&[(CHAOS_ENV, "  ")]).chaos.is_none());
    }

    #[test]
    fn malformed_values_fall_back() {
        let cfg = with(&[
            (JOBS_ENV, "0"),
            (STEP_BUDGET_ENV, "lots"),
            (RETRIES_ENV, "-1"),
        ]);
        assert!(cfg.jobs >= 1, "non-positive job count is ignored");
        assert_eq!(cfg.step_budget, None);
        assert_eq!(cfg.retries, None);
    }

    fn try_with(pairs: &[(&str, &str)]) -> Result<Config, ConfigError> {
        let pairs: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Config::try_resolve(move |name| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        })
    }

    #[test]
    fn strict_knobs_reject_garbage_with_typed_errors() {
        // Unknown io-chaos key.
        let err = try_with(&[(IO_CHAOS_ENV, "bitflip=0.5")]).unwrap_err();
        assert!(matches!(
            &err,
            ConfigError::BadIoChaos {
                error: IoChaosParseError::UnknownKey(k),
                ..
            } if k == "bitflip"
        ));
        assert!(err.to_string().contains(IO_CHAOS_ENV), "{err}");
        // Out-of-range rate.
        assert!(try_with(&[(IO_CHAOS_ENV, "bit_flip=2.0")]).is_err());
        // Non-numeric deadline.
        let err = try_with(&[(SERVE_READ_TIMEOUT_ENV, "soon")]).unwrap_err();
        assert!(matches!(
            &err,
            ConfigError::BadKnob { name, value, .. }
                if *name == SERVE_READ_TIMEOUT_ENV && value == "soon"
        ));
        // Overflow is a typed error, not a silent wrap.
        assert!(try_with(&[(SERVE_MAX_FRAME_ENV, "99999999999999999999999999")]).is_err());
        assert!(try_with(&[(SERVE_WRITE_TIMEOUT_ENV, "-5")]).is_err());
    }

    #[test]
    fn strict_knobs_treat_empty_and_whitespace_as_unset() {
        let cfg = try_with(&[
            (IO_CHAOS_ENV, ""),
            (SERVE_READ_TIMEOUT_ENV, "   "),
            (SERVE_MAX_FRAME_ENV, "\t"),
        ])
        .expect("blank knobs are unset, not errors");
        assert!(cfg.io_chaos.is_none());
        assert_eq!(cfg.serve_read_timeout_ms, DEFAULT_READ_TIMEOUT_MS);
        assert_eq!(cfg.serve_max_frame, DEFAULT_MAX_FRAME);
        // All-whitespace io-chaos text is likewise no injection.
        assert!(try_with(&[(IO_CHAOS_ENV, "  \t ")])
            .expect("whitespace spec")
            .io_chaos
            .is_none());
    }

    #[test]
    fn lenient_resolve_defaults_what_strict_rejects() {
        // The lenient path (legacy constructors) logs and falls back, so
        // a bad knob can never abort a batch run mid-flight …
        let cfg = with(&[
            (IO_CHAOS_ENV, "bit_flip=lots"),
            (SERVE_MAX_FRAME_ENV, "huge"),
        ]);
        assert!(cfg.io_chaos.is_none());
        assert_eq!(cfg.serve_max_frame, DEFAULT_MAX_FRAME);
        // … while the strict path rejects the same environment.
        assert!(try_with(&[(IO_CHAOS_ENV, "bit_flip=lots")]).is_err());
    }

    #[test]
    fn io_chaos_keeps_the_cache_enabled() {
        let cfg = with(&[(IO_CHAOS_ENV, "seed=1,torn_rename=0.5")]);
        assert!(
            cfg.cache_enabled,
            "io chaos sabotages the cache's I/O — it must not disable the cache"
        );
        assert!(cfg.io_chaos.is_some());
    }

    #[test]
    fn partition_knob_normalizes_or_rejects() {
        // `full`, blank, and unset all mean the whole device — the
        // normalized form, so a knob'd full-device sweep is byte-identical
        // to an un-knob'd one.
        assert!(with(&[]).partition.is_none());
        assert!(with(&[(PARTITION_ENV, "full")]).partition.is_none());
        assert!(with(&[(PARTITION_ENV, "  ")]).partition.is_none());
        // Explicit solo-tenant spelling normalizes to the bare token.
        assert_eq!(
            with(&[(PARTITION_ENV, "1of2x1")])
                .partition
                .map(|p| p.to_string())
                .as_deref(),
            Some("1of2")
        );
        // Garbage is a typed error under strict resolution (the CLI path)
        // and a logged fallback under the lenient one.
        for bad in ["1of3", "2of4", "1of4x9", "half"] {
            let err = try_with(&[(PARTITION_ENV, bad)]).unwrap_err();
            assert!(
                matches!(&err, ConfigError::BadKnob { name, .. } if *name == PARTITION_ENV),
                "{bad}: {err}"
            );
            assert!(with(&[(PARTITION_ENV, bad)]).partition.is_none());
        }
    }

    #[test]
    fn runs_knob_clamps_to_the_sane_window() {
        assert_eq!(with(&[(RUNS_ENV, "8")]).runs, 8);
        assert_eq!(with(&[(RUNS_ENV, "512")]).runs, 512);
        // Zero, negatives, absurd counts, and garbage all fall back to 1.
        assert_eq!(with(&[(RUNS_ENV, "0")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "-4")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "513")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "many")]).runs, 1);
    }
}
