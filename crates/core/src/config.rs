//! One typed view of every `MLPERF_*` environment knob.
//!
//! Until this module, each subsystem read its own knobs straight from the
//! environment at whatever moment it was constructed — the pool read
//! `MLPERF_JOBS`, the context read `MLPERF_FASTPATH`, the persistent
//! cache read `MLPERF_CACHE`/`MLPERF_CACHE_DIR` (and peeked at
//! `MLPERF_CHAOS`), and the resilience layer read the rest. That worked
//! for a batch CLI where everything is constructed once, but a long-lived
//! `repro serve` daemon needs *one* configuration resolved at startup and
//! then explicit per-request overrides — never a mid-flight env read that
//! could split the server's view of its own knobs.
//!
//! [`Config::from_env`] resolves every knob exactly once; the legacy
//! `from_env` constructors ([`Pool::from_env`](crate::runner::Pool),
//! [`Ctx::new`](crate::runner::Ctx),
//! [`DiskCache::from_env`](crate::sweep::DiskCache),
//! [`ResilienceConfig::from_env`](crate::runner::ResilienceConfig)) all
//! delegate here, so there is a single parsing truth. Parsing is pure
//! ([`Config::resolve`] takes the lookup as a closure), which is what the
//! unit tests drive — tests must not mutate the process environment,
//! because the suite runs multi-threaded.

use crate::runner::{
    ChaosSpec, CHAOS_ATTEMPTS_ENV, CHAOS_ENV, FASTPATH_ENV, JOBS_ENV, RETRIES_ENV,
    RUNS_ENV, STEP_BUDGET_ENV, STRICT_ENV,
};
use crate::sweep::cache::{CACHE_DIR_ENV, CACHE_ENV, DEFAULT_CACHE_DIR};
use crate::sweep::MAX_RUNS;
use std::path::PathBuf;

/// Every `MLPERF_*` knob, resolved once.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker-thread count (`MLPERF_JOBS`, else `available_parallelism`).
    pub jobs: usize,
    /// Whether the persistent result cache is enabled (`MLPERF_CACHE` not
    /// `off`/`0`, and no chaos injection active — injected failures must
    /// never be masked by warm entries).
    pub cache_enabled: bool,
    /// Persistent-cache directory (`MLPERF_CACHE_DIR`, else
    /// `artifacts/cache`).
    pub cache_dir: PathBuf,
    /// Whether the engine's analytic fast path may be attempted
    /// (`MLPERF_FASTPATH` not `off`/`0`/`false`/`no`). Output bytes are
    /// identical either way; this only trades throughput.
    pub fastpath: bool,
    /// Per-experiment (and, for the server, per-client) simulation-request
    /// budget (`MLPERF_STEP_BUDGET`). Counted in requests, never
    /// wall-clock, so verdicts are deterministic.
    pub step_budget: Option<u64>,
    /// Fail-fast mode (`MLPERF_STRICT=1`).
    pub strict: bool,
    /// Retry-count override for transient failures (`MLPERF_RETRIES`);
    /// ignored under strict mode, which forces zero retries.
    pub retries: Option<u32>,
    /// Deterministic chaos injection (`MLPERF_CHAOS`,
    /// `MLPERF_CHAOS_ATTEMPTS`), if configured.
    pub chaos: Option<ChaosSpec>,
    /// Seeded runs per Training cell (`MLPERF_RUNS`, clamped to
    /// 1..=[`MAX_RUNS`]; default 1 = point pricing with no replication
    /// columns, byte-identical to the pre-replication suite).
    pub runs: u32,
}

impl Config {
    /// Resolve every knob from the process environment, once.
    pub fn from_env() -> Config {
        Config::resolve(|name| std::env::var(name).ok())
    }

    /// Resolve every knob through `get` (the pure core of
    /// [`Config::from_env`]; tests inject a map instead of mutating the
    /// process environment).
    pub fn resolve(get: impl Fn(&str) -> Option<String>) -> Config {
        let jobs = get(JOBS_ENV)
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let chaos = get(CHAOS_ENV).and_then(|target| {
            let target = target.trim().to_string();
            if target.is_empty() {
                return None;
            }
            let attempts = get(CHAOS_ATTEMPTS_ENV)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map_or(u32::MAX, |n| n.min(u64::from(u32::MAX)) as u32);
            Some(ChaosSpec { target, attempts })
        });
        let cache_enabled = !get(CACHE_ENV).is_some_and(|v| matches!(v.trim(), "off" | "0"))
            && chaos.is_none();
        let cache_dir = get(CACHE_DIR_ENV)
            .map_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR), PathBuf::from);
        let fastpath = !get(FASTPATH_ENV).is_some_and(|v| {
            matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            )
        });
        let step_budget = get(STEP_BUDGET_ENV).and_then(|v| v.trim().parse::<u64>().ok());
        let strict = get(STRICT_ENV).is_some_and(|v| v.trim() == "1");
        let retries = get(RETRIES_ENV)
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|n| n.min(u64::from(u32::MAX)) as u32);
        let runs = get(RUNS_ENV)
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|n| (1..=MAX_RUNS).contains(n))
            .unwrap_or(1);
        Config {
            jobs,
            cache_enabled,
            cache_dir,
            fastpath,
            step_budget,
            strict,
            retries,
            chaos,
            runs,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::resolve(|_| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with(pairs: &[(&str, &str)]) -> Config {
        let pairs: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Config::resolve(move |name| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        })
    }

    #[test]
    fn empty_environment_gives_defaults() {
        let cfg = with(&[]);
        assert!(cfg.jobs >= 1);
        assert!(cfg.cache_enabled);
        assert_eq!(cfg.cache_dir, PathBuf::from(DEFAULT_CACHE_DIR));
        assert!(cfg.fastpath);
        assert_eq!(cfg.step_budget, None);
        assert!(!cfg.strict);
        assert_eq!(cfg.retries, None);
        assert!(cfg.chaos.is_none());
        assert_eq!(cfg.runs, 1, "default is point pricing");
    }

    #[test]
    fn every_knob_parses() {
        let cfg = with(&[
            (JOBS_ENV, "3"),
            (CACHE_ENV, "on"),
            (CACHE_DIR_ENV, "/tmp/alt"),
            (FASTPATH_ENV, "off"),
            (STEP_BUDGET_ENV, "250"),
            (STRICT_ENV, "1"),
            (RETRIES_ENV, "7"),
            (RUNS_ENV, "8"),
        ]);
        assert_eq!(cfg.jobs, 3);
        assert!(cfg.cache_enabled);
        assert_eq!(cfg.cache_dir, PathBuf::from("/tmp/alt"));
        assert!(!cfg.fastpath);
        assert_eq!(cfg.step_budget, Some(250));
        assert!(cfg.strict);
        assert_eq!(cfg.retries, Some(7));
        assert_eq!(cfg.runs, 8);
    }

    #[test]
    fn cache_disables_on_off_or_chaos() {
        assert!(!with(&[(CACHE_ENV, "off")]).cache_enabled);
        assert!(!with(&[(CACHE_ENV, "0")]).cache_enabled);
        let chaotic = with(&[(CHAOS_ENV, "figure3"), (CHAOS_ATTEMPTS_ENV, "2")]);
        assert!(!chaotic.cache_enabled, "chaos runs must not read warm entries");
        let chaos = chaotic.chaos.expect("chaos spec parsed");
        assert_eq!(chaos.target, "figure3");
        assert_eq!(chaos.attempts, 2);
        // A blank chaos target is no chaos at all.
        assert!(with(&[(CHAOS_ENV, "  ")]).chaos.is_none());
    }

    #[test]
    fn malformed_values_fall_back() {
        let cfg = with(&[
            (JOBS_ENV, "0"),
            (STEP_BUDGET_ENV, "lots"),
            (RETRIES_ENV, "-1"),
        ]);
        assert!(cfg.jobs >= 1, "non-positive job count is ignored");
        assert_eq!(cfg.step_budget, None);
        assert_eq!(cfg.retries, None);
    }

    #[test]
    fn runs_knob_clamps_to_the_sane_window() {
        assert_eq!(with(&[(RUNS_ENV, "8")]).runs, 8);
        assert_eq!(with(&[(RUNS_ENV, "512")]).runs, 512);
        // Zero, negatives, absurd counts, and garbage all fall back to 1.
        assert_eq!(with(&[(RUNS_ENV, "0")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "-4")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "513")]).runs, 1);
        assert_eq!(with(&[(RUNS_ENV, "many")]).runs, 1);
    }
}
