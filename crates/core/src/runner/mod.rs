//! The parallel memoized experiment executor.
//!
//! The paper's artifacts (Tables II–V, Figures 1–5, the validation
//! scorecard, and the extension studies) used to be regenerated as fifteen
//! strictly-serial `run()` calls that re-simulated overlapping
//! (benchmark × system × gpu-set × precision) points many times — Table IV,
//! Figure 4, the cluster study, and the energy study all need the same
//! DSS-8440 scaling sweep, and validation re-derived three whole tables.
//! This module fixes that structurally:
//!
//! * [`Pool`] — a zero-dependency scoped-thread work-stealing pool;
//! * [`ShardedCache`] — a compute-once memo cache keyed by [`RunKey`], so
//!   each simulation point is priced exactly once per report;
//! * [`Experiment`] — the one trait every experiment module implements;
//! * [`execute`] — topological scheduling of an experiment DAG onto the
//!   pool, with output assembled in declaration order.
//!
//! **Determinism policy.** Report and CSV bytes must be identical for any
//! worker count (`MLPERF_JOBS=1` vs `=N`), so nothing nondeterministic may
//! flow into rendered output: results are assembled in declaration order,
//! cache hit/miss counts are scheduling-invariant (see [`memo`]'s module
//! docs), and per-experiment wall-clock — inherently nondeterministic —
//! stays in [`ExecutorStats`], which is surfaced on stderr and in the
//! bench JSON, never in the report body. DESIGN.md "Execution model" is
//! the long-form writeup.

mod memo;
mod pool;

pub use memo::ShardedCache;
pub use pool::{Pool, JOBS_ENV};

use crate::benchmark::BenchmarkId;
use crate::experiments::{
    batch_sweep, cluster_study, energy_cost, fault_study, figure1, figure2, figure3, figure4,
    figure5, storage_study, table1, table2, table3, table4, table5,
};
use crate::workloads::{self, WorkloadRun, WorkloadSpec};
use crate::{sensitivity, validation};
use mlperf_hw::systems::SystemId;
use mlperf_models::PrecisionPolicy;
use mlperf_sim::engine::{RunSpec, SimError, Simulator, StepReport};
use mlperf_sim::training::{outcome_from_step, train, TrainingOutcome};
use mlperf_sim::TrainingJob;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The identity of one memoized simulation point.
///
/// Every field that changes the engine's answer is part of the key; the
/// batch and precision are the *effective* values after job-builder
/// overrides, so e.g. Figure 3's first AMP attempt at the default batch
/// shares the cache entry with Table IV's plain scaling run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The benchmark whose job is simulated.
    pub benchmark: BenchmarkId,
    /// Whether the FP32 reference implementation's job is used.
    pub reference: bool,
    /// The platform.
    pub system: SystemId,
    /// GPU ordinals, in order.
    pub gpu_set: Vec<u32>,
    /// Effective precision policy of the job.
    pub precision: PrecisionPolicy,
    /// Effective per-GPU batch before the engine's global-batch cap.
    pub per_gpu_batch: u64,
    /// Simulation window `(warmup, measured)` iterations.
    pub window: (u64, u64),
}

/// A memoizable training-simulation request: a benchmark's (possibly
/// adjusted) job on the first `gpus` GPUs of a platform.
#[derive(Debug, Clone)]
pub struct TrainPoint {
    benchmark: BenchmarkId,
    reference: bool,
    system: SystemId,
    gpus: u32,
    precision: Option<PrecisionPolicy>,
    per_gpu_batch: Option<u64>,
}

impl TrainPoint {
    /// The benchmark's tuned job on the first `gpus` GPUs of `system`.
    pub fn new(benchmark: BenchmarkId, system: SystemId, gpus: u32) -> Self {
        TrainPoint {
            benchmark,
            reference: false,
            system,
            gpus,
            precision: None,
            per_gpu_batch: None,
        }
    }

    /// The benchmark's FP32 reference-implementation job instead.
    pub fn reference(benchmark: BenchmarkId, system: SystemId, gpus: u32) -> Self {
        TrainPoint {
            reference: true,
            ..TrainPoint::new(benchmark, system, gpus)
        }
    }

    /// Override the precision policy.
    #[must_use]
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Override the per-GPU batch size.
    #[must_use]
    pub fn with_per_gpu_batch(mut self, batch: u64) -> Self {
        self.per_gpu_batch = Some(batch);
        self
    }

    /// Materialize the training job this point describes.
    fn job(&self) -> TrainingJob {
        let mut job = if self.reference {
            self.benchmark.reference_job()
        } else {
            self.benchmark.job()
        };
        if let Some(p) = self.precision {
            job = job.with_precision(p);
        }
        if let Some(b) = self.per_gpu_batch {
            job = job.with_per_gpu_batch(b);
        }
        job
    }

    /// The cache key, with overrides resolved to effective values.
    fn key(&self, job: &TrainingJob, window: (u64, u64)) -> RunKey {
        RunKey {
            benchmark: self.benchmark,
            reference: self.reference,
            system: self.system,
            gpu_set: (0..self.gpus).collect(),
            precision: job.precision(),
            per_gpu_batch: job.per_gpu_batch(),
            window,
        }
    }
}

/// Key for memoized DeepBench kernel-loop runs (no job to derive a
/// [`RunKey`] from; the tuple below is the whole identity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct KernelKey {
    id: crate::workloads::DeepBenchId,
    system: SystemId,
    gpus: u32,
}

/// Cache counters, scheduling-invariant by construction (compute-once
/// caches over a fixed request set — see [`memo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Training-step requests answered from the memo cache.
    pub step_hits: u64,
    /// Training-step points actually priced by the engine.
    pub step_misses: u64,
    /// Kernel-loop requests answered from the memo cache.
    pub kernel_hits: u64,
    /// Kernel loops actually priced.
    pub kernel_misses: u64,
    /// Requests that bypassed the cache (perturbed calibration knobs and
    /// other points with no stable key).
    pub uncached: u64,
}

impl CacheStats {
    /// Total cacheable requests (hits + misses, both caches).
    pub fn requests(&self) -> u64 {
        self.step_hits + self.step_misses + self.kernel_hits + self.kernel_misses
    }

    /// Requests answered without recomputation.
    pub fn hits(&self) -> u64 {
        self.step_hits + self.kernel_hits
    }

    /// Fraction of cacheable requests answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests() as f64
        }
    }
}

/// Shared execution context: the memo caches, the artifact store, and the
/// cache counters. One `Ctx` spans one report (or one standalone
/// experiment run); sharing it across experiments is what deduplicates
/// their overlapping simulation points.
pub struct Ctx {
    steps: ShardedCache<RunKey, Result<StepReport, SimError>>,
    kernels: ShardedCache<KernelKey, Result<WorkloadRun, SimError>>,
    artifacts: Mutex<HashMap<&'static str, Arc<Artifact>>>,
    uncached: AtomicU64,
    memoize: bool,
}

impl Ctx {
    /// A fresh memoizing context.
    pub fn new() -> Ctx {
        Ctx {
            steps: ShardedCache::new(),
            kernels: ShardedCache::new(),
            artifacts: Mutex::new(HashMap::new()),
            uncached: AtomicU64::new(0),
            memoize: true,
        }
    }

    /// A context that never memoizes — every request is recomputed. This
    /// exists for the executor bench's baseline (the legacy serial
    /// behaviour) and for A/B-testing the cache itself.
    pub fn without_memo() -> Ctx {
        Ctx {
            memoize: false,
            ..Ctx::new()
        }
    }

    /// The steady-state step report for a training point, memoized.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine (errors are memoized too:
    /// a point that OOMs once OOMs always).
    pub fn step(&self, point: &TrainPoint) -> Result<StepReport, SimError> {
        let job = point.job();
        self.step_for(point, &job)
    }

    /// The full training outcome for a point: the memoized step report
    /// composed with the closed-form convergence model.
    ///
    /// # Errors
    ///
    /// As [`Ctx::step`].
    pub fn outcome(&self, point: &TrainPoint) -> Result<TrainingOutcome, SimError> {
        let job = point.job();
        let step = self.step_for(point, &job)?;
        Ok(outcome_from_step(&job, step))
    }

    fn step_for(&self, point: &TrainPoint, job: &TrainingJob) -> Result<StepReport, SimError> {
        let simulate = || {
            let system = point.system.spec();
            Simulator::new(&system)
                .execute(&RunSpec::on_first(job.clone(), point.gpus))
                .map(|outcome| outcome.report)
        };
        if !self.memoize {
            self.uncached.fetch_add(1, Ordering::Relaxed);
            return simulate();
        }
        let system = point.system.spec();
        let window = Simulator::new(&system).window();
        self.steps.get_or_compute(point.key(job, window), simulate)
    }

    /// A characterized workload run (either suite), memoized.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`]; DeepBench misuse (multi-GPU compute
    /// kernels, absent GPUs) surfaces as [`SimError::BadGpuSet`].
    pub fn workload(
        &self,
        spec: WorkloadSpec,
        system: SystemId,
        gpus: u32,
    ) -> Result<WorkloadRun, SimError> {
        match spec {
            WorkloadSpec::Trainable(id) => {
                let outcome = self.outcome(&TrainPoint::new(id, system, gpus))?;
                Ok(workloads::trainable_from_outcome(
                    id,
                    &system.spec(),
                    &outcome,
                ))
            }
            WorkloadSpec::DeepBench(id) => {
                let compute = || workloads::run(spec, &system.spec(), gpus);
                if !self.memoize {
                    self.uncached.fetch_add(1, Ordering::Relaxed);
                    return compute();
                }
                self.kernels
                    .get_or_compute(KernelKey { id, system, gpus }, compute)
            }
        }
    }

    /// Train a hand-built job that has no stable cache identity (the
    /// sensitivity study's perturbed calibration knobs). Always computed;
    /// counted in [`CacheStats::uncached`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine.
    pub fn train_uncached(
        &self,
        system: SystemId,
        job: &TrainingJob,
        gpus: u32,
    ) -> Result<TrainingOutcome, SimError> {
        self.uncached.fetch_add(1, Ordering::Relaxed);
        let spec = system.spec();
        let sim = Simulator::new(&spec);
        let ordinals: Vec<u32> = (0..gpus).collect();
        train(&sim, job, &ordinals)
    }

    /// A completed dependency's artifact, if the executor stored one.
    pub fn artifact(&self, id: &str) -> Option<Arc<Artifact>> {
        lock(&self.artifacts).get(id).cloned()
    }

    fn store_artifact(&self, id: &'static str, artifact: Arc<Artifact>) {
        lock(&self.artifacts).insert(id, artifact);
    }

    /// Fetch a dependency's result from the artifact store, or recompute
    /// it through this context (cheap: the underlying simulation points
    /// are already memoized) when the experiment runs standalone.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the fallback computation.
    pub fn dep_or<T: Clone>(
        &self,
        id: &'static str,
        extract: impl Fn(&Artifact) -> Option<&T>,
        compute: impl FnOnce(&Ctx) -> Result<T, SimError>,
    ) -> Result<T, SimError> {
        if self.memoize {
            if let Some(artifact) = self.artifact(id) {
                if let Some(value) = extract(&artifact) {
                    return Ok(value.clone());
                }
            }
        }
        compute(self)
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            step_hits: self.steps.hits(),
            step_misses: self.steps.misses(),
            kernel_hits: self.kernels.hits(),
            kernel_misses: self.kernels.misses(),
            uncached: self.uncached.load(Ordering::Relaxed),
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// The typed result of one experiment, stored by the executor so
/// dependents ([`Experiment::deps`]) can consume it without re-running.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Cross-cutting insights (Table I).
    Table1(table1::Table1),
    /// The benchmark registry table is static — nothing to compute.
    Table2,
    /// The platform table is static — nothing to compute.
    Table3,
    /// Training-time scaling (Table IV).
    Table4(table4::Table4),
    /// Resource-utilization table (Table V).
    Table5(table5::Table5),
    /// PCA workload characterization (Figure 1).
    Figure1(figure1::Figure1),
    /// Roofline placement (Figure 2).
    Figure2(figure2::Figure2),
    /// AMP speedups (Figure 3).
    Figure3(figure3::Figure3),
    /// Multi-job scheduling study (Figure 4).
    Figure4(figure4::Figure4),
    /// Topology sensitivity (Figure 5).
    Figure5(figure5::Figure5),
    /// Paper-anchor validation scorecard.
    Validation(validation::Validation),
    /// Calibration-knob sensitivity study.
    Sensitivity(sensitivity::Sensitivity),
    /// Cluster scheduling-policy study.
    Cluster(cluster_study::ClusterStudy),
    /// Energy & cost extension study.
    Energy(energy_cost::EnergyCost),
    /// Storage staging extension study.
    Storage(Vec<storage_study::StorageRow>),
    /// Batch-size sweep extension study.
    BatchSweep(batch_sweep::BatchSweep),
    /// Fault-injection / checkpoint-restart extension study.
    Fault(fault_study::FaultStudy),
}

impl Artifact {
    /// The variant's name, for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Artifact::Table1(_) => "table1",
            Artifact::Table2 => "table2",
            Artifact::Table3 => "table3",
            Artifact::Table4(_) => "table4",
            Artifact::Table5(_) => "table5",
            Artifact::Figure1(_) => "figure1",
            Artifact::Figure2(_) => "figure2",
            Artifact::Figure3(_) => "figure3",
            Artifact::Figure4(_) => "figure4",
            Artifact::Figure5(_) => "figure5",
            Artifact::Validation(_) => "validation",
            Artifact::Sensitivity(_) => "sensitivity",
            Artifact::Cluster(_) => "cluster_study",
            Artifact::Energy(_) => "energy_cost",
            Artifact::Storage(_) => "storage_study",
            Artifact::BatchSweep(_) => "batch_sweep",
            Artifact::Fault(_) => "fault_study",
        }
    }

    /// The Table IV payload, if that is what this artifact holds.
    pub fn as_table4(&self) -> Option<&table4::Table4> {
        match self {
            Artifact::Table4(t) => Some(t),
            _ => None,
        }
    }

    /// The Table V payload, if that is what this artifact holds.
    pub fn as_table5(&self) -> Option<&table5::Table5> {
        match self {
            Artifact::Table5(t) => Some(t),
            _ => None,
        }
    }

    /// The Figure 1 payload, if that is what this artifact holds.
    pub fn as_figure1(&self) -> Option<&figure1::Figure1> {
        match self {
            Artifact::Figure1(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 2 payload, if that is what this artifact holds.
    pub fn as_figure2(&self) -> Option<&figure2::Figure2> {
        match self {
            Artifact::Figure2(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 3 payload, if that is what this artifact holds.
    pub fn as_figure3(&self) -> Option<&figure3::Figure3> {
        match self {
            Artifact::Figure3(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 4 payload, if that is what this artifact holds.
    pub fn as_figure4(&self) -> Option<&figure4::Figure4> {
        match self {
            Artifact::Figure4(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 5 payload, if that is what this artifact holds.
    pub fn as_figure5(&self) -> Option<&figure5::Figure5> {
        match self {
            Artifact::Figure5(f) => Some(f),
            _ => None,
        }
    }

    /// The fault-study payload, if that is what this artifact holds.
    pub fn as_fault(&self) -> Option<&fault_study::FaultStudy> {
        match self {
            Artifact::Fault(s) => Some(s),
            _ => None,
        }
    }
}

/// One experiment as the executor schedules it.
///
/// Implementations must keep `run` free of global state (everything
/// shared goes through the [`Ctx`]) and `render` a pure function of the
/// artifact — that is what makes the schedule's interleaving invisible in
/// the output.
pub trait Experiment: Sync {
    /// Stable identifier (artifact-store key and `deps` vocabulary).
    fn id(&self) -> &'static str;

    /// Human-readable title for the report appendix.
    fn title(&self) -> &'static str;

    /// Ids of experiments whose artifacts this one consumes. Dependencies
    /// not present in the submitted set are ignored (the consumer falls
    /// back to recomputing through the memoized [`Ctx`]).
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    /// Produce the experiment's artifact.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation points the experiment
    /// prices.
    fn run(&self, ctx: &Ctx) -> Result<Artifact, SimError>;

    /// Render the artifact to the report's text form.
    fn render(&self, artifact: &Artifact) -> String;
}

/// One scheduled experiment's output.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The experiment's id.
    pub id: &'static str,
    /// Display title.
    pub title: &'static str,
    /// Declared dependencies.
    pub deps: &'static [&'static str],
    /// The rendered section text.
    pub rendered: String,
    /// Wall-clock of `run` + `render` on the worker that executed it
    /// (nondeterministic; never rendered into report bytes).
    pub wall: Duration,
}

/// Executor instrumentation. Everything here except [`CacheStats`] is
/// wall-clock and therefore nondeterministic — it is surfaced on stderr
/// and in the bench JSON, never in the report body.
#[derive(Debug, Clone)]
pub struct ExecutorStats {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// End-to-end wall-clock of the whole DAG.
    pub total_wall: Duration,
    /// Per-experiment wall-clock, in declaration order.
    pub per_experiment: Vec<(&'static str, Duration)>,
    /// Cache counters (deterministic; also rendered in the appendix).
    pub cache: CacheStats,
}

impl ExecutorStats {
    /// A compact human-readable multi-line summary (for stderr).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "executor: {} experiments on {} worker(s) in {:.2}s; cache {}/{} hits ({:.0}%), {} uncached\n",
            self.per_experiment.len(),
            self.workers,
            self.total_wall.as_secs_f64(),
            self.cache.hits(),
            self.cache.requests(),
            self.cache.hit_rate() * 100.0,
            self.cache.uncached,
        ));
        for (id, wall) in &self.per_experiment {
            out.push_str(&format!("  {:>8.1} ms  {id}\n", wall.as_secs_f64() * 1e3));
        }
        out
    }
}

/// Everything [`execute`] produced.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Per-experiment outputs, in the order the experiments were given.
    pub reports: Vec<ExperimentReport>,
    /// Pool and cache instrumentation.
    pub stats: ExecutorStats,
}

/// Topologically schedule `experiments` onto `pool`, sharing `ctx`'s memo
/// caches, and assemble the rendered outputs in declaration order.
///
/// An experiment whose dependency failed is skipped and inherits the
/// dependency's error; the first error in declaration order is returned.
///
/// # Errors
///
/// The first [`SimError`] any experiment produced, in declaration order.
///
/// # Panics
///
/// Re-raises experiment panics (via [`Pool::run_dag`]) and panics on
/// duplicate experiment ids.
pub fn execute(
    pool: &Pool,
    ctx: &Ctx,
    experiments: &[&dyn Experiment],
) -> Result<Execution, SimError> {
    let index: HashMap<&str, usize> = experiments
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id(), i))
        .collect();
    assert_eq!(index.len(), experiments.len(), "duplicate experiment ids");
    // Dependencies outside the submitted set are dropped: the consumer's
    // `dep_or` fallback recomputes through the shared memo cache instead.
    let deps: Vec<Vec<usize>> = experiments
        .iter()
        .map(|e| e.deps().iter().filter_map(|d| index.get(d).copied()).collect())
        .collect();
    let failed: Mutex<HashMap<&'static str, SimError>> = Mutex::new(HashMap::new());
    let started = Instant::now();
    let tasks: Vec<_> = experiments
        .iter()
        .map(|&e| {
            let failed = &failed;
            move || -> (Result<String, SimError>, Duration) {
                for dep in e.deps() {
                    if let Some(err) = lock(failed).get(dep) {
                        let err = err.clone();
                        lock(failed).insert(e.id(), err.clone());
                        return (Err(err), Duration::ZERO);
                    }
                }
                let t0 = Instant::now();
                match e.run(ctx) {
                    Ok(artifact) => {
                        let artifact = Arc::new(artifact);
                        ctx.store_artifact(e.id(), Arc::clone(&artifact));
                        let rendered = e.render(&artifact);
                        (Ok(rendered), t0.elapsed())
                    }
                    Err(err) => {
                        lock(failed).insert(e.id(), err.clone());
                        (Err(err), t0.elapsed())
                    }
                }
            }
        })
        .collect();
    let outputs = pool.run_dag(tasks, &deps);
    let total_wall = started.elapsed();

    let mut reports = Vec::with_capacity(outputs.len());
    let mut first_error = None;
    for (e, (result, wall)) in experiments.iter().zip(outputs) {
        match result {
            Ok(rendered) => reports.push(ExperimentReport {
                id: e.id(),
                title: e.title(),
                deps: e.deps(),
                rendered,
                wall,
            }),
            Err(err) => {
                if first_error.is_none() {
                    first_error = Some(err);
                }
            }
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }
    let stats = ExecutorStats {
        workers: pool.workers(),
        total_wall,
        per_experiment: reports.iter().map(|r| (r.id, r.wall)).collect(),
        cache: ctx.cache_stats(),
    };
    Ok(Execution { reports, stats })
}

/// The sixteen experiments of the full report, in the report's output
/// order (Table I is a synthesis layer on top and not part of the report
/// body — see [`all_experiments`]).
pub fn report_experiments() -> Vec<&'static dyn Experiment> {
    vec![
        &table2::Exp,
        &table3::Exp,
        &table4::Exp,
        &table5::Exp,
        &figure1::Exp,
        &figure2::Exp,
        &figure3::Exp,
        &figure4::Exp,
        &figure5::Exp,
        &validation::Exp,
        &sensitivity::Exp,
        &cluster_study::Exp,
        &energy_cost::Exp,
        &storage_study::Exp,
        &batch_sweep::Exp,
        &fault_study::Exp,
    ]
}

/// Every experiment, Table I included.
pub fn all_experiments() -> Vec<&'static dyn Experiment> {
    let mut all: Vec<&'static dyn Experiment> = vec![&table1::Exp];
    all.extend(report_experiments());
    all
}
