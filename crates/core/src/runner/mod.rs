//! The parallel memoized experiment executor.
//!
//! The paper's artifacts (Tables II–V, Figures 1–5, the validation
//! scorecard, and the extension studies) used to be regenerated as fifteen
//! strictly-serial `run()` calls that re-simulated overlapping
//! (benchmark × system × gpu-set × precision) points many times — Table IV,
//! Figure 4, the cluster study, and the energy study all need the same
//! DSS-8440 scaling sweep, and validation re-derived three whole tables.
//! This module fixes that structurally:
//!
//! * [`Pool`] — a zero-dependency scoped-thread work-stealing pool;
//! * [`ShardedCache`] — a compute-once memo cache keyed by [`RunKey`], so
//!   each simulation point is priced exactly once per report;
//! * [`Experiment`] — the one trait every experiment module implements;
//! * [`execute`] — topological scheduling of an experiment DAG onto the
//!   pool, with output assembled in declaration order (strict,
//!   fail-fast);
//! * [`execute_resilient`] — the same schedule with full failure
//!   isolation: panics, budget trips, and non-finite outputs become
//!   typed [`ExperimentError`]s, transient failures retry with seeded
//!   recorded backoff, dependents of a failure degrade as
//!   [`ExperimentError::DependencyFailed`], and every independent
//!   subgraph still completes (see [`ResilienceConfig`]).
//!
//! **Determinism policy.** Report and CSV bytes must be identical for any
//! worker count (`MLPERF_JOBS=1` vs `=N`), so nothing nondeterministic may
//! flow into rendered output: results are assembled in declaration order,
//! cache hit/miss counts are scheduling-invariant (see [`memo`]'s module
//! docs), and per-experiment wall-clock — inherently nondeterministic —
//! stays in [`ExecutorStats`], which is surfaced on stderr and in the
//! bench JSON, never in the report body. DESIGN.md "Execution model" is
//! the long-form writeup.

mod error;
mod memo;
mod pool;

pub use error::{fnv1a64, BudgetExceeded, ExperimentError};
pub(crate) use error::panic_message as panic_payload_message;
pub use memo::ShardedCache;
pub use pool::{Pool, TaskFailure, JOBS_ENV};

use crate::benchmark::BenchmarkId;
use crate::experiments::{
    batch_sweep, cluster_study, colocation_study, energy_cost, fault_study, figure1, figure2,
    figure3, figure4, figure5, partition_study, storage_study, table1, table2, table3, table4,
    table5, variance_decomposition,
};
use crate::workloads::{self, WorkloadRun, WorkloadSpec};
use crate::{sensitivity, validation};
use mlperf_analysis::roofline::RooflineModel;
use mlperf_hw::systems::{SystemId, SystemSpec};
use mlperf_hw::{PartitionSpec, Precision};
use mlperf_models::PrecisionPolicy;
use error::panic_message;
use mlperf_sim::engine::{RunSpec, SimError, Simulator, StepReport};
use mlperf_sim::training::{outcome_from_step, train, TrainingOutcome};
use mlperf_sim::TrainingJob;
use mlperf_testkit::rng::Rng;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The identity of one memoized simulation point.
///
/// Every field that changes the engine's answer is part of the key; the
/// batch and precision are the *effective* values after job-builder
/// overrides, so e.g. Figure 3's first AMP attempt at the default batch
/// shares the cache entry with Table IV's plain scaling run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The benchmark whose job is simulated.
    pub benchmark: BenchmarkId,
    /// Whether the FP32 reference implementation's job is used.
    pub reference: bool,
    /// The platform.
    pub system: SystemId,
    /// GPU ordinals, in order.
    pub gpu_set: Vec<u32>,
    /// Effective precision policy of the job.
    pub precision: PrecisionPolicy,
    /// Effective per-GPU batch before the engine's global-batch cap.
    pub per_gpu_batch: u64,
    /// Simulation window `(warmup, measured)` iterations.
    pub window: (u64, u64),
    /// Fractional-device partition the job runs inside, if any (`None`
    /// keys exactly as every pre-partition entry did).
    pub partition: Option<PartitionSpec>,
}

/// A memoizable training-simulation request: a benchmark's (possibly
/// adjusted) job on the first `gpus` GPUs of a platform.
#[derive(Debug, Clone)]
pub struct TrainPoint {
    benchmark: BenchmarkId,
    reference: bool,
    system: SystemId,
    gpus: u32,
    precision: Option<PrecisionPolicy>,
    per_gpu_batch: Option<u64>,
    partition: Option<PartitionSpec>,
}

impl TrainPoint {
    /// The benchmark's tuned job on the first `gpus` GPUs of `system`.
    pub fn new(benchmark: BenchmarkId, system: SystemId, gpus: u32) -> Self {
        TrainPoint {
            benchmark,
            reference: false,
            system,
            gpus,
            precision: None,
            per_gpu_batch: None,
            partition: None,
        }
    }

    /// The benchmark's FP32 reference-implementation job instead.
    pub fn reference(benchmark: BenchmarkId, system: SystemId, gpus: u32) -> Self {
        TrainPoint {
            reference: true,
            ..TrainPoint::new(benchmark, system, gpus)
        }
    }

    /// Override the precision policy.
    #[must_use]
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Override the per-GPU batch size.
    #[must_use]
    pub fn with_per_gpu_batch(mut self, batch: u64) -> Self {
        self.per_gpu_batch = Some(batch);
        self
    }

    /// Run the job inside a fractional-device partition (`None` — the
    /// default — is the whole device, and keys identically to a point
    /// built before partitioning existed).
    #[must_use]
    pub fn with_partition(mut self, partition: Option<PartitionSpec>) -> Self {
        self.partition = partition;
        self
    }

    /// The cache key, with overrides resolved to effective values.
    fn key(&self, job: &TrainingJob, window: (u64, u64)) -> RunKey {
        RunKey {
            benchmark: self.benchmark,
            reference: self.reference,
            system: self.system,
            gpu_set: (0..self.gpus).collect(),
            precision: job.precision(),
            per_gpu_batch: job.per_gpu_batch(),
            window,
            partition: job.partition(),
        }
    }
}

/// Key for memoized DeepBench kernel-loop runs (no job to derive a
/// [`RunKey`] from; the tuple below is the whole identity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct KernelKey {
    id: crate::workloads::DeepBenchId,
    system: SystemId,
    gpus: u32,
}

/// Cache counters, scheduling-invariant by construction (compute-once
/// caches over a fixed request set — see [`memo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Training-step requests answered from the memo cache.
    pub step_hits: u64,
    /// Training-step points actually priced by the engine.
    pub step_misses: u64,
    /// Kernel-loop requests answered from the memo cache.
    pub kernel_hits: u64,
    /// Kernel loops actually priced.
    pub kernel_misses: u64,
    /// Requests that bypassed the cache (perturbed calibration knobs and
    /// other points with no stable key).
    pub uncached: u64,
}

impl CacheStats {
    /// Total cacheable requests (hits + misses, both caches).
    pub fn requests(&self) -> u64 {
        self.step_hits + self.step_misses + self.kernel_hits + self.kernel_misses
    }

    /// Requests answered without recomputation.
    pub fn hits(&self) -> u64 {
        self.step_hits + self.kernel_hits
    }

    /// Fraction of cacheable requests answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests() as f64
        }
    }
}

/// Key of one roofline pre-screen verdict: (benchmark, reference,
/// system, precision, gpus, partition).
type ScreenKey = (
    BenchmarkId,
    bool,
    SystemId,
    PrecisionPolicy,
    u32,
    Option<PartitionSpec>,
);

/// Shared execution context: the memo caches, the artifact store, and the
/// cache counters. One `Ctx` spans one report (or one standalone
/// experiment run); sharing it across experiments is what deduplicates
/// their overlapping simulation points.
pub struct Ctx {
    steps: ShardedCache<RunKey, Result<StepReport, SimError>>,
    kernels: ShardedCache<KernelKey, Result<WorkloadRun, SimError>>,
    artifacts: Mutex<HashMap<&'static str, Arc<Artifact>>>,
    uncached: AtomicU64,
    memoize: bool,
    /// Armed per worker thread by the executor around each experiment
    /// attempt; every simulation request charges one unit against it.
    budgets: Mutex<HashMap<ThreadId, BudgetCell>>,
    /// Sticky flag: set the first time any thread arms a budget, never
    /// cleared. Lets [`Ctx::charge`] skip the budget lock entirely in
    /// the common budget-free case (it runs once per priced sweep cell).
    budget_armed: AtomicBool,
    /// Interned platform specs: building a [`SystemSpec`] walks the whole
    /// topology, which a million-cell sweep must not repeat per cell.
    systems: Mutex<HashMap<SystemId, Arc<SystemSpec>>>,
    /// Interned benchmark template jobs (tuned and reference): cloning a
    /// template is an `Arc` bump on the model graph, where rebuilding one
    /// re-allocates the whole operator list per cell.
    templates: Mutex<HashMap<(BenchmarkId, bool), Arc<TrainingJob>>>,
    /// Whether the engine's analytic fast path may be attempted at all
    /// (the `MLPERF_FASTPATH=off` escape hatch).
    fastpath: bool,
    /// Roofline pre-screen verdicts, one per (benchmark, reference,
    /// system, precision, gpus) combo — batch-independent by construction
    /// so the cached verdict is scheduling-invariant.
    fast_screen: Mutex<HashMap<ScreenKey, bool>>,
    /// Unique simulation points that attempted the analytic fast path.
    fast_attempts: AtomicU64,
    /// Unique simulation points the fast path actually priced.
    fast_hits: AtomicU64,
    /// How many seeded runs each Training cell replicates (the
    /// `MLPERF_RUNS` resolution; 1 = point pricing, no extra columns).
    runs: u32,
}

/// One armed step budget (see [`Ctx::charge`]).
#[derive(Debug, Clone, Copy)]
struct BudgetCell {
    used: u64,
    budget: u64,
}

/// RAII guard of [`Ctx::suspend_budget`]: re-arms the suspended budget
/// cell (units charged included) when dropped, panic or not.
pub(crate) struct BudgetSuspension<'a> {
    ctx: &'a Ctx,
    cell: Option<BudgetCell>,
}

impl Drop for BudgetSuspension<'_> {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            lock(&self.ctx.budgets).insert(std::thread::current().id(), cell);
        }
    }
}

impl Ctx {
    /// A fresh memoizing context. The analytic fast path is on unless
    /// [`FASTPATH_ENV`] says otherwise (the knob is resolved through
    /// [`Config::from_env`](crate::config::Config::from_env), the single
    /// parsing truth for every `MLPERF_*` variable).
    pub fn new() -> Ctx {
        Ctx::from_config(&crate::config::Config::from_env())
    }

    /// A fresh memoizing context under an explicitly resolved [`Config`]
    /// (what a long-lived server constructs once at startup instead of
    /// re-reading the environment per request).
    ///
    /// [`Config`]: crate::config::Config
    pub fn from_config(cfg: &crate::config::Config) -> Ctx {
        let fastpath = cfg.fastpath;
        Ctx {
            steps: ShardedCache::new(),
            kernels: ShardedCache::new(),
            artifacts: Mutex::new(HashMap::new()),
            uncached: AtomicU64::new(0),
            memoize: true,
            budgets: Mutex::new(HashMap::new()),
            budget_armed: AtomicBool::new(false),
            systems: Mutex::new(HashMap::new()),
            templates: Mutex::new(HashMap::new()),
            fastpath,
            fast_screen: Mutex::new(HashMap::new()),
            fast_attempts: AtomicU64::new(0),
            fast_hits: AtomicU64::new(0),
            runs: cfg.runs.max(1),
        }
    }

    /// A context that never memoizes — every request is recomputed. This
    /// exists for the executor bench's baseline (the legacy serial
    /// behaviour) and for A/B-testing the cache itself.
    pub fn without_memo() -> Ctx {
        Ctx {
            memoize: false,
            ..Ctx::new()
        }
    }

    /// Force the analytic fast path on or off, overriding
    /// [`FASTPATH_ENV`]. The contract either way: identical output bytes
    /// (the fast path is exact and the differential batteries pin it);
    /// only the throughput changes.
    #[must_use]
    pub fn with_fastpath(mut self, enabled: bool) -> Ctx {
        self.fastpath = enabled;
        self
    }

    /// Override the per-cell replication count, normally resolved from
    /// [`RUNS_ENV`] through the one-shot `Config` (what tests and the
    /// variance experiment use to pin a run count independent of the
    /// environment).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero — a cell is always at least one run.
    #[must_use]
    pub fn with_runs(mut self, runs: u32) -> Ctx {
        assert!(runs >= 1, "a cell is always at least one run");
        self.runs = runs;
        self
    }

    /// The per-cell replication count this context prices sweeps at.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// `(attempted, priced)` counts for the analytic fast path, over
    /// unique simulation points that reached a verdict (error cells are
    /// excluded: both engines reject them in shared validation before
    /// either loop runs). Stderr-only instrumentation: never rendered
    /// into report bytes, which must not depend on the fast path being
    /// on or off.
    pub fn fast_stats(&self) -> (u64, u64) {
        (
            self.fast_attempts.load(Ordering::Relaxed),
            self.fast_hits.load(Ordering::Relaxed),
        )
    }

    /// The interned platform spec for `id`.
    pub fn system_spec(&self, id: SystemId) -> Arc<SystemSpec> {
        Arc::clone(
            lock(&self.systems)
                .entry(id)
                .or_insert_with(|| Arc::new(id.spec())),
        )
    }

    /// The interned template job for a benchmark (tuned or reference
    /// implementation), shared across every cell that starts from it.
    pub fn base_job(&self, benchmark: BenchmarkId, reference: bool) -> Arc<TrainingJob> {
        Arc::clone(
            lock(&self.templates)
                .entry((benchmark, reference))
                .or_insert_with(|| {
                    Arc::new(if reference {
                        benchmark.reference_job()
                    } else {
                        benchmark.job()
                    })
                }),
        )
    }

    /// Materialize a point's job from the interned template: an `Arc`
    /// bump plus the override clones, instead of rebuilding the model
    /// graph from the zoo per request. `pub(crate)` for the serve layer's
    /// preflight admission check, which must price-check exactly the job
    /// the executor would run.
    pub(crate) fn job_for(&self, point: &TrainPoint) -> TrainingJob {
        let mut job = (*self.base_job(point.benchmark, point.reference)).clone();
        if let Some(p) = point.precision {
            job = job.with_precision(p);
        }
        if let Some(b) = point.per_gpu_batch {
            job = job.with_per_gpu_batch(b);
        }
        if point.partition.is_some() {
            job = job.with_partition(point.partition);
        }
        job
    }

    /// The steady-state step report for a training point, memoized.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine (errors are memoized too:
    /// a point that OOMs once OOMs always).
    pub fn step(&self, point: &TrainPoint) -> Result<StepReport, SimError> {
        let job = self.job_for(point);
        self.step_for(point, &job)
    }

    /// The full training outcome for a point: the memoized step report
    /// composed with the closed-form convergence model.
    ///
    /// # Errors
    ///
    /// As [`Ctx::step`].
    pub fn outcome(&self, point: &TrainPoint) -> Result<TrainingOutcome, SimError> {
        let job = self.job_for(point);
        let step = self.step_for(point, &job)?;
        Ok(outcome_from_step(&job, step))
    }

    /// The step report and the outcome derived from it, sharing one job
    /// materialization and one engine request — the sweep's per-cell lane
    /// (calling [`Ctx::step`] then [`Ctx::outcome`] costs two of each).
    /// Values are identical to the separate calls by construction.
    ///
    /// # Errors
    ///
    /// As [`Ctx::step`].
    pub fn step_and_outcome(
        &self,
        point: &TrainPoint,
    ) -> Result<(StepReport, TrainingOutcome), SimError> {
        let job = self.job_for(point);
        let step = self.step_for(point, &job)?;
        let outcome = outcome_from_step(&job, step.clone());
        Ok((step, outcome))
    }

    /// Arm a cooperative step budget for the calling thread: subsequent
    /// simulation requests from this thread charge against it until
    /// [`Ctx::disarm_budget`]. `pub(crate)` for the serve layer, which
    /// arms one budget per client connection.
    pub(crate) fn arm_budget(&self, budget: u64) {
        self.budget_armed.store(true, Ordering::Relaxed);
        lock(&self.budgets).insert(
            std::thread::current().id(),
            BudgetCell { used: 0, budget },
        );
    }

    /// Disarm the calling thread's budget, returning the units charged.
    pub(crate) fn disarm_budget(&self) -> u64 {
        lock(&self.budgets)
            .remove(&std::thread::current().id())
            .map_or(0, |c| c.used)
    }

    /// Re-limit the calling thread's armed budget, keeping the units
    /// already charged (the serve layer's per-request `budget` override:
    /// the client's spend so far stays on the meter). Arms a fresh budget
    /// if none is active.
    pub(crate) fn set_budget_limit(&self, budget: u64) {
        self.budget_armed.store(true, Ordering::Relaxed);
        lock(&self.budgets)
            .entry(std::thread::current().id())
            .and_modify(|c| c.budget = budget)
            .or_insert(BudgetCell { used: 0, budget });
    }

    /// Suspend the calling thread's budget until the guard drops. The
    /// serve layer charges a query's whole cost up front (one unit per
    /// cell, `len()` units per sweep) on the connection thread, then
    /// prices under this guard — so a cell priced inline (coalesce miss,
    /// or a single-worker pool running sweep cells on the caller) cannot
    /// double-charge the client, and the budget verdict stays a pure
    /// function of the client's own query sequence at any worker count.
    pub(crate) fn suspend_budget(&self) -> BudgetSuspension<'_> {
        let cell = lock(&self.budgets).remove(&std::thread::current().id());
        BudgetSuspension { ctx: self, cell }
    }

    /// Cooperative budget checkpoint: charge `n` simulation requests
    /// against the calling thread's armed budget, if any. Budgets count
    /// requests — not wall-clock — so the verdict is a pure function of
    /// the experiment, identical for any worker count or cache state.
    ///
    /// # Panics
    ///
    /// Throws a [`BudgetExceeded`] payload (via [`std::panic::panic_any`])
    /// when the budget trips; the executor's unwind boundary downcasts it
    /// into [`ExperimentError::DeadlineExceeded`].
    pub fn charge(&self, n: u64) {
        if !self.budget_armed.load(Ordering::Relaxed) {
            return;
        }
        let mut budgets = lock(&self.budgets);
        if let Some(cell) = budgets.get_mut(&std::thread::current().id()) {
            cell.used += n;
            if cell.used > cell.budget {
                let exceeded = BudgetExceeded {
                    used: cell.used,
                    budget: cell.budget,
                };
                drop(budgets);
                std::panic::panic_any(exceeded);
            }
        }
    }

    fn step_for(&self, point: &TrainPoint, job: &TrainingJob) -> Result<StepReport, SimError> {
        self.charge(1);
        let system = self.system_spec(point.system);
        let simulate = || {
            let sim = Simulator::new(&system);
            // The fast path runs *inside* the memo closure, so hit/miss
            // counters and memoization behavior are identical either way;
            // its result is bit-identical to `execute` by contract
            // (differentially pinned), so so are the cached bytes. The
            // borrowed entry point (`execute_fast_on`) skips the RunSpec:
            // no job clone and no GPU-set allocation per cell.
            if self.fastpath && self.fast_screen(point, job, &system) {
                let n = point.gpus as usize;
                let fast = if n <= 64 {
                    let mut ordinals = [0u32; 64];
                    for (i, slot) in ordinals.iter_mut().enumerate().take(n) {
                        *slot = i as u32;
                    }
                    sim.execute_fast_on(job, &ordinals[..n])
                } else {
                    sim.execute_fast(&RunSpec::on_first(job.clone(), point.gpus))
                };
                match fast {
                    Ok(Some(outcome)) => {
                        self.fast_attempts.fetch_add(1, Ordering::Relaxed);
                        self.fast_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(outcome.report);
                    }
                    // A decline counts as an attempt that missed; an error
                    // counts as neither — both engines reject the cell in
                    // shared validation before either loop runs, so error
                    // cells say nothing about fast-path coverage.
                    Ok(None) => {
                        self.fast_attempts.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => return Err(e),
                }
            }
            sim.execute(&RunSpec::on_first(job.clone(), point.gpus))
                .map(|outcome| outcome.report)
        };
        if !self.memoize {
            self.uncached.fetch_add(1, Ordering::Relaxed);
            return simulate();
        }
        let window = Simulator::new(&system).window();
        self.steps.get_or_compute(point.key(job, window), simulate)
    }

    /// Roofline pre-screen for the analytic fast path: worth attempting
    /// only when the template's device time (lower-bounded by the
    /// attainable roof) can plausibly cover the host's per-iteration feed
    /// work — i.e. the cell is compute- or bandwidth-bound, not
    /// host-bound. Soundness does not depend on this verdict: the engine
    /// re-proves eligibility exactly and declines otherwise; the screen
    /// only spares ineligible cells the warmup replay. The verdict is
    /// computed once per (benchmark, reference, system, precision, gpus)
    /// combo *at the template's own batch size*, so it is deterministic
    /// regardless of which cell of a sweep arrives first.
    fn fast_screen(&self, point: &TrainPoint, job: &TrainingJob, system: &SystemSpec) -> bool {
        let key = (
            point.benchmark,
            point.reference,
            point.system,
            job.precision(),
            point.gpus,
            job.partition(),
        );
        if let Some(&verdict) = lock(&self.fast_screen).get(&key) {
            return verdict;
        }
        let verdict = self.screen_verdict(point, job.precision(), system);
        lock(&self.fast_screen).insert(key, verdict);
        verdict
    }

    fn screen_verdict(
        &self,
        point: &TrainPoint,
        precision: PrecisionPolicy,
        system: &SystemSpec,
    ) -> bool {
        // Clone the interned template instead of rebuilding it from the
        // zoo — the verdict is per-combo, but a strided sweep can visit
        // hundreds of combos.
        let template =
            (*self.base_job(point.benchmark, point.reference)).clone().with_precision(precision);
        let k = point.gpus as u64;
        let batch = template.effective_per_gpu_batch(k.max(1));
        let pass = template
            .model()
            .pass_cost(batch, template.precision());
        let flops = pass.total_flops().as_u64();
        let bytes = pass.mem_bytes.as_u64();
        if flops == 0 || bytes == 0 {
            // Degenerate template; attempt the fast path and let the
            // engine's exact checks (and typed errors) decide.
            return true;
        }
        // Device-time lower bound from the attainable roof, at the
        // fastest ceiling the policy can reach — of the *slice* the job
        // runs inside, when the point is partitioned.
        let parent = system.gpu_model().spec();
        let gpu_spec = match point.partition {
            None => parent,
            Some(p) => match p.sliced_spec(&parent) {
                Ok(sliced) => sliced,
                // An invalid slice is a typed engine error either way;
                // attempt the fast path so both loops reject identically.
                Err(_) => return true,
            },
        };
        let roofline = RooflineModel::for_gpu(&gpu_spec);
        let roof_precision = match template.precision() {
            PrecisionPolicy::Amp => Precision::TensorCore,
            _ => Precision::Single,
        };
        let intensity = flops as f64 / bytes as f64;
        let attainable = roofline.attainable(intensity, roof_precision);
        let device_secs = flops as f64 / attainable.as_flops_per_sec();
        // Host feed upper bound per iteration: the whole loader chain
        // plus every GPU's H2D transfer as if they shared one uplink.
        let cpu = system.cpu_model().spec();
        let sockets = system.cpu_count() as f64;
        let pipeline = template.pipeline();
        let prep_secs =
            pipeline.host_time_per_batch(&cpu, batch).as_secs() / sockets * point.gpus as f64;
        let h2d = pipeline.h2d_bytes_per_batch(batch);
        let worst_uplink = (0..point.gpus)
            .filter_map(|g| {
                let path = system.topology().gpu_host_path(g).ok()?;
                path.links
                    .iter()
                    .map(|l| l.effective_bandwidth().as_bytes_per_sec())
                    .min_by(|a, b| a.partial_cmp(b).expect("finite bandwidths"))
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite bandwidths"));
        let Some(uplink) = worst_uplink else {
            // Unroutable or invalid GPU set: attempt the fast path so the
            // engine surfaces the identical typed error either way.
            return true;
        };
        let h2d_secs = h2d.as_u64() as f64 / uplink * point.gpus as f64;
        device_secs >= prep_secs + h2d_secs
    }

    /// A characterized workload run (either suite), memoized.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`]; DeepBench misuse (multi-GPU compute
    /// kernels, absent GPUs) surfaces as [`SimError::BadGpuSet`].
    pub fn workload(
        &self,
        spec: WorkloadSpec,
        system: SystemId,
        gpus: u32,
    ) -> Result<WorkloadRun, SimError> {
        match spec {
            WorkloadSpec::Trainable(id) => {
                let outcome = self.outcome(&TrainPoint::new(id, system, gpus))?;
                Ok(workloads::trainable_from_outcome(
                    id,
                    &self.system_spec(system),
                    &outcome,
                ))
            }
            WorkloadSpec::DeepBench(id) => {
                self.charge(1);
                let compute = || workloads::run(spec, &self.system_spec(system), gpus);
                if !self.memoize {
                    self.uncached.fetch_add(1, Ordering::Relaxed);
                    return compute();
                }
                self.kernels
                    .get_or_compute(KernelKey { id, system, gpus }, compute)
            }
        }
    }

    /// Train a hand-built job that has no stable cache identity (the
    /// sensitivity study's perturbed calibration knobs). Always computed;
    /// counted in [`CacheStats::uncached`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine.
    pub fn train_uncached(
        &self,
        system: SystemId,
        job: &TrainingJob,
        gpus: u32,
    ) -> Result<TrainingOutcome, SimError> {
        self.charge(1);
        self.uncached.fetch_add(1, Ordering::Relaxed);
        let spec = self.system_spec(system);
        let sim = Simulator::new(&spec);
        let ordinals: Vec<u32> = (0..gpus).collect();
        train(&sim, job, &ordinals)
    }

    /// A completed dependency's artifact, if the executor stored one.
    pub fn artifact(&self, id: &str) -> Option<Arc<Artifact>> {
        lock(&self.artifacts).get(id).cloned()
    }

    fn store_artifact(&self, id: &'static str, artifact: Arc<Artifact>) {
        lock(&self.artifacts).insert(id, artifact);
    }

    /// Fetch a dependency's result from the artifact store, or recompute
    /// it through this context (cheap: the underlying simulation points
    /// are already memoized) when the experiment runs standalone.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the fallback computation.
    pub fn dep_or<T: Clone>(
        &self,
        id: &'static str,
        extract: impl Fn(&Artifact) -> Option<&T>,
        compute: impl FnOnce(&Ctx) -> Result<T, SimError>,
    ) -> Result<T, SimError> {
        if self.memoize {
            if let Some(artifact) = self.artifact(id) {
                if let Some(value) = extract(&artifact) {
                    return Ok(value.clone());
                }
            }
        }
        compute(self)
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            step_hits: self.steps.hits(),
            step_misses: self.steps.misses(),
            kernel_hits: self.kernels.hits(),
            kernel_misses: self.kernels.misses(),
            uncached: self.uncached.load(Ordering::Relaxed),
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// The typed result of one experiment, stored by the executor so
/// dependents ([`Experiment::deps`]) can consume it without re-running.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Cross-cutting insights (Table I).
    Table1(table1::Table1),
    /// The benchmark registry table is static — nothing to compute.
    Table2,
    /// The platform table is static — nothing to compute.
    Table3,
    /// Training-time scaling (Table IV).
    Table4(table4::Table4),
    /// Resource-utilization table (Table V).
    Table5(table5::Table5),
    /// PCA workload characterization (Figure 1).
    Figure1(figure1::Figure1),
    /// Roofline placement (Figure 2).
    Figure2(figure2::Figure2),
    /// AMP speedups (Figure 3).
    Figure3(figure3::Figure3),
    /// Multi-job scheduling study (Figure 4).
    Figure4(figure4::Figure4),
    /// Topology sensitivity (Figure 5).
    Figure5(figure5::Figure5),
    /// Paper-anchor validation scorecard.
    Validation(validation::Validation),
    /// Calibration-knob sensitivity study.
    Sensitivity(sensitivity::Sensitivity),
    /// Cluster scheduling-policy study.
    Cluster(cluster_study::ClusterStudy),
    /// Energy & cost extension study.
    Energy(energy_cost::EnergyCost),
    /// Storage staging extension study.
    Storage(Vec<storage_study::StorageRow>),
    /// Batch-size sweep extension study.
    BatchSweep(batch_sweep::BatchSweep),
    /// Fault-injection / checkpoint-restart extension study.
    Fault(fault_study::FaultStudy),
    /// Run-to-run variance decomposition extension study.
    Variance(variance_decomposition::VarianceDecomposition),
    /// Suite throughput under k-way device partitioning.
    Partition(partition_study::PartitionStudy),
    /// Training + inference co-location study.
    Colocation(colocation_study::ColocationStudy),
}

impl Artifact {
    /// The variant's name, for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Artifact::Table1(_) => "table1",
            Artifact::Table2 => "table2",
            Artifact::Table3 => "table3",
            Artifact::Table4(_) => "table4",
            Artifact::Table5(_) => "table5",
            Artifact::Figure1(_) => "figure1",
            Artifact::Figure2(_) => "figure2",
            Artifact::Figure3(_) => "figure3",
            Artifact::Figure4(_) => "figure4",
            Artifact::Figure5(_) => "figure5",
            Artifact::Validation(_) => "validation",
            Artifact::Sensitivity(_) => "sensitivity",
            Artifact::Cluster(_) => "cluster_study",
            Artifact::Energy(_) => "energy_cost",
            Artifact::Storage(_) => "storage_study",
            Artifact::BatchSweep(_) => "batch_sweep",
            Artifact::Fault(_) => "fault_study",
            Artifact::Variance(_) => "variance_decomposition",
            Artifact::Partition(_) => "partition_study",
            Artifact::Colocation(_) => "colocation_study",
        }
    }

    /// The Table IV payload, if that is what this artifact holds.
    pub fn as_table4(&self) -> Option<&table4::Table4> {
        match self {
            Artifact::Table4(t) => Some(t),
            _ => None,
        }
    }

    /// The Table V payload, if that is what this artifact holds.
    pub fn as_table5(&self) -> Option<&table5::Table5> {
        match self {
            Artifact::Table5(t) => Some(t),
            _ => None,
        }
    }

    /// The Figure 1 payload, if that is what this artifact holds.
    pub fn as_figure1(&self) -> Option<&figure1::Figure1> {
        match self {
            Artifact::Figure1(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 2 payload, if that is what this artifact holds.
    pub fn as_figure2(&self) -> Option<&figure2::Figure2> {
        match self {
            Artifact::Figure2(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 3 payload, if that is what this artifact holds.
    pub fn as_figure3(&self) -> Option<&figure3::Figure3> {
        match self {
            Artifact::Figure3(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 4 payload, if that is what this artifact holds.
    pub fn as_figure4(&self) -> Option<&figure4::Figure4> {
        match self {
            Artifact::Figure4(f) => Some(f),
            _ => None,
        }
    }

    /// The Figure 5 payload, if that is what this artifact holds.
    pub fn as_figure5(&self) -> Option<&figure5::Figure5> {
        match self {
            Artifact::Figure5(f) => Some(f),
            _ => None,
        }
    }

    /// The fault-study payload, if that is what this artifact holds.
    pub fn as_fault(&self) -> Option<&fault_study::FaultStudy> {
        match self {
            Artifact::Fault(s) => Some(s),
            _ => None,
        }
    }

    /// The variance-decomposition payload, if that is what this artifact
    /// holds.
    pub fn as_variance(&self) -> Option<&variance_decomposition::VarianceDecomposition> {
        match self {
            Artifact::Variance(v) => Some(v),
            _ => None,
        }
    }

    /// The partition-study payload, if that is what this artifact holds.
    pub fn as_partition(&self) -> Option<&partition_study::PartitionStudy> {
        match self {
            Artifact::Partition(p) => Some(p),
            _ => None,
        }
    }

    /// The co-location-study payload, if that is what this artifact
    /// holds.
    pub fn as_colocation(&self) -> Option<&colocation_study::ColocationStudy> {
        match self {
            Artifact::Colocation(c) => Some(c),
            _ => None,
        }
    }
}

/// One experiment as the executor schedules it.
///
/// Implementations must keep `run` free of global state (everything
/// shared goes through the [`Ctx`]) and `render` a pure function of the
/// artifact — that is what makes the schedule's interleaving invisible in
/// the output.
pub trait Experiment: Sync {
    /// Stable identifier (artifact-store key and `deps` vocabulary).
    fn id(&self) -> &'static str;

    /// Human-readable title for the report appendix.
    fn title(&self) -> &'static str;

    /// Ids of experiments whose artifacts this one consumes. Dependencies
    /// not present in the submitted set are ignored (the consumer falls
    /// back to recomputing through the memoized [`Ctx`]).
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    /// Canonical bytes describing everything the experiment's output
    /// depends on besides the code itself. The persistent result cache
    /// (`mlperf-core::sweep::cache`) keys each rendered section by
    /// `fnv1a64(code_epoch ‖ spec_bytes)`; the default — the experiment's
    /// id — is correct for experiments whose parameters are all
    /// compile-time constants. Experiments built on a declarative
    /// [`SweepSpec`](crate::sweep::SweepSpec) override this to append the
    /// sweep's canonical bytes, so editing a grid invalidates exactly the
    /// sections that consume it.
    fn spec_bytes(&self) -> Vec<u8> {
        format!("exp:{}", self.id()).into_bytes()
    }

    /// Produce the experiment's artifact.
    ///
    /// # Errors
    ///
    /// An [`ExperimentError`] — typically [`ExperimentError::Sim`] or
    /// [`ExperimentError::NonFiniteOutput`] converted from the simulation
    /// points the experiment prices (the executor supplies the panic,
    /// budget, and dependency variants itself).
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError>;

    /// Render the artifact to the report's text form.
    fn render(&self, artifact: &Artifact) -> String;
}

/// One scheduled experiment's output.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The experiment's id.
    pub id: &'static str,
    /// Display title.
    pub title: &'static str,
    /// Declared dependencies.
    pub deps: &'static [&'static str],
    /// The rendered section text; for a failed experiment this is a
    /// deterministic degraded-mode placeholder, so downstream assembly
    /// stays positional.
    pub rendered: String,
    /// Why the experiment failed, if it did.
    pub error: Option<ExperimentError>,
    /// Wall-clock of `run` + `render` on the worker that executed it
    /// (nondeterministic; never rendered into report bytes).
    pub wall: Duration,
}

/// One deterministic retry of a transient failure: the PRNG draw and the
/// backoff derived from it are *recorded*, never slept — the run trace is
/// byte-replayable from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryEvent {
    /// 1-based retry number.
    pub attempt: u32,
    /// The raw draw from the experiment's retry stream.
    pub draw: u64,
    /// Deterministic exponential backoff with seeded jitter, in ms.
    pub backoff_ms: u64,
}

/// One experiment that exhausted its attempts (failure-appendix row).
#[derive(Debug, Clone)]
pub struct ExperimentFailure {
    /// The experiment's id.
    pub id: &'static str,
    /// Display title.
    pub title: &'static str,
    /// The final attempt's error.
    pub error: ExperimentError,
    /// Retries taken before giving up.
    pub retries: Vec<RetryEvent>,
    /// The experiment's retry-PRNG stream ([`fnv1a64`] of its id).
    pub stream: u64,
}

/// One experiment that failed transiently but succeeded on retry.
#[derive(Debug, Clone)]
pub struct ExperimentRecovery {
    /// The experiment's id.
    pub id: &'static str,
    /// Retries taken before the successful attempt.
    pub retries: Vec<RetryEvent>,
    /// The experiment's retry-PRNG stream ([`fnv1a64`] of its id).
    pub stream: u64,
}

/// Executor instrumentation. Everything here except [`CacheStats`] is
/// wall-clock and therefore nondeterministic — it is surfaced on stderr
/// and in the bench JSON, never in the report body.
#[derive(Debug, Clone)]
pub struct ExecutorStats {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// End-to-end wall-clock of the whole DAG.
    pub total_wall: Duration,
    /// Per-experiment wall-clock, in declaration order.
    pub per_experiment: Vec<(&'static str, Duration)>,
    /// Cache counters (deterministic; also rendered in the appendix).
    pub cache: CacheStats,
}

impl ExecutorStats {
    /// A compact human-readable multi-line summary (for stderr).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "executor: {} experiments on {} worker(s) in {:.2}s; cache {}/{} hits ({:.0}%), {} uncached\n",
            self.per_experiment.len(),
            self.workers,
            self.total_wall.as_secs_f64(),
            self.cache.hits(),
            self.cache.requests(),
            self.cache.hit_rate() * 100.0,
            self.cache.uncached,
        ));
        for (id, wall) in &self.per_experiment {
            out.push_str(&format!("  {:>8.1} ms  {id}\n", wall.as_secs_f64() * 1e3));
        }
        out
    }
}

/// Everything the executor produced.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Per-experiment outputs, in the order the experiments were given —
    /// one entry per experiment even in degraded mode (failed ones carry
    /// a placeholder section and their error).
    pub reports: Vec<ExperimentReport>,
    /// Experiments that exhausted their attempts, in declaration order.
    pub failures: Vec<ExperimentFailure>,
    /// Experiments that succeeded only after retrying, in declaration
    /// order.
    pub recoveries: Vec<ExperimentRecovery>,
    /// Pool and cache instrumentation.
    pub stats: ExecutorStats,
}

impl Execution {
    /// Whether any experiment failed (the run is degraded but complete).
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// The first failure in declaration order that is not a dependency
    /// cascade (falling back to the cascade if every failure is one) —
    /// what strict mode reports as the hard error.
    pub fn root_cause(&self) -> Option<&ExperimentFailure> {
        self.failures
            .iter()
            .find(|f| !matches!(f.error, ExperimentError::DependencyFailed { .. }))
            .or_else(|| self.failures.first())
    }
}

/// Environment variable: `MLPERF_STRICT=1` restores fail-fast execution
/// (no retries, first failure aborts the run) for CI.
pub const STRICT_ENV: &str = "MLPERF_STRICT";
/// Environment variable naming one experiment id to chaos-panic.
pub const CHAOS_ENV: &str = "MLPERF_CHAOS";
/// Environment variable bounding how many attempts the chaos injection
/// sabotages (default: all of them).
pub const CHAOS_ATTEMPTS_ENV: &str = "MLPERF_CHAOS_ATTEMPTS";
/// Environment variable overriding the transient-failure retry count.
pub const RETRIES_ENV: &str = "MLPERF_RETRIES";
/// Environment variable setting a per-experiment simulation-request
/// budget (cooperative, deterministic — not wall-clock).
pub const STEP_BUDGET_ENV: &str = "MLPERF_STEP_BUDGET";
/// Environment variable disabling the engine's analytic fast path
/// (`off`/`0`/`false`/`no`): every point then takes the full DES loop.
/// Output bytes are identical either way — this is a performance escape
/// hatch and an A/B lever for the differential batteries, not a semantic
/// knob.
pub const FASTPATH_ENV: &str = "MLPERF_FASTPATH";
/// Environment variable setting how many seeded runs each Training cell
/// replicates (1–512; default 1 = point pricing, byte-identical to the
/// pre-replication suite). Above one, sweeps and cell queries append the
/// epochs-to-target distribution columns.
pub const RUNS_ENV: &str = "MLPERF_RUNS";
/// Environment variable applying a fractional-device partition to every
/// sweep base cell (`full`, or a slice token like `1of4` / `1of4x3` —
/// profile plus optional co-tenant count). Pinned experiments ignore it,
/// exactly as they ignore [`RUNS_ENV`]; unset (or `full`) is
/// byte-identical to the pre-partition suite.
pub const PARTITION_ENV: &str = "MLPERF_PARTITION";

/// Seed of the retry-backoff PRNG; each experiment draws from stream
/// [`fnv1a64`]`(id)` of this seed, so the trace is schedule-invariant.
pub const DEFAULT_RETRY_SEED: u64 = 0x4D4C_5045_5246; // "MLPERF"

/// Deterministic chaos injection: force `target`'s first `attempts`
/// attempts to panic inside the executor's unwind boundary (exercising
/// the real conversion path).
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Id of the sabotaged experiment.
    pub target: String,
    /// How many leading attempts panic; with retries configured and
    /// `attempts <= retries`, the experiment recovers.
    pub attempts: u32,
}

/// How [`execute_resilient`] treats failure.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Max retries per experiment for transient failures.
    pub retries: u32,
    /// Seed of the retry-backoff PRNG.
    pub retry_seed: u64,
    /// Per-experiment simulation-request budget, if any.
    pub step_budget: Option<u64>,
    /// Fail-fast mode: the caller turns the first failure into a hard
    /// error instead of a degraded report.
    pub strict: bool,
    /// Deterministic fault injection, if any.
    pub chaos: Option<ChaosSpec>,
}

impl ResilienceConfig {
    /// Fail-fast: no retries, no chaos, no budget (today's CI behavior).
    pub fn strict() -> Self {
        ResilienceConfig {
            retries: 0,
            retry_seed: DEFAULT_RETRY_SEED,
            step_budget: None,
            strict: true,
            chaos: None,
        }
    }

    /// Degrade gracefully: up to 2 seeded retries for transient failures.
    pub fn resilient() -> Self {
        ResilienceConfig {
            retries: 2,
            strict: false,
            ..ResilienceConfig::strict()
        }
    }

    /// Read the knobs from the environment: [`STRICT_ENV`],
    /// [`RETRIES_ENV`], [`STEP_BUDGET_ENV`], [`CHAOS_ENV`] and
    /// [`CHAOS_ATTEMPTS_ENV`] — all resolved through the typed
    /// [`Config`](crate::config::Config). Strict mode forces zero retries.
    pub fn from_env() -> Self {
        ResilienceConfig::from_config(&crate::config::Config::from_env())
    }

    /// The failure policy an explicitly resolved
    /// [`Config`](crate::config::Config) dictates.
    pub fn from_config(config: &crate::config::Config) -> Self {
        let mut cfg = if config.strict {
            ResilienceConfig::strict()
        } else {
            ResilienceConfig::resilient()
        };
        if !config.strict {
            if let Some(n) = config.retries {
                cfg.retries = n;
            }
        }
        cfg.step_budget = config.step_budget;
        cfg.chaos = config.chaos.clone();
        cfg
    }
}

/// The deterministic placeholder section a failed experiment contributes,
/// keeping downstream assembly positional in degraded mode.
fn degraded_section(e: &dyn Experiment, err: &ExperimentError) -> String {
    format!(
        "[degraded] {} ({}) produced no artifact: {} — see the failure appendix\n",
        e.title(),
        e.id(),
        err.kind(),
    )
}

/// One isolated attempt at an experiment: chaos injection, the budget
/// window, and the unwind boundary that converts panics and budget trips
/// into typed errors.
fn attempt_experiment(
    e: &dyn Experiment,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
    attempt: u32,
) -> Result<String, ExperimentError> {
    if let Some(budget) = cfg.step_budget {
        ctx.arm_budget(budget);
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // The injection panics *inside* the unwind boundary so chaos runs
        // exercise exactly the conversion path a real panic would take.
        if let Some(chaos) = &cfg.chaos {
            if chaos.target == e.id() && attempt < chaos.attempts {
                std::panic::panic_any(format!(
                    "chaos: injected panic in '{}' (attempt {attempt})",
                    e.id()
                ));
            }
        }
        e.run(ctx)
    }));
    if cfg.step_budget.is_some() {
        ctx.disarm_budget();
    }
    match outcome {
        Ok(Ok(artifact)) => {
            let artifact = Arc::new(artifact);
            ctx.store_artifact(e.id(), Arc::clone(&artifact));
            Ok(e.render(&artifact))
        }
        Ok(Err(err)) => Err(err),
        Err(payload) => {
            if let Some(b) = payload.downcast_ref::<BudgetExceeded>() {
                Err(ExperimentError::DeadlineExceeded {
                    used: b.used,
                    budget: b.budget,
                })
            } else {
                Err(ExperimentError::Panicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
}

/// One executor task's outcome, before declaration-order assembly.
struct TaskOutput {
    rendered: Result<String, ExperimentError>,
    retries: Vec<RetryEvent>,
    wall: Duration,
}

/// Topologically schedule `experiments` onto `pool`, sharing `ctx`'s memo
/// caches, with full failure isolation: a panicking, erroring, or
/// over-budget experiment is converted into a typed [`ExperimentError`],
/// transient failures retry with seeded recorded backoff, dependents of a
/// failed experiment are marked [`ExperimentError::DependencyFailed`],
/// and every independent subgraph completes. The returned [`Execution`]
/// always has one report per experiment.
///
/// # Panics
///
/// Panics on duplicate experiment ids (a programming error).
pub fn execute_resilient(
    pool: &Pool,
    ctx: &Ctx,
    experiments: &[&dyn Experiment],
    cfg: &ResilienceConfig,
) -> Execution {
    let index: HashMap<&str, usize> = experiments
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id(), i))
        .collect();
    assert_eq!(index.len(), experiments.len(), "duplicate experiment ids");
    // Dependencies outside the submitted set are dropped: the consumer's
    // `dep_or` fallback recomputes through the shared memo cache instead.
    let deps: Vec<Vec<usize>> = experiments
        .iter()
        .map(|e| e.deps().iter().filter_map(|d| index.get(d).copied()).collect())
        .collect();
    let failed: Mutex<HashSet<&'static str>> = Mutex::new(HashSet::new());
    let started = Instant::now();
    let tasks: Vec<_> = experiments
        .iter()
        .map(|&e| {
            let failed = &failed;
            move || -> TaskOutput {
                for dep in e.deps() {
                    if lock(failed).contains(dep) {
                        lock(failed).insert(e.id());
                        return TaskOutput {
                            rendered: Err(ExperimentError::DependencyFailed {
                                dependency: (*dep).to_string(),
                            }),
                            retries: Vec::new(),
                            wall: Duration::ZERO,
                        };
                    }
                }
                let t0 = Instant::now();
                let mut rng = Rng::stream(cfg.retry_seed, fnv1a64(e.id()));
                let mut retries = Vec::new();
                let mut attempt = 0u32;
                loop {
                    match attempt_experiment(e, ctx, cfg, attempt) {
                        Ok(rendered) => {
                            return TaskOutput {
                                rendered: Ok(rendered),
                                retries,
                                wall: t0.elapsed(),
                            };
                        }
                        Err(err) => {
                            if err.is_transient() && attempt < cfg.retries {
                                attempt += 1;
                                let draw = rng.gen_u64();
                                // Exponential backoff with seeded jitter.
                                // Recorded in the trace, never slept: the
                                // schedule stays deterministic and fast.
                                let backoff_ms =
                                    (50u64 << (attempt - 1).min(6)) + draw % 50;
                                retries.push(RetryEvent {
                                    attempt,
                                    draw,
                                    backoff_ms,
                                });
                                continue;
                            }
                            lock(failed).insert(e.id());
                            return TaskOutput {
                                rendered: Err(err),
                                retries,
                                wall: t0.elapsed(),
                            };
                        }
                    }
                }
            }
        })
        .collect();
    // The closures never unwind (each attempt is caught above), so the
    // pool's own catching layer is purely a backstop here.
    let outputs = pool.run_dag(tasks, &deps);
    let total_wall = started.elapsed();

    let mut reports = Vec::with_capacity(outputs.len());
    let mut failures = Vec::new();
    let mut recoveries = Vec::new();
    for (e, out) in experiments.iter().zip(outputs) {
        let stream = fnv1a64(e.id());
        match out.rendered {
            Ok(rendered) => {
                if !out.retries.is_empty() {
                    recoveries.push(ExperimentRecovery {
                        id: e.id(),
                        retries: out.retries,
                        stream,
                    });
                }
                reports.push(ExperimentReport {
                    id: e.id(),
                    title: e.title(),
                    deps: e.deps(),
                    rendered,
                    error: None,
                    wall: out.wall,
                });
            }
            Err(err) => {
                failures.push(ExperimentFailure {
                    id: e.id(),
                    title: e.title(),
                    error: err.clone(),
                    retries: out.retries,
                    stream,
                });
                reports.push(ExperimentReport {
                    id: e.id(),
                    title: e.title(),
                    deps: e.deps(),
                    rendered: degraded_section(*e, &err),
                    error: Some(err),
                    wall: out.wall,
                });
            }
        }
    }
    let stats = ExecutorStats {
        workers: pool.workers(),
        total_wall,
        per_experiment: reports.iter().map(|r| (r.id, r.wall)).collect(),
        cache: ctx.cache_stats(),
    };
    Execution {
        reports,
        failures,
        recoveries,
        stats,
    }
}

/// Strict (fail-fast) execution: schedule the DAG with no retries and
/// return the first root-cause failure in declaration order as a hard
/// error.
///
/// # Errors
///
/// The first [`ExperimentError`] in declaration order that is not a
/// dependency cascade (falling back to the cascade if every failure is
/// one).
///
/// # Panics
///
/// Panics on duplicate experiment ids.
pub fn execute(
    pool: &Pool,
    ctx: &Ctx,
    experiments: &[&dyn Experiment],
) -> Result<Execution, ExperimentError> {
    let execution = execute_resilient(pool, ctx, experiments, &ResilienceConfig::strict());
    if let Some(f) = execution.root_cause() {
        return Err(f.error.clone());
    }
    Ok(execution)
}

/// The nineteen experiments of the full report, in the report's output
/// order (Table I is a synthesis layer on top and not part of the report
/// body — see [`all_experiments`]).
pub fn report_experiments() -> Vec<&'static dyn Experiment> {
    vec![
        &table2::Exp,
        &table3::Exp,
        &table4::Exp,
        &table5::Exp,
        &figure1::Exp,
        &figure2::Exp,
        &figure3::Exp,
        &figure4::Exp,
        &figure5::Exp,
        &validation::Exp,
        &sensitivity::Exp,
        &cluster_study::Exp,
        &energy_cost::Exp,
        &storage_study::Exp,
        &batch_sweep::Exp,
        &fault_study::Exp,
        &variance_decomposition::Exp,
        &partition_study::Exp,
        &colocation_study::Exp,
    ]
}

/// Every experiment, Table I included.
pub fn all_experiments() -> Vec<&'static dyn Experiment> {
    let mut all: Vec<&'static dyn Experiment> = vec![&table1::Exp];
    all.extend(report_experiments());
    all
}
