//! Scoped work-stealing thread pool (std only).
//!
//! The executor wants parallelism but the workspace has a zero-dependency
//! policy (see "Offline build & determinism policy" in DESIGN.md), so this
//! is a small work-stealing scheduler built directly on
//! [`std::thread::scope`]: each worker owns a LIFO deque, a task's
//! newly-ready dependents land on the completing worker's own deque
//! (locality), and idle workers steal FIFO from peers or drain the shared
//! injector. The worker count comes from [`MLPERF_JOBS`](JOBS_ENV) or
//! [`std::thread::available_parallelism`]; nothing produced *through* the
//! pool may depend on it — results come back in submission order and the
//! experiment layer is memoized, so report bytes are identical for any
//! worker count (the determinism policy in DESIGN.md "Execution model").

use super::error::panic_message;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::Thread;
use std::time::Duration;

/// Environment variable overriding the worker count (`MLPERF_JOBS=1`
/// forces fully serial execution; unset falls back to
/// `available_parallelism`).
pub const JOBS_ENV: &str = "MLPERF_JOBS";

/// How long an idle worker parks before re-scanning the deques. Wake-ups
/// are sent eagerly on every completion, so this is only a lost-wakeup
/// backstop, not the scheduling cadence.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// Lock that survives a poisoned mutex: a panicking task must not wedge
/// the pool (failures are recorded per slot and the DAG keeps draining,
/// see `run_dag_catching`), so every internal lock recovers the guard
/// instead of propagating the poison.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why one DAG task produced no value (the catching scheduler's
/// per-slot failure record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The task's closure panicked; `message` is the stringified payload.
    Panicked {
        /// The panic payload, as text.
        message: String,
    },
    /// An upstream task failed, so this one never ran.
    Dependency {
        /// Submission index of the failed dependency.
        dep: usize,
        /// That dependency's failure, as text.
        message: String,
    },
}

impl TaskFailure {
    fn message(&self) -> &str {
        match self {
            TaskFailure::Panicked { message } | TaskFailure::Dependency { message, .. } => message,
        }
    }
}

/// A fixed-width scoped thread pool executing dependency DAGs of tasks.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with exactly `workers` threads (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// Worker count from [`JOBS_ENV`] when set to a positive integer,
    /// otherwise [`std::thread::available_parallelism`] — resolved through
    /// the typed [`Config`](crate::config::Config).
    pub fn from_env() -> Pool {
        Pool::from_config(&crate::config::Config::from_env())
    }

    /// The pool an explicitly resolved [`Config`](crate::config::Config)
    /// dictates.
    pub fn from_config(config: &crate::config::Config) -> Pool {
        Pool::with_workers(config.jobs)
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute a task DAG and return every task's result in submission
    /// order, regardless of the execution interleaving.
    ///
    /// `deps[i]` lists the task indices task `i` waits for. Tasks whose
    /// dependencies are satisfied run concurrently.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread — but only
    /// after the rest of the DAG has drained: every task independent of
    /// the panicking one still runs to completion (transitive dependents
    /// are skipped). Use [`Pool::run_dag_catching`] to receive failures
    /// as values instead. Also panics on malformed input: `deps` and
    /// `tasks` lengths differing, an out-of-range or self dependency, or
    /// a dependency cycle.
    pub fn run_dag<T, F>(&self, tasks: Vec<F>, deps: &[Vec<usize>]) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let (results, payload) = self.run_dag_inner(tasks, deps);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                // Unreachable: a Dependency failure implies an upstream
                // panic, whose payload was just re-raised above.
                Err(f) => unreachable!("task failed without a panic payload: {}", f.message()),
            })
            .collect()
    }

    /// Execute a task DAG, catching failures per slot: a panicking task
    /// yields [`TaskFailure::Panicked`], its transitive dependents yield
    /// [`TaskFailure::Dependency`] without running, and every other task
    /// completes normally. The first panic payload is dropped (its
    /// message survives in the failure record).
    ///
    /// # Panics
    ///
    /// Only on malformed input, as [`Pool::run_dag`].
    pub fn run_dag_catching<T, F>(
        &self,
        tasks: Vec<F>,
        deps: &[Vec<usize>],
    ) -> Vec<Result<T, TaskFailure>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_dag_inner(tasks, deps).0
    }

    #[allow(clippy::type_complexity)]
    fn run_dag_inner<T, F>(
        &self,
        tasks: Vec<F>,
        deps: &[Vec<usize>],
    ) -> (
        Vec<Result<T, TaskFailure>>,
        Option<Box<dyn std::any::Any + Send>>,
    )
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        assert_eq!(n, deps.len(), "one dependency list per task");
        if n == 0 {
            return (Vec::new(), None);
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending: Vec<AtomicUsize> = Vec::with_capacity(n);
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                assert!(d < n, "task {i} depends on out-of-range task {d}");
                assert_ne!(d, i, "task {i} depends on itself");
                dependents[d].push(i);
            }
            pending.push(AtomicUsize::new(ds.len()));
        }
        // Kahn pass up front: a cycle would leave its tasks permanently
        // unready and the workers parked forever, so reject it before
        // spawning anything.
        {
            let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
            let mut ready: VecDeque<usize> =
                (0..n).filter(|&i| indegree[i] == 0).collect();
            let mut ordered = 0usize;
            while let Some(i) = ready.pop_front() {
                ordered += 1;
                for &dep in &dependents[i] {
                    indegree[dep] -= 1;
                    if indegree[dep] == 0 {
                        ready.push_back(dep);
                    }
                }
            }
            assert_eq!(ordered, n, "task DAG contains a dependency cycle");
        }
        let workers = self.workers.min(n);
        let state = DagState {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            pending,
            deps: deps.to_vec(),
            dependents,
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            injector: Mutex::new((0..n).filter(|&i| deps[i].is_empty()).collect()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            parked: Mutex::new(Vec::new()),
        };
        std::thread::scope(|scope| {
            let st = &state;
            for w in 0..workers {
                scope.spawn(move || st.work(w));
            }
        });
        assert_eq!(
            state.remaining.load(Ordering::SeqCst),
            0,
            "task DAG contains a dependency cycle"
        );
        let payload = lock(&state.panic).take();
        let results = state
            .results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every task completed or was marked failed")
            })
            .collect();
        (results, payload)
    }

    /// Run independent tasks (a DAG with no edges) and return their
    /// results in submission order.
    ///
    /// # Panics
    ///
    /// As [`Pool::run_dag`].
    pub fn run_all<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let deps = vec![Vec::new(); tasks.len()];
        self.run_dag(tasks, &deps)
    }
}

/// Shared scheduler state for one `run_dag` call.
struct DagState<F, T> {
    /// Each task, taken exactly once by the worker that executes it.
    tasks: Vec<Mutex<Option<F>>>,
    /// Result slots, indexed like `tasks`. A slot is filled exactly once:
    /// with the task's value, its panic record, or the upstream failure
    /// that kept it from running — so a failure never abandons the DAG.
    results: Vec<Mutex<Option<Result<T, TaskFailure>>>>,
    /// Unmet-dependency counts; a task is ready when its count hits 0.
    pending: Vec<AtomicUsize>,
    /// Forward edges, consulted before running a ready task so failures
    /// cascade to dependents instead of abandoning them.
    deps: Vec<Vec<usize>>,
    /// Reverse edges: who becomes ready when task `i` completes.
    dependents: Vec<Vec<usize>>,
    /// Tasks not yet completed (cycle detection + shutdown signal).
    remaining: AtomicUsize,
    /// First panic payload, re-raised by `run_dag` (dropped by
    /// `run_dag_catching`).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Global FIFO holding the initially-ready tasks.
    injector: Mutex<VecDeque<usize>>,
    /// Per-worker deques: owner pops LIFO, thieves steal FIFO.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Handles of all workers, unparked whenever new work appears.
    parked: Mutex<Vec<Thread>>,
}

impl<F: FnOnce() -> T + Send, T: Send> DagState<F, T> {
    fn work(&self, me: usize) {
        lock(&self.parked).push(std::thread::current());
        loop {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            match self.find_task(me) {
                Some(task) => self.run_task(me, task),
                // Nothing runnable right now (dependencies of the leftover
                // tasks are still executing elsewhere): park until a
                // completion wakes us, with a timeout as a lost-wakeup
                // backstop.
                None => std::thread::park_timeout(IDLE_PARK),
            }
        }
    }

    fn find_task(&self, me: usize) -> Option<usize> {
        if let Some(i) = lock(&self.locals[me]).pop_back() {
            return Some(i);
        }
        if let Some(i) = lock(&self.injector).pop_front() {
            return Some(i);
        }
        let k = self.locals.len();
        for off in 1..k {
            if let Some(i) = lock(&self.locals[(me + off) % k]).pop_front() {
                return Some(i);
            }
        }
        None
    }

    fn run_task(&self, me: usize, i: usize) {
        // A failed dependency cascades: the task is dropped unrun and its
        // slot records which upstream task took it down. Dependency slots
        // are already filled (the pool only readies a task after all its
        // deps completed), so the probe never races a concurrent write.
        let upstream = self.deps[i].iter().find_map(|&d| {
            lock(&self.results[d]).as_ref().and_then(|r| match r {
                Ok(_) => None,
                Err(f) => Some((d, f.message().to_string())),
            })
        });
        let outcome = match upstream {
            Some((dep, message)) => Err(TaskFailure::Dependency { dep, message }),
            None => {
                let task = lock(&self.tasks[i]).take().expect("task runs exactly once");
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(value) => Ok(value),
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        let mut slot = lock(&self.panic);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        Err(TaskFailure::Panicked { message })
                    }
                }
            }
        };
        *lock(&self.results[i]) = Some(outcome);
        // Push newly-ready dependents onto our own deque: we will pop
        // them LIFO (cache-warm), peers steal them FIFO if we stay busy.
        // Failures ready their dependents too — those cascade above
        // instead of vanishing from the result set.
        for &dep in &self.dependents[i] {
            if self.pending[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                lock(&self.locals[me]).push_back(dep);
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        self.wake_all();
    }

    fn wake_all(&self) {
        for t in lock(&self.parked).iter() {
            t.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Pool::with_workers(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * i).collect();
        let got = pool.run_all(tasks);
        let want: Vec<_> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn dependencies_run_before_dependents() {
        // A diamond: 0 -> {1, 2} -> 3. Each task records its finish tick.
        let clock = AtomicU64::new(0);
        let pool = Pool::with_workers(4);
        let tick = |_: ()| clock.fetch_add(1, Ordering::SeqCst);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| tick(())),
            Box::new(|| tick(())),
            Box::new(|| tick(())),
            Box::new(|| tick(())),
        ];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let ticks = pool.run_dag(tasks, &deps);
        assert!(ticks[0] < ticks[1] && ticks[0] < ticks[2]);
        assert!(ticks[3] > ticks[1] && ticks[3] > ticks[2]);
    }

    #[test]
    fn single_worker_pool_is_fully_serial() {
        // With one worker the ready-first order is deterministic, so a
        // task-side counter observes a strictly serial schedule.
        let active = AtomicU64::new(0);
        let pool = Pool::with_workers(1);
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                let active = &active;
                move || {
                    assert_eq!(active.fetch_add(1, Ordering::SeqCst), 0);
                    let r = i * 3;
                    active.fetch_sub(1, Ordering::SeqCst);
                    r
                }
            })
            .collect();
        let got = pool.run_all(tasks);
        assert_eq!(got, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::with_workers(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom in task")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_dag(tasks, &[vec![], vec![], vec![]])
        }))
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom in task"), "payload was {msg:?}");
    }

    #[test]
    fn regression_panicked_dag_drains_all_tasks() {
        // Before the resilience layer the first panic set an abort flag
        // and every remaining queued task was abandoned; the result
        // vector then had holes. Now the DAG drains: independent tasks
        // all run, the panicker's dependents cascade as failures, and
        // every slot is filled.
        let ran = AtomicU64::new(0);
        let pool = Pool::with_workers(2);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = vec![
            Box::new(|| panic!("boom at task 0")),
            Box::new(|| ran.fetch_add(1, Ordering::SeqCst)),
            Box::new(|| ran.fetch_add(1, Ordering::SeqCst)),
            Box::new(|| ran.fetch_add(1, Ordering::SeqCst)),
            Box::new(|| ran.fetch_add(1, Ordering::SeqCst)),
        ];
        // 1 depends on the panicker, 4 depends on 1 (transitive); 2 and 3
        // are independent and must still run.
        let deps = vec![vec![], vec![0], vec![], vec![], vec![1]];
        let results = pool.run_dag_catching(tasks, &deps);
        assert_eq!(results.len(), 5, "no slot may vanish");
        match &results[0] {
            Err(TaskFailure::Panicked { message }) => {
                assert!(message.contains("boom at task 0"), "{message}");
            }
            other => panic!("task 0 should be Panicked, got {other:?}"),
        }
        match &results[1] {
            Err(TaskFailure::Dependency { dep: 0, message }) => {
                assert!(message.contains("boom at task 0"), "{message}");
            }
            other => panic!("task 1 should cascade from 0, got {other:?}"),
        }
        assert!(matches!(&results[4], Err(TaskFailure::Dependency { .. })));
        assert!(results[2].is_ok() && results[3].is_ok());
        assert_eq!(ran.load(Ordering::SeqCst), 2, "independent tasks drained");

        // The pool object stays usable afterwards.
        assert_eq!(pool.run_all((0..8).map(|i| move || i).collect::<Vec<_>>()), (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn cycle_is_detected() {
        let pool = Pool::with_workers(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 1), Box::new(|| 2)];
        pool.run_dag(tasks, &[vec![1], vec![0]]);
    }

    #[test]
    fn env_override_parses_and_falls_back() {
        // `from_env` itself is covered via `workers()` bounds; direct env
        // manipulation is avoided because tests run concurrently.
        assert!(Pool::from_env().workers() >= 1);
        assert_eq!(Pool::with_workers(0).workers(), 1);
    }
}
