//! The executor's typed error taxonomy.
//!
//! One bad cell in one experiment must not kill the whole report (the
//! harness brittleness MLPerf Training and Milabench both call out), so
//! every way an experiment can fail is a variant of [`ExperimentError`]:
//! the scheduler catches panics, converts simulator errors, enforces
//! cooperative step budgets, and cascades failures to dependents — all
//! through this one type, which the failure appendix then renders.

use mlperf_sim::SimError;
use std::fmt;

/// Why one experiment produced no artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The experiment's code panicked; `message` is the stringified
    /// payload (caught at the executor's unwind boundary).
    Panicked {
        /// The panic payload, as text.
        message: String,
    },
    /// The simulation itself failed (OOM, bad GPU set, routing).
    Sim(SimError),
    /// A model boundary produced NaN/Inf or a degenerate cost; `context`
    /// names the offending (benchmark, system, precision, batch) point.
    NonFiniteOutput {
        /// Human-readable description of the offending point.
        context: String,
    },
    /// The experiment exceeded its cooperative step budget
    /// (`MLPERF_STEP_BUDGET`); counted in simulation requests, not
    /// wall-clock, so the verdict is deterministic.
    DeadlineExceeded {
        /// Simulation requests charged before the budget tripped.
        used: u64,
        /// The configured budget.
        budget: u64,
    },
    /// An upstream experiment failed, so this one never ran.
    DependencyFailed {
        /// Id of the failed dependency.
        dependency: String,
    },
}

impl ExperimentError {
    /// Stable short name of the variant (failure-appendix vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            ExperimentError::Panicked { .. } => "panicked",
            ExperimentError::Sim(_) => "sim-error",
            ExperimentError::NonFiniteOutput { .. } => "non-finite",
            ExperimentError::DeadlineExceeded { .. } => "deadline-exceeded",
            ExperimentError::DependencyFailed { .. } => "dependency-failed",
        }
    }

    /// Whether a retry could plausibly succeed. Simulator errors, budget
    /// verdicts, and non-finite outputs are pure functions of the input
    /// point — retrying them re-derives the same answer — but a panic may
    /// be environmental, so only panics are transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExperimentError::Panicked { .. })
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Panicked { message } => write!(f, "panicked: {message}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::NonFiniteOutput { context } => {
                write!(f, "non-finite output: {context}")
            }
            ExperimentError::DeadlineExceeded { used, budget } => {
                write!(f, "step budget exceeded: {used} of {budget} simulation requests")
            }
            ExperimentError::DependencyFailed { dependency } => {
                write!(f, "dependency '{dependency}' failed")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::NonFinite { context } => ExperimentError::NonFiniteOutput { context },
            other => ExperimentError::Sim(other),
        }
    }
}

/// The panic payload [`Ctx::charge`](super::Ctx::charge) throws when a
/// cooperative step budget trips; the executor downcasts it back into
/// [`ExperimentError::DeadlineExceeded`] at its unwind boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Simulation requests charged, including the tripping one.
    pub used: u64,
    /// The configured budget.
    pub budget: u64,
}

/// Extract a human-readable message from a panic payload (`&str` and
/// `String` payloads verbatim, anything else a fixed placeholder so
/// report bytes stay deterministic).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// FNV-1a 64-bit over a string: the executor's stable experiment-id →
/// retry-stream mapping (schedule- and declaration-order-invariant).
/// Delegates to the workspace's single implementation in
/// [`mlperf_testkit::hash`]; kept as a re-exportable name because the
/// retry-seed contract (`Rng::stream(retry_seed, fnv1a64(id))`) is
/// documented against it.
pub fn fnv1a64(s: &str) -> u64 {
    mlperf_testkit::hash::fnv1a64_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_non_finite_maps_to_non_finite_output() {
        let e = ExperimentError::from(SimError::NonFinite {
            context: "x".into(),
        });
        assert_eq!(
            e,
            ExperimentError::NonFiniteOutput {
                context: "x".into()
            }
        );
        assert_eq!(e.kind(), "non-finite");
    }

    #[test]
    fn only_panics_are_transient() {
        assert!(ExperimentError::Panicked {
            message: "m".into()
        }
        .is_transient());
        for e in [
            ExperimentError::Sim(SimError::BadGpuSet("x".into())),
            ExperimentError::NonFiniteOutput {
                context: "c".into(),
            },
            ExperimentError::DeadlineExceeded { used: 2, budget: 1 },
            ExperimentError::DependencyFailed {
                dependency: "d".into(),
            },
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn panic_messages_extract_both_string_kinds() {
        let a: Box<dyn std::any::Any + Send> = Box::new("static str");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        let c: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(a.as_ref()), "static str");
        assert_eq!(panic_message(b.as_ref()), "owned");
        assert_eq!(panic_message(c.as_ref()), "non-string panic payload");
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        // Reference value pins the hash so retry streams never silently
        // move between builds.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("figure3"), fnv1a64("figure4"));
    }
}
