//! Sharded memoization cache with compute-once semantics.
//!
//! The executor's whole point is that one simulation point requested by
//! five experiments is computed exactly once per report. Keys hash to one
//! of a fixed set of shards (bounding lock contention without any external
//! concurrent-map dependency); within a shard an in-flight marker plus a
//! condvar makes concurrent requests for the same key block on the first
//! computation instead of duplicating it.
//!
//! Hit/miss accounting is deterministic under this design: the set of
//! requests an experiment issues is fixed, and compute-once guarantees
//! `misses == unique keys computed`, so the counters the report appendix
//! prints are identical for any worker count or interleaving. (A waiter
//! that blocks on an in-flight computation counts as a hit — the work was
//! shared, not redone.)

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Shard count: enough to keep a handful of workers off each other's
/// locks, small enough that an empty cache stays cheap.
const SHARDS: usize = 16;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

enum Slot<V> {
    /// Some thread is computing this key; wait on the shard's condvar.
    InFlight,
    /// The memoized value.
    Ready(V),
}

struct Shard<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    ready: Condvar,
}

/// A concurrent memo cache: `get_or_compute` runs the closure at most once
/// per key, however many threads ask.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        // DefaultHasher with the default seed is deterministic within a
        // process, which is all shard selection needs.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Return the memoized value for `key`, running `compute` only if no
    /// other request has computed (or is computing) it.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `compute`; the in-flight marker is removed
    /// first so blocked waiters retry instead of hanging.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        {
            let mut map = lock(&shard.map);
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(v)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return v.clone();
                    }
                    Some(Slot::InFlight) => {
                        map = shard
                            .ready
                            .wait(map)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        map.insert(key.clone(), Slot::InFlight);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }

        // Unwind guard: if `compute` panics, clear the marker and wake
        // waiters so they can take over the computation.
        struct ClearOnUnwind<'a, K: Eq + Hash, V> {
            shard: &'a Shard<K, V>,
            key: Option<K>,
        }
        impl<K: Eq + Hash, V> Drop for ClearOnUnwind<'_, K, V> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    lock(&self.shard.map).remove(&key);
                    self.shard.ready.notify_all();
                }
            }
        }
        let mut guard = ClearOnUnwind {
            shard,
            key: Some(key),
        };
        let value = compute();
        let key = guard.key.take().expect("guard still armed");
        lock(&shard.map).insert(key, Slot::Ready(value.clone()));
        shard.ready.notify_all();
        value
    }

    /// Requests answered from the cache (including waits on an in-flight
    /// computation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that triggered a computation — with compute-once
    /// semantics, exactly the number of unique keys computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Memoized entries currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.map).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        ShardedCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn second_request_is_a_hit() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        assert_eq!(cache.get_or_compute(7, || 49), 49);
        assert_eq!(cache.get_or_compute(7, || unreachable!("memoized")), 49);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.requests(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        // Keys 0, 16, 32, ... land in the same shard (SHARDS = 16); they
        // must still memoize independently.
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for i in 0..8 {
            let k = i * SHARDS as u64;
            assert_eq!(cache.get_or_compute(k, || k + 1), k + 1);
        }
        assert_eq!(cache.misses(), 8);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let v = cache.get_or_compute(42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the in-flight window so waiters pile up.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        4242
                    });
                    assert_eq!(v, 4242);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "compute ran once");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn panicking_compute_clears_the_marker() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let err = catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_compute(1, || panic!("compute failed"))
        }));
        assert!(err.is_err());
        // The key is free again: a retry computes normally.
        assert_eq!(cache.get_or_compute(1, || 11), 11);
        assert_eq!(cache.len(), 1);
    }
}
