//! The versioned `repro serve` wire schema (`QueryV1`).
//!
//! Transport framing is newline-delimited JSON: every request is one flat
//! JSON object on one line, every response is one or more flat JSON
//! objects, one per line. The schema is *typed and closed* — every field
//! has one spelling, workloads are named only by their paper abbreviation
//! ([`BenchmarkId::abbreviation`]), systems only by their underscored
//! wire token ([`SystemId::token`](mlperf_hw::systems::SystemId::token)),
//! and unknown fields are rejected rather than ignored, so schema drift
//! surfaces as a `bad-request` instead of a silently-different answer.
//!
//! Every query has **canonical bytes** ([`Request::canonical_bytes`]):
//! the stable spelling whose FNV-1a hash is the server's coalescing key,
//! built from the same [`CellSpec::canonical_bytes`] vocabulary the
//! persistent cache hashes — request hash = cache key, as the service
//! model in DESIGN.md §2f requires. Per-request knobs that do not change
//! the answer (the `budget` override, the echoed `id`) are deliberately
//! *not* part of the identity.
//!
//! The parser is hand-rolled (the workspace has a zero-dependency
//! policy): a minimal flat-object JSON reader that keeps numbers as raw
//! tokens so `u64` fields round-trip exactly.

use crate::benchmark::BenchmarkId;
use crate::sweep::{CellKind, CellSpec, IntervalChoice, MAX_RUNS};
use mlperf_hw::systems::SystemId;
use mlperf_hw::PartitionSpec;
use mlperf_models::PrecisionPolicy;

/// The one schema version this server speaks.
pub const VERSION: u32 = 1;

/// Error-kind token for requests that never reached the executor.
pub const BAD_REQUEST: &str = "bad-request";

/// Error-kind token for a request frame exceeding the server's
/// configured maximum size; the server answers with this and closes the
/// connection (the rest of the oversized frame is never read).
pub const FRAME_TOO_LARGE: &str = "frame-too-large";

/// Error-kind token for queries arriving while the server is draining
/// after a `shutdown` acknowledgement: in-flight work finishes, new work
/// is refused.
pub const SHUTTING_DOWN: &str = "shutting-down";

/// A parsed version-1 query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryV1 {
    /// Liveness probe; answered without touching the executor.
    Ping,
    /// Orderly server shutdown (acknowledged, then the accept loop ends).
    Shutdown,
    /// Price one sweep cell (the what-if point).
    Cell(CellSpec),
    /// Stream one registered sweep by name.
    Sweep(String),
}

/// One parsed request: the query plus the per-request envelope (echoed
/// `id`, optional step-budget override).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every response frame
    /// (`"-"` when absent).
    pub id: String,
    /// The query itself.
    pub query: QueryV1,
    /// Per-request step-budget override (absent: the server default).
    pub budget: Option<u64>,
}

impl Request {
    /// The query's canonical identity bytes. Two requests coalesce (and
    /// share a cache entry) exactly when these bytes are equal; the
    /// `budget` override and the `id` are envelope, not identity.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match &self.query {
            QueryV1::Ping => b"query.v1;kind=ping".to_vec(),
            QueryV1::Shutdown => b"query.v1;kind=shutdown".to_vec(),
            QueryV1::Cell(spec) => {
                let mut s = b"query.v1;kind=cell;".to_vec();
                s.extend_from_slice(&spec.canonical_bytes());
                s
            }
            QueryV1::Sweep(name) => format!("query.v1;kind=sweep;name={name}").into_bytes(),
        }
    }
}

/// A scalar JSON value of a flat request object. Numbers keep their raw
/// token so integer fields parse exactly (no f64 round trip).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string, unescaped.
    Str(String),
    /// A number, as its raw source token.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}'", b as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\').map_err(|_| "lone surrogate".to_string())?;
                                self.expect(b'u').map_err(|_| "lone surrogate".to_string())?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                c if c < 0x20 => return Err("control character in string".into()),
                _ => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.s.len() && (self.s[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).expect("valid UTF-8"));
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.i.checked_add(4).filter(|&e| e <= self.s.len()).ok_or("short \\u escape")?;
        let hex = std::str::from_utf8(&self.s[self.i..end]).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
        self.i = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<String, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        Ok(std::str::from_utf8(&self.s[start..self.i])
            .expect("ASCII number token")
            .to_string())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("expected a value")? {
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b'{' | b'[' => Err("nested values are not part of the v1 schema".into()),
            b't' => self.keyword("true").map(|()| Json::Bool(true)),
            b'f' => self.keyword("false").map(|()| Json::Bool(false)),
            b'n' => self.keyword("null").map(|()| Json::Null),
            _ => Ok(Json::Num(self.parse_number()?)),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}'"))
        }
    }
}

/// Parse one flat JSON object (`{"k": scalar, ...}`) into its fields, in
/// source order. Rejects nested objects/arrays — the v1 schema is flat by
/// design, so versioning stays trivial.
///
/// # Errors
///
/// A human-readable message describing the first syntax problem.
pub fn parse_object(s: &str) -> Result<Vec<(String, Json)>, String> {
    let mut c = Cursor { s: s.as_bytes(), i: 0 };
    c.skip_ws();
    c.expect(b'{').map_err(|_| "request must be a JSON object".to_string())?;
    let mut fields = Vec::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.i += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.parse_string()?;
            c.skip_ws();
            c.expect(b':')?;
            c.skip_ws();
            let value = c.parse_value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate field '{key}'"));
            }
            fields.push((key, value));
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.i += 1,
                Some(b'}') => {
                    c.i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }
    c.skip_ws();
    if c.i != c.s.len() {
        return Err("trailing bytes after the object".into());
    }
    Ok(fields)
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(fields: &[(String, Json)], key: &str) -> Result<Option<String>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field '{key}' must be a string")),
    }
}

fn u64_field(fields: &[(String, Json)], key: &str) -> Result<Option<u64>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(Json::Num(raw)) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("field '{key}' must be a non-negative integer")),
        Some(_) => Err(format!("field '{key}' must be a number")),
    }
}

fn f64_field(fields: &[(String, Json)], key: &str) -> Result<Option<f64>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(Json::Num(raw)) => raw
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a finite number")),
        Some(_) => Err(format!("field '{key}' must be a number")),
    }
}

/// Every field the v1 schema knows, per query kind (the closed-schema
/// check rejects anything else).
const ENVELOPE_FIELDS: &[&str] = &["v", "id", "kind", "budget"];
const CELL_FIELDS: &[&str] = &[
    "workload",
    "system",
    "gpus",
    "cell_kind",
    "batch",
    "precision",
    "mtbf_hours",
    "interval",
    "runs",
    "partition",
];
const SWEEP_FIELDS: &[&str] = &["sweep"];

/// Parse one request line.
///
/// # Errors
///
/// `(id, message)`: the echoable id (best effort — `"-"` when the line
/// was not even an object) plus the `bad-request` message.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let fields = parse_object(line).map_err(|m| ("-".to_string(), m))?;
    let id = match str_field(&fields, "id") {
        Ok(Some(id)) => id,
        Ok(None) => "-".to_string(),
        Err(m) => return Err(("-".to_string(), m)),
    };
    let fail = |m: String| (id.clone(), m);

    match u64_field(&fields, "v").map_err(&fail)? {
        Some(v) if v == u64::from(VERSION) => {}
        Some(v) => return Err(fail(format!("unsupported schema version {v} (this server speaks v{VERSION})"))),
        None => return Err(fail("missing required field 'v'".to_string())),
    }
    let kind = str_field(&fields, "kind")
        .map_err(&fail)?
        .ok_or_else(|| fail("missing required field 'kind'".to_string()))?;
    let budget = u64_field(&fields, "budget").map_err(&fail)?;

    let allowed: Vec<&str> = match kind.as_str() {
        "ping" | "shutdown" => ENVELOPE_FIELDS.to_vec(),
        "cell" => ENVELOPE_FIELDS.iter().chain(CELL_FIELDS).copied().collect(),
        "sweep" => ENVELOPE_FIELDS.iter().chain(SWEEP_FIELDS).copied().collect(),
        other => return Err(fail(format!("unknown query kind '{other}'"))),
    };
    for (k, _) in &fields {
        if !allowed.contains(&k.as_str()) {
            return Err(fail(format!("unknown field '{k}' for kind '{kind}'")));
        }
    }

    let query = match kind.as_str() {
        "ping" => QueryV1::Ping,
        "shutdown" => QueryV1::Shutdown,
        "sweep" => {
            let name = str_field(&fields, "sweep")
                .map_err(&fail)?
                .ok_or_else(|| fail("missing required field 'sweep'".to_string()))?;
            QueryV1::Sweep(name)
        }
        "cell" => QueryV1::Cell(parse_cell(&fields).map_err(&fail)?),
        _ => unreachable!("kind validated above"),
    };
    Ok(Request { id, query, budget })
}

fn parse_cell(fields: &[(String, Json)]) -> Result<CellSpec, String> {
    let cell_kind = match str_field(fields, "cell_kind")?.as_deref() {
        None | Some("training") => CellKind::Training,
        Some("expected-ttt") => CellKind::ExpectedTtt,
        Some(other) => return Err(format!("unknown cell_kind '{other}'")),
    };
    let workload = str_field(fields, "workload")?
        .ok_or("missing required field 'workload'")?;
    let workload = BenchmarkId::from_abbreviation(&workload)
        .ok_or_else(|| format!("unknown workload '{workload}'"))?;
    let system = str_field(fields, "system")?.ok_or("missing required field 'system'")?;
    let system = SystemId::from_token(&system)
        .ok_or_else(|| format!("unknown system '{system}'"))?;
    let gpus = u64_field(fields, "gpus")?.ok_or("missing required field 'gpus'")?;
    let gpus = u32::try_from(gpus).map_err(|_| "field 'gpus' is out of range".to_string())?;
    let batch = u64_field(fields, "batch")?;
    let precision = match str_field(fields, "precision")?.as_deref() {
        None => None,
        Some("fp32") => Some(PrecisionPolicy::Fp32),
        Some("amp") => Some(PrecisionPolicy::Amp),
        Some(other) => return Err(format!("unknown precision '{other}'")),
    };
    let mtbf_hours = f64_field(fields, "mtbf_hours")?;
    let interval = match get(fields, "interval") {
        None => None,
        Some(Json::Str(s)) if s == "daly" => Some(IntervalChoice::Daly),
        Some(Json::Str(s)) => return Err(format!("unknown interval '{s}'")),
        Some(Json::Num(_)) => Some(IntervalChoice::FixedMin(
            f64_field(fields, "interval")?.expect("field is present"),
        )),
        Some(_) => return Err("field 'interval' must be 'daly' or minutes".to_string()),
    };
    // `runs` outside 1..=MAX_RUNS is a typed bad-request, never a clamp:
    // a client asking for 0 or a million runs should learn the contract,
    // not silently get something else. `runs:1` is the explicit spelling
    // of the default and normalizes to it (same canonical bytes, same
    // cache entry, same answer).
    let runs = match u64_field(fields, "runs")? {
        None => None,
        Some(n) if (1..=u64::from(MAX_RUNS)).contains(&n) => {
            (n > 1).then_some(n as u32)
        }
        Some(n) => {
            return Err(format!(
                "field 'runs' must be between 1 and {MAX_RUNS} (got {n})"
            ))
        }
    };
    // `partition` follows the same contract: `"full"` is the explicit
    // spelling of the default and normalizes to it (same canonical bytes,
    // same coalescing key as omitting the field); an invalid token is a
    // typed bad-request naming the field, never a clamp.
    let partition = match str_field(fields, "partition")?.as_deref() {
        None => None,
        Some(token) => {
            PartitionSpec::parse(token).map_err(|e| format!("field 'partition': {e}"))?
        }
    };
    Ok(CellSpec {
        kind: cell_kind,
        workload: Some(workload),
        system: Some(system),
        gpus: Some(gpus),
        batch,
        precision,
        mtbf_hours,
        interval,
        runs,
        partition,
    })
}

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn columns_json(columns: &[&str]) -> String {
    let cols: Vec<String> = columns.iter().map(|c| format!("\"{}\"", json_escape(c))).collect();
    format!("[{}]", cols.join(","))
}

/// The `pong` response to a ping.
pub fn pong_frame(id: &str) -> String {
    format!("{{\"v\":1,\"id\":\"{}\",\"status\":\"ok\",\"kind\":\"pong\"}}\n", json_escape(id))
}

/// The acknowledgement written before the server stops accepting.
pub fn shutdown_frame(id: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"ok\",\"kind\":\"shutdown\"}}\n",
        json_escape(id)
    )
}

/// A successful cell answer: the kind's column vocabulary, the values in
/// Rust's shortest-roundtrip decimal spelling, and the exact IEEE-754 bit
/// patterns (the deterministic ground truth clients can diff). A
/// replicated cell arrives wider than the base vocabulary and the frame
/// names its distribution columns accordingly.
pub fn cell_ok_frame(id: &str, kind: CellKind, values: &[f64]) -> String {
    let decimals: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    let bits: Vec<String> = values.iter().map(|v| format!("\"{:016x}\"", v.to_bits())).collect();
    let kind_token = match kind {
        CellKind::Training => "training",
        CellKind::ExpectedTtt => "expected-ttt",
    };
    let mut columns: Vec<&str> = kind.columns().to_vec();
    if values.len() > columns.len() {
        columns.extend_from_slice(kind.run_columns());
    }
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"ok\",\"cell\":\"{}\",\"columns\":{},\"values\":[{}],\"bits\":[{}]}}\n",
        json_escape(id),
        kind_token,
        columns_json(&columns),
        decimals.join(","),
        bits.join(","),
    )
}

/// A typed error answer (`kind` is a stable token from the
/// `CellError`/`ExperimentError` vocabulary, or [`BAD_REQUEST`]).
pub fn error_frame(id: &str, kind: &str, message: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"error\",\"kind\":\"{}\",\"message\":\"{}\"}}\n",
        json_escape(id),
        json_escape(kind),
        json_escape(message),
    )
}

/// The admission-control rejection: the bounded wait queue is full.
pub fn busy_frame(id: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"busy\",\"kind\":\"admission\",\"message\":\"admission queue full\"}}\n",
        json_escape(id)
    )
}

/// The stream header preceding a sweep's row frames.
pub fn stream_header_frame(id: &str, sweep: &str, cells: usize, columns: &[&str]) -> String {
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"stream\",\"sweep\":\"{}\",\"cells\":{},\"columns\":{}}}\n",
        json_escape(id),
        json_escape(sweep),
        cells,
        columns_json(columns),
    )
}

/// One shard of sweep rows (each row one CSV line, comma-joined cells —
/// the same bytes `repro sweep` writes).
pub fn rows_frame(id: &str, rows: &[String]) -> String {
    let quoted: Vec<String> = rows.iter().map(|r| format!("\"{}\"", json_escape(r))).collect();
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"rows\",\"rows\":[{}]}}\n",
        json_escape(id),
        quoted.join(","),
    )
}

/// The stream footer: deterministic totals only (disk hits and timing are
/// live counters, surfaced on stderr — never in response bytes, which
/// must replay byte-identically warm or cold).
pub fn done_frame(id: &str, cells: usize, errors: usize) -> String {
    format!(
        "{{\"v\":1,\"id\":\"{}\",\"status\":\"done\",\"cells\":{},\"errors\":{}}}\n",
        json_escape(id),
        cells,
        errors,
    )
}

/// The `status` field of a response line (clients use this to find the
/// terminal frame of each request's answer). Response frames carry
/// arrays, which the strict *request* parser rejects by design, so this
/// scans for the literal `"status":"` marker instead — safe because that
/// byte sequence cannot occur inside a JSON string value (its quotes
/// would be escaped there).
pub fn response_status(line: &str) -> Option<String> {
    let rest = line.split_once("\"status\":\"")?.1;
    rest.split_once('"').map(|(status, _)| status.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_cell_query() {
        let req = parse_request(
            r#"{"v":1,"id":"q7","kind":"cell","workload":"MLPf_Res50_MX","system":"DSS_8440","gpus":4}"#,
        )
        .unwrap();
        assert_eq!(req.id, "q7");
        assert_eq!(req.budget, None);
        let QueryV1::Cell(spec) = &req.query else {
            panic!("expected a cell query")
        };
        assert_eq!(spec.kind, CellKind::Training);
        assert_eq!(spec.workload, Some(BenchmarkId::MlpfRes50Mx));
        assert_eq!(spec.system, Some(SystemId::Dss8440));
        assert_eq!(spec.gpus, Some(4));
        assert_eq!(
            req.canonical_bytes(),
            {
                let mut b = b"query.v1;kind=cell;".to_vec();
                b.extend_from_slice(&spec.canonical_bytes());
                b
            }
        );
    }

    #[test]
    fn parses_every_cell_field() {
        let req = parse_request(
            r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"C4140_(K)","gpus":1,"cell_kind":"expected-ttt","batch":64,"precision":"amp","mtbf_hours":4.5,"interval":"daly","budget":100}"#,
        )
        .unwrap();
        assert_eq!(req.id, "-");
        assert_eq!(req.budget, Some(100));
        let QueryV1::Cell(spec) = &req.query else {
            panic!("expected a cell query")
        };
        assert_eq!(spec.kind, CellKind::ExpectedTtt);
        assert_eq!(spec.batch, Some(64));
        assert_eq!(spec.precision, Some(PrecisionPolicy::Amp));
        assert_eq!(spec.mtbf_hours, Some(4.5));
        assert_eq!(spec.interval, Some(IntervalChoice::Daly));

        let fixed = parse_request(
            r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt","mtbf_hours":1,"interval":10.0}"#,
        )
        .unwrap();
        let QueryV1::Cell(spec) = &fixed.query else {
            panic!("expected a cell query")
        };
        assert_eq!(spec.interval, Some(IntervalChoice::FixedMin(10.0)));
    }

    #[test]
    fn rejects_schema_violations_with_messages() {
        let cases: &[(&str, &str)] = &[
            ("not json", "request must be a JSON object"),
            (r#"{"id":"x","kind":"ping"}"#, "missing required field 'v'"),
            (r#"{"v":2,"kind":"ping"}"#, "unsupported schema version"),
            (r#"{"v":1}"#, "missing required field 'kind'"),
            (r#"{"v":1,"kind":"launch"}"#, "unknown query kind"),
            (r#"{"v":1,"kind":"ping","gpus":4}"#, "unknown field 'gpus'"),
            (
                r#"{"v":1,"kind":"cell","workload":"resnet","system":"DSS_8440","gpus":4}"#,
                "unknown workload",
            ),
            (
                r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS 8440","gpus":4}"#,
                "unknown system",
            ),
            (r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440"}"#, "missing required field 'gpus'"),
            (r#"{"v":1,"kind":"ping","v":1}"#, "duplicate field"),
            (r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440","gpus":[1]}"#, "nested values"),
        ];
        for (line, needle) in cases {
            let (_, msg) = parse_request(line).expect_err(line);
            assert!(msg.contains(needle), "{line}: got '{msg}', wanted '{needle}'");
        }
    }

    #[test]
    fn runs_field_parses_normalizes_and_rejects_out_of_range() {
        let base = r#"{"v":1,"kind":"cell","workload":"MLPf_Res50_MX","system":"DSS_8440","gpus":4"#;
        let req = parse_request(&format!(r#"{base},"runs":8}}"#)).unwrap();
        let QueryV1::Cell(spec) = &req.query else {
            panic!("expected a cell query")
        };
        assert_eq!(spec.runs, Some(8));
        assert!(String::from_utf8(req.canonical_bytes()).unwrap().ends_with(";runs=8"));
        // "runs":1 is the explicit spelling of the default: identical
        // identity (and thus coalescing key) to omitting the field.
        let one = parse_request(&format!(r#"{base},"runs":1}}"#)).unwrap();
        let plain = parse_request(&format!("{base}}}")).unwrap();
        assert_eq!(one.canonical_bytes(), plain.canonical_bytes());
        // 0, negative, and huge are typed bad-requests naming the field.
        for bad in ["0", "-3", "513", "1000000000000"] {
            let (_, msg) =
                parse_request(&format!(r#"{base},"runs":{bad}}}"#)).expect_err(bad);
            assert!(msg.contains("'runs'"), "runs={bad}: got '{msg}'");
        }
    }

    #[test]
    fn partition_field_parses_normalizes_and_rejects_bad_tokens() {
        let base = r#"{"v":1,"kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1"#;
        let req = parse_request(&format!(r#"{base},"partition":"1of4x3"}}"#)).unwrap();
        let QueryV1::Cell(spec) = &req.query else {
            panic!("expected a cell query")
        };
        assert_eq!(spec.partition.map(|p| p.to_string()).as_deref(), Some("1of4x3"));
        assert!(String::from_utf8(req.canonical_bytes()).unwrap().ends_with(";part=1of4x3"));
        // "full" (and the solo "x1" spelling) are the explicit default:
        // identical identity — and thus coalescing key — to omitting the
        // field, so old clients and new ones share cache entries.
        let full = parse_request(&format!(r#"{base},"partition":"full"}}"#)).unwrap();
        let plain = parse_request(&format!("{base}}}")).unwrap();
        assert_eq!(full.canonical_bytes(), plain.canonical_bytes());
        let solo = parse_request(&format!(r#"{base},"partition":"1of2x1"}}"#)).unwrap();
        let bare = parse_request(&format!(r#"{base},"partition":"1of2"}}"#)).unwrap();
        assert_eq!(solo.canonical_bytes(), bare.canonical_bytes());
        // Invalid tokens are typed bad-requests naming the field.
        for bad in ["1of3", "2of4", "1of4x9", "half", "1of4x0", " 1of4"] {
            let (_, msg) = parse_request(&format!(r#"{base},"partition":"{bad}"}}"#))
                .expect_err(bad);
            assert!(msg.contains("'partition'"), "partition={bad}: got '{msg}'");
        }
    }

    #[test]
    fn replicated_cell_frame_names_the_distribution_columns() {
        let base = CellKind::Training.columns().len();
        let wide: Vec<f64> = (0..base + CellKind::Training.run_columns().len())
            .map(|i| i as f64)
            .collect();
        let frame = cell_ok_frame("q", CellKind::Training, &wide);
        assert!(frame.contains("\"epochs_median\""), "{frame}");
        assert!(frame.contains("\"epochs_ci_hi\""), "{frame}");
        let narrow = cell_ok_frame("q", CellKind::Training, &wide[..base]);
        assert!(!narrow.contains("\"epochs_median\""), "{narrow}");
    }

    #[test]
    fn bad_request_still_echoes_the_id() {
        let (id, _) = parse_request(r#"{"v":3,"id":"my-query","kind":"ping"}"#).unwrap_err();
        assert_eq!(id, "my-query");
    }

    #[test]
    fn every_system_token_round_trips() {
        for name in [
            "T640",
            "C4140_(B)",
            "C4140_(K)",
            "C4140_(M)",
            "R940_XA",
            "DSS_8440",
            "MLPerf_reference_(P100)",
            "DGX-1V_(extension)",
        ] {
            let id = SystemId::from_token(name).unwrap_or_else(|| panic!("token {name}"));
            assert_eq!(id.token(), name);
        }
        for b in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_abbreviation(b.abbreviation()), Some(b));
        }
        assert_eq!(BenchmarkId::from_abbreviation("nope"), None);
        assert_eq!(SystemId::from_token("DSS 8440"), None, "spaces are not wire tokens");
    }

    #[test]
    fn string_unescaping_round_trips() {
        let fields =
            parse_object(r#"{"id":"a\"b\\c\ndA😀"}"#).unwrap();
        assert_eq!(fields[0].1, Json::Str("a\"b\\c\ndA😀".to_string()));
        let msg = "quote\" slash\\ newline\n tab\t ctl\u{1}";
        let line = format!("{{\"m\":\"{}\"}}", json_escape(msg));
        let back = parse_object(&line).unwrap();
        assert_eq!(back[0].1, Json::Str(msg.to_string()));
    }

    #[test]
    fn frames_are_single_lines_with_statuses() {
        for (frame, status) in [
            (pong_frame("a"), "ok"),
            (shutdown_frame("a"), "ok"),
            (cell_ok_frame("a", CellKind::Training, &[1.5, 2.0, 3.25, 0.5, 90.0]), "ok"),
            (error_frame("a", "oom", "out of memory"), "error"),
            (busy_frame("a"), "busy"),
            (stream_header_frame("a", "fault_ttt", 15, &["workload", "status"]), "stream"),
            (rows_frame("a", &["x,y,1".to_string()]), "rows"),
            (done_frame("a", 15, 0), "done"),
        ] {
            assert!(frame.ends_with('\n'), "{frame}");
            assert_eq!(frame.matches('\n').count(), 1, "{frame}");
            assert_eq!(response_status(frame.trim_end()).as_deref(), Some(status), "{frame}");
        }
    }

    #[test]
    fn cell_ok_frame_spells_exact_bits() {
        let v = 0.1f64 + 0.2; // famously not 0.3
        let frame = cell_ok_frame("q", CellKind::ExpectedTtt, &[v, 1.0, 2.0]);
        assert!(frame.contains(&format!("{:016x}", v.to_bits())), "{frame}");
        assert!(frame.contains("0.30000000000000004"), "{frame}");
    }
}
