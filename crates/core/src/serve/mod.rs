//! `repro serve`: the long-lived what-if query server.
//!
//! The paper's value proposition is answering "what if I change the
//! system / batch / precision / GPU count" without burning cluster time;
//! this module promotes that from a batch CLI into a persistent,
//! zero-dependency daemon on a Unix-domain socket. The request API is the
//! versioned, typed [`protocol`] (newline-delimited JSON, hand-rolled
//! like everything else in the workspace); the execution substrate is the
//! batch path's, unchanged: the memoizing [`Ctx`], the work-stealing
//! [`Pool`], the persistent [`DiskCache`], and the sweep layer's
//! cell pricing and streaming.
//!
//! Service model (DESIGN.md §2f):
//!
//! * **Coalescing** — identical in-flight cells across clients are priced
//!   once. This lifts the runner's `InFlight`/`Ready` slot machinery
//!   ([`ShardedCache`]) to the request layer: the coalescing key is the
//!   FNV-1a hash of the query's canonical bytes (request hash = cache
//!   key), and the value is the *encoded outcome bytes* — the same
//!   `ok v1`/`err v1` encoding the disk cache stores, so an error is
//!   coalesced as the error it is, never re-minted as a success.
//! * **Admission control** — a fixed number of active query slots
//!   (default: the pool's worker count) plus a bounded wait queue;
//!   overflow gets a typed `busy` response instead of an unbounded pile
//!   of blocked threads.
//! * **Budgets** — `MLPERF_STEP_BUDGET` (or the per-request `budget`
//!   override) arms a per-connection meter. Each query charges its whole
//!   cost up front on the connection thread — one unit per cell, `len()`
//!   units per sweep — and pricing then runs under
//!   [`Ctx::suspend_budget`], so inline pricing can never double-charge
//!   and the verdict is a pure function of the client's own query
//!   sequence: invariant across `MLPERF_JOBS`, cache state, and whoever
//!   else is hammering the server.
//! * **Degraded responses** — every failure is a typed error frame on
//!   the PR-4 [`ExperimentError`]/`CellError` vocabulary; a poisoned
//!   query unwinds into an `error` response at the per-request
//!   catch-unwind boundary and the server keeps serving.
//! * **Determinism** — response bytes carry no live counters (no disk
//!   hits, no timings, no coalesce flags), so a replayed transcript is
//!   byte-identical cold or warm, serial or oversubscribed. Live counters
//!   go to stderr at shutdown.
//! * **Hostile-client hardening** (DESIGN.md §2h) — per-connection
//!   read/write deadlines bound how long a slow-loris client can hold a
//!   handler thread; request frames are capped
//!   (`MLPERF_SERVE_MAX_FRAME`) and an oversized frame gets a typed
//!   [`protocol::FRAME_TOO_LARGE`] error before the connection closes;
//!   the frame writer tolerates short writes; stalled readers are
//!   reaped at the write deadline; and shutdown drains gracefully —
//!   stop accepting, finish in-flight requests, refuse new queries
//!   with a typed [`protocol::SHUTTING_DOWN`] frame, then exit. The
//!   wall clock touches only connection lifetimes, never response
//!   bytes.

pub mod protocol;

use crate::config::Config;
use crate::runner::{
    panic_payload_message, BudgetExceeded, Ctx, ExperimentError, Pool, ShardedCache, TrainPoint,
};
use crate::sweep::{self, registry, CellError, CellKind, CellSpec, DiskCache};
use mlperf_sim::engine::{SimError, Simulator};
use mlperf_testkit::hash::fnv1a64;
use protocol::{QueryV1, Request, BAD_REQUEST};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default socket path, relative to the working directory.
pub const DEFAULT_SOCKET: &str = "artifacts/serve.sock";
/// Default bounded-wait-queue depth.
pub const DEFAULT_QUEUE: usize = 1024;
/// Default sweep-streaming shard (cells per `rows` frame), matching the
/// batch CLI's streaming shard.
pub const DEFAULT_SHARD: usize = 1024;

/// Environment variable: per-connection read deadline in milliseconds
/// (also the per-frame wall-clock budget a trickling client gets);
/// `0` disables the deadline.
pub const SERVE_READ_TIMEOUT_ENV: &str = "MLPERF_SERVE_READ_TIMEOUT_MS";
/// Environment variable: per-connection write deadline in milliseconds
/// (stalled readers are reaped when it expires); `0` disables it.
pub const SERVE_WRITE_TIMEOUT_ENV: &str = "MLPERF_SERVE_WRITE_TIMEOUT_MS";
/// Environment variable: maximum request-frame size in bytes (the line,
/// excluding its newline); `0` removes the bound.
pub const SERVE_MAX_FRAME_ENV: &str = "MLPERF_SERVE_MAX_FRAME";
/// Default per-connection read deadline (milliseconds).
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 30_000;
/// Default per-connection write deadline (milliseconds).
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 30_000;
/// Default maximum request-frame size (bytes).
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server construction knobs (the CLI flags of `repro serve`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Concurrent active query slots (`None`: the pool's worker count).
    pub max_active: Option<usize>,
    /// Bounded wait-queue depth beyond the active slots; overflow is
    /// answered `busy`.
    pub queue: usize,
    /// Sweep-streaming shard: cells per `rows` frame.
    pub shard: usize,
    /// Read-deadline override in milliseconds (`None`: the config knob;
    /// `Some(0)`: no deadline).
    pub read_timeout_ms: Option<u64>,
    /// Write-deadline override in milliseconds (`None`: the config knob;
    /// `Some(0)`: no deadline).
    pub write_timeout_ms: Option<u64>,
    /// Request-frame size cap override in bytes (`None`: the config
    /// knob; `Some(0)`: unbounded).
    pub max_frame: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from(DEFAULT_SOCKET),
            max_active: None,
            queue: DEFAULT_QUEUE,
            shard: DEFAULT_SHARD,
            read_timeout_ms: None,
            write_timeout_ms: None,
            max_frame: None,
        }
    }
}

/// One server's live counters (stderr / test instrumentation — never
/// rendered into response bytes, which must replay byte-identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that parsed as well-formed queries.
    pub queries: u64,
    /// Terminal `ok`/`done` frames written.
    pub ok_responses: u64,
    /// Terminal `error` frames written (bad requests included).
    pub error_responses: u64,
    /// `busy` rejections from admission control.
    pub busy_responses: u64,
    /// Cell queries answered by the request-layer coalescing cache
    /// (including waits on an in-flight identical cell).
    pub coalesce_hits: u64,
    /// Cell queries that actually priced a cell — with compute-once
    /// semantics, exactly the number of unique cells priced.
    pub coalesce_misses: u64,
    /// Connections closed after an oversized request frame (a typed
    /// [`protocol::FRAME_TOO_LARGE`] error was written first).
    pub frames_too_large: u64,
    /// Connections reaped at a read or write deadline (slow-loris
    /// senders, stalled readers).
    pub reaped: u64,
    /// Connections that hit EOF mid-frame (a half-written request with
    /// no newline); the partial frame is dropped, never parsed.
    pub dropped_partial: u64,
    /// Queries refused with [`protocol::SHUTTING_DOWN`] during the
    /// graceful drain.
    pub drained: u64,
}

/// Bounded admission: `max_active` concurrent query slots plus a bounded
/// wait queue. `admit` blocks while a queue slot is available and returns
/// `None` (→ typed `busy` response) once the queue is full, so a traffic
/// spike degrades into fast rejections instead of unbounded blocked
/// threads.
struct Admission {
    max_active: usize,
    queue: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

#[derive(Debug, Clone, Copy)]
struct AdmissionState {
    active: usize,
    waiting: usize,
}

struct Ticket<'a> {
    admission: &'a Admission,
}

impl Admission {
    fn new(max_active: usize, queue: usize) -> Admission {
        Admission {
            max_active: max_active.max(1),
            queue,
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    fn admit(&self) -> Option<Ticket<'_>> {
        let mut st = lock(&self.state);
        if st.active < self.max_active {
            st.active += 1;
            return Some(Ticket { admission: self });
        }
        if st.waiting >= self.queue {
            return None;
        }
        st.waiting += 1;
        while st.active >= self.max_active {
            st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.waiting -= 1;
        st.active += 1;
        Some(Ticket { admission: self })
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.admission.state);
        st.active -= 1;
        drop(st);
        self.admission.freed.notify_one();
    }
}

enum Action {
    Continue,
    Shutdown,
}

/// The query server: one listener, one memoizing context, one pool, one
/// coalescing cache — shared by every connection for the server's
/// lifetime, which is exactly what makes repeated questions cheap.
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    ctx: Ctx,
    pool: Pool,
    cache: Option<DiskCache>,
    /// Request-layer coalescing: canonical-query-bytes hash → encoded
    /// outcome bytes (the disk cache's `ok v1`/`err v1` encoding).
    coalesce: ShardedCache<u64, Vec<u8>>,
    admission: Admission,
    default_budget: Option<u64>,
    shard: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_frame: usize,
    shutdown: AtomicBool,
    queries: AtomicU64,
    ok_responses: AtomicU64,
    error_responses: AtomicU64,
    busy_responses: AtomicU64,
    frames_too_large: AtomicU64,
    reaped: AtomicU64,
    dropped_partial: AtomicU64,
    drained: AtomicU64,
}

impl Server {
    /// Bind the socket and assemble the execution substrate from an
    /// explicitly resolved [`Config`] (the daemon resolves the
    /// environment exactly once, at startup).
    ///
    /// # Errors
    ///
    /// Propagates [`io::Error`] from socket setup.
    pub fn bind(opts: &ServeOptions, cfg: &Config) -> io::Result<Server> {
        if let Some(parent) = opts.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // A stale socket file from a dead server refuses rebinding;
        // remove it. (A *live* server would still own connections on it —
        // running two servers on one path is operator error either way.)
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)?;
        let pool = Pool::from_config(cfg);
        let max_active = opts.max_active.unwrap_or_else(|| pool.workers());
        let read_timeout_ms = opts.read_timeout_ms.unwrap_or(cfg.serve_read_timeout_ms);
        let write_timeout_ms = opts.write_timeout_ms.unwrap_or(cfg.serve_write_timeout_ms);
        let max_frame = match opts.max_frame.unwrap_or(cfg.serve_max_frame) {
            0 => usize::MAX,
            n => n,
        };
        Ok(Server {
            listener,
            socket: opts.socket.clone(),
            ctx: Ctx::from_config(cfg),
            pool,
            cache: DiskCache::from_config(cfg),
            coalesce: ShardedCache::new(),
            admission: Admission::new(max_active, opts.queue),
            default_budget: cfg.step_budget,
            shard: opts.shard.max(1),
            read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
            write_timeout: (write_timeout_ms > 0).then(|| Duration::from_millis(write_timeout_ms)),
            max_frame,
            shutdown: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            busy_responses: AtomicU64::new(0),
            frames_too_large: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            dropped_partial: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        })
    }

    /// The socket path this server listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Live counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            ok_responses: self.ok_responses.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            busy_responses: self.busy_responses.load(Ordering::Relaxed),
            coalesce_hits: self.coalesce.hits(),
            coalesce_misses: self.coalesce.misses(),
            frames_too_large: self.frames_too_large.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            dropped_partial: self.dropped_partial.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }

    /// Serve until a `shutdown` query arrives: accept connections, one
    /// handler thread per connection, requests answered serially per
    /// connection (transcript order = request order). Blocks the caller;
    /// returns after the shutdown handshake once every handler thread has
    /// drained.
    ///
    /// # Errors
    ///
    /// Propagates [`io::Error`] from the accept loop (per-connection I/O
    /// errors only end that connection).
    pub fn run(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        scope.spawn(move || {
                            let _ = self.handle(stream);
                            // One thread per connection: drop this
                            // thread's budget meter so the map does not
                            // grow with connection count.
                            self.ctx.disarm_budget();
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        let _ = std::fs::remove_file(&self.socket);
        let s = self.stats();
        let coalesce_requests = s.coalesce_hits + s.coalesce_misses;
        eprintln!(
            "serve: {} queries ({} ok, {} error, {} busy, {} drained), \
             coalesce {} hits / {} unique cells{}, \
             {} oversized frames, {} reaped, {} partial frames dropped",
            s.queries,
            s.ok_responses,
            s.error_responses,
            s.busy_responses,
            s.drained,
            s.coalesce_hits,
            s.coalesce_misses,
            if coalesce_requests > 0 {
                format!(
                    " ({:.0}% hit rate)",
                    s.coalesce_hits as f64 / coalesce_requests as f64 * 100.0
                )
            } else {
                String::new()
            },
            s.frames_too_large,
            s.reaped,
            s.dropped_partial,
        );
        if let Some(cache) = &self.cache {
            eprint!("{}", cache.summary());
        }
        Ok(())
    }

    fn handle(&self, stream: UnixStream) -> io::Result<()> {
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        let raw = stream.try_clone()?;
        let mut reader =
            BoundedLineReader::new(stream.try_clone()?, self.max_frame, self.read_timeout);
        let mut writer = BufWriter::new(FrameWriter { inner: stream });
        loop {
            let line = match reader.next_line() {
                Ok(Some(line)) => line,
                // Clean EOF: the client hung up between frames.
                Ok(None) => break,
                Err(FrameError::TooLarge) => {
                    // The rest of the oversized frame is never read; the
                    // typed error is the connection's last frame. The id
                    // is unknowable (the line was never parsed).
                    self.frames_too_large.fetch_add(1, Ordering::Relaxed);
                    self.error_responses.fetch_add(1, Ordering::Relaxed);
                    let frame = protocol::error_frame(
                        "-",
                        protocol::FRAME_TOO_LARGE,
                        &format!("request frame exceeds {} bytes", self.max_frame),
                    );
                    let _ = writer.write_all(frame.as_bytes()).and_then(|()| writer.flush());
                    // A Unix socket closed with unread request bytes
                    // resets its peer, which can discard the frame just
                    // written; drain the leftovers (bounded) so a
                    // well-behaved-but-oversized client reliably reads
                    // the typed error before the clean EOF.
                    drain_discard(&raw);
                    break;
                }
                Err(FrameError::Deadline) => {
                    // Slow-loris sender or an idle connection outliving
                    // the read deadline: reap it.
                    self.reaped.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(FrameError::PartialEof) => {
                    // Half-written request, then EOF: nothing to answer,
                    // and the fragment must never reach the parser.
                    self.dropped_partial.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(FrameError::Io(e)) => return Err(e),
            };
            if line.trim().is_empty() {
                continue;
            }
            let answered = self.respond(&line, &mut writer).and_then(|action| {
                writer.flush()?;
                Ok(action)
            });
            match answered {
                Ok(Action::Shutdown) => {
                    // Unblock the accept loop so `run` can observe the flag.
                    let _ = UnixStream::connect(&self.socket);
                    break;
                }
                Ok(Action::Continue) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Drain: the request in flight was answered in
                        // full; close so `run` can join this handler.
                        break;
                    }
                }
                Err(e) if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
                {
                    // The client stopped reading and the socket buffer
                    // filled: the write deadline reaps the connection.
                    self.reaped.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Answer one request line. Everything below the admission gate runs
    /// inside a catch-unwind boundary: a budget trip becomes a typed
    /// `deadline-exceeded` frame, any other panic a `panicked` frame, and
    /// the connection (and server) live on.
    fn respond(&self, line: &str, out: &mut dyn Write) -> io::Result<Action> {
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::error_frame(&id, BAD_REQUEST, &msg).as_bytes())?;
                return Ok(Action::Continue);
            }
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        match &req.query {
            QueryV1::Ping => {
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::pong_frame(&req.id).as_bytes())?;
                Ok(Action::Continue)
            }
            QueryV1::Shutdown => {
                // Flag first, ack second: once a client holds the ack,
                // every other connection's next query is guaranteed to
                // see the drain.
                self.shutdown.store(true, Ordering::SeqCst);
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::shutdown_frame(&req.id).as_bytes())?;
                Ok(Action::Shutdown)
            }
            QueryV1::Cell(_) | QueryV1::Sweep(_) => {
                if self.shutdown.load(Ordering::SeqCst) {
                    self.drained.fetch_add(1, Ordering::Relaxed);
                    self.error_responses.fetch_add(1, Ordering::Relaxed);
                    out.write_all(
                        protocol::error_frame(
                            &req.id,
                            protocol::SHUTTING_DOWN,
                            "server is draining",
                        )
                        .as_bytes(),
                    )?;
                    return Ok(Action::Continue);
                }
                let Some(_ticket) = self.admission.admit() else {
                    self.busy_responses.fetch_add(1, Ordering::Relaxed);
                    out.write_all(protocol::busy_frame(&req.id).as_bytes())?;
                    return Ok(Action::Continue);
                };
                if let Some(budget) = req.budget.or(self.default_budget) {
                    self.ctx.set_budget_limit(budget);
                }
                match catch_unwind(AssertUnwindSafe(|| self.execute(&req, out))) {
                    Ok(io_result) => io_result?,
                    Err(payload) => {
                        self.error_responses.fetch_add(1, Ordering::Relaxed);
                        let frame = if let Some(b) = payload.downcast_ref::<BudgetExceeded>() {
                            let e = ExperimentError::DeadlineExceeded {
                                used: b.used,
                                budget: b.budget,
                            };
                            protocol::error_frame(&req.id, e.kind(), &e.to_string())
                        } else {
                            protocol::error_frame(
                                &req.id,
                                "panicked",
                                &panic_payload_message(payload.as_ref()),
                            )
                        };
                        out.write_all(frame.as_bytes())?;
                    }
                }
                Ok(Action::Continue)
            }
        }
    }

    fn execute(&self, req: &Request, out: &mut dyn Write) -> io::Result<()> {
        match &req.query {
            QueryV1::Cell(spec) => self.execute_cell(req, spec, out),
            QueryV1::Sweep(name) => self.execute_sweep(req, name, out),
            QueryV1::Ping | QueryV1::Shutdown => unreachable!("answered before admission"),
        }
    }

    fn execute_cell(&self, req: &Request, spec: &CellSpec, out: &mut dyn Write) -> io::Result<()> {
        // The whole cost, up front, on the connection thread: the budget
        // verdict must not depend on coalescing or cache state.
        self.ctx.charge(1);
        // Cheap typed admission: the engine's preflight runs exactly the
        // validation + memory gate `execute` would run first, so
        // rejecting here produces the same error bytes the priced path
        // would — without occupying the coalescing machinery.
        if spec.kind == CellKind::Training {
            if let Err(e) = self.preflight(spec) {
                let err = CellError::from_sim(e);
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                return out
                    .write_all(protocol::error_frame(&req.id, &err.kind, &err.message).as_bytes());
            }
        }
        let key = fnv1a64(&req.canonical_bytes());
        let bytes = self.coalesce.get_or_compute(key, || {
            // Pricing must not double-charge the client (the coalesce
            // miss runs inline on this thread) and must not charge a
            // *different* client whose identical query got here first.
            let _quiet = self.ctx.suspend_budget();
            sweep::encode_outcome(&sweep::run_cell(&self.ctx, spec, self.cache.as_ref()).outcome)
        });
        let frame = match sweep::decode_outcome(spec.kind, sweep::effective_runs(&self.ctx, spec), &bytes) {
            Some(Ok(value)) => {
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                protocol::cell_ok_frame(&req.id, spec.kind, value.values())
            }
            Some(Err(e)) => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                protocol::error_frame(&req.id, &e.kind, &e.message)
            }
            None => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                protocol::error_frame(&req.id, "panicked", "malformed coalesced outcome")
            }
        };
        out.write_all(frame.as_bytes())
    }

    fn execute_sweep(&self, req: &Request, name: &str, out: &mut dyn Write) -> io::Result<()> {
        let Some(spec) = registry().into_iter().find(|s| s.name == name) else {
            self.error_responses.fetch_add(1, Ordering::Relaxed);
            let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
            return out.write_all(
                protocol::error_frame(
                    &req.id,
                    BAD_REQUEST,
                    &format!("unknown sweep '{name}' (registered: {})", names.join(", ")),
                )
                .as_bytes(),
            );
        };
        // Whole sweep cost up front; the cells themselves then price
        // under suspension (pool workers carry no meter; the one-worker
        // inline path runs on this thread).
        self.ctx.charge(spec.len() as u64);
        let _quiet = self.ctx.suspend_budget();
        let mut framer = ShardFramer::new(out, &req.id, spec.name, spec.len(), self.shard);
        let summary = sweep::run_streamed(
            &self.pool,
            &self.ctx,
            &spec,
            self.cache.as_ref(),
            &mut framer,
            self.shard,
        )?;
        framer.finish(summary.cells, summary.errors)?;
        self.ok_responses.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The engine's admission check for the exact job the executor would
    /// run (same interned template, same override order as
    /// [`Ctx::step`]). Training cells only: expected-TTT cells validate
    /// their extra dimensions in `price_cell` *before* touching the
    /// engine, and re-ordering those checks here would change error
    /// bytes.
    fn preflight(&self, spec: &CellSpec) -> Result<(), SimError> {
        let (Some(workload), Some(system), Some(gpus)) = (spec.workload, spec.system, spec.gpus)
        else {
            // The parser requires all three; pricing reports the
            // invalid-spec if this is ever reached some other way.
            return Ok(());
        };
        let mut point = TrainPoint::new(workload, system, gpus);
        if let Some(b) = spec.batch {
            point = point.with_per_gpu_batch(b);
        }
        if let Some(p) = spec.precision {
            point = point.with_precision(p);
        }
        let job = self.ctx.job_for(&point);
        let system_spec = self.ctx.system_spec(system);
        let ordinals: Vec<u32> = (0..gpus).collect();
        Simulator::new(&system_spec).preflight(&job, &ordinals).map(|_| ())
    }
}

/// Why [`BoundedLineReader::next_line`] gave up on a frame.
enum FrameError {
    /// The line exceeded the configured maximum frame size.
    TooLarge,
    /// The read deadline (or the per-frame wall-clock budget a trickling
    /// sender gets) expired.
    Deadline,
    /// EOF arrived mid-frame: bytes were buffered but no newline came.
    PartialEof,
    /// Any other I/O failure.
    Io(io::Error),
}

/// A line reader that enforces the two bounds [`BufRead::lines`] cannot:
/// a maximum frame size (an attacker may not buffer unbounded bytes
/// server-side) and a per-frame wall-clock deadline (a slow-loris sender
/// trickling one byte per read-timeout window may not hold a handler
/// thread forever — the socket's own read timeout only bounds each
/// *read*, this bounds the whole frame).
struct BoundedLineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    max_frame: usize,
    frame_budget: Option<Duration>,
}

impl<R: Read> BoundedLineReader<R> {
    fn new(inner: R, max_frame: usize, frame_budget: Option<Duration>) -> BoundedLineReader<R> {
        BoundedLineReader {
            inner,
            buf: Vec::new(),
            max_frame,
            frame_budget,
        }
    }

    /// The next newline-terminated line (without its newline), `None` on
    /// clean EOF between frames.
    fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        let deadline = self.frame_budget.map(|budget| Instant::now() + budget);
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > self.max_frame {
                    return Err(FrameError::TooLarge);
                }
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Ok(Some(line));
            }
            if self.buf.len() > self.max_frame {
                return Err(FrameError::TooLarge);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(FrameError::Deadline);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(FrameError::PartialEof)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    return Err(FrameError::Deadline);
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// Discard whatever request bytes the client already sent, so the close
/// that follows a terminal error frame is a clean EOF instead of a
/// connection reset (which could destroy the frame in flight). Bounded
/// twice over — a short per-read timeout and a total byte cap — so a
/// client that floods forever gets the reset it asked for instead of a
/// captive handler thread.
fn drain_discard(stream: &UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 256 * 1024;
    while budget > 0 {
        match (&mut &*stream).read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// A [`Write`] adapter that upgrades the raw stream's `write` to
/// all-or-error semantics: short writes are retried until the buffer is
/// fully accepted, `Interrupted` is swallowed, and zero-progress becomes
/// a hard `WriteZero` — so a response frame is never silently truncated
/// between the `BufWriter` above and the socket below. Deadline errors
/// (`WouldBlock`/`TimedOut`) still propagate: that is how stalled
/// readers get reaped.
struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> Write for FrameWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut written = 0;
        while written < buf.len() {
            match self.inner.write(&buf[written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`Write`] adapter that turns [`sweep::run_streamed`]'s CSV byte
/// stream into response frames: the header line becomes the `stream`
/// frame, every `shard` rows become one `rows` frame. This is what lets
/// the server reuse the streaming runner *literally* — same pricing, same
/// row rendering, same shard-bounded memory — with only the framing
/// changed.
struct ShardFramer<'a> {
    out: &'a mut dyn Write,
    id: &'a str,
    sweep: &'a str,
    cells: usize,
    shard: usize,
    buf: Vec<u8>,
    rows: Vec<String>,
    sent_header: bool,
}

impl<'a> ShardFramer<'a> {
    fn new(
        out: &'a mut dyn Write,
        id: &'a str,
        sweep: &'a str,
        cells: usize,
        shard: usize,
    ) -> ShardFramer<'a> {
        ShardFramer {
            out,
            id,
            sweep,
            cells,
            shard: shard.max(1),
            buf: Vec::new(),
            rows: Vec::new(),
            sent_header: false,
        }
    }

    fn flush_rows(&mut self) -> io::Result<()> {
        if !self.rows.is_empty() {
            self.out.write_all(protocol::rows_frame(self.id, &self.rows).as_bytes())?;
            self.rows.clear();
        }
        Ok(())
    }

    fn finish(mut self, cells: usize, errors: usize) -> io::Result<()> {
        self.flush_rows()?;
        self.out.write_all(protocol::done_frame(self.id, cells, errors).as_bytes())
    }
}

impl Write for ShardFramer<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if self.sent_header {
                self.rows.push(line);
                if self.rows.len() >= self.shard {
                    self.flush_rows()?;
                }
            } else {
                self.sent_header = true;
                let columns: Vec<&str> = line.split(',').collect();
                self.out.write_all(
                    protocol::stream_header_frame(self.id, self.sweep, self.cells, &columns)
                        .as_bytes(),
                )?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// The `repro query` client: replay newline-delimited request lines from
/// `input` against the server at `socket`, echoing every response frame
/// to `out` in transcript order. Each request is sent and its answer
/// drained to the terminal frame (`ok`/`error`/`busy`/`done`) before the
/// next is sent, so the transcript is deterministic for a deterministic
/// request sequence.
///
/// # Errors
///
/// Propagates [`io::Error`] from either side of the conversation.
pub fn replay_client(
    socket: &Path,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> io::Result<()> {
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        loop {
            let mut frame = String::new();
            if reader.read_line(&mut frame)? == 0 {
                // Server closed the connection (e.g. after a shutdown
                // acknowledgement on another line of this transcript).
                return Ok(());
            }
            out.write_all(frame.as_bytes())?;
            if matches!(
                protocol::response_status(frame.trim_end()).as_deref(),
                Some("ok" | "error" | "busy" | "done")
            ) {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn admission_grants_up_to_active_plus_queue() {
        let a = Admission::new(1, 2);
        let first = a.admit().expect("first slot");
        // The active slot is taken; exactly `queue` waiters may block, so
        // from this thread (which would deadlock waiting on itself) we
        // only check the overflow path deterministically: fill the queue
        // from two helper threads, then overflow.
        let queued = AtomicUsize::new(0);
        let rejected = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| match a.admit() {
                    Some(_t) => {
                        queued.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // Wait until both helpers are parked in the queue, then free
            // the active slot so they drain.
            while lock(&a.state).waiting < 2 {
                let st = *lock(&a.state);
                if st.waiting + queued.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst) >= 2
                {
                    break;
                }
                std::thread::yield_now();
            }
            drop(first);
        });
        assert_eq!(queued.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst), 2);
        assert_eq!(lock(&a.state).active, 0, "every ticket returned its slot");
    }

    #[test]
    fn admission_overflow_is_rejected_not_blocked() {
        let a = Admission::new(1, 0);
        let _held = a.admit().expect("first slot");
        assert!(a.admit().is_none(), "zero-depth queue must reject immediately");
    }

    /// A reader handing out its script of `Ok(chunk)` / error-kind steps,
    /// for driving [`BoundedLineReader`] and [`FrameWriter`] without a
    /// socket.
    struct ScriptedReader {
        steps: Vec<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.steps.is_empty() {
                return Ok(0);
            }
            match self.steps.remove(0) {
                Ok(bytes) => {
                    out[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(kind) => Err(kind.into()),
            }
        }
    }

    #[test]
    fn bounded_reader_splits_lines_across_chunks() {
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"hel".to_vec()), Ok(b"lo\nwor".to_vec()), Ok(b"ld\n".to_vec())],
            },
            1024,
            None,
        );
        assert_eq!(r.next_line().ok().flatten().as_deref(), Some("hello"));
        assert_eq!(r.next_line().ok().flatten().as_deref(), Some("world"));
        assert!(matches!(r.next_line(), Ok(None)), "clean EOF");
    }

    #[test]
    fn bounded_reader_rejects_oversized_frames() {
        // Oversized with the newline already buffered …
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"0123456789\n".to_vec())],
            },
            4,
            None,
        );
        assert!(matches!(r.next_line(), Err(FrameError::TooLarge)));
        // … and oversized while still unterminated.
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"0123456789".to_vec()), Ok(b"ab".to_vec())],
            },
            4,
            None,
        );
        assert!(matches!(r.next_line(), Err(FrameError::TooLarge)));
        // A line of exactly max_frame bytes is fine.
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"0123\n".to_vec())],
            },
            4,
            None,
        );
        assert_eq!(r.next_line().ok().flatten().as_deref(), Some("0123"));
    }

    #[test]
    fn bounded_reader_maps_timeouts_and_partial_eof() {
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"half a frame".to_vec()), Err(io::ErrorKind::WouldBlock)],
            },
            1024,
            None,
        );
        assert!(matches!(r.next_line(), Err(FrameError::Deadline)));
        let mut r = BoundedLineReader::new(
            ScriptedReader {
                steps: vec![Ok(b"half a frame".to_vec())],
            },
            1024,
            None,
        );
        assert!(
            matches!(r.next_line(), Err(FrameError::PartialEof)),
            "EOF mid-frame must not surface the fragment"
        );
    }

    #[test]
    fn bounded_reader_enforces_the_frame_wall_clock() {
        // A trickler that never finishes a frame: each read succeeds, so
        // only the per-frame budget can end it.
        struct Trickle;
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_millis(2));
                out[0] = b'x';
                Ok(1)
            }
        }
        let mut r = BoundedLineReader::new(Trickle, usize::MAX, Some(Duration::from_millis(30)));
        let started = Instant::now();
        assert!(matches!(r.next_line(), Err(FrameError::Deadline)));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the budget must cut the trickle short"
        );
    }

    /// A sink that accepts at most 3 bytes per call and injects periodic
    /// `Interrupted`, the worst case a real socket hands `write`.
    struct ChunkySink {
        bytes: Vec<u8>,
        calls: usize,
    }

    impl Write for ChunkySink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(4) {
                return Err(io::ErrorKind::Interrupted.into());
            }
            let n = buf.len().min(3);
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_survives_short_writes_and_interrupts() {
        let mut w = FrameWriter {
            inner: ChunkySink {
                bytes: Vec::new(),
                calls: 0,
            },
        };
        let frame = b"{\"v\":1,\"id\":\"q1\",\"status\":\"ok\"}\n";
        w.write_all(frame).unwrap();
        w.write_all(b"tail\n").unwrap();
        let mut expect = frame.to_vec();
        expect.extend_from_slice(b"tail\n");
        assert_eq!(w.inner.bytes, expect, "no byte lost, none reordered");
    }

    #[test]
    fn frame_writer_turns_zero_progress_into_an_error() {
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = FrameWriter { inner: Stuck };
        let e = w.write_all(b"frame\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn shard_framer_frames_a_csv_stream() {
        let mut sink: Vec<u8> = Vec::new();
        {
            let out: &mut dyn Write = &mut sink;
            let mut f = ShardFramer::new(&mut *out, "q1", "demo", 3, 2);
            // Feed a 3-row CSV in awkward chunk boundaries.
            f.write_all(b"a,b,c\n1,2").unwrap();
            f.write_all(b",3\n4,5,6\n7,8,9\n").unwrap();
            f.finish(3, 1).unwrap();
        }
        let text = String::from_utf8(sink).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"status\":\"stream\"") && lines[0].contains("\"cells\":3"));
        assert!(lines[1].contains("\"rows\":[\"1,2,3\",\"4,5,6\"]"), "{text}");
        assert!(lines[2].contains("\"rows\":[\"7,8,9\"]"), "{text}");
        assert!(lines[3].contains("\"status\":\"done\"") && lines[3].contains("\"errors\":1"));
    }
}
