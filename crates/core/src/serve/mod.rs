//! `repro serve`: the long-lived what-if query server.
//!
//! The paper's value proposition is answering "what if I change the
//! system / batch / precision / GPU count" without burning cluster time;
//! this module promotes that from a batch CLI into a persistent,
//! zero-dependency daemon on a Unix-domain socket. The request API is the
//! versioned, typed [`protocol`] (newline-delimited JSON, hand-rolled
//! like everything else in the workspace); the execution substrate is the
//! batch path's, unchanged: the memoizing [`Ctx`], the work-stealing
//! [`Pool`], the persistent [`DiskCache`], and the sweep layer's
//! cell pricing and streaming.
//!
//! Service model (DESIGN.md §2f):
//!
//! * **Coalescing** — identical in-flight cells across clients are priced
//!   once. This lifts the runner's `InFlight`/`Ready` slot machinery
//!   ([`ShardedCache`]) to the request layer: the coalescing key is the
//!   FNV-1a hash of the query's canonical bytes (request hash = cache
//!   key), and the value is the *encoded outcome bytes* — the same
//!   `ok v1`/`err v1` encoding the disk cache stores, so an error is
//!   coalesced as the error it is, never re-minted as a success.
//! * **Admission control** — a fixed number of active query slots
//!   (default: the pool's worker count) plus a bounded wait queue;
//!   overflow gets a typed `busy` response instead of an unbounded pile
//!   of blocked threads.
//! * **Budgets** — `MLPERF_STEP_BUDGET` (or the per-request `budget`
//!   override) arms a per-connection meter. Each query charges its whole
//!   cost up front on the connection thread — one unit per cell, `len()`
//!   units per sweep — and pricing then runs under
//!   [`Ctx::suspend_budget`], so inline pricing can never double-charge
//!   and the verdict is a pure function of the client's own query
//!   sequence: invariant across `MLPERF_JOBS`, cache state, and whoever
//!   else is hammering the server.
//! * **Degraded responses** — every failure is a typed error frame on
//!   the PR-4 [`ExperimentError`]/`CellError` vocabulary; a poisoned
//!   query unwinds into an `error` response at the per-request
//!   catch-unwind boundary and the server keeps serving.
//! * **Determinism** — response bytes carry no live counters (no disk
//!   hits, no timings, no coalesce flags), so a replayed transcript is
//!   byte-identical cold or warm, serial or oversubscribed. Live counters
//!   go to stderr at shutdown.

pub mod protocol;

use crate::config::Config;
use crate::runner::{
    panic_payload_message, BudgetExceeded, Ctx, ExperimentError, Pool, ShardedCache, TrainPoint,
};
use crate::sweep::{self, registry, CellError, CellKind, CellSpec, DiskCache};
use mlperf_sim::engine::{SimError, Simulator};
use mlperf_testkit::hash::fnv1a64;
use protocol::{QueryV1, Request, BAD_REQUEST};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Default socket path, relative to the working directory.
pub const DEFAULT_SOCKET: &str = "artifacts/serve.sock";
/// Default bounded-wait-queue depth.
pub const DEFAULT_QUEUE: usize = 1024;
/// Default sweep-streaming shard (cells per `rows` frame), matching the
/// batch CLI's streaming shard.
pub const DEFAULT_SHARD: usize = 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server construction knobs (the CLI flags of `repro serve`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Concurrent active query slots (`None`: the pool's worker count).
    pub max_active: Option<usize>,
    /// Bounded wait-queue depth beyond the active slots; overflow is
    /// answered `busy`.
    pub queue: usize,
    /// Sweep-streaming shard: cells per `rows` frame.
    pub shard: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from(DEFAULT_SOCKET),
            max_active: None,
            queue: DEFAULT_QUEUE,
            shard: DEFAULT_SHARD,
        }
    }
}

/// One server's live counters (stderr / test instrumentation — never
/// rendered into response bytes, which must replay byte-identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that parsed as well-formed queries.
    pub queries: u64,
    /// Terminal `ok`/`done` frames written.
    pub ok_responses: u64,
    /// Terminal `error` frames written (bad requests included).
    pub error_responses: u64,
    /// `busy` rejections from admission control.
    pub busy_responses: u64,
    /// Cell queries answered by the request-layer coalescing cache
    /// (including waits on an in-flight identical cell).
    pub coalesce_hits: u64,
    /// Cell queries that actually priced a cell — with compute-once
    /// semantics, exactly the number of unique cells priced.
    pub coalesce_misses: u64,
}

/// Bounded admission: `max_active` concurrent query slots plus a bounded
/// wait queue. `admit` blocks while a queue slot is available and returns
/// `None` (→ typed `busy` response) once the queue is full, so a traffic
/// spike degrades into fast rejections instead of unbounded blocked
/// threads.
struct Admission {
    max_active: usize,
    queue: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

#[derive(Debug, Clone, Copy)]
struct AdmissionState {
    active: usize,
    waiting: usize,
}

struct Ticket<'a> {
    admission: &'a Admission,
}

impl Admission {
    fn new(max_active: usize, queue: usize) -> Admission {
        Admission {
            max_active: max_active.max(1),
            queue,
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    fn admit(&self) -> Option<Ticket<'_>> {
        let mut st = lock(&self.state);
        if st.active < self.max_active {
            st.active += 1;
            return Some(Ticket { admission: self });
        }
        if st.waiting >= self.queue {
            return None;
        }
        st.waiting += 1;
        while st.active >= self.max_active {
            st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.waiting -= 1;
        st.active += 1;
        Some(Ticket { admission: self })
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.admission.state);
        st.active -= 1;
        drop(st);
        self.admission.freed.notify_one();
    }
}

enum Action {
    Continue,
    Shutdown,
}

/// The query server: one listener, one memoizing context, one pool, one
/// coalescing cache — shared by every connection for the server's
/// lifetime, which is exactly what makes repeated questions cheap.
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    ctx: Ctx,
    pool: Pool,
    cache: Option<DiskCache>,
    /// Request-layer coalescing: canonical-query-bytes hash → encoded
    /// outcome bytes (the disk cache's `ok v1`/`err v1` encoding).
    coalesce: ShardedCache<u64, Vec<u8>>,
    admission: Admission,
    default_budget: Option<u64>,
    shard: usize,
    shutdown: AtomicBool,
    queries: AtomicU64,
    ok_responses: AtomicU64,
    error_responses: AtomicU64,
    busy_responses: AtomicU64,
}

impl Server {
    /// Bind the socket and assemble the execution substrate from an
    /// explicitly resolved [`Config`] (the daemon resolves the
    /// environment exactly once, at startup).
    ///
    /// # Errors
    ///
    /// Propagates [`io::Error`] from socket setup.
    pub fn bind(opts: &ServeOptions, cfg: &Config) -> io::Result<Server> {
        if let Some(parent) = opts.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // A stale socket file from a dead server refuses rebinding;
        // remove it. (A *live* server would still own connections on it —
        // running two servers on one path is operator error either way.)
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)?;
        let pool = Pool::from_config(cfg);
        let max_active = opts.max_active.unwrap_or_else(|| pool.workers());
        Ok(Server {
            listener,
            socket: opts.socket.clone(),
            ctx: Ctx::from_config(cfg),
            pool,
            cache: DiskCache::from_config(cfg),
            coalesce: ShardedCache::new(),
            admission: Admission::new(max_active, opts.queue),
            default_budget: cfg.step_budget,
            shard: opts.shard.max(1),
            shutdown: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            busy_responses: AtomicU64::new(0),
        })
    }

    /// The socket path this server listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Live counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            ok_responses: self.ok_responses.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            busy_responses: self.busy_responses.load(Ordering::Relaxed),
            coalesce_hits: self.coalesce.hits(),
            coalesce_misses: self.coalesce.misses(),
        }
    }

    /// Serve until a `shutdown` query arrives: accept connections, one
    /// handler thread per connection, requests answered serially per
    /// connection (transcript order = request order). Blocks the caller;
    /// returns after the shutdown handshake once every handler thread has
    /// drained.
    ///
    /// # Errors
    ///
    /// Propagates [`io::Error`] from the accept loop (per-connection I/O
    /// errors only end that connection).
    pub fn run(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        scope.spawn(move || {
                            let _ = self.handle(stream);
                            // One thread per connection: drop this
                            // thread's budget meter so the map does not
                            // grow with connection count.
                            self.ctx.disarm_budget();
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        let _ = std::fs::remove_file(&self.socket);
        let s = self.stats();
        let coalesce_requests = s.coalesce_hits + s.coalesce_misses;
        eprintln!(
            "serve: {} queries ({} ok, {} error, {} busy), coalesce {} hits / {} unique cells{}",
            s.queries,
            s.ok_responses,
            s.error_responses,
            s.busy_responses,
            s.coalesce_hits,
            s.coalesce_misses,
            if coalesce_requests > 0 {
                format!(
                    " ({:.0}% hit rate)",
                    s.coalesce_hits as f64 / coalesce_requests as f64 * 100.0
                )
            } else {
                String::new()
            },
        );
        if let Some(cache) = &self.cache {
            eprint!("{}", cache.summary());
        }
        Ok(())
    }

    fn handle(&self, stream: UnixStream) -> io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let action = self.respond(&line, &mut writer)?;
            writer.flush()?;
            if matches!(action, Action::Shutdown) {
                // Unblock the accept loop so `run` can observe the flag.
                let _ = UnixStream::connect(&self.socket);
                break;
            }
        }
        Ok(())
    }

    /// Answer one request line. Everything below the admission gate runs
    /// inside a catch-unwind boundary: a budget trip becomes a typed
    /// `deadline-exceeded` frame, any other panic a `panicked` frame, and
    /// the connection (and server) live on.
    fn respond(&self, line: &str, out: &mut dyn Write) -> io::Result<Action> {
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::error_frame(&id, BAD_REQUEST, &msg).as_bytes())?;
                return Ok(Action::Continue);
            }
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        match &req.query {
            QueryV1::Ping => {
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::pong_frame(&req.id).as_bytes())?;
                Ok(Action::Continue)
            }
            QueryV1::Shutdown => {
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                out.write_all(protocol::shutdown_frame(&req.id).as_bytes())?;
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(Action::Shutdown)
            }
            QueryV1::Cell(_) | QueryV1::Sweep(_) => {
                let Some(_ticket) = self.admission.admit() else {
                    self.busy_responses.fetch_add(1, Ordering::Relaxed);
                    out.write_all(protocol::busy_frame(&req.id).as_bytes())?;
                    return Ok(Action::Continue);
                };
                if let Some(budget) = req.budget.or(self.default_budget) {
                    self.ctx.set_budget_limit(budget);
                }
                match catch_unwind(AssertUnwindSafe(|| self.execute(&req, out))) {
                    Ok(io_result) => io_result?,
                    Err(payload) => {
                        self.error_responses.fetch_add(1, Ordering::Relaxed);
                        let frame = if let Some(b) = payload.downcast_ref::<BudgetExceeded>() {
                            let e = ExperimentError::DeadlineExceeded {
                                used: b.used,
                                budget: b.budget,
                            };
                            protocol::error_frame(&req.id, e.kind(), &e.to_string())
                        } else {
                            protocol::error_frame(
                                &req.id,
                                "panicked",
                                &panic_payload_message(payload.as_ref()),
                            )
                        };
                        out.write_all(frame.as_bytes())?;
                    }
                }
                Ok(Action::Continue)
            }
        }
    }

    fn execute(&self, req: &Request, out: &mut dyn Write) -> io::Result<()> {
        match &req.query {
            QueryV1::Cell(spec) => self.execute_cell(req, spec, out),
            QueryV1::Sweep(name) => self.execute_sweep(req, name, out),
            QueryV1::Ping | QueryV1::Shutdown => unreachable!("answered before admission"),
        }
    }

    fn execute_cell(&self, req: &Request, spec: &CellSpec, out: &mut dyn Write) -> io::Result<()> {
        // The whole cost, up front, on the connection thread: the budget
        // verdict must not depend on coalescing or cache state.
        self.ctx.charge(1);
        // Cheap typed admission: the engine's preflight runs exactly the
        // validation + memory gate `execute` would run first, so
        // rejecting here produces the same error bytes the priced path
        // would — without occupying the coalescing machinery.
        if spec.kind == CellKind::Training {
            if let Err(e) = self.preflight(spec) {
                let err = CellError::from_sim(e);
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                return out
                    .write_all(protocol::error_frame(&req.id, &err.kind, &err.message).as_bytes());
            }
        }
        let key = fnv1a64(&req.canonical_bytes());
        let bytes = self.coalesce.get_or_compute(key, || {
            // Pricing must not double-charge the client (the coalesce
            // miss runs inline on this thread) and must not charge a
            // *different* client whose identical query got here first.
            let _quiet = self.ctx.suspend_budget();
            sweep::encode_outcome(&sweep::run_cell(&self.ctx, spec, self.cache.as_ref()).outcome)
        });
        let frame = match sweep::decode_outcome(spec.kind, sweep::effective_runs(&self.ctx, spec), &bytes) {
            Some(Ok(value)) => {
                self.ok_responses.fetch_add(1, Ordering::Relaxed);
                protocol::cell_ok_frame(&req.id, spec.kind, value.values())
            }
            Some(Err(e)) => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                protocol::error_frame(&req.id, &e.kind, &e.message)
            }
            None => {
                self.error_responses.fetch_add(1, Ordering::Relaxed);
                protocol::error_frame(&req.id, "panicked", "malformed coalesced outcome")
            }
        };
        out.write_all(frame.as_bytes())
    }

    fn execute_sweep(&self, req: &Request, name: &str, out: &mut dyn Write) -> io::Result<()> {
        let Some(spec) = registry().into_iter().find(|s| s.name == name) else {
            self.error_responses.fetch_add(1, Ordering::Relaxed);
            let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
            return out.write_all(
                protocol::error_frame(
                    &req.id,
                    BAD_REQUEST,
                    &format!("unknown sweep '{name}' (registered: {})", names.join(", ")),
                )
                .as_bytes(),
            );
        };
        // Whole sweep cost up front; the cells themselves then price
        // under suspension (pool workers carry no meter; the one-worker
        // inline path runs on this thread).
        self.ctx.charge(spec.len() as u64);
        let _quiet = self.ctx.suspend_budget();
        let mut framer = ShardFramer::new(out, &req.id, spec.name, spec.len(), self.shard);
        let summary = sweep::run_streamed(
            &self.pool,
            &self.ctx,
            &spec,
            self.cache.as_ref(),
            &mut framer,
            self.shard,
        )?;
        framer.finish(summary.cells, summary.errors)?;
        self.ok_responses.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The engine's admission check for the exact job the executor would
    /// run (same interned template, same override order as
    /// [`Ctx::step`]). Training cells only: expected-TTT cells validate
    /// their extra dimensions in `price_cell` *before* touching the
    /// engine, and re-ordering those checks here would change error
    /// bytes.
    fn preflight(&self, spec: &CellSpec) -> Result<(), SimError> {
        let (Some(workload), Some(system), Some(gpus)) = (spec.workload, spec.system, spec.gpus)
        else {
            // The parser requires all three; pricing reports the
            // invalid-spec if this is ever reached some other way.
            return Ok(());
        };
        let mut point = TrainPoint::new(workload, system, gpus);
        if let Some(b) = spec.batch {
            point = point.with_per_gpu_batch(b);
        }
        if let Some(p) = spec.precision {
            point = point.with_precision(p);
        }
        let job = self.ctx.job_for(&point);
        let system_spec = self.ctx.system_spec(system);
        let ordinals: Vec<u32> = (0..gpus).collect();
        Simulator::new(&system_spec).preflight(&job, &ordinals).map(|_| ())
    }
}

/// A [`Write`] adapter that turns [`sweep::run_streamed`]'s CSV byte
/// stream into response frames: the header line becomes the `stream`
/// frame, every `shard` rows become one `rows` frame. This is what lets
/// the server reuse the streaming runner *literally* — same pricing, same
/// row rendering, same shard-bounded memory — with only the framing
/// changed.
struct ShardFramer<'a> {
    out: &'a mut dyn Write,
    id: &'a str,
    sweep: &'a str,
    cells: usize,
    shard: usize,
    buf: Vec<u8>,
    rows: Vec<String>,
    sent_header: bool,
}

impl<'a> ShardFramer<'a> {
    fn new(
        out: &'a mut dyn Write,
        id: &'a str,
        sweep: &'a str,
        cells: usize,
        shard: usize,
    ) -> ShardFramer<'a> {
        ShardFramer {
            out,
            id,
            sweep,
            cells,
            shard: shard.max(1),
            buf: Vec::new(),
            rows: Vec::new(),
            sent_header: false,
        }
    }

    fn flush_rows(&mut self) -> io::Result<()> {
        if !self.rows.is_empty() {
            self.out.write_all(protocol::rows_frame(self.id, &self.rows).as_bytes())?;
            self.rows.clear();
        }
        Ok(())
    }

    fn finish(mut self, cells: usize, errors: usize) -> io::Result<()> {
        self.flush_rows()?;
        self.out.write_all(protocol::done_frame(self.id, cells, errors).as_bytes())
    }
}

impl Write for ShardFramer<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if self.sent_header {
                self.rows.push(line);
                if self.rows.len() >= self.shard {
                    self.flush_rows()?;
                }
            } else {
                self.sent_header = true;
                let columns: Vec<&str> = line.split(',').collect();
                self.out.write_all(
                    protocol::stream_header_frame(self.id, self.sweep, self.cells, &columns)
                        .as_bytes(),
                )?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// The `repro query` client: replay newline-delimited request lines from
/// `input` against the server at `socket`, echoing every response frame
/// to `out` in transcript order. Each request is sent and its answer
/// drained to the terminal frame (`ok`/`error`/`busy`/`done`) before the
/// next is sent, so the transcript is deterministic for a deterministic
/// request sequence.
///
/// # Errors
///
/// Propagates [`io::Error`] from either side of the conversation.
pub fn replay_client(
    socket: &Path,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> io::Result<()> {
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        loop {
            let mut frame = String::new();
            if reader.read_line(&mut frame)? == 0 {
                // Server closed the connection (e.g. after a shutdown
                // acknowledgement on another line of this transcript).
                return Ok(());
            }
            out.write_all(frame.as_bytes())?;
            if matches!(
                protocol::response_status(frame.trim_end()).as_deref(),
                Some("ok" | "error" | "busy" | "done")
            ) {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn admission_grants_up_to_active_plus_queue() {
        let a = Admission::new(1, 2);
        let first = a.admit().expect("first slot");
        // The active slot is taken; exactly `queue` waiters may block, so
        // from this thread (which would deadlock waiting on itself) we
        // only check the overflow path deterministically: fill the queue
        // from two helper threads, then overflow.
        let queued = AtomicUsize::new(0);
        let rejected = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| match a.admit() {
                    Some(_t) => {
                        queued.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // Wait until both helpers are parked in the queue, then free
            // the active slot so they drain.
            while lock(&a.state).waiting < 2 {
                let st = *lock(&a.state);
                if st.waiting + queued.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst) >= 2
                {
                    break;
                }
                std::thread::yield_now();
            }
            drop(first);
        });
        assert_eq!(queued.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst), 2);
        assert_eq!(lock(&a.state).active, 0, "every ticket returned its slot");
    }

    #[test]
    fn admission_overflow_is_rejected_not_blocked() {
        let a = Admission::new(1, 0);
        let _held = a.admit().expect("first slot");
        assert!(a.admit().is_none(), "zero-depth queue must reject immediately");
    }

    #[test]
    fn shard_framer_frames_a_csv_stream() {
        let mut sink: Vec<u8> = Vec::new();
        {
            let out: &mut dyn Write = &mut sink;
            let mut f = ShardFramer::new(&mut *out, "q1", "demo", 3, 2);
            // Feed a 3-row CSV in awkward chunk boundaries.
            f.write_all(b"a,b,c\n1,2").unwrap();
            f.write_all(b",3\n4,5,6\n7,8,9\n").unwrap();
            f.finish(3, 1).unwrap();
        }
        let text = String::from_utf8(sink).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"status\":\"stream\"") && lines[0].contains("\"cells\":3"));
        assert!(lines[1].contains("\"rows\":[\"1,2,3\",\"4,5,6\"]"), "{text}");
        assert!(lines[2].contains("\"rows\":[\"7,8,9\"]"), "{text}");
        assert!(lines[3].contains("\"status\":\"done\"") && lines[3].contains("\"errors\":1"));
    }
}
