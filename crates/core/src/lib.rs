//! Reproduction of "Demystifying the MLPerf Training Benchmark Suite"
//! (ISPASS 2020) on a simulated multi-GPU substrate.

pub mod benchmark;
pub mod config;
pub mod csv_export;
pub mod experiments;
pub mod report;
pub mod report_gen;
pub mod runner;
pub mod sensitivity;
pub mod serve;
pub mod sweep;
pub mod validation;
pub mod workloads;

pub use benchmark::{BenchmarkId, Suite};
pub use config::Config;
pub use report::Table;
pub use runner::{Ctx, Experiment, Pool, RunKey, TrainPoint};
pub use sweep::{DiskCache, DiskStats, SweepSpec};
pub use workloads::{DeepBenchId, WorkloadRun, WorkloadSpec};
