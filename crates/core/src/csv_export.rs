//! Machine-readable CSV exports of every regenerated artifact.
//!
//! The paper's workflow exports measurements "to comma-separated values for
//! further analysis" (§III-C); `repro --csv DIR` writes the reproduction's
//! data the same way: one file per table/figure, plus the raw PCA feature
//! matrix.

use crate::experiments::{figure1, figure3, figure5, table4, table5};
use crate::report::Table;
use mlperf_sim::SimError;
use mlperf_telemetry::csv::characteristics_to_csv;
use std::collections::BTreeMap;

/// Build every export as `(file name, CSV contents)` pairs.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
pub fn build_all() -> Result<BTreeMap<&'static str, String>, SimError> {
    let mut out = BTreeMap::new();

    // Table IV rows.
    let t4 = table4::run()?;
    let mut csv = Table::new(
        "",
        [
            "benchmark",
            "p100_min",
            "v100_1_min",
            "speedup_2",
            "speedup_4",
            "speedup_8",
        ],
    );
    for row in &t4.rows {
        csv.add_row([
            row.name().to_string(),
            format!("{:.2}", row.p100_minutes()),
            format!("{:.2}", row.v100_minutes(1).expect("anchor measured")),
            format!("{:.4}", row.speedup(2).expect("measured")),
            format!("{:.4}", row.speedup(4).expect("measured")),
            format!("{:.4}", row.speedup(8).expect("measured")),
        ]);
    }
    out.insert("table4_scaling.csv", csv.to_csv());

    // Table V rows.
    let t5 = table5::run()?;
    let mut csv = Table::new(
        "",
        [
            "workload",
            "gpus",
            "cpu_pct",
            "gpu_pct",
            "dram_mb",
            "hbm_mb",
            "pcie_mbps",
            "nvlink_mbps",
        ],
    );
    for r in &t5.runs {
        csv.add_row([
            r.name.clone(),
            r.n_gpus.to_string(),
            format!("{:.3}", r.usage.cpu_util_pct),
            format!("{:.3}", r.usage.gpu_util_pct),
            format!("{:.1}", r.usage.dram_mb),
            format!("{:.1}", r.usage.hbm_mb),
            format!("{:.1}", r.usage.pcie_mbps),
            format!("{:.1}", r.usage.nvlink_mbps),
        ]);
    }
    out.insert("table5_resources.csv", csv.to_csv());

    // Figure 1: both the raw feature matrix and the projections.
    let runs = figure1::collect_runs()?;
    let chars: Vec<_> = runs.iter().map(|r| r.characteristics()).collect();
    out.insert("figure1_features.csv", characteristics_to_csv(&chars));
    let f1 = figure1::run()?;
    let mut csv = Table::new("", ["workload", "suite", "pc1", "pc2", "pc3", "pc4"]);
    for (name, suite, p) in &f1.projections {
        csv.add_row([
            name.clone(),
            suite.clone(),
            format!("{:.4}", p[0]),
            format!("{:.4}", p[1]),
            format!("{:.4}", p[2]),
            format!("{:.4}", p[3]),
        ]);
    }
    out.insert("figure1_projections.csv", csv.to_csv());

    // Figure 3 speedups.
    let f3 = figure3::run()?;
    let mut csv = Table::new(
        "",
        ["benchmark", "amp_samples_s", "fp32_samples_s", "speedup"],
    );
    for s in &f3.speedups {
        csv.add_row([
            s.id.abbreviation().to_string(),
            format!("{:.1}", s.amp_throughput),
            format!("{:.1}", s.fp32_throughput),
            format!("{:.4}", s.speedup()),
        ]);
    }
    out.insert("figure3_amp.csv", csv.to_csv());

    // Figure 5 matrix.
    let f5 = figure5::run()?;
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(
        mlperf_hw::SystemId::FOUR_GPU_PLATFORMS
            .iter()
            .map(|s| s.name().replace(' ', "_")),
    );
    let mut csv = Table::new("", headers);
    for row in &f5.rows {
        let mut cells = vec![row.id.abbreviation().to_string()];
        for sys in mlperf_hw::SystemId::FOUR_GPU_PLATFORMS {
            cells.push(format!("{:.2}", row.on(sys)));
        }
        csv.add_row(cells);
    }
    out.insert("figure5_topology.csv", csv.to_csv());

    Ok(out)
}

/// Write every export into a directory (created if absent).
///
/// # Errors
///
/// Returns simulation errors as [`SimError`]; I/O failures are returned as
/// strings in the error position of the outer result.
pub fn write_all(dir: &std::path::Path) -> Result<Result<Vec<String>, String>, SimError> {
    let exports = build_all()?;
    let mut written = Vec::new();
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Ok(Err(format!("creating {}: {e}", dir.display())));
    }
    for (name, contents) in exports {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            return Ok(Err(format!("writing {}: {e}", path.display())));
        }
        written.push(path.display().to_string());
    }
    Ok(Ok(written))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_cover_the_artifacts() {
        let all = build_all().unwrap();
        for name in [
            "table4_scaling.csv",
            "table5_resources.csv",
            "figure1_features.csv",
            "figure1_projections.csv",
            "figure3_amp.csv",
            "figure5_topology.csv",
        ] {
            let csv = all.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(csv.lines().count() > 1, "{name} has no data rows");
        }
    }

    #[test]
    fn csv_rows_parse_back_numerically() {
        let all = build_all().unwrap();
        let t4 = &all["table4_scaling.csv"];
        for line in t4.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 6);
            for c in &cols[1..] {
                let v: f64 = c.parse().expect("numeric cell");
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("mlperf_csv_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_all(&dir).unwrap().unwrap();
        assert_eq!(written.len(), 6);
        for path in &written {
            assert!(std::path::Path::new(path).exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
