//! Machine-readable CSV exports of every regenerated artifact.
//!
//! The paper's workflow exports measurements "to comma-separated values for
//! further analysis" (§III-C); `repro --csv DIR` writes the reproduction's
//! data the same way: one file per table/figure, plus the raw PCA feature
//! matrix. The source experiments are scheduled on the
//! [`runner`](crate::runner) pool sharing one memoized context, and the
//! exports are assembled in file-name order — the bytes are identical for
//! any `MLPERF_JOBS` worker count.

use crate::experiments::figure1;
use crate::report::Table;
use crate::runner::{self, Ctx, Pool};
use mlperf_sim::SimError;
use mlperf_telemetry::csv::characteristics_to_csv;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// One generated CSV file, tagged with the experiment it came from.
#[derive(Debug, Clone)]
pub struct CsvExport {
    /// Id of the experiment the data belongs to (the [`runner`] vocabulary).
    pub experiment: &'static str,
    /// Output file name.
    pub file: &'static str,
    /// The CSV bytes.
    pub contents: String,
}

/// The typed collection of all CSV exports, ordered by file name.
#[derive(Debug, Clone, Default)]
pub struct ArtifactSet {
    exports: BTreeMap<&'static str, CsvExport>,
}

impl ArtifactSet {
    fn insert(&mut self, experiment: &'static str, file: &'static str, contents: String) {
        self.exports.insert(
            file,
            CsvExport {
                experiment,
                file,
                contents,
            },
        );
    }

    /// Look up one export by file name.
    pub fn get(&self, file: &str) -> Option<&CsvExport> {
        self.exports.get(file)
    }

    /// All exports, in file-name order.
    pub fn iter(&self) -> impl Iterator<Item = &CsvExport> {
        self.exports.values()
    }

    /// The exports one experiment produced.
    pub fn for_experiment<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a CsvExport> {
        self.iter().filter(move |e| e.experiment == id)
    }

    /// All file names, in order.
    pub fn files(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.exports.keys().copied()
    }

    /// Number of exports.
    pub fn len(&self) -> usize {
        self.exports.len()
    }

    /// Whether the set holds no exports.
    pub fn is_empty(&self) -> bool {
        self.exports.is_empty()
    }
}

impl<'a> IntoIterator for &'a ArtifactSet {
    type Item = &'a CsvExport;
    type IntoIter = std::collections::btree_map::Values<'a, &'static str, CsvExport>;

    fn into_iter(self) -> Self::IntoIter {
        self.exports.values()
    }
}

/// Why an export run failed: either the simulation itself, or writing the
/// results to disk.
#[derive(Debug)]
pub enum ExportError {
    /// An experiment failed to simulate.
    Sim(SimError),
    /// A file or directory could not be written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExportError::Io { path, source } => write!(f, "writing {path}: {source}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Sim(e) => Some(e),
            ExportError::Io { source, .. } => Some(source),
        }
    }
}

impl From<SimError> for ExportError {
    fn from(e: SimError) -> Self {
        ExportError::Sim(e)
    }
}

/// The experiments whose artifacts feed the CSV exports.
fn export_experiments() -> Vec<&'static dyn runner::Experiment> {
    use crate::experiments::{fault_study, figure3, figure4, figure5, table4, table5};
    vec![
        &table4::Exp,
        &table5::Exp,
        &figure1::Exp,
        &figure3::Exp,
        &figure4::Exp,
        &figure5::Exp,
        &fault_study::Exp,
    ]
}

/// Build every export, with pool and worker count from the environment.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
pub fn build_all() -> Result<ArtifactSet, SimError> {
    build_all_with(&Pool::from_env(), &Ctx::new())
}

/// Build every export on an explicit pool and context. The bytes depend
/// only on the simulated numbers, never on the schedule — the golden-file
/// tests pin them against `artifacts/`.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
///
/// # Panics
///
/// Panics if the executor reports success but an artifact is missing or of
/// the wrong variant (a programming error in the experiment wiring).
pub fn build_all_with(pool: &Pool, ctx: &Ctx) -> Result<ArtifactSet, SimError> {
    runner::execute(pool, ctx, &export_experiments())?;
    let artifact = |id: &str| ctx.artifact(id).expect("executor stored the artifact");

    let mut out = ArtifactSet::default();

    // Table IV rows.
    let t4_artifact = artifact("table4");
    let t4 = t4_artifact.as_table4().expect("table4 artifact");
    let mut csv = Table::new(
        "",
        [
            "benchmark",
            "p100_min",
            "v100_1_min",
            "speedup_2",
            "speedup_4",
            "speedup_8",
        ],
    );
    for row in &t4.rows {
        csv.add_row([
            row.name().to_string(),
            format!("{:.2}", row.p100_minutes()),
            format!("{:.2}", row.v100_minutes(1).expect("anchor measured")),
            format!("{:.4}", row.speedup(2).expect("measured")),
            format!("{:.4}", row.speedup(4).expect("measured")),
            format!("{:.4}", row.speedup(8).expect("measured")),
        ]);
    }
    out.insert("table4", "table4_scaling.csv", csv.to_csv());

    // Table V rows.
    let t5_artifact = artifact("table5");
    let t5 = t5_artifact.as_table5().expect("table5 artifact");
    let mut csv = Table::new(
        "",
        [
            "workload",
            "gpus",
            "cpu_pct",
            "gpu_pct",
            "dram_mb",
            "hbm_mb",
            "pcie_mbps",
            "nvlink_mbps",
        ],
    );
    for r in &t5.runs {
        csv.add_row([
            r.name.clone(),
            r.n_gpus.to_string(),
            format!("{:.3}", r.usage.cpu_util_pct),
            format!("{:.3}", r.usage.gpu_util_pct),
            format!("{:.1}", r.usage.dram_mb),
            format!("{:.1}", r.usage.hbm_mb),
            format!("{:.1}", r.usage.pcie_mbps),
            format!("{:.1}", r.usage.nvlink_mbps),
        ]);
    }
    out.insert("table5", "table5_resources.csv", csv.to_csv());

    // Figure 1: both the raw feature matrix and the projections. The
    // workload runs are all cache hits by now (Figure 1 just priced them).
    let runs = figure1::collect_runs_ctx(ctx)?;
    let chars: Vec<_> = runs.iter().map(|r| r.characteristics()).collect();
    out.insert("figure1", "figure1_features.csv", characteristics_to_csv(&chars));
    let f1_artifact = artifact("figure1");
    let f1 = f1_artifact.as_figure1().expect("figure1 artifact");
    let mut csv = Table::new("", ["workload", "suite", "pc1", "pc2", "pc3", "pc4"]);
    for (name, suite, p) in &f1.projections {
        csv.add_row([
            name.clone(),
            suite.clone(),
            format!("{:.4}", p[0]),
            format!("{:.4}", p[1]),
            format!("{:.4}", p[2]),
            format!("{:.4}", p[3]),
        ]);
    }
    out.insert("figure1", "figure1_projections.csv", csv.to_csv());

    // Figure 3 speedups.
    let f3_artifact = artifact("figure3");
    let f3 = f3_artifact.as_figure3().expect("figure3 artifact");
    let mut csv = Table::new(
        "",
        ["benchmark", "amp_samples_s", "fp32_samples_s", "speedup"],
    );
    for s in &f3.speedups {
        csv.add_row([
            s.id.abbreviation().to_string(),
            format!("{:.1}", s.amp_throughput),
            format!("{:.1}", s.fp32_throughput),
            format!("{:.4}", s.speedup()),
        ]);
    }
    out.insert("figure3", "figure3_amp.csv", csv.to_csv());

    // Figure 5 matrix.
    let f5_artifact = artifact("figure5");
    let f5 = f5_artifact.as_figure5().expect("figure5 artifact");
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(
        mlperf_hw::SystemId::FOUR_GPU_PLATFORMS
            .iter()
            .map(|s| s.name().replace(' ', "_")),
    );
    let mut csv = Table::new("", headers);
    for row in &f5.rows {
        let mut cells = vec![row.id.abbreviation().to_string()];
        for sys in mlperf_hw::SystemId::FOUR_GPU_PLATFORMS {
            cells.push(format!("{:.2}", row.on(sys)));
        }
        csv.add_row(cells);
    }
    out.insert("figure5", "figure5_topology.csv", csv.to_csv());

    // Fault study: the analytic sweep and the elastic-cluster outcomes.
    let fault_artifact = artifact("fault_study");
    let fs = fault_artifact.as_fault().expect("fault_study artifact");
    let mut csv = Table::new(
        "",
        [
            "mtbf_hours",
            "interval_min",
            "expected_hours",
            "overhead_pct",
            "policy",
        ],
    );
    for r in &fs.sweep {
        csv.add_row([
            format!("{:.1}", r.mtbf_hours),
            format!("{:.3}", r.interval_min),
            format!("{:.4}", r.expected_hours),
            format!("{:.4}", r.overhead_pct),
            if r.daly { "daly" } else { "fixed" }.to_string(),
        ]);
    }
    out.insert("fault_study", "fault_study_sweep.csv", csv.to_csv());

    let mut csv = Table::new(
        "",
        [
            "policy",
            "makespan_min",
            "mean_wait_min",
            "utilization",
            "preempted",
            "abandoned",
        ],
    );
    for r in &fs.elastic {
        csv.add_row([
            r.policy.to_string(),
            format!("{:.2}", r.trace.makespan.as_minutes()),
            format!("{:.2}", r.trace.mean_wait().as_minutes()),
            format!("{:.4}", r.trace.utilization()),
            r.trace.preemptions.to_string(),
            r.trace.abandoned.len().to_string(),
        ]);
    }
    out.insert("fault_study", "fault_study_elastic.csv", csv.to_csv());

    Ok(out)
}

/// Write every export into a directory (created if absent), returning the
/// paths written.
///
/// # Errors
///
/// [`ExportError::Sim`] if an experiment fails, [`ExportError::Io`] if the
/// directory or a file cannot be written.
pub fn write_all(dir: &Path) -> Result<Vec<String>, ExportError> {
    let exports = build_all()?;
    let mut written = Vec::new();
    std::fs::create_dir_all(dir).map_err(|source| ExportError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    for export in &exports {
        let path = dir.join(export.file);
        std::fs::write(&path, &export.contents).map_err(|source| ExportError::Io {
            path: path.display().to_string(),
            source,
        })?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_cover_the_artifacts() {
        let all = build_all().unwrap();
        for name in [
            "table4_scaling.csv",
            "table5_resources.csv",
            "figure1_features.csv",
            "figure1_projections.csv",
            "figure3_amp.csv",
            "figure5_topology.csv",
            "fault_study_sweep.csv",
            "fault_study_elastic.csv",
        ] {
            let export = all.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(
                export.contents.lines().count() > 1,
                "{name} has no data rows"
            );
        }
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn exports_are_tagged_with_their_experiment() {
        let all = build_all().unwrap();
        assert_eq!(all.for_experiment("figure1").count(), 2);
        assert_eq!(all.for_experiment("table4").count(), 1);
        assert_eq!(
            all.get("figure3_amp.csv").expect("present").experiment,
            "figure3"
        );
    }

    #[test]
    fn csv_rows_parse_back_numerically() {
        let all = build_all().unwrap();
        let t4 = &all.get("table4_scaling.csv").expect("present").contents;
        for line in t4.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 6);
            for c in &cols[1..] {
                let v: f64 = c.parse().expect("numeric cell");
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("mlperf_csv_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_all(&dir).unwrap();
        assert_eq!(written.len(), 8);
        for path in &written {
            assert!(std::path::Path::new(path).exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
