//! Machine-readable CSV exports of every regenerated artifact.
//!
//! The paper's workflow exports measurements "to comma-separated values for
//! further analysis" (§III-C); `repro --csv DIR` writes the reproduction's
//! data the same way: one file per table/figure, plus the raw PCA feature
//! matrix. The source experiments are scheduled on the
//! [`runner`](crate::runner) pool sharing one memoized context, and the
//! exports are assembled in file-name order — the bytes are identical for
//! any `MLPERF_JOBS` worker count.

use crate::experiments::figure1;
use crate::report::Table;
use crate::runner::{self, Ctx, ExperimentError, Pool, ResilienceConfig};
use crate::sweep::DiskCache;
use mlperf_telemetry::csv::characteristics_to_csv;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// One generated CSV file, tagged with the experiment it came from.
#[derive(Debug, Clone)]
pub struct CsvExport {
    /// Id of the experiment the data belongs to (the [`runner`] vocabulary).
    pub experiment: &'static str,
    /// Output file name.
    pub file: &'static str,
    /// The CSV bytes.
    pub contents: String,
}

/// The typed collection of all CSV exports, ordered by file name.
#[derive(Debug, Clone, Default)]
pub struct ArtifactSet {
    exports: BTreeMap<&'static str, CsvExport>,
}

impl ArtifactSet {
    fn insert(&mut self, experiment: &'static str, file: &'static str, contents: String) {
        self.exports.insert(
            file,
            CsvExport {
                experiment,
                file,
                contents,
            },
        );
    }

    /// Look up one export by file name.
    pub fn get(&self, file: &str) -> Option<&CsvExport> {
        self.exports.get(file)
    }

    /// All exports, in file-name order.
    pub fn iter(&self) -> impl Iterator<Item = &CsvExport> {
        self.exports.values()
    }

    /// The exports one experiment produced.
    pub fn for_experiment<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a CsvExport> {
        self.iter().filter(move |e| e.experiment == id)
    }

    /// All file names, in order.
    pub fn files(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.exports.keys().copied()
    }

    /// Number of exports.
    pub fn len(&self) -> usize {
        self.exports.len()
    }

    /// Whether the set holds no exports.
    pub fn is_empty(&self) -> bool {
        self.exports.is_empty()
    }
}

impl<'a> IntoIterator for &'a ArtifactSet {
    type Item = &'a CsvExport;
    type IntoIter = std::collections::btree_map::Values<'a, &'static str, CsvExport>;

    fn into_iter(self) -> Self::IntoIter {
        self.exports.values()
    }
}

/// Why an export run failed: either an experiment (typed through the
/// executor's taxonomy), or writing the results to disk.
#[derive(Debug)]
pub enum ExportError {
    /// An experiment failed (strict mode only; resilient exports emit
    /// placeholders instead).
    Run(ExperimentError),
    /// A file or directory could not be written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Run(e) => write!(f, "experiment failed: {e}"),
            ExportError::Io { path, source } => write!(f, "writing {path}: {source}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Run(e) => Some(e),
            ExportError::Io { source, .. } => Some(source),
        }
    }
}

impl From<ExperimentError> for ExportError {
    fn from(e: ExperimentError) -> Self {
        ExportError::Run(e)
    }
}

/// The experiments whose artifacts feed the CSV exports.
fn export_experiments() -> Vec<&'static dyn runner::Experiment> {
    use crate::experiments::{
        fault_study, figure3, figure4, figure5, table4, table5, variance_decomposition,
    };
    vec![
        &table4::Exp,
        &table5::Exp,
        &figure1::Exp,
        &figure3::Exp,
        &figure4::Exp,
        &figure5::Exp,
        &fault_study::Exp,
        &variance_decomposition::Exp,
    ]
}

/// Every export file and the experiment that owns it ([`export_experiments`]
/// vocabulary; `figure4` is in the set only as `fault_study`'s dependency
/// and owns no file). File-name order, matching [`ArtifactSet::iter`].
/// Public so the cache test battery counts exports from this registry
/// instead of hardcoding the set's size.
pub const EXPORT_FILES: [(&str, &str); 9] = [
    ("fault_study_elastic.csv", "fault_study"),
    ("fault_study_sweep.csv", "fault_study"),
    ("figure1_features.csv", "figure1"),
    ("figure1_projections.csv", "figure1"),
    ("figure3_amp.csv", "figure3"),
    ("figure5_topology.csv", "figure5"),
    ("table4_scaling.csv", "table4"),
    ("table5_resources.csv", "table5"),
    ("variance_decomposition.csv", "variance_decomposition"),
];

/// The persistent-cache entry spec of one export file: the file name plus
/// its owning experiment's canonical
/// [`spec_bytes`](runner::Experiment::spec_bytes) (public for the cache
/// test battery's eviction probes).
pub fn file_spec(file: &str, owner: &dyn runner::Experiment) -> Vec<u8> {
    let mut s = format!("csv:{file}:").into_bytes();
    s.extend_from_slice(&owner.spec_bytes());
    s
}

/// [`build_all_resilient`] through the persistent result cache: with every
/// file on disk nothing re-runs; with some files evicted only their owning
/// experiments re-run (healthy re-runs re-store their files); with
/// `cache == None` this is plain [`build_all_resilient`].
pub fn build_all_cached(
    pool: &Pool,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
    cache: Option<&DiskCache>,
) -> (ArtifactSet, runner::Execution) {
    let Some(cache) = cache else {
        return build_all_resilient(pool, ctx, cfg);
    };
    let experiments = export_experiments();
    let owner = |id: &str| -> &'static dyn runner::Experiment {
        *experiments
            .iter()
            .find(|e| e.id() == id)
            .expect("every export file's owner is an export experiment")
    };
    let cached: Vec<Option<String>> = EXPORT_FILES
        .iter()
        .map(|(file, id)| {
            cache
                .load(&file_spec(file, owner(id)))
                .and_then(|b| String::from_utf8(b).ok())
        })
        .collect();

    if cached.iter().all(Option::is_some) {
        // Fully warm: no experiment runs at all.
        let mut out = ArtifactSet::default();
        for ((file, id), contents) in EXPORT_FILES.iter().zip(cached) {
            // Leak-free &'static lookup: EXPORT_FILES strings are 'static.
            out.insert(id, file, contents.expect("checked above"));
        }
        let reports = experiments
            .iter()
            .map(|e| runner::ExperimentReport {
                id: e.id(),
                title: e.title(),
                deps: e.deps(),
                rendered: String::new(),
                error: None,
                wall: Duration::ZERO,
            })
            .collect();
        let execution = runner::Execution {
            reports,
            failures: Vec::new(),
            recoveries: Vec::new(),
            stats: runner::ExecutorStats {
                workers: pool.workers(),
                total_wall: Duration::ZERO,
                per_experiment: Vec::new(),
                cache: runner::CacheStats::default(),
            },
        };
        return (out, execution);
    }

    // Re-run only the experiments owning a missing file (their
    // dependencies outside the subset fall back to the memoized context),
    // then overlay the still-cached files on the fresh assembly.
    let rerun: Vec<&'static dyn runner::Experiment> = experiments
        .iter()
        .filter(|e| {
            EXPORT_FILES
                .iter()
                .zip(&cached)
                .any(|((_, id), c)| *id == e.id() && c.is_none())
        })
        .copied()
        .collect();
    let execution = runner::execute_resilient(pool, ctx, &rerun, cfg);
    let mut fresh = assemble(ctx, &execution);
    for ((file, id), contents) in EXPORT_FILES.iter().zip(cached) {
        match contents {
            Some(c) => fresh.insert(id, file, c),
            None => {
                let healthy = execution
                    .reports
                    .iter()
                    .any(|r| r.id == *id && r.error.is_none());
                if healthy {
                    if let Some(e) = fresh.get(file) {
                        cache.store(&file_spec(file, owner(id)), e.contents.as_bytes());
                    }
                }
            }
        }
    }
    (fresh, execution)
}

/// Build every export, with pool and worker count from the environment.
/// Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build_all() -> Result<ArtifactSet, ExperimentError> {
    build_all_with(&Pool::from_env(), &Ctx::new())
}

/// Build every export on an explicit pool and context. The bytes depend
/// only on the simulated numbers, never on the schedule — the golden-file
/// tests pin them against `artifacts/`. Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build_all_with(pool: &Pool, ctx: &Ctx) -> Result<ArtifactSet, ExperimentError> {
    let execution = runner::execute(pool, ctx, &export_experiments())?;
    Ok(assemble(ctx, &execution))
}

/// Build every export with failure isolation: a failed experiment's files
/// are emitted as placeholder CSVs (headers plus a `# degraded:` comment
/// naming the failure) while every healthy file's bytes stay identical to
/// a fully-healthy run.
pub fn build_all_resilient(
    pool: &Pool,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
) -> (ArtifactSet, runner::Execution) {
    let execution = runner::execute_resilient(pool, ctx, &export_experiments(), cfg);
    (assemble(ctx, &execution), execution)
}

/// A placeholder export for a failed experiment: the real header row plus
/// a comment naming the failure, so downstream tooling sees the schema
/// and an explicit degradation marker instead of a missing file.
fn placeholder(headers: Table, note: &str) -> String {
    let mut csv = headers.to_csv();
    csv.push_str(&format!("# degraded: {note}\n"));
    csv
}

/// Assemble the export set from whatever artifacts the execution stored;
/// sections whose experiment failed degrade to [`placeholder`] files.
fn assemble(ctx: &Ctx, execution: &runner::Execution) -> ArtifactSet {
    // The failure summary rendered into placeholder files (deterministic:
    // the executor's error text contains no wall-clock or addresses).
    let note = |id: &str| -> String {
        execution
            .reports
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.error.as_ref())
            .map_or_else(
                || format!("{id} produced no artifact"),
                |e| format!("{id} failed ({}): {e}", e.kind()),
            )
    };
    let mut out = ArtifactSet::default();

    // Table IV rows.
    let t4_headers = || {
        Table::new(
            "",
            [
                "benchmark",
                "p100_min",
                "v100_1_min",
                "speedup_2",
                "speedup_4",
                "speedup_8",
            ],
        )
    };
    if let Some(t4) = ctx.artifact("table4") {
        let t4 = t4.as_table4().expect("table4 artifact");
        let mut csv = t4_headers();
        for row in &t4.rows {
            csv.add_row([
                row.name().to_string(),
                format!("{:.2}", row.p100_minutes()),
                format!("{:.2}", row.v100_minutes(1).expect("anchor measured")),
                format!("{:.4}", row.speedup(2).expect("measured")),
                format!("{:.4}", row.speedup(4).expect("measured")),
                format!("{:.4}", row.speedup(8).expect("measured")),
            ]);
        }
        out.insert("table4", "table4_scaling.csv", csv.to_csv());
    } else {
        out.insert(
            "table4",
            "table4_scaling.csv",
            placeholder(t4_headers(), &note("table4")),
        );
    }

    // Table V rows.
    let t5_headers = || {
        Table::new(
            "",
            [
                "workload",
                "gpus",
                "cpu_pct",
                "gpu_pct",
                "dram_mb",
                "hbm_mb",
                "pcie_mbps",
                "nvlink_mbps",
            ],
        )
    };
    if let Some(t5) = ctx.artifact("table5") {
        let t5 = t5.as_table5().expect("table5 artifact");
        let mut csv = t5_headers();
        for r in &t5.runs {
            csv.add_row([
                r.name.clone(),
                r.n_gpus.to_string(),
                format!("{:.3}", r.usage.cpu_util_pct),
                format!("{:.3}", r.usage.gpu_util_pct),
                format!("{:.1}", r.usage.dram_mb),
                format!("{:.1}", r.usage.hbm_mb),
                format!("{:.1}", r.usage.pcie_mbps),
                format!("{:.1}", r.usage.nvlink_mbps),
            ]);
        }
        out.insert("table5", "table5_resources.csv", csv.to_csv());
    } else {
        out.insert(
            "table5",
            "table5_resources.csv",
            placeholder(t5_headers(), &note("table5")),
        );
    }

    // Figure 1: both the raw feature matrix and the projections. The
    // workload runs are all cache hits by now (Figure 1 just priced them).
    let f1_headers = || Table::new("", ["workload", "suite", "pc1", "pc2", "pc3", "pc4"]);
    let f1_runs = ctx
        .artifact("figure1")
        .and_then(|a| figure1::collect_runs_ctx(ctx).ok().map(|runs| (a, runs)));
    if let Some((f1_artifact, runs)) = f1_runs {
        let chars: Vec<_> = runs.iter().map(|r| r.characteristics()).collect();
        out.insert("figure1", "figure1_features.csv", characteristics_to_csv(&chars));
        let f1 = f1_artifact.as_figure1().expect("figure1 artifact");
        let mut csv = f1_headers();
        for (name, suite, p) in &f1.projections {
            csv.add_row([
                name.clone(),
                suite.clone(),
                format!("{:.4}", p[0]),
                format!("{:.4}", p[1]),
                format!("{:.4}", p[2]),
                format!("{:.4}", p[3]),
            ]);
        }
        out.insert("figure1", "figure1_projections.csv", csv.to_csv());
    } else {
        out.insert(
            "figure1",
            "figure1_features.csv",
            placeholder(Table::new("", ["workload"]), &note("figure1")),
        );
        out.insert(
            "figure1",
            "figure1_projections.csv",
            placeholder(f1_headers(), &note("figure1")),
        );
    }

    // Figure 3 speedups.
    let f3_headers = || {
        Table::new(
            "",
            ["benchmark", "amp_samples_s", "fp32_samples_s", "speedup"],
        )
    };
    if let Some(f3) = ctx.artifact("figure3") {
        let f3 = f3.as_figure3().expect("figure3 artifact");
        let mut csv = f3_headers();
        for s in &f3.speedups {
            csv.add_row([
                s.id.abbreviation().to_string(),
                format!("{:.1}", s.amp_throughput),
                format!("{:.1}", s.fp32_throughput),
                format!("{:.4}", s.speedup()),
            ]);
        }
        out.insert("figure3", "figure3_amp.csv", csv.to_csv());
    } else {
        out.insert(
            "figure3",
            "figure3_amp.csv",
            placeholder(f3_headers(), &note("figure3")),
        );
    }

    // Figure 5 matrix.
    let f5_headers = || {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(
            mlperf_hw::SystemId::FOUR_GPU_PLATFORMS
                .iter()
                .map(|s| s.name().replace(' ', "_")),
        );
        Table::new("", headers)
    };
    if let Some(f5) = ctx.artifact("figure5") {
        let f5 = f5.as_figure5().expect("figure5 artifact");
        let mut csv = f5_headers();
        for row in &f5.rows {
            let mut cells = vec![row.id.abbreviation().to_string()];
            for sys in mlperf_hw::SystemId::FOUR_GPU_PLATFORMS {
                cells.push(format!("{:.2}", row.on(sys)));
            }
            csv.add_row(cells);
        }
        out.insert("figure5", "figure5_topology.csv", csv.to_csv());
    } else {
        out.insert(
            "figure5",
            "figure5_topology.csv",
            placeholder(f5_headers(), &note("figure5")),
        );
    }

    // Fault study: the analytic sweep and the elastic-cluster outcomes.
    let sweep_headers = || {
        Table::new(
            "",
            [
                "mtbf_hours",
                "interval_min",
                "expected_hours",
                "overhead_pct",
                "policy",
            ],
        )
    };
    let elastic_headers = || {
        Table::new(
            "",
            [
                "policy",
                "makespan_min",
                "mean_wait_min",
                "utilization",
                "preempted",
                "abandoned",
            ],
        )
    };
    if let Some(fs) = ctx.artifact("fault_study") {
        let fs = fs.as_fault().expect("fault_study artifact");
        let mut csv = sweep_headers();
        for r in &fs.sweep {
            csv.add_row([
                format!("{:.1}", r.mtbf_hours),
                format!("{:.3}", r.interval_min),
                format!("{:.4}", r.expected_hours),
                format!("{:.4}", r.overhead_pct),
                if r.daly { "daly" } else { "fixed" }.to_string(),
            ]);
        }
        out.insert("fault_study", "fault_study_sweep.csv", csv.to_csv());

        let mut csv = elastic_headers();
        for r in &fs.elastic {
            csv.add_row([
                r.policy.to_string(),
                format!("{:.2}", r.trace.makespan.as_minutes()),
                format!("{:.2}", r.trace.mean_wait().as_minutes()),
                format!("{:.4}", r.trace.utilization()),
                r.trace.preemptions.to_string(),
                r.trace.abandoned.len().to_string(),
            ]);
        }
        out.insert("fault_study", "fault_study_elastic.csv", csv.to_csv());
    } else {
        out.insert(
            "fault_study",
            "fault_study_sweep.csv",
            placeholder(sweep_headers(), &note("fault_study")),
        );
        out.insert(
            "fault_study",
            "fault_study_elastic.csv",
            placeholder(elastic_headers(), &note("fault_study")),
        );
    }

    // Variance decomposition: seeded epochs distribution plus the factor
    // shares, one row per benchmark.
    let var_headers = || {
        Table::new(
            "",
            [
                "benchmark",
                "runs",
                "epochs_median",
                "epochs_p5",
                "epochs_p95",
                "epochs_ci_lo",
                "epochs_ci_hi",
                "seed_var_min2",
                "batch_var_min2",
                "precision_var_min2",
                "seed_share_pct",
                "batch_share_pct",
                "precision_share_pct",
            ],
        )
    };
    if let Some(v) = ctx.artifact("variance_decomposition") {
        let v = v.as_variance().expect("variance_decomposition artifact");
        let mut csv = var_headers();
        for r in &v.rows {
            let (seed, batch, precision) = r.shares();
            csv.add_row([
                r.id.to_string(),
                r.stats.n.to_string(),
                format!("{:.4}", r.stats.median),
                format!("{:.4}", r.stats.p5),
                format!("{:.4}", r.stats.p95),
                format!("{:.4}", r.stats.ci_lo),
                format!("{:.4}", r.stats.ci_hi),
                format!("{:.4}", r.seed_var),
                format!("{:.4}", r.batch_var),
                format!("{:.4}", r.precision_var),
                format!("{seed:.2}"),
                format!("{batch:.2}"),
                format!("{precision:.2}"),
            ]);
        }
        out.insert(
            "variance_decomposition",
            "variance_decomposition.csv",
            csv.to_csv(),
        );
    } else {
        out.insert(
            "variance_decomposition",
            "variance_decomposition.csv",
            placeholder(var_headers(), &note("variance_decomposition")),
        );
    }

    out
}

/// Write every export into a directory (created if absent), returning the
/// paths written. Strict (fail-fast).
///
/// # Errors
///
/// [`ExportError::Run`] if an experiment fails, [`ExportError::Io`] if the
/// directory or a file cannot be written.
pub fn write_all(dir: &Path) -> Result<Vec<String>, ExportError> {
    let exports = build_all()?;
    write_set(dir, &exports)
}

/// Write every export fail-fast under an explicit [`ResilienceConfig`]
/// (honoring its chaos injection and step budget, unlike [`write_all`]):
/// any experiment failure aborts with the root cause before a single
/// file is written.
///
/// # Errors
///
/// [`ExportError::Run`] with the root-cause failure, [`ExportError::Io`]
/// if the directory or a file cannot be written.
pub fn write_all_strict(dir: &Path, cfg: &ResilienceConfig) -> Result<Vec<String>, ExportError> {
    let (exports, execution) = build_all_resilient(&Pool::from_env(), &Ctx::new(), cfg);
    if let Some(f) = execution.root_cause() {
        return Err(ExportError::Run(f.error.clone()));
    }
    write_set(dir, &exports)
}

/// Write every export with failure isolation: placeholder files for the
/// failed experiments, byte-identical healthy files otherwise. Returns
/// the paths written plus the execution (whose
/// [`degraded`](runner::Execution::degraded) flag drives the exit code).
///
/// # Errors
///
/// Only [`ExportError::Io`] — experiment failures degrade instead.
pub fn write_all_resilient(
    dir: &Path,
    cfg: &ResilienceConfig,
) -> Result<(Vec<String>, runner::Execution), ExportError> {
    let (exports, execution) = build_all_resilient(&Pool::from_env(), &Ctx::new(), cfg);
    let written = write_set(dir, &exports)?;
    Ok((written, execution))
}

/// Write every export through the persistent result cache (see
/// [`build_all_cached`]); with `cache == None` this is
/// [`write_all_resilient`].
///
/// # Errors
///
/// Only [`ExportError::Io`] — experiment failures degrade instead.
pub fn write_all_cached(
    dir: &Path,
    cfg: &ResilienceConfig,
    cache: Option<&DiskCache>,
) -> Result<(Vec<String>, runner::Execution), ExportError> {
    let (exports, execution) = build_all_cached(&Pool::from_env(), &Ctx::new(), cfg, cache);
    let written = write_set(dir, &exports)?;
    Ok((written, execution))
}

fn write_set(dir: &Path, exports: &ArtifactSet) -> Result<Vec<String>, ExportError> {
    let mut written = Vec::new();
    std::fs::create_dir_all(dir).map_err(|source| ExportError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    for export in exports {
        let path = dir.join(export.file);
        std::fs::write(&path, &export.contents).map_err(|source| ExportError::Io {
            path: path.display().to_string(),
            source,
        })?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_cover_the_artifacts() {
        let all = build_all().unwrap();
        for (name, _) in EXPORT_FILES {
            let export = all.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(
                export.contents.lines().count() > 1,
                "{name} has no data rows"
            );
        }
        assert_eq!(all.len(), EXPORT_FILES.len());
    }

    #[test]
    fn exports_are_tagged_with_their_experiment() {
        let all = build_all().unwrap();
        assert_eq!(all.for_experiment("figure1").count(), 2);
        assert_eq!(all.for_experiment("table4").count(), 1);
        assert_eq!(
            all.get("figure3_amp.csv").expect("present").experiment,
            "figure3"
        );
    }

    #[test]
    fn csv_rows_parse_back_numerically() {
        let all = build_all().unwrap();
        let t4 = &all.get("table4_scaling.csv").expect("present").contents;
        for line in t4.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 6);
            for c in &cols[1..] {
                let v: f64 = c.parse().expect("numeric cell");
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("mlperf_csv_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_all(&dir).unwrap();
        assert_eq!(written.len(), EXPORT_FILES.len());
        for path in &written {
            assert!(std::path::Path::new(path).exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
