//! Unified workload telemetry: one [`WorkloadRun`] per (workload, GPU
//! count), whether the workload is an end-to-end training job (MLPerf,
//! DAWNBench) or a DeepBench kernel loop.
//!
//! Table V, Fig. 1 (PCA) and Fig. 2 (roofline) all consume the same
//! measured quantities — utilizations, footprints, bus traffic, FLOP and
//! byte throughput, epochs — so they are collected once here.

use crate::benchmark::{BenchmarkId, Suite};
use mlperf_analysis::roofline::RooflinePoint;
use mlperf_hw::systems::SystemSpec;
use mlperf_hw::topology::P2pClass;
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_models::zoo::deepbench;
use mlperf_models::PrecisionPolicy;
use mlperf_sim::allreduce::{allreduce_time, ring_wire_bytes_per_gpu, AllReduceAlgorithm};
use mlperf_sim::{train_on_first, Efficiency, KernelTimer, SimError, Simulator};
use mlperf_telemetry::{KernelProfile, ResourceUsage, WorkloadCharacteristics};

/// The DeepBench workloads of Table II (bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeepBenchId {
    /// `gemm_bench`: dense matrix-multiply kernels.
    GemmCu,
    /// `conv_bench`: convolution kernels.
    ConvCu,
    /// `rnn_bench`: the six recurrent configurations.
    RnnCu,
    /// `nccl_single_all_reduce`: the communication benchmark.
    RedCu,
}

impl DeepBenchId {
    /// All four DeepBench workloads.
    pub const ALL: [DeepBenchId; 4] = [
        DeepBenchId::GemmCu,
        DeepBenchId::ConvCu,
        DeepBenchId::RnnCu,
        DeepBenchId::RedCu,
    ];

    /// The paper's abbreviation.
    pub fn abbreviation(self) -> &'static str {
        match self {
            DeepBenchId::GemmCu => "Deep_GEMM_Cu",
            DeepBenchId::ConvCu => "Deep_Conv_Cu",
            DeepBenchId::RnnCu => "Deep_RNN_Cu",
            DeepBenchId::RedCu => "Deep_Red_Cu",
        }
    }
}

/// One measured run: a workload at a GPU count on a system.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Paper abbreviation.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// GPUs used.
    pub n_gpus: u64,
    /// The Table V row.
    pub usage: ResourceUsage,
    /// Steady-state step (or kernel-loop sweep) time, seconds.
    pub step_secs: f64,
    /// FLOPs executed per step.
    pub flops_per_step: f64,
    /// HBM bytes moved per step.
    pub hbm_bytes_per_step: f64,
    /// Epochs to quality target (0 for kernel benchmarks: no target).
    pub epochs: f64,
}

impl WorkloadRun {
    /// The 8-feature PCA vector of §IV-A.
    pub fn characteristics(&self) -> WorkloadCharacteristics {
        WorkloadCharacteristics::from_raw(
            self.name.clone(),
            self.suite.to_string(),
            [
                self.usage.pcie_mbps + self.usage.nvlink_mbps,
                self.usage.gpu_util_pct,
                self.usage.cpu_util_pct,
                self.usage.dram_mb,
                self.usage.hbm_mb,
                self.flops_per_step / self.step_secs / 1e9,
                self.hbm_bytes_per_step / self.step_secs / 1e9,
                self.epochs,
            ],
        )
    }

    /// The Fig. 2 roofline coordinates, when the workload moves any bytes.
    pub fn roofline_point(&self) -> Option<RooflinePoint> {
        if self.hbm_bytes_per_step <= 0.0 || self.flops_per_step <= 0.0 {
            return None;
        }
        Some(RooflinePoint::new(
            self.name.clone(),
            self.suite.to_string(),
            self.flops_per_step / self.hbm_bytes_per_step,
            mlperf_hw::FlopRate::new(self.flops_per_step / self.step_secs),
        ))
    }
}

/// A workload from any suite, unified behind one [`run`] entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadSpec {
    /// An end-to-end trainable benchmark (MLPerf or DAWNBench).
    Trainable(BenchmarkId),
    /// A DeepBench kernel loop.
    DeepBench(DeepBenchId),
}

/// Run any workload on the first `gpus` GPUs of a system.
///
/// # Errors
///
/// Trainable workloads propagate [`SimError`] from the engine. DeepBench
/// workloads return [`SimError::BadGpuSet`] when `gpus` is zero, exceeds
/// the system, or names more than one GPU for a single-GPU kernel loop.
pub fn run(spec: WorkloadSpec, system: &SystemSpec, gpus: u32) -> Result<WorkloadRun, SimError> {
    match spec {
        WorkloadSpec::Trainable(id) => {
            let job = id.job();
            let outcome = train_on_first(&Simulator::new(system), &job, gpus)?;
            Ok(trainable_from_outcome(id, system, &outcome))
        }
        WorkloadSpec::DeepBench(id) => deepbench(id, system, gpus),
    }
}

/// Characterize an already-trained benchmark run. The executor's memo
/// cache supplies the `outcome`, so Table V, Figure 1 and Figure 5 can
/// share one simulation of each point.
pub(crate) fn trainable_from_outcome(
    id: BenchmarkId,
    system: &SystemSpec,
    outcome: &mlperf_sim::TrainingOutcome,
) -> WorkloadRun {
    let job = id.job();
    let n = outcome.step.n_gpus;
    let usage = ResourceUsage::from_step(system, &outcome.step);
    let profile = KernelProfile::of_step(job.model(), outcome.step.per_gpu_batch, job.precision());
    WorkloadRun {
        name: id.abbreviation().to_string(),
        suite: id.suite(),
        n_gpus: n,
        usage,
        step_secs: outcome.step.step_time.as_secs(),
        flops_per_step: profile.total_flops().as_f64() * n as f64,
        hbm_bytes_per_step: profile.total_bytes().as_f64() * n as f64,
        epochs: outcome.epochs,
    }
}

/// Host CPU work per DeepBench kernel launch (reference-core-seconds) —
/// the tiny `dstat` CPU signal the kernel loops leave.
const DEEPBENCH_HOST_CORE_SECS_PER_LAUNCH: f64 = 0.002;
/// Sustained efficiency of the hand-tuned DeepBench kernels.
fn deepbench_efficiency() -> Efficiency {
    Efficiency::new(0.80, 0.70, 0.85)
}

fn deepbench(id: DeepBenchId, system: &SystemSpec, n: u32) -> Result<WorkloadRun, SimError> {
    if n < 1 {
        return Err(SimError::BadGpuSet("need at least one GPU".into()));
    }
    if (n as usize) > system.topology().gpu_count() {
        return Err(SimError::BadGpuSet(format!(
            "system has only {} GPUs",
            system.topology().gpu_count()
        )));
    }
    let gpu = system.gpu_model().spec();
    let timer = KernelTimer::new(gpu.clone(), deepbench_efficiency());

    let (step_secs, flops, hbm_bytes, launches, wire_bytes, hbm_mb, dram_mb) = match id {
        DeepBenchId::GemmCu | DeepBenchId::ConvCu | DeepBenchId::RnnCu => {
            if n != 1 {
                return Err(SimError::BadGpuSet(format!(
                    "{} is a single-GPU kernel loop",
                    id.abbreviation()
                )));
            }
            let kernels = match id {
                DeepBenchId::GemmCu => deepbench::gemm_kernels(),
                DeepBenchId::ConvCu => deepbench::conv_kernels(),
                DeepBenchId::RnnCu => deepbench::rnn_kernels(),
                DeepBenchId::RedCu => unreachable!("handled below"),
            };
            let mut time = Seconds::ZERO;
            let mut flops = 0.0;
            let mut bytes = 0.0;
            let mut working_set: u64 = 0;
            for k in &kernels {
                // DeepBench times forward + backward of each kernel in FP32.
                let cost = k.as_graph().pass_cost(k.batch, PrecisionPolicy::Fp32);
                time += timer.step_time(&cost);
                flops += cost.total_flops().as_f64();
                // Report profiler-visible transactions (tiling re-reads
                // included), matching the trainable workloads' profiles.
                bytes += cost.mem_bytes.as_f64() * k.op.profiled_traffic_factor();
                working_set = working_set.max(cost.mem_bytes.as_u64() / 8);
            }
            let hbm_mb = (working_set as f64 / 1e6 + 600.0).min(3_000.0);
            (
                time.as_secs(),
                flops,
                bytes,
                kernels.len() as f64 * 2.0,
                Bytes::ZERO,
                hbm_mb,
                hbm_mb * 0.4 + 300.0,
            )
        }
        DeepBenchId::RedCu => {
            let sizes = deepbench::allreduce_sizes();
            // Between timed iterations the harness re-syncs and verifies;
            // NCCL kernels stay resident (GPU counts busy) while the links
            // idle — which is why the published NVLink rates sit far below
            // link saturation.
            let iteration_gap = Seconds::new(0.010);
            let mut time = Seconds::ZERO;
            let mut wire = Bytes::ZERO;
            let mut volume = 0.0;
            if n == 1 {
                // Degenerate single-GPU pass: device-local reduction only.
                for &s in &sizes {
                    volume += s.as_f64() * 2.0;
                    time += s / gpu.empirical_hbm_bandwidth().scale(0.7) + iteration_gap;
                }
            } else {
                let gpus: Vec<u32> = (0..n).collect();
                let mut peer = system
                    .topology()
                    .worst_peer_path(&gpus)
                    .expect("connected topology");
                // A saturating collective loop on an NVLink mesh lets NCCL
                // schedule (n-1) concurrent rings over disjoint links — the
                // super-linear NVLink counter growth Table V shows for
                // Deep_Red_Cu.
                if peer.class == P2pClass::NvLinkDirect && n > 2 {
                    peer.bandwidth = peer.bandwidth.scale((n - 1) as f64);
                }
                for &s in &sizes {
                    time += allreduce_time(AllReduceAlgorithm::Ring, s, n as u64, &peer)
                        + iteration_gap;
                    wire += ring_wire_bytes_per_gpu(s, n as u64);
                    volume += s.as_f64() * 2.0;
                }
            }
            let hbm_mb = sizes.last().map(|s| s.as_f64() / 1e6).unwrap_or(0.0) + 380.0;
            (
                time.as_secs(),
                // nvprof attributes no FP operations to NCCL kernels —
                // §IV-A: "the communication kernel Deep_Red_Cu even has
                // zero floating point operations".
                0.0,
                volume,
                sizes.len() as f64,
                wire,
                hbm_mb,
                280.0 * n as f64,
            )
        }
    };

    // dmon-style counters for the loop.
    let cpu_cores = system.cpu_model().spec().cores() as f64 * system.cpu_count() as f64;
    let cpu_util_pct = match id {
        // NCCL keeps one polling progress thread busy per GPU.
        DeepBenchId::RedCu => 0.4 * n as f64,
        _ => {
            let host_core_secs = launches * DEEPBENCH_HOST_CORE_SECS_PER_LAUNCH;
            (host_core_secs / system.cpu_model().spec().base_freq_ghz() / (step_secs * cpu_cores))
                .min(1.0)
                * 100.0
        }
    };
    // Tight kernel loops keep SMs nearly saturated; NCCL loops slightly less.
    let busy = match id {
        DeepBenchId::RedCu => 0.92,
        _ => 0.99,
    };
    let comm_class = if n > 1 {
        system
            .topology()
            .worst_peer_path(&(0..n).collect::<Vec<_>>())
            .ok()
            .map(|p| p.class)
    } else {
        None
    };
    let wire_mbps = wire_bytes.as_f64() * 8.0 / 1e6 / step_secs * n as f64;
    let (pcie_extra, nvlink_mbps) = match comm_class {
        Some(P2pClass::NvLinkDirect) => (0.0, wire_mbps),
        Some(_) => (wire_mbps, 0.0),
        None => (0.0, 0.0),
    };
    let usage = ResourceUsage {
        n_gpus: n as u64,
        cpu_util_pct,
        gpu_util_pct: busy * 100.0 * n as f64,
        dram_mb,
        hbm_mb: hbm_mb * n as f64,
        // Kernel loops stage inputs once; PCIe carries only launch traffic.
        pcie_mbps: 13.0 + pcie_extra,
        nvlink_mbps,
    };
    Ok(WorkloadRun {
        name: id.abbreviation().to_string(),
        suite: Suite::DeepBench,
        n_gpus: n as u64,
        usage,
        step_secs,
        flops_per_step: flops,
        hbm_bytes_per_step: hbm_bytes,
        epochs: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::systems::SystemId;

    #[test]
    fn trainable_run_produces_consistent_telemetry() {
        let system = SystemId::C4140K.spec();
        let run = run(WorkloadSpec::Trainable(BenchmarkId::MlpfSsdPy), &system, 1).unwrap();
        assert_eq!(run.n_gpus, 1);
        assert!(run.step_secs > 0.0);
        assert!(run.flops_per_step > 0.0);
        assert!(run.epochs > 0.0);
        let c = run.characteristics();
        assert_eq!(c.suite, "MLPerf");
        let p = run.roofline_point().expect("training moves bytes");
        assert!(p.intensity > 0.0);
    }

    #[test]
    fn deepbench_compute_loops_have_high_gpu_low_cpu() {
        let system = SystemId::C4140K.spec();
        for id in [DeepBenchId::GemmCu, DeepBenchId::ConvCu, DeepBenchId::RnnCu] {
            let r = run(WorkloadSpec::DeepBench(id), &system, 1).unwrap();
            assert!(r.usage.gpu_util_pct > 90.0, "{id:?}");
            assert!(r.usage.cpu_util_pct < 10.0, "{id:?}");
            assert_eq!(r.usage.nvlink_mbps, 0.0);
            assert_eq!(r.epochs, 0.0);
        }
    }

    #[test]
    fn red_cu_lights_up_nvlink_with_scale() {
        let system = SystemId::C4140K.spec();
        let red = |n| run(WorkloadSpec::DeepBench(DeepBenchId::RedCu), &system, n).unwrap();
        let r1 = red(1);
        let r2 = red(2);
        let r4 = red(4);
        assert_eq!(r1.usage.nvlink_mbps, 0.0);
        assert!(r2.usage.nvlink_mbps > 0.0);
        // Table V: Red_Cu NVLink grows super-linearly with GPU count.
        assert!(r4.usage.nvlink_mbps > 2.0 * r2.usage.nvlink_mbps);
    }

    #[test]
    fn red_cu_dwarfs_training_nvlink_rates() {
        // §V-D: Deep_Red_Cu uses the highest NVLink bandwidth of all.
        let system = SystemId::C4140K.spec();
        let red = run(WorkloadSpec::DeepBench(DeepBenchId::RedCu), &system, 4).unwrap();
        let train = run(WorkloadSpec::Trainable(BenchmarkId::MlpfRes50Mx), &system, 4).unwrap();
        assert!(red.usage.nvlink_mbps > train.usage.nvlink_mbps);
    }

    #[test]
    fn unified_run_rejects_deepbench_misuse_as_bad_gpu_set() {
        let system = SystemId::C4140K.spec();
        for (spec, n, needle) in [
            (WorkloadSpec::DeepBench(DeepBenchId::GemmCu), 2, "single-GPU kernel loop"),
            (WorkloadSpec::DeepBench(DeepBenchId::RedCu), 0, "at least one GPU"),
            (WorkloadSpec::DeepBench(DeepBenchId::RedCu), 99, "system has only"),
        ] {
            match run(spec, &system, n) {
                Err(SimError::BadGpuSet(msg)) => assert!(msg.contains(needle), "{msg}"),
                other => panic!("expected BadGpuSet, got {other:?}"),
            }
        }
    }

    #[test]
    fn roofline_point_absent_without_traffic() {
        let run = WorkloadRun {
            name: "x".into(),
            suite: Suite::DeepBench,
            n_gpus: 1,
            usage: ResourceUsage {
                n_gpus: 1,
                cpu_util_pct: 0.0,
                gpu_util_pct: 0.0,
                dram_mb: 0.0,
                hbm_mb: 0.0,
                pcie_mbps: 0.0,
                nvlink_mbps: 0.0,
            },
            step_secs: 1.0,
            flops_per_step: 0.0,
            hbm_bytes_per_step: 0.0,
            epochs: 0.0,
        };
        assert!(run.roofline_point().is_none());
    }
}
