//! Seeded run-to-run replication of epochs-to-target.
//!
//! MLPerf's headline metric is stochastic: the same submission converges
//! in a different number of epochs every run, and the rules therefore
//! score the *median over several runs*, not a single measurement. Until
//! now every cell in this reproduction was priced from the single
//! point-calibrated [`ConvergenceModel`] constant. This module draws N
//! deterministic per-run epochs-to-target samples around that calibration
//! point and summarizes them as [`RunStats`] (median, p5/p95, and a
//! seeded bootstrap CI over the median).
//!
//! Determinism contract: run `r` of a cell draws from
//! `Rng::stream(REPLICATION_SEED, fnv1a64(cell_id ‖ r))` where `cell_id`
//! is the cell's canonical bytes *with the runs knob stripped* — so the
//! first 8 samples of a 16-run cell are bitwise the 8 samples of the same
//! cell at `MLPERF_RUNS=8`, replays are byte-identical, and the draw
//! order never depends on worker count or scheduling. The per-run noise
//! is lognormal, `epochs_r = point · exp(σ·z)` with
//! `σ = ConvergenceModel::run_cv()` (batch-sensitive workloads spread
//! more, matching the paper's observation) and `z` a 12-uniform
//! Irwin–Hall normal approximation.

use mlperf_analysis::stats::{bootstrap_ci_median, quantile_in, BootstrapScratch, StatsError};
use mlperf_sim::ConvergenceModel;
use mlperf_testkit::hash::{fnv1a64, Fnv1a64};
use mlperf_testkit::rng::Rng;

/// The suite's fixed replication seed ("RUNS" in ASCII, salted): every
/// report, sweep CSV, and serve response draws from the same streams, so
/// the conformance fingerprints pin the whole distribution machinery.
pub const REPLICATION_SEED: u64 = 0x4D4C_5046_5255_4E53;

/// Upper bound on the per-cell run count, everywhere it can be asked for
/// (`MLPERF_RUNS` and the serve `runs` field): enough for any sane CI,
/// small enough that a million-cell sweep cannot be turned into a
/// half-billion-draw accident.
pub const MAX_RUNS: u32 = 512;

/// Bootstrap resamples behind every CI (fixed: part of the byte contract).
const BOOTSTRAP_RESAMPLES: usize = 200;

/// Two-sided confidence level of the bootstrap CI.
const CI_LEVEL: f64 = 0.95;

/// Distribution summary of one cell's replicated epochs-to-target, in
/// the column order of [`RunStats::COLUMNS`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// How many runs were drawn.
    pub n: u32,
    /// Median epochs-to-target over the runs (the MLPerf scoring rule).
    pub median: f64,
    /// 5th percentile (a lucky seed).
    pub p5: f64,
    /// 95th percentile (an unlucky seed).
    pub p95: f64,
    /// Lower end of the bootstrap CI on the median.
    pub ci_lo: f64,
    /// Upper end of the bootstrap CI on the median.
    pub ci_hi: f64,
}

impl RunStats {
    /// CSV / serve column names, aligned with [`RunStats::values`].
    pub const COLUMNS: &'static [&'static str] = &[
        "runs",
        "epochs_median",
        "epochs_p5",
        "epochs_p95",
        "epochs_ci_lo",
        "epochs_ci_hi",
    ];

    /// The stats as row values, aligned with [`RunStats::COLUMNS`].
    pub fn values(&self) -> [f64; 6] {
        [
            f64::from(self.n),
            self.median,
            self.p5,
            self.p95,
            self.ci_lo,
            self.ci_hi,
        ]
    }
}

/// The replication layer: a seed plus a run count. Stateless beyond the
/// two numbers; every method is a pure function of its arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Base seed all per-run streams split from.
    pub seed: u64,
    /// Runs to draw per cell (≥ 1).
    pub runs: u32,
}

/// Reusable buffers for one thread's replication work: the samples and
/// the estimator scratch. No allocation happens per cell once warm.
#[derive(Debug, Clone, Default)]
pub struct ReplicationScratch {
    /// The drawn epochs-to-target samples.
    pub samples: Vec<f64>,
    sorted: Vec<f64>,
    bootstrap: BootstrapScratch,
}

impl ReplicationScratch {
    /// Fresh, empty buffers.
    pub fn new() -> ReplicationScratch {
        ReplicationScratch::default()
    }
}

impl Replication {
    /// The suite's replication layer at the given run count.
    pub fn new(runs: u32) -> Replication {
        assert!(runs >= 1, "a cell is always at least one run");
        Replication {
            seed: REPLICATION_SEED,
            runs,
        }
    }

    /// The PRNG stream of run `r` of the cell identified by `cell_id`.
    /// Public so tests can pin the stream-splitting contract directly.
    pub fn run_stream(&self, cell_id: &[u8], r: u32) -> Rng {
        let mut h = Fnv1a64::new();
        h.update(cell_id);
        h.write_u64(u64::from(r));
        Rng::stream(self.seed, h.finish())
    }

    /// Draw the per-run epochs-to-target samples for one cell into
    /// `out` (cleared first). Run `r` depends only on `(seed, cell_id,
    /// r)` — never on the other runs — so prefixes agree across run
    /// counts and the draws are scheduling-invariant.
    pub fn sample_epochs(
        &self,
        cell_id: &[u8],
        model: &ConvergenceModel,
        global_batch: u64,
        out: &mut Vec<f64>,
    ) {
        let point = model.epochs_at(global_batch);
        let sigma = model.run_cv();
        out.clear();
        out.reserve(self.runs as usize);
        for r in 0..self.runs {
            let mut rng = self.run_stream(cell_id, r);
            // Irwin–Hall: the sum of 12 uniforms has mean 6, variance 1.
            let z: f64 = (0..12).map(|_| rng.gen_f64()).sum::<f64>() - 6.0;
            out.push(point * (sigma * z).exp());
        }
    }

    /// Summarize drawn samples as [`RunStats`]. The bootstrap reseeds
    /// from `fnv1a64(cell_id) ^ seed`, so the CI too is a pure function
    /// of the cell identity.
    ///
    /// # Errors
    ///
    /// [`StatsError`] when the samples are empty or contain a non-finite
    /// value (callers wire this into their typed degraded-cell path).
    pub fn stats(
        &self,
        cell_id: &[u8],
        samples: &[f64],
        scratch: &mut ReplicationScratch,
    ) -> Result<RunStats, StatsError> {
        let median = quantile_in(samples, 0.5, &mut scratch.sorted)?;
        let p5 = quantile_in(samples, 0.05, &mut scratch.sorted)?;
        let p95 = quantile_in(samples, 0.95, &mut scratch.sorted)?;
        let (ci_lo, ci_hi) = bootstrap_ci_median(
            samples,
            BOOTSTRAP_RESAMPLES,
            CI_LEVEL,
            fnv1a64(cell_id) ^ self.seed,
            &mut scratch.bootstrap,
        )?;
        Ok(RunStats {
            n: u32::try_from(samples.len()).unwrap_or(u32::MAX),
            median,
            p5,
            p95,
            ci_lo,
            ci_hi,
        })
    }

    /// Draw and summarize in one step (the `price_cell` entry point).
    ///
    /// # Errors
    ///
    /// See [`Replication::stats`].
    pub fn epochs_stats(
        &self,
        cell_id: &[u8],
        model: &ConvergenceModel,
        global_batch: u64,
        scratch: &mut ReplicationScratch,
    ) -> Result<RunStats, StatsError> {
        let mut samples = std::mem::take(&mut scratch.samples);
        self.sample_epochs(cell_id, model, global_batch, &mut samples);
        let stats = self.stats(cell_id, &samples, scratch);
        scratch.samples = samples;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ConvergenceModel {
        ConvergenceModel::new(60.0, 256, 0.1)
    }

    #[test]
    fn draws_are_replayable_and_prefix_stable_across_run_counts() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Replication::new(8).sample_epochs(b"cell-x", &model(), 512, &mut a);
        Replication::new(8).sample_epochs(b"cell-x", &model(), 512, &mut b);
        assert_eq!(a, b, "same cell, same runs: bitwise replay");
        let mut wide = Vec::new();
        Replication::new(16).sample_epochs(b"cell-x", &model(), 512, &mut wide);
        assert_eq!(&wide[..8], &a[..], "8 runs are a prefix of 16");
    }

    #[test]
    fn distinct_cells_and_runs_get_distinct_streams() {
        let rep = Replication::new(4);
        let mut a = Vec::new();
        let mut b = Vec::new();
        rep.sample_epochs(b"cell-x", &model(), 512, &mut a);
        rep.sample_epochs(b"cell-y", &model(), 512, &mut b);
        assert_ne!(a, b, "cell identity splits the stream");
        assert_ne!(a[0], a[1], "runs differ within a cell");
    }

    #[test]
    fn samples_center_on_the_calibration_point() {
        let mut xs = Vec::new();
        Replication::new(256).sample_epochs(b"cell-x", &model(), 512, &mut xs);
        let point = model().epochs_at(512);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean / point - 1.0).abs() < 0.02,
            "mean {mean} strays from point {point}"
        );
        assert!(xs.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn stats_bracket_the_median_and_replay_bitwise() {
        let rep = Replication::new(16);
        let mut scratch = ReplicationScratch::new();
        let s = rep
            .epochs_stats(b"cell-x", &model(), 512, &mut scratch)
            .unwrap();
        assert_eq!(s.n, 16);
        assert!(s.p5 <= s.median && s.median <= s.p95);
        assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
        let again = rep
            .epochs_stats(b"cell-x", &model(), 512, &mut ReplicationScratch::new())
            .unwrap();
        assert_eq!(s, again, "stats are a pure function of the cell id");
    }

    #[test]
    fn non_finite_samples_surface_as_typed_errors() {
        let rep = Replication::new(4);
        let err = rep
            .stats(b"cell-x", &[1.0, f64::NAN], &mut ReplicationScratch::new())
            .unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
    }

    #[test]
    fn single_run_degenerates_to_the_sample_itself() {
        let rep = Replication::new(1);
        let mut scratch = ReplicationScratch::new();
        let s = rep
            .epochs_stats(b"cell-x", &model(), 512, &mut scratch)
            .unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.median, s.p5);
        assert_eq!(s.median, s.p95);
        assert_eq!((s.ci_lo, s.ci_hi), (s.median, s.median));
    }
}
