//! First-class parameter sweeps with a persistent result cache.
//!
//! The paper's conclusions all come from grids — batch sizes × systems,
//! GPU counts × workloads, MTBF × checkpoint interval — and until now
//! every experiment hand-rolled its own nested loops. A [`SweepSpec`]
//! declares the axes once and expands them *deterministically* (first
//! axis outermost, declaration order) into [`CellSpec`]s, each priced
//! through the shared memoized [`Ctx`] so overlapping sweeps share their
//! simulation points. Figure 4's scaling grid, the batch sweep, and the
//! fault study's MTBF × interval grid are all expressed this way (the
//! cluster study consumes Figure 4's grid).
//!
//! The second half is the persistence layer ([`cache`]): every cell (and,
//! one level up, every rendered report section and CSV file) is stored
//! under `fnv1a64(code_epoch ‖ canonical-spec-bytes)` in
//! `artifacts/cache/`, making a second `repro` run — or an overlapping
//! sweep — near-instant. A cell that fails is cached **as its error**,
//! never as a success; see [`cache`] for the full policy and the env
//! knobs (`MLPERF_CACHE`, `MLPERF_CACHE_DIR`).
//!
//! `repro sweep NAME` runs one registered sweep and emits a long-form CSV
//! (one row per cell, axes as columns); `repro sweep --list` enumerates
//! the registry.

pub mod cache;
pub mod replication;

pub use cache::{DiskCache, DiskStats};
pub use replication::{Replication, ReplicationScratch, RunStats, MAX_RUNS, REPLICATION_SEED};

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Ctx, Pool, TrainPoint};
use mlperf_data::storage::StorageDevice;
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::Seconds;
use mlperf_hw::{PartitionProfile, PartitionSpec};
use mlperf_models::PrecisionPolicy;
use mlperf_sim::checkpoint::{daly_interval, expected_runtime};
use mlperf_sim::{CheckpointSpec, SimError};

/// How a checkpoint interval is chosen in an expected-TTT cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalChoice {
    /// A fixed interval, minutes.
    FixedMin(f64),
    /// The Young/Daly-optimal interval for the cell's MTBF.
    Daly,
}

/// One value along one sweep axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisValue {
    /// The benchmark under test.
    Workload(BenchmarkId),
    /// The system it runs on.
    System(SystemId),
    /// GPUs of the system it uses.
    Gpus(u32),
    /// Per-GPU batch-size override.
    Batch(u64),
    /// Precision-policy override.
    Precision(PrecisionPolicy),
    /// Mean time between failures, hours (expected-TTT cells).
    MtbfHours(f64),
    /// Checkpoint-interval policy (expected-TTT cells).
    Interval(IntervalChoice),
    /// Fractional-device partition (`None` = the whole device).
    Partition(Option<PartitionSpec>),
}

/// What a cell computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// A training-simulation point: step time, throughput, memory,
    /// epochs, end-to-end minutes.
    Training,
    /// Daly's expected time-to-train under a checkpoint policy
    /// (checkpoints priced to [`CHECKPOINT_DEVICE`]).
    ExpectedTtt,
}

/// Checkpoint target of every [`CellKind::ExpectedTtt`] cell (part of the
/// cell's canonical identity; see [`CellSpec::canonical_bytes`]).
pub const CHECKPOINT_DEVICE: StorageDevice = StorageDevice::SataSsd;

impl CellKind {
    /// Stable token in canonical spec bytes.
    fn token(self) -> &'static str {
        match self {
            CellKind::Training => "training",
            CellKind::ExpectedTtt => "expected-ttt",
        }
    }

    /// The metric columns a cell of this kind produces, in order.
    pub fn columns(self) -> &'static [&'static str] {
        match self {
            CellKind::Training => &[
                "total_minutes",
                "step_ms",
                "throughput_sps",
                "hbm_gib",
                "epochs",
            ],
            CellKind::ExpectedTtt => &["interval_min", "expected_hours", "overhead_pct"],
        }
    }

    /// The extra distribution columns a cell of this kind appends when
    /// replication is on (more than one run). Training cells report the
    /// [`RunStats`] summary of their epochs-to-target draws; expected-TTT
    /// cells are already expectations and replicate to nothing.
    pub fn run_columns(self) -> &'static [&'static str] {
        match self {
            CellKind::Training => RunStats::COLUMNS,
            CellKind::ExpectedTtt => &[],
        }
    }
}

/// One fully-resolved cell of a sweep: the base point with every axis
/// value applied. Canonically comparable via [`CellSpec::canonical_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// What this cell computes.
    pub kind: CellKind,
    /// The benchmark (required to price anything).
    pub workload: Option<BenchmarkId>,
    /// The system (required to price anything).
    pub system: Option<SystemId>,
    /// GPU count (required to price anything).
    pub gpus: Option<u32>,
    /// Per-GPU batch override.
    pub batch: Option<u64>,
    /// Precision override.
    pub precision: Option<PrecisionPolicy>,
    /// MTBF, hours (expected-TTT cells).
    pub mtbf_hours: Option<f64>,
    /// Checkpoint-interval policy (expected-TTT cells).
    pub interval: Option<IntervalChoice>,
    /// Per-cell run-count override (> 1 turns replication on for this
    /// cell regardless of `MLPERF_RUNS`). `None` defers to the context.
    pub runs: Option<u32>,
    /// Fractional-device partition the cell's job runs inside. `None` —
    /// the whole device — spells and caches exactly as every
    /// pre-partition cell did.
    pub partition: Option<PartitionSpec>,
}

impl CellSpec {
    fn empty(kind: CellKind) -> CellSpec {
        CellSpec {
            kind,
            workload: None,
            system: None,
            gpus: None,
            batch: None,
            precision: None,
            mtbf_hours: None,
            interval: None,
            runs: None,
            partition: None,
        }
    }

    fn apply(&mut self, v: AxisValue) {
        match v {
            AxisValue::Workload(w) => self.workload = Some(w),
            AxisValue::System(s) => self.system = Some(s),
            AxisValue::Gpus(g) => self.gpus = Some(g),
            AxisValue::Batch(b) => self.batch = Some(b),
            AxisValue::Precision(p) => self.precision = Some(p),
            AxisValue::MtbfHours(m) => self.mtbf_hours = Some(m),
            AxisValue::Interval(i) => self.interval = Some(i),
            AxisValue::Partition(p) => self.partition = p,
        }
    }

    /// The cell's canonical identity: a stable, readable byte string in
    /// which floats are spelled as their IEEE-754 bit patterns, so two
    /// specs are canonically equal **iff** their bytes are equal. This is
    /// what the persistent cache hashes (together with the code epoch).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn f64_token(v: Option<f64>) -> String {
            v.map_or_else(|| "-".to_string(), |x| format!("{:016x}", x.to_bits()))
        }
        let interval = match self.interval {
            None => "-".to_string(),
            Some(IntervalChoice::Daly) => "daly".to_string(),
            Some(IntervalChoice::FixedMin(m)) => format!("fixed:{:016x}", m.to_bits()),
        };
        let mut s = format!(
            "cell.v1;kind={};wl={};sys={};gpus={};batch={};prec={};mtbf={};int={}",
            self.kind.token(),
            self.workload.map_or("-", BenchmarkId::abbreviation),
            self.system.map_or("-", SystemId::name),
            self.gpus.map_or_else(|| "-".to_string(), |g| g.to_string()),
            self.batch.map_or_else(|| "-".to_string(), |b| b.to_string()),
            self.precision.map_or("-", |p| match p {
                PrecisionPolicy::Fp32 => "fp32",
                PrecisionPolicy::Amp => "amp",
            }),
            f64_token(self.mtbf_hours),
            interval,
        );
        if self.kind == CellKind::ExpectedTtt {
            // The checkpoint device is fixed today but part of the cell's
            // physical identity; bake it in so a future device axis
            // cannot silently collide with old entries.
            s.push_str(";dev=SataSsd");
        }
        // Like `;trunc=`: only spelled when set, so a single-run cell's
        // identity (and cache entry) is exactly what it was before
        // replication existed.
        if let Some(r) = self.runs {
            s.push_str(&format!(";runs={r}"));
        }
        // Same only-when-set rule: a whole-device cell's identity (and
        // cache entry) is exactly what it was before partitioning existed.
        if let Some(p) = self.partition {
            s.push_str(&format!(";part={p}"));
        }
        s.into_bytes()
    }

    /// The cell's identity with the run count stripped: what the
    /// replication layer hashes to split per-run PRNG streams, so that
    /// 8-run and 16-run pricings of the same physical cell draw from the
    /// same streams (the former a prefix of the latter).
    pub fn replication_id(&self) -> Vec<u8> {
        if self.runs.is_none() {
            return self.canonical_bytes();
        }
        let mut stripped = self.clone();
        stripped.runs = None;
        stripped.canonical_bytes()
    }
}

/// Why one cell produced no value. `sim` carries the typed simulator
/// error when the cell was priced in-process; a cell deserialized from
/// the persistent cache keeps only the stable `kind` token and message.
#[derive(Debug, Clone, PartialEq)]
pub struct CellError {
    /// Stable short token (`oom`, `non-finite`, `bad-gpu-set`,
    /// `topology`, `invalid-spec`).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// The typed error, when priced in-process.
    pub sim: Option<SimError>,
}

impl CellError {
    /// Wrap a typed simulator error as a cell outcome: stable kind
    /// token plus the formatted message rows and caches carry.
    pub fn from_sim(e: SimError) -> CellError {
        let kind = match &e {
            SimError::OutOfMemory { .. } => "oom",
            SimError::NonFinite { .. } => "non-finite",
            SimError::BadGpuSet(_) => "bad-gpu-set",
            SimError::Topology(_) => "topology",
            SimError::Partition(_) => "bad-partition",
        };
        CellError {
            kind: kind.to_string(),
            message: e.to_string(),
            sim: Some(e),
        }
    }

    fn invalid(message: &str) -> CellError {
        CellError {
            kind: "invalid-spec".to_string(),
            message: message.to_string(),
            sim: None,
        }
    }

    /// Whether this is the out-of-memory wall.
    pub fn is_oom(&self) -> bool {
        self.kind == "oom"
    }

    /// Recover a [`SimError`] for callers with `SimError`-typed error
    /// paths. Lossless when priced in-process; a disk-loaded error is
    /// re-wrapped as [`SimError::NonFinite`] carrying the message.
    pub fn to_sim(&self) -> SimError {
        self.sim.clone().unwrap_or(SimError::NonFinite {
            context: self.message.clone(),
        })
    }
}

/// One cell's metric values, aligned with [`CellKind::columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellValue {
    values: Vec<f64>,
}

impl CellValue {
    /// The value of a named column.
    ///
    /// # Panics
    ///
    /// Panics if `kind` does not have a column `name` (a programming
    /// error in the caller).
    pub fn get(&self, kind: CellKind, name: &str) -> f64 {
        let i = kind
            .columns()
            .iter()
            .position(|c| *c == name)
            .unwrap_or_else(|| panic!("no column '{name}' in {kind:?}"));
        self.values[i]
    }

    /// All values, in column order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value of a named column, searching the base columns and —
    /// when the cell was priced at `runs > 1` — the replication columns
    /// appended after them.
    ///
    /// # Panics
    ///
    /// Panics if the kind has no such column at that run count.
    pub fn get_named(&self, kind: CellKind, runs: u32, name: &str) -> f64 {
        let base = kind.columns();
        if let Some(i) = base.iter().position(|c| *c == name) {
            return self.values[i];
        }
        if runs > 1 {
            if let Some(i) = kind.run_columns().iter().position(|c| *c == name) {
                return self.values[base.len() + i];
            }
        }
        panic!("no column '{name}' in {kind:?} at runs={runs}")
    }
}

/// One named axis of a sweep.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Display name (CSV column vocabulary).
    pub name: &'static str,
    /// The values, in declared order.
    pub values: Vec<AxisValue>,
}

/// A declarative parameter sweep: a base cell plus axes that expand into
/// the cartesian grid, first axis outermost. Expansion is deterministic:
/// same spec, same cell order, every time.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Stable name (cache vocabulary and output file stem).
    pub name: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What each cell computes.
    pub kind: CellKind,
    base: CellSpec,
    axes: Vec<Axis>,
    /// Keep only the first N cells of the expansion (a CI-sized prefix
    /// of a huge grid). `None` — the default — means the full product.
    trunc: Option<usize>,
}

impl SweepSpec {
    /// A sweep with no axes yet.
    pub fn new(name: &'static str, title: &'static str, kind: CellKind) -> SweepSpec {
        SweepSpec {
            name,
            title,
            kind,
            base: CellSpec::empty(kind),
            axes: Vec::new(),
            trunc: None,
        }
    }

    /// Fix one dimension for every cell.
    #[must_use]
    pub fn fix(mut self, v: AxisValue) -> SweepSpec {
        self.base.apply(v);
        self
    }

    /// Add an axis; the grid is the cartesian product of all axes, first
    /// axis outermost.
    #[must_use]
    pub fn axis(mut self, name: &'static str, values: Vec<AxisValue>) -> SweepSpec {
        self.axes.push(Axis { name, values });
        self
    }

    /// The declared axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Whether any cell of this sweep can carry a partition (a partition
    /// axis or a partitioned base). Gates the CSV's `partition` column:
    /// partition-free sweeps emit exactly the bytes they always did.
    pub fn partitioned(&self) -> bool {
        self.base.partition.is_some()
            || self
                .axes
                .iter()
                .any(|a| a.values.iter().any(|v| matches!(v, AxisValue::Partition(_))))
    }

    /// Keep only the first `max_cells` cells of the deterministic
    /// expansion — the CI-sized prefix of a grid too large to run whole.
    /// Truncation is part of the sweep's canonical identity (the cache
    /// must not confuse a prefix with the full grid); an untruncated
    /// sweep spells its canonical bytes exactly as before.
    #[must_use]
    pub fn truncate(mut self, max_cells: usize) -> SweepSpec {
        self.trunc = Some(max_cells);
        self
    }

    /// Number of cells the sweep expands to, without materializing any
    /// of them (the product of the axis lengths, capped by
    /// [`SweepSpec::truncate`]).
    pub fn len(&self) -> usize {
        let full: usize = self.axes.iter().map(|a| a.values.len().max(1)).product();
        self.trunc.map_or(full, |t| full.min(t))
    }

    /// Whether the expansion is empty (only possible via `truncate(0)`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th cell of the deterministic expansion, decoded straight
    /// from the odometer (last axis fastest) — O(axes), independent of
    /// the grid size, so streaming runners never hold the grid.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn cell_at(&self, i: usize) -> CellSpec {
        assert!(i < self.len(), "cell index {i} out of range {}", self.len());
        let mut cell = self.base.clone();
        // Decode index i into one coordinate per axis, last fastest.
        let mut coords = vec![0usize; self.axes.len()];
        let mut rest = i;
        for (k, axis) in self.axes.iter().enumerate().rev() {
            let n = axis.values.len().max(1);
            coords[k] = rest % n;
            rest /= n;
        }
        for (axis, &c) in self.axes.iter().zip(&coords) {
            if let Some(v) = axis.values.get(c) {
                cell.apply(*v);
            }
        }
        cell
    }

    /// Deterministic expansion into cells (odometer over the axes,
    /// last axis fastest — exactly the nested-loop order the experiments
    /// used to hand-roll). Materializes the whole grid; million-cell
    /// sweeps should walk [`SweepSpec::cell_at`] instead.
    pub fn cells(&self) -> Vec<CellSpec> {
        (0..self.len()).map(|i| self.cell_at(i)).collect()
    }

    /// The sweep's canonical identity: name, kind, and every axis value
    /// (via the same float-bit spelling as [`CellSpec::canonical_bytes`]).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut s = format!("sweep.v1;name={};kind={}", self.name, self.kind.token());
        s.push_str(";base=");
        s.push_str(&String::from_utf8_lossy(&self.base.canonical_bytes()));
        for axis in &self.axes {
            s.push_str(&format!(";axis={}[", axis.name));
            for (i, v) in axis.values.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let mut probe = CellSpec::empty(self.kind);
                probe.apply(*v);
                s.push_str(&String::from_utf8_lossy(&probe.canonical_bytes()));
            }
            s.push(']');
        }
        if let Some(t) = self.trunc {
            s.push_str(&format!(";trunc={t}"));
        }
        s.into_bytes()
    }
}

/// One priced cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's resolved spec.
    pub spec: CellSpec,
    /// Its metrics, or why it degraded.
    pub outcome: Result<CellValue, CellError>,
    /// Whether the persistent cache answered this cell.
    pub from_disk: bool,
}

/// A fully-executed sweep.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The sweep's stable name.
    pub name: &'static str,
    /// Its display title.
    pub title: &'static str,
    /// What the cells computed.
    pub kind: CellKind,
    /// Axis names, in declaration order (CSV column order).
    pub axis_names: Vec<&'static str>,
    /// The effective run count the cells were priced at (> 1 appends the
    /// replication columns to the CSV).
    pub runs: u32,
    /// Whether the sweep carries a partition axis or base (adds the
    /// `partition` column to the CSV).
    pub partitioned: bool,
    /// Every cell, in deterministic expansion order.
    pub cells: Vec<CellResult>,
}

impl SweepRun {
    /// Cells answered by the persistent cache.
    pub fn disk_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.from_disk).count()
    }

    /// Cells that degraded to an error.
    pub fn errors(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }
}

/// The run count a cell is actually priced at: its own `runs` override
/// when set, otherwise the context's `MLPERF_RUNS` resolution. Always
/// ≥ 1; `1` means replication is off and the cell prices exactly as it
/// did before the replication layer existed.
pub fn effective_runs(ctx: &Ctx, spec: &CellSpec) -> u32 {
    spec.runs.unwrap_or_else(|| ctx.runs()).max(1)
}

/// Price one cell through the shared memoized context. Pure function of
/// `(ctx-model, spec)`: every run of the same spec produces the same
/// value or the same error. At an effective run count above one,
/// Training cells append the [`RunStats`] columns — seeded
/// epochs-to-target replication around the convergence calibration
/// point — after their base metric columns.
///
/// # Errors
///
/// A [`CellError`]: `invalid-spec` when a required dimension is missing,
/// otherwise the simulator's verdict (`oom`, `non-finite`, ...).
pub fn price_cell(ctx: &Ctx, spec: &CellSpec) -> Result<CellValue, CellError> {
    let workload = spec
        .workload
        .ok_or_else(|| CellError::invalid("cell has no workload"))?;
    let system = spec
        .system
        .ok_or_else(|| CellError::invalid("cell has no system"))?;
    let gpus = spec.gpus.ok_or_else(|| CellError::invalid("cell has no gpu count"))?;
    match spec.kind {
        CellKind::Training => {
            let mut point = TrainPoint::new(workload, system, gpus);
            if let Some(b) = spec.batch {
                point = point.with_per_gpu_batch(b);
            }
            if let Some(p) = spec.precision {
                point = point.with_precision(p);
            }
            if spec.partition.is_some() {
                point = point.with_partition(spec.partition);
            }
            let (step, outcome) = ctx.step_and_outcome(&point).map_err(CellError::from_sim)?;
            // Epochs are charged by the *base* job's convergence model at
            // the cell's effective global batch (matching the batch
            // sweep's original accounting). The interned template stands
            // in for rebuilding the job from the zoo per cell; the batch
            // override wins over the template default exactly as
            // `with_per_gpu_batch` would.
            let base = ctx.base_job(workload, false);
            let per_gpu = spec.batch.unwrap_or_else(|| base.per_gpu_batch());
            let global_batch = per_gpu * u64::from(gpus);
            let epochs = base.convergence().epochs_at(global_batch);
            let mut values = vec![
                outcome.total_time.as_minutes(),
                step.step_time.as_secs() * 1e3,
                step.throughput_samples_per_sec(),
                step.hbm_per_gpu.as_gib(),
                epochs,
            ];
            let runs = effective_runs(ctx, spec);
            if runs > 1 {
                let rep = Replication::new(runs);
                let mut scratch = ReplicationScratch::new();
                let stats = rep
                    .epochs_stats(
                        &spec.replication_id(),
                        &base.convergence(),
                        global_batch,
                        &mut scratch,
                    )
                    .map_err(|e| CellError {
                        kind: "non-finite".to_string(),
                        message: format!("replication stats: {e}"),
                        sim: None,
                    })?;
                values.extend_from_slice(&stats.values());
            }
            Ok(CellValue { values })
        }
        CellKind::ExpectedTtt => {
            let mtbf_hours = spec
                .mtbf_hours
                .ok_or_else(|| CellError::invalid("expected-TTT cell has no MTBF"))?;
            let choice = spec
                .interval
                .ok_or_else(|| CellError::invalid("expected-TTT cell has no interval"))?;
            let mut point = TrainPoint::new(workload, system, gpus);
            if spec.partition.is_some() {
                point = point.with_partition(spec.partition);
            }
            let outcome = ctx.outcome(&point).map_err(CellError::from_sim)?;
            let work = outcome.total_time;
            let job = ctx.base_job(workload, false);
            let probe = CheckpointSpec::new(Seconds::from_minutes(10.0), CHECKPOINT_DEVICE);
            let write_cost = probe.write_cost(&job);
            let restart_cost = probe.restart_cost(&job);
            let mtbf = Seconds::from_hours(mtbf_hours);
            let tau = match choice {
                IntervalChoice::FixedMin(m) => Seconds::from_minutes(m),
                IntervalChoice::Daly => daly_interval(write_cost, mtbf),
            };
            let expected = expected_runtime(work, tau, write_cost, restart_cost, mtbf);
            Ok(CellValue {
                values: vec![
                    tau.as_minutes(),
                    expected.as_hours(),
                    (expected.as_secs() / work.as_secs() - 1.0) * 100.0,
                ],
            })
        }
    }
}

/// Serialize one cell outcome for the persistent cache (floats as IEEE
/// bit patterns, so the round trip is exact).
pub(crate) fn encode_outcome(outcome: &Result<CellValue, CellError>) -> Vec<u8> {
    let mut s = String::new();
    match outcome {
        Ok(v) => {
            s.push_str("ok v1\n");
            for x in &v.values {
                s.push_str(&format!("{:016x}\n", x.to_bits()));
            }
        }
        Err(e) => {
            s.push_str("err v1\n");
            s.push_str(&format!("{}\n", e.kind));
            s.push_str(&format!("{}\n", e.message.replace('\n', " ")));
        }
    }
    s.into_bytes()
}

/// Parse a cached cell outcome; `None` (treated as a miss) on any
/// malformed payload. `runs` is the effective run count the cell was
/// priced at: above one, the kind's replication columns are part of the
/// expected payload width.
pub(crate) fn decode_outcome(
    kind: CellKind,
    runs: u32,
    bytes: &[u8],
) -> Option<Result<CellValue, CellError>> {
    let expected =
        kind.columns().len() + if runs > 1 { kind.run_columns().len() } else { 0 };
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    match lines.next()? {
        "ok v1" => {
            let values: Option<Vec<f64>> = lines
                .map(|l| u64::from_str_radix(l, 16).ok().map(f64::from_bits))
                .collect();
            let values = values?;
            (values.len() == expected).then_some(Ok(CellValue { values }))
        }
        "err v1" => {
            let kind_token = lines.next()?.to_string();
            let message = lines.next()?.to_string();
            Some(Err(CellError {
                kind: kind_token,
                message,
                sim: None,
            }))
        }
        _ => None,
    }
}

/// Price one cell, answering from (and filling) the persistent cache
/// when one is supplied. Degraded cells are stored **as their error** —
/// a warm run reproduces the same degraded row, never a fake success.
pub(crate) fn run_cell(ctx: &Ctx, spec: &CellSpec, cache: Option<&DiskCache>) -> CellResult {
    let runs = effective_runs(ctx, spec);
    let entry_spec: Option<Vec<u8>> = cache.map(|_| {
        // The cache entry is keyed by the *effective* run count (spelled
        // only when replication is on): a context-level MLPERF_RUNS=8
        // and an explicit runs=8 override are the same computation and
        // share an entry, while a single-run cell keys exactly as it
        // did before replication existed.
        let mut keyed = spec.clone();
        keyed.runs = (runs > 1).then_some(runs);
        let mut s = b"cell:".to_vec();
        s.extend_from_slice(&keyed.canonical_bytes());
        s
    });
    if let (Some(cache), Some(entry)) = (cache, entry_spec.as_deref()) {
        if let Some(outcome) =
            cache.load(entry).and_then(|b| decode_outcome(spec.kind, runs, &b))
        {
            return CellResult {
                spec: spec.clone(),
                outcome,
                from_disk: true,
            };
        }
    }
    let outcome = price_cell(ctx, spec);
    if let (Some(cache), Some(entry)) = (cache, entry_spec.as_deref()) {
        cache.store(entry, &encode_outcome(&outcome));
    }
    CellResult {
        spec: spec.clone(),
        outcome,
        from_disk: false,
    }
}

/// Run a sweep serially on the calling thread (what the experiments do —
/// they already execute inside a pool worker).
pub fn run_serial(ctx: &Ctx, spec: &SweepSpec, cache: Option<&DiskCache>) -> SweepRun {
    let cells = spec
        .cells()
        .iter()
        .map(|c| run_cell(ctx, c, cache))
        .collect();
    collect(spec, ctx.runs(), cells)
}

/// Run a sweep's cells on the pool (the `repro sweep` path). Results come
/// back in expansion order regardless of the interleaving, so the output
/// is byte-identical to [`run_serial`].
pub fn run_pooled(pool: &Pool, ctx: &Ctx, spec: &SweepSpec, cache: Option<&DiskCache>) -> SweepRun {
    let cell_specs = spec.cells();
    let tasks: Vec<_> = cell_specs
        .iter()
        .map(|c| move || run_cell(ctx, c, cache))
        .collect();
    let cells = pool.run_all(tasks);
    collect(spec, ctx.runs(), cells)
}

fn collect(spec: &SweepSpec, runs: u32, cells: Vec<CellResult>) -> SweepRun {
    SweepRun {
        name: spec.name,
        title: spec.title,
        kind: spec.kind,
        axis_names: spec.axes.iter().map(|a| a.name).collect(),
        runs: runs.max(1),
        partitioned: spec.partitioned(),
        cells,
    }
}

/// The CSV header vocabulary for one cell kind: spec columns (plus the
/// `partition` column when the sweep carries one), a status column, the
/// kind's metric columns (plus the replication columns when `runs > 1`),
/// and the error token.
pub(crate) fn csv_headers(kind: CellKind, runs: u32, partitioned: bool) -> Vec<&'static str> {
    let mut headers = vec![
        "workload",
        "system",
        "gpus",
        "batch",
        "precision",
        "mtbf_hours",
        "interval",
    ];
    if partitioned {
        headers.push("partition");
    }
    headers.push("status");
    headers.extend_from_slice(kind.columns());
    if runs > 1 {
        headers.extend_from_slice(kind.run_columns());
    }
    headers.push("error");
    headers
}

/// Render one cell as its CSV row cells (unquoted). Shared between
/// [`to_csv`] and [`run_streamed`] so the streamed file is byte-identical
/// to the in-memory rendering. `runs` must match the header the row goes
/// under: it sizes the dash padding of degraded rows; `partitioned`
/// likewise gates the partition cell.
fn row_cells(kind: CellKind, runs: u32, partitioned: bool, cell: &CellResult) -> Vec<String> {
    let s = &cell.spec;
    let mut row = vec![
        s.workload.map_or("-", BenchmarkId::abbreviation).to_string(),
        s.system
            .map_or_else(|| "-".to_string(), |x| x.name().replace(' ', "_")),
        s.gpus.map_or_else(|| "-".to_string(), |g| g.to_string()),
        s.batch.map_or_else(|| "-".to_string(), |b| b.to_string()),
        s.precision.map_or("-", |p| match p {
            PrecisionPolicy::Fp32 => "fp32",
            PrecisionPolicy::Amp => "amp",
        })
        .to_string(),
        s.mtbf_hours
            .map_or_else(|| "-".to_string(), |m| format!("{m:.1}")),
        match s.interval {
            None => "-".to_string(),
            Some(IntervalChoice::Daly) => "daly".to_string(),
            Some(IntervalChoice::FixedMin(m)) => format!("{m:.1}min"),
        },
    ];
    if partitioned {
        row.push(s.partition.map_or_else(|| "full".to_string(), |p| p.to_string()));
    }
    match &cell.outcome {
        Ok(v) => {
            row.push("ok".to_string());
            row.extend(v.values().iter().map(|x| format!("{x:.4}")));
            row.push("-".to_string());
        }
        Err(e) => {
            row.push("error".to_string());
            let width = kind.columns().len()
                + if runs > 1 { kind.run_columns().len() } else { 0 };
            row.extend(std::iter::repeat_n("-".to_string(), width));
            row.push(e.kind.clone());
        }
    }
    row
}

/// Render a run as a long-form CSV: one row per cell in expansion order.
pub fn to_csv(run: &SweepRun) -> String {
    let mut t = Table::new("", csv_headers(run.kind, run.runs, run.partitioned));
    for cell in &run.cells {
        t.add_row(row_cells(run.kind, run.runs, run.partitioned, cell));
    }
    t.to_csv()
}

/// What a streamed sweep did (the rows themselves went to the writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total cells priced and written.
    pub cells: usize,
    /// Cells that degraded to an error (still written, `status=error`).
    pub errors: usize,
    /// Cells answered by the persistent cache.
    pub disk_hits: usize,
    /// Peak number of priced-but-unwritten cells resident at once —
    /// bounded by the shard size, never by the grid. The proof that
    /// streaming buffering stayed bounded.
    pub peak_resident: usize,
}

/// Run a sweep in shards of `shard` cells, writing each row as soon as
/// its shard completes: the grid is never materialized, so a 10⁶-cell
/// sweep runs in memory bounded by the shard size. Cells are decoded
/// one shard at a time via [`SweepSpec::cell_at`], priced on the pool
/// (expansion order preserved), rendered through the same row/quoting
/// code as [`to_csv`], and dropped. The emitted bytes are identical to
/// `to_csv(&run_pooled(..))`.
///
/// # Errors
///
/// Propagates write errors from `out`; pricing never fails (degraded
/// cells become `status=error` rows, counted in the summary).
pub fn run_streamed(
    pool: &Pool,
    ctx: &Ctx,
    spec: &SweepSpec,
    cache: Option<&DiskCache>,
    out: &mut dyn std::io::Write,
    shard: usize,
) -> std::io::Result<StreamSummary> {
    let shard = shard.max(1);
    let total = spec.len();
    let runs = ctx.runs();
    let partitioned = spec.partitioned();
    out.write_all(crate::report::csv_line(csv_headers(spec.kind, runs, partitioned)).as_bytes())?;
    let mut summary = StreamSummary {
        cells: 0,
        errors: 0,
        disk_hits: 0,
        peak_resident: 0,
    };
    let mut start = 0;
    while start < total {
        let end = (start + shard).min(total);
        let specs: Vec<CellSpec> = (start..end).map(|i| spec.cell_at(i)).collect();
        // A single worker gains nothing from task dispatch; pricing the
        // shard inline skips the per-cell channel round-trip. Order is
        // identical either way (`run_all` preserves submission order).
        let results: Vec<CellResult> = if pool.workers() <= 1 {
            specs.iter().map(|c| run_cell(ctx, c, cache)).collect()
        } else {
            let tasks: Vec<_> = specs
                .iter()
                .map(|c| move || run_cell(ctx, c, cache))
                .collect();
            pool.run_all(tasks)
        };
        summary.peak_resident = summary.peak_resident.max(results.len());
        for cell in &results {
            summary.cells += 1;
            summary.errors += usize::from(cell.outcome.is_err());
            summary.disk_hits += usize::from(cell.from_disk);
            let row = row_cells(spec.kind, runs, partitioned, cell);
            out.write_all(
                crate::report::csv_line(row.iter().map(String::as_str)).as_bytes(),
            )?;
        }
        start = end;
    }
    Ok(summary)
}

/// Figure 4's input grid: every MLPerf benchmark at 1/2/4/8 GPUs on the
/// DSS 8440 (also consumed by Table IV's memo hits, the cluster study,
/// and the fault study's elastic part).
pub fn figure4_scaling() -> SweepSpec {
    SweepSpec::new(
        "figure4_scaling",
        "MLPerf workloads x GPU count on the DSS 8440",
        CellKind::Training,
    )
    .fix(AxisValue::System(SystemId::Dss8440))
    .axis(
        "workload",
        BenchmarkId::MLPERF.iter().copied().map(AxisValue::Workload).collect(),
    )
    .axis("gpus", [1u32, 2, 4, 8].iter().map(|&g| AxisValue::Gpus(g)).collect())
}

/// The batch sweep: one benchmark on a single V100 of the C4140 (K),
/// per-GPU batch doubling from 16 until past the OOM wall.
pub fn batch_wall(id: BenchmarkId) -> SweepSpec {
    let batches: Vec<AxisValue> = (0..)
        .map(|i| 16u64 << i)
        .take_while(|&b| b <= 1 << 14)
        .map(AxisValue::Batch)
        .collect();
    SweepSpec::new(
        "batch_wall",
        "Per-GPU batch size to the OOM wall (C4140 K, 1 GPU)",
        CellKind::Training,
    )
    .fix(AxisValue::Workload(id))
    .fix(AxisValue::System(SystemId::C4140K))
    .fix(AxisValue::Gpus(1))
    .axis("batch", batches)
}

/// The fault study's analytic grid: MTBF x checkpoint interval (four
/// fixed intervals plus the Daly-optimal one) for the Transformer on 4
/// GPUs of the DSS 8440.
pub fn fault_ttt() -> SweepSpec {
    SweepSpec::new(
        "fault_ttt",
        "Expected time-to-train vs MTBF and checkpoint interval",
        CellKind::ExpectedTtt,
    )
    .fix(AxisValue::Workload(BenchmarkId::MlpfXfmrPy))
    .fix(AxisValue::System(SystemId::Dss8440))
    .fix(AxisValue::Gpus(4))
    .axis(
        "mtbf_hours",
        [1.0, 4.0, 24.0].iter().map(|&m| AxisValue::MtbfHours(m)).collect(),
    )
    .axis(
        "interval",
        vec![
            AxisValue::Interval(IntervalChoice::FixedMin(1.0)),
            AxisValue::Interval(IntervalChoice::FixedMin(10.0)),
            AxisValue::Interval(IntervalChoice::FixedMin(60.0)),
            AxisValue::Interval(IntervalChoice::FixedMin(240.0)),
            AxisValue::Interval(IntervalChoice::Daly),
        ],
    )
}

/// The partition-scaling grid: every MLPerf benchmark on one V100 of the
/// C4140 (K), whole-device and at the packed 2-/4-/7-way slice layouts
/// (every co-tenant busy — the worst-case interference point). This is
/// the input grid of the partition study; per-device throughput is k ×
/// the per-slice rate the cells price.
pub fn partition_scaling() -> SweepSpec {
    SweepSpec::new(
        "partition_scaling",
        "MLPerf workloads x k-way device partitioning (C4140 K, 1 GPU)",
        CellKind::Training,
    )
    .fix(AxisValue::System(SystemId::C4140K))
    .fix(AxisValue::Gpus(1))
    .axis(
        "workload",
        BenchmarkId::MLPERF.iter().copied().map(AxisValue::Workload).collect(),
    )
    .axis(
        "partition",
        vec![
            AxisValue::Partition(None),
            AxisValue::Partition(Some(PartitionSpec::packed(PartitionProfile::Half))),
            AxisValue::Partition(Some(PartitionSpec::packed(PartitionProfile::Quarter))),
            AxisValue::Partition(Some(PartitionSpec::packed(PartitionProfile::Seventh))),
        ],
    )
}

/// How many cells of [`million_cell`] the registry (and CI) actually
/// runs; the full grid is the bench harness's stress load.
pub const MILLION_CELL_CI_PREFIX: usize = 512;

/// The scale stress grid: every MLPerf benchmark × three systems ×
/// 1/2/4/8 GPUs × both precisions × every per-GPU batch size from 1 to
/// 5952 — 999,936 cells. Exists to prove the streaming runner holds a
/// ~10⁶-cell sweep in shard-bounded memory; the registry carries it
/// truncated to [`MILLION_CELL_CI_PREFIX`] cells so `repro sweep` and
/// the conformance fingerprints stay CI-sized.
pub fn million_cell() -> SweepSpec {
    SweepSpec::new(
        "million_cell",
        "Scale stress grid: workload x system x GPUs x precision x batch",
        CellKind::Training,
    )
    .axis(
        "workload",
        BenchmarkId::MLPERF.iter().copied().map(AxisValue::Workload).collect(),
    )
    .axis(
        "system",
        [SystemId::Dss8440, SystemId::C4140K, SystemId::T640]
            .iter()
            .map(|&s| AxisValue::System(s))
            .collect(),
    )
    .axis("gpus", [1u32, 2, 4, 8].iter().map(|&g| AxisValue::Gpus(g)).collect())
    .axis(
        "precision",
        vec![
            AxisValue::Precision(PrecisionPolicy::Amp),
            AxisValue::Precision(PrecisionPolicy::Fp32),
        ],
    )
    .axis("batch", (1u64..=5952).map(AxisValue::Batch).collect())
}

/// Every sweep `repro sweep` can run, by name.
pub fn registry() -> Vec<SweepSpec> {
    vec![
        figure4_scaling(),
        batch_wall(BenchmarkId::MlpfRes50Mx),
        fault_ttt(),
        million_cell().truncate(MILLION_CELL_CI_PREFIX),
        partition_scaling(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_first_axis_outermost() {
        let spec = figure4_scaling();
        let cells = spec.cells();
        assert_eq!(cells.len(), 28);
        // First four cells: first workload at 1/2/4/8 GPUs.
        for (i, g) in [1u32, 2, 4, 8].iter().enumerate() {
            assert_eq!(cells[i].workload, Some(BenchmarkId::MlpfRes50Tf));
            assert_eq!(cells[i].gpus, Some(*g));
        }
        assert_eq!(cells[4].workload, Some(BenchmarkId::MlpfRes50Mx));
    }

    #[test]
    fn cell_at_matches_materialized_expansion() {
        for spec in registry() {
            let cells = spec.cells();
            assert_eq!(cells.len(), spec.len());
            for (i, cell) in cells.iter().enumerate() {
                assert_eq!(spec.cell_at(i), *cell, "{} cell {i}", spec.name);
            }
        }
    }

    #[test]
    fn truncation_caps_expansion_and_changes_identity() {
        let full = figure4_scaling();
        let cut = figure4_scaling().truncate(5);
        assert_eq!(full.len(), 28);
        assert_eq!(cut.len(), 5);
        assert_eq!(cut.cells(), full.cells()[..5].to_vec());
        // Truncation is part of the canonical identity...
        assert_ne!(full.canonical_bytes(), cut.canonical_bytes());
        // ...but an untruncated sweep spells exactly as before.
        assert!(!String::from_utf8(full.canonical_bytes()).unwrap().contains(";trunc="));
        assert!(String::from_utf8(cut.canonical_bytes()).unwrap().ends_with(";trunc=5"));
        // A cap wider than the grid is a no-op on the expansion.
        assert_eq!(figure4_scaling().truncate(1000).len(), 28);
    }

    #[test]
    fn million_cell_grid_is_million_scale() {
        let spec = million_cell();
        assert_eq!(spec.len(), 999_936);
        assert!(spec.len() >= 100_000, "the stress grid must be 10^5+ cells");
        // Decoding the far corner touches no other cell.
        let last = spec.cell_at(spec.len() - 1);
        assert_eq!(last.batch, Some(5952));
        assert_eq!(last.precision, Some(PrecisionPolicy::Fp32));
        assert_eq!(last.system, Some(SystemId::T640));
    }

    #[test]
    fn streamed_run_matches_in_memory_bytes() {
        let ctx = Ctx::new();
        let spec = fault_ttt();
        let expected = to_csv(&run_pooled(&Pool::with_workers(2), &ctx, &spec, None));
        let mut out = Vec::new();
        let summary =
            run_streamed(&Pool::with_workers(2), &Ctx::new(), &spec, None, &mut out, 4)
                .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert_eq!(summary.cells, spec.len());
        assert_eq!(summary.errors, 0);
        assert!(summary.peak_resident <= 4, "buffering exceeded the shard");
    }

    #[test]
    fn canonical_bytes_equal_iff_specs_equal() {
        let a = figure4_scaling().cells();
        for (i, x) in a.iter().enumerate() {
            for (j, y) in a.iter().enumerate() {
                assert_eq!(
                    x.canonical_bytes() == y.canonical_bytes(),
                    i == j,
                    "cells {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn float_axes_canonicalize_by_bits() {
        let mut a = CellSpec::empty(CellKind::ExpectedTtt);
        a.apply(AxisValue::MtbfHours(1.0));
        let mut b = CellSpec::empty(CellKind::ExpectedTtt);
        b.apply(AxisValue::MtbfHours(1.0 + f64::EPSILON));
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn outcome_encoding_round_trips_exactly() {
        let v = CellValue {
            values: vec![1.0 / 3.0, -0.0, 6.25e-3, f64::MAX, 42.0],
        };
        let ok: Result<CellValue, CellError> = Ok(v);
        assert_eq!(
            decode_outcome(CellKind::Training, 1, &encode_outcome(&ok)),
            Some(ok.clone())
        );
        let err: Result<CellValue, CellError> = Err(CellError {
            kind: "oom".to_string(),
            message: "replica needs 32 GiB but device has 16 GiB".to_string(),
            sim: None,
        });
        assert_eq!(
            decode_outcome(CellKind::Training, 1, &encode_outcome(&err)),
            Some(err)
        );
        assert_eq!(decode_outcome(CellKind::Training, 1, b"garbage"), None);
        // A replicated payload is 5 base + 6 run columns wide: it decodes
        // only at runs > 1, and a point payload only at runs == 1 — a
        // mismatched width is a cache miss, never a misread.
        let wide = CellValue {
            values: (0..11).map(f64::from).collect(),
        };
        let wide: Result<CellValue, CellError> = Ok(wide);
        let bytes = encode_outcome(&wide);
        assert_eq!(decode_outcome(CellKind::Training, 8, &bytes), Some(wide));
        assert_eq!(decode_outcome(CellKind::Training, 1, &bytes), None);
        assert_eq!(decode_outcome(CellKind::Training, 8, &encode_outcome(&ok)), None);
    }

    #[test]
    fn runs_knob_is_spelled_only_when_set() {
        let mut cell = figure4_scaling().cell_at(0);
        let plain = cell.canonical_bytes();
        assert!(!String::from_utf8(plain.clone()).unwrap().contains(";runs="));
        cell.runs = Some(8);
        let replicated = cell.canonical_bytes();
        assert!(String::from_utf8(replicated.clone()).unwrap().ends_with(";runs=8"));
        assert_ne!(plain, replicated, "run count is part of the cache identity");
        // The replication id strips the knob: the PRNG streams of a cell
        // are shared across run counts.
        assert_eq!(cell.replication_id(), plain);
    }

    #[test]
    fn replicated_training_cell_appends_run_stats_columns() {
        let ctx = Ctx::new().with_runs(8);
        let spec = figure4_scaling().cell_at(0);
        assert_eq!(effective_runs(&ctx, &spec), 8);
        let v = price_cell(&ctx, &spec).unwrap();
        let kind = CellKind::Training;
        assert_eq!(v.values().len(), kind.columns().len() + kind.run_columns().len());
        // Base columns are byte-identical to the single-run pricing.
        let point = price_cell(&Ctx::new(), &spec).unwrap();
        assert_eq!(&v.values()[..point.values().len()], point.values());
        let n = v.get_named(kind, 8, "runs");
        let median = v.get_named(kind, 8, "epochs_median");
        let p5 = v.get_named(kind, 8, "epochs_p5");
        let p95 = v.get_named(kind, 8, "epochs_p95");
        assert_eq!(n, 8.0);
        assert!(p5 <= median && median <= p95);
        assert!(
            v.get_named(kind, 8, "epochs_ci_lo") <= median
                && median <= v.get_named(kind, 8, "epochs_ci_hi")
        );
    }

    #[test]
    fn replicated_sweep_is_worker_invariant_and_replays_bitwise() {
        let spec = figure4_scaling();
        let a = to_csv(&run_serial(&Ctx::new().with_runs(8), &spec, None));
        let b = to_csv(&run_pooled(
            &Pool::with_workers(4),
            &Ctx::new().with_runs(8),
            &spec,
            None,
        ));
        assert_eq!(a, b, "replication draws are scheduling-invariant");
        assert!(a.lines().next().unwrap().ends_with(
            ",runs,epochs_median,epochs_p5,epochs_p95,epochs_ci_lo,epochs_ci_hi,error"
        ));
    }

    #[test]
    fn serial_and_pooled_runs_agree() {
        let ctx = Ctx::new();
        let spec = fault_ttt();
        let a = run_serial(&ctx, &spec, None);
        let b = run_pooled(&Pool::with_workers(4), &Ctx::new(), &spec, None);
        assert_eq!(to_csv(&a), to_csv(&b));
        assert_eq!(a.errors(), 0);
    }

    #[test]
    fn degraded_cell_caches_as_error_never_as_success() {
        let dir = std::env::temp_dir().join("mlperf_sweep_err_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open_with_epoch(&dir, 0xE).unwrap();
        let ctx = Ctx::new();
        let spec = batch_wall(BenchmarkId::MlpfRes50Mx);
        let cold = run_serial(&ctx, &spec, Some(&cache));
        assert!(cold.errors() > 0, "the batch wall must be hit");
        let warm = run_serial(&Ctx::new(), &spec, Some(&cache));
        assert_eq!(warm.disk_hits(), warm.cells.len(), "fully warm");
        for (c, w) in cold.cells.iter().zip(&warm.cells) {
            match (&c.outcome, &w.outcome) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!((&a.kind, &a.message), (&b.kind, &b.message)),
                _ => panic!("warm outcome changed status"),
            }
        }
        assert_eq!(to_csv(&cold), to_csv(&warm), "CSV bytes identical");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
