//! Persistent, content-addressed result cache (`artifacts/cache/`).
//!
//! Every entry is addressed by `fnv1a64(code_epoch ‖ canonical-spec-bytes)`
//! where the *code epoch* fingerprints the running binary: rebuild the
//! code and every old entry is invalidated (and garbage-collected the
//! next time the cache is opened). Canonical spec bytes come from the
//! sweep layer ([`super::CellSpec::canonical_bytes`], the experiments'
//! [`Experiment::spec_bytes`](crate::runner::Experiment::spec_bytes)),
//! so two requests share an entry exactly when their specs are
//! canonically equal.
//!
//! Entries are **self-verifying**: the payload is framed as
//!
//! ```text
//! magic (8) ‖ format version (4, LE) ‖ code epoch (8, LE)
//!   ‖ spec key (8, LE) ‖ payload length (8, LE)
//!   ‖ fnv1a64(payload) (8, LE) ‖ payload
//! ```
//!
//! so [`DiskCache::load`] detects torn, truncated, bit-flipped,
//! wrong-key, and stale-format entries, quarantines (deletes) them,
//! counts the event in [`DiskStats::corrupt`], and reports a miss — the
//! caller recomputes and the slot heals. Corruption can never change
//! output bytes, only warm-hit counts. Opening the cache also sweeps
//! orphaned `.tmp.*` files left by crashed writers; both sweeps are
//! idempotent removals, so a crash mid-GC is harmless.
//!
//! Policy, enforced by the callers in `report_gen` / `csv_export` /
//! `sweep`:
//!
//! * only deterministic payloads are stored (rendered section bytes, CSV
//!   bytes, sweep-cell results) — never wall-clock;
//! * a degraded cell is cached **as the error it produced**, never as a
//!   success; panics and retried/degraded experiment runs are not
//!   persisted at all;
//! * chaos runs (`MLPERF_CHAOS`) disable the cache entirely, so injected
//!   failures can never be masked by a warm entry. I/O chaos
//!   (`MLPERF_IO_CHAOS`) is the one deliberate exception: it keeps the
//!   cache *enabled* and sabotages its filesystem seam, because the
//!   property under test is that a sabotaged cache still yields
//!   byte-identical output.
//!
//! Escape hatches: `--no-cache` on the `repro` CLI, `MLPERF_CACHE=off` in
//! the environment. `MLPERF_CACHE_DIR` moves the directory,
//! `MLPERF_CACHE_EPOCH` pins the epoch (tests use this to exercise
//! invalidation deterministically).

use mlperf_testkit::hash::{fnv1a64, Fnv1a64};
use mlperf_testkit::iochaos::{IoChaosPlan, ReadFault, RenameFault, WriteFault};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable: `off` (or `0`) disables the persistent cache.
pub const CACHE_ENV: &str = "MLPERF_CACHE";
/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "MLPERF_CACHE_DIR";
/// Environment variable pinning the code epoch (u64; tests only).
pub const CACHE_EPOCH_ENV: &str = "MLPERF_CACHE_EPOCH";
/// Environment variable carrying a seeded I/O fault-injection spec
/// (see [`mlperf_testkit::iochaos::IoChaosSpec::parse`]).
pub const IO_CHAOS_ENV: &str = "MLPERF_IO_CHAOS";
/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "artifacts/cache";

/// Leading magic of a framed cache entry.
pub const ENTRY_MAGIC: &[u8; 8] = b"MLPFCA01";
/// On-disk entry format version (bump to invalidate by format).
pub const ENTRY_VERSION: u32 = 1;
/// Fixed frame-header length preceding the payload.
pub const ENTRY_HEADER_LEN: usize = 44;

/// Why a loaded entry was rejected and quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDefect {
    /// Shorter than the fixed header — a torn or truncated write.
    Truncated,
    /// The magic bytes are wrong — foreign bytes or a pre-framing entry.
    BadMagic,
    /// The format version is not the one this binary writes.
    StaleFormat,
    /// The frame's epoch field disagrees with this handle's epoch.
    WrongEpoch,
    /// The frame's spec-key field disagrees with the requested key —
    /// an entry copied or renamed onto the wrong address.
    WrongKey,
    /// The payload-length field disagrees with the bytes on disk.
    LengthMismatch,
    /// The payload checksum does not match — a bit flip or partial
    /// overwrite inside the payload.
    ChecksumMismatch,
}

impl EntryDefect {
    /// The defect's stable lowercase name (for traces and assertions).
    pub fn name(self) -> &'static str {
        match self {
            EntryDefect::Truncated => "truncated",
            EntryDefect::BadMagic => "bad-magic",
            EntryDefect::StaleFormat => "stale-format",
            EntryDefect::WrongEpoch => "wrong-epoch",
            EntryDefect::WrongKey => "wrong-key",
            EntryDefect::LengthMismatch => "length-mismatch",
            EntryDefect::ChecksumMismatch => "checksum-mismatch",
        }
    }
}

/// Frame `payload` for the entry addressed by `(epoch, key)`.
pub fn encode_entry(epoch: u64, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENTRY_HEADER_LEN + payload.len());
    out.extend_from_slice(ENTRY_MAGIC);
    out.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn frame_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte field"))
}

/// Verify the frame in `bytes` against the expected `(epoch, key)` and
/// return the payload slice.
///
/// # Errors
///
/// Returns the first [`EntryDefect`] found, checking in fixed order:
/// length, magic, version, epoch, key, payload length, checksum.
pub fn verify_entry(bytes: &[u8], epoch: u64, key: u64) -> Result<&[u8], EntryDefect> {
    if bytes.len() < ENTRY_HEADER_LEN {
        return Err(EntryDefect::Truncated);
    }
    if &bytes[0..8] != ENTRY_MAGIC {
        return Err(EntryDefect::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte field"));
    if version != ENTRY_VERSION {
        return Err(EntryDefect::StaleFormat);
    }
    if frame_u64(bytes, 12) != epoch {
        return Err(EntryDefect::WrongEpoch);
    }
    if frame_u64(bytes, 20) != key {
        return Err(EntryDefect::WrongKey);
    }
    let payload = &bytes[ENTRY_HEADER_LEN..];
    if frame_u64(bytes, 28) != payload.len() as u64 {
        return Err(EntryDefect::LengthMismatch);
    }
    if frame_u64(bytes, 36) != fnv1a64(payload) {
        return Err(EntryDefect::ChecksumMismatch);
    }
    Ok(payload)
}

/// Deterministic-by-construction counters of one cache handle's traffic.
/// These are *live* (a warm run reports hits where a cold run reported
/// misses), so they are surfaced on stderr and in tests — never in
/// report bytes, which must be identical cold vs warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries served from disk (frame verified).
    pub hits: u64,
    /// Lookups that found no valid entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Stale-epoch entries garbage-collected when the cache was opened.
    pub invalidated: u64,
    /// Entries that failed frame verification on load and were
    /// quarantined (each also counts as a miss).
    pub corrupt: u64,
    /// Stores that failed to land (write or rename error).
    pub store_failures: u64,
    /// Orphaned `.tmp.*` files from crashed writers swept at open.
    pub orphans_swept: u64,
}

impl DiskStats {
    /// Fraction of lookups served from disk.
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// A handle on the on-disk cache directory. Opening it garbage-collects
/// entries from other code epochs and sweeps orphaned temp files;
/// lookups verify the entry frame before trusting a byte; stores are
/// write-to-temp + rename. Counters are atomic, so lookups and stores
/// stay lock-free (the optional I/O chaos plan is the one mutex, and it
/// exists only in durability tests).
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidated: AtomicU64,
    corrupt: AtomicU64,
    store_failures: AtomicU64,
    orphans_swept: AtomicU64,
    io_chaos: Option<Mutex<IoChaosPlan>>,
}

/// Fingerprint of the running binary: FNV-1a over the executable's bytes
/// (falling back to the crate version if the executable is unreadable).
/// Computed once per process.
pub fn code_epoch() -> u64 {
    static EPOCH: OnceLock<u64> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        if let Some(e) = std::env::var(CACHE_EPOCH_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            return e;
        }
        std::env::current_exe()
            .ok()
            .and_then(|p| std::fs::read(p).ok())
            .map_or_else(
                || fnv1a64(env!("CARGO_PKG_VERSION").as_bytes()),
                |bytes| fnv1a64(&bytes),
            )
    })
}

/// Does `name` have the exact `{16 hex}-{16 hex}` stem shape every cache
/// artifact (entry or temp file) is written with?
fn has_entry_stem(name: &str) -> bool {
    name.len() > 33
        && name.as_bytes()[16] == b'-'
        && name.bytes().take(33).enumerate().all(|(i, b)| {
            if i == 16 {
                b == b'-'
            } else {
                b.is_ascii_hexdigit()
            }
        })
}

/// Is `name` a well-formed entry file name (`{16 hex}-{16 hex}.art`)?
fn is_entry_name(name: &str) -> bool {
    name.len() == 37 && has_entry_stem(name) && name.ends_with(".art")
}

/// Is `name` an in-flight temp file from some writer
/// (`{16 hex}-{16 hex}.tmp.{pid}`)?
fn is_tmp_name(name: &str) -> bool {
    has_entry_stem(name) && name[33..].starts_with(".tmp.")
}

impl DiskCache {
    /// Open (creating if needed) the cache at `dir` under the process's
    /// [`code_epoch`], garbage-collecting entries from other epochs and
    /// sweeping orphaned temp files.
    ///
    /// # Errors
    ///
    /// Propagates [`std::io::Error`] if the directory cannot be created
    /// or scanned.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        DiskCache::open_with_epoch(dir, code_epoch())
    }

    /// [`DiskCache::open`] under an explicit epoch (tests pin this to
    /// exercise key derivation and invalidation deterministically).
    ///
    /// Both sweeps — stale-epoch entries and orphaned `.tmp.*` files —
    /// are plain idempotent removals: a crash partway through leaves
    /// only files the next open removes again. Files that are not
    /// cache-shaped at all are left untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`std::io::Error`] if the directory cannot be created
    /// or scanned.
    pub fn open_with_epoch(dir: &Path, epoch: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let prefix = format!("{epoch:016x}-");
        let mut invalidated = 0;
        let mut orphans_swept = 0;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if is_tmp_name(&name) {
                // A writer crashed between temp-write and rename; the
                // published entry (if any) is intact, this is garbage.
                if std::fs::remove_file(entry.path()).is_ok() {
                    orphans_swept += 1;
                }
            } else if is_entry_name(&name) && !name.starts_with(&prefix) {
                // A different build wrote this; its numbers may no longer
                // be reproducible by the current code, so drop it.
                if std::fs::remove_file(entry.path()).is_ok() {
                    invalidated += 1;
                }
            }
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            epoch,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidated: AtomicU64::new(invalidated),
            corrupt: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            orphans_swept: AtomicU64::new(orphans_swept),
            io_chaos: None,
        })
    }

    /// Attach a seeded I/O fault-injection plan: every subsequent read,
    /// write, and rename consults the plan first. Durability tests use
    /// this to prove that a sabotaged cache still yields byte-identical
    /// output.
    #[must_use]
    pub fn with_io_chaos(mut self, plan: IoChaosPlan) -> DiskCache {
        self.io_chaos = Some(Mutex::new(plan));
        self
    }

    /// Open the cache as the environment dictates: `None` when
    /// `MLPERF_CACHE=off`/`0`, when a chaos run is configured
    /// (`MLPERF_CHAOS` — injected failures must never be masked by warm
    /// entries), or when the directory cannot be opened. Knobs are
    /// resolved through the typed [`Config`](crate::config::Config).
    pub fn from_env() -> Option<DiskCache> {
        DiskCache::from_config(&crate::config::Config::from_env())
    }

    /// Open the cache an explicitly resolved
    /// [`Config`](crate::config::Config) dictates (`None` when it says
    /// the cache is disabled, or when the directory cannot be opened).
    /// An `MLPERF_IO_CHAOS` spec in the config arms the handle's fault
    /// seam — the cache stays *enabled* under I/O chaos by design.
    pub fn from_config(config: &crate::config::Config) -> Option<DiskCache> {
        if !config.cache_enabled {
            return None;
        }
        match DiskCache::open(&config.cache_dir) {
            Ok(cache) => Some(match config.io_chaos {
                Some(spec) => cache.with_io_chaos(IoChaosPlan::from_spec(spec)),
                None => cache,
            }),
            Err(e) => {
                eprintln!(
                    "persistent cache disabled: {}: {e}",
                    config.cache_dir.display()
                );
                None
            }
        }
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The epoch this handle addresses entries under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The content address of `spec`: `fnv1a64(epoch ‖ spec)`.
    pub fn key(&self, spec: &[u8]) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.epoch);
        h.update(spec);
        h.finish()
    }

    fn path_for(&self, spec: &[u8]) -> PathBuf {
        self.dir
            .join(format!("{:016x}-{:016x}.art", self.epoch, self.key(spec)))
    }

    /// Read the raw entry file, through the fault seam if armed.
    fn read_entry(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        if let Some(chaos) = &self.io_chaos {
            let fault = chaos.lock().expect("io-chaos plan lock").decide_read();
            match fault {
                ReadFault::Unreadable => {
                    return Err(std::io::ErrorKind::PermissionDenied.into());
                }
                ReadFault::BitFlip { bit } => {
                    let mut bytes = std::fs::read(path)?;
                    if !bytes.is_empty() {
                        let bit = (bit as usize) % (bytes.len() * 8);
                        bytes[bit / 8] ^= 1 << (bit % 8);
                    }
                    return Ok(bytes);
                }
                ReadFault::Proceed => {}
            }
        }
        std::fs::read(path)
    }

    /// Load the entry for `spec`, counting a hit or a miss. The entry
    /// frame is verified end to end before any byte is trusted; an
    /// entry that fails verification is quarantined (deleted), counted
    /// in [`DiskStats::corrupt`], and reported as a miss so the caller
    /// recomputes and the slot heals.
    pub fn load(&self, spec: &[u8]) -> Option<Vec<u8>> {
        let path = self.path_for(spec);
        let Ok(bytes) = self.read_entry(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match verify_entry(&bytes, self.epoch, self.key(spec)) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            Err(_defect) => {
                let _ = std::fs::remove_file(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `bytes` under `spec`, best-effort (an unwritable cache never
    /// fails the run): frame, write to a temp file, then rename, so a
    /// concurrent reader sees either the old entry or the complete new
    /// one. Failures are counted in [`DiskStats::store_failures`].
    pub fn store(&self, spec: &[u8], bytes: &[u8]) {
        let path = self.path_for(spec);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let frame = encode_entry(self.epoch, self.key(spec), bytes);
        let (write_fault, rename_fault) = match &self.io_chaos {
            Some(chaos) => {
                let mut plan = chaos.lock().expect("io-chaos plan lock");
                (plan.decide_write(), plan.decide_rename())
            }
            None => (WriteFault::Proceed, RenameFault::Proceed),
        };
        match write_fault {
            WriteFault::Enospc => {
                // Nothing landed; cleanup ran.
                self.store_failures.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&tmp);
                return;
            }
            WriteFault::Short { keep } => {
                // Simulated power cut after the rename was durable but the
                // data was not: a torn frame lands at the final path and the
                // store *believes* it succeeded — load's verification is the
                // only line of defense.
                let keep = (keep as usize) % frame.len().max(1);
                if std::fs::write(&tmp, &frame[..keep]).is_ok()
                    && std::fs::rename(&tmp, &path).is_ok()
                {
                    self.stores.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.store_failures.fetch_add(1, Ordering::Relaxed);
                    let _ = std::fs::remove_file(&tmp);
                }
                return;
            }
            WriteFault::Proceed => {}
        }
        if let RenameFault::Torn = rename_fault {
            // Simulated crash between temp-write and rename: the temp file
            // stays behind as the orphan the next open sweeps.
            let _ = std::fs::write(&tmp, &frame);
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if std::fs::write(&tmp, &frame).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Remove the entry for `spec`, if present (tests exercise the
    /// evict-and-reproduce property with this).
    pub fn evict(&self, spec: &[u8]) -> bool {
        std::fs::remove_file(self.path_for(spec)).is_ok()
    }

    /// Entries currently on disk for this epoch. Only well-formed entry
    /// names (`{epoch:016x}-{16 hex}.art`) are counted — leftover temp
    /// files and foreign junk in the directory are not entries.
    pub fn entries(&self) -> usize {
        let prefix = format!("{:016x}-", self.epoch);
        std::fs::read_dir(&self.dir).map_or(0, |rd| {
            rd.filter_map(Result::ok)
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy();
                    is_entry_name(&n) && n.starts_with(&prefix)
                })
                .count()
        })
    }

    /// This handle's traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            orphans_swept: self.orphans_swept.load(Ordering::Relaxed),
        }
    }

    /// One stderr line of live counters. Never rendered into report
    /// bytes: a warm run's counters differ from a cold run's, and the
    /// report must be byte-identical across the two.
    pub fn summary(&self) -> String {
        let s = self.stats();
        format!(
            "persistent cache [{}]: {} hits / {} misses ({:.0}% hit rate), \
             {} stored, {} invalidated, {} corrupt quarantined, \
             {} store failures, {} orphan tmp swept\n",
            self.dir.display(),
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.stores,
            s.invalidated,
            s.corrupt,
            s.store_failures,
            s.orphans_swept,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlperf_diskcache_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = tmp("round_trip");
        let c = DiskCache::open_with_epoch(&dir, 7).unwrap();
        assert_eq!(c.load(b"spec-a"), None);
        c.store(b"spec-a", b"payload");
        assert_eq!(c.load(b"spec-a").as_deref(), Some(&b"payload"[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert_eq!((s.corrupt, s.store_failures, s.orphans_swept), (0, 0, 0));
        assert_eq!(c.entries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_entries_are_invalidated_on_open() {
        let dir = tmp("invalidate");
        let old = DiskCache::open_with_epoch(&dir, 1).unwrap();
        old.store(b"spec", b"old-build");
        let new = DiskCache::open_with_epoch(&dir, 2).unwrap();
        assert_eq!(new.stats().invalidated, 1);
        assert_eq!(new.load(b"spec"), None, "old-epoch entry must not hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mixes_epoch_and_spec() {
        let dir = tmp("keys");
        let a = DiskCache::open_with_epoch(&dir, 1).unwrap();
        let b = DiskCache::open_with_epoch(&dir, 2).unwrap();
        assert_ne!(a.key(b"x"), b.key(b"x"), "epoch must re-key entries");
        assert_ne!(a.key(b"x"), a.key(b"y"));
        assert_eq!(a.key(b"x"), a.key(b"x"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_removes_exactly_one_entry() {
        let dir = tmp("evict");
        let c = DiskCache::open_with_epoch(&dir, 3).unwrap();
        c.store(b"a", b"1");
        c.store(b"b", b"2");
        assert!(c.evict(b"a"));
        assert!(!c.evict(b"a"), "second evict finds nothing");
        assert_eq!(c.load(b"a"), None);
        assert_eq!(c.load(b"b").as_deref(), Some(&b"2"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_frame_round_trips_and_names_every_defect() {
        let frame = encode_entry(7, 9, b"payload");
        assert_eq!(verify_entry(&frame, 7, 9), Ok(&b"payload"[..]));
        // Truncation, at both header and payload granularity.
        assert_eq!(
            verify_entry(&frame[..10], 7, 9),
            Err(EntryDefect::Truncated)
        );
        assert_eq!(
            verify_entry(&frame[..frame.len() - 2], 7, 9),
            Err(EntryDefect::LengthMismatch)
        );
        // Foreign bytes.
        assert_eq!(
            verify_entry(b"not a cache entry at all, but long enough to scan", 7, 9),
            Err(EntryDefect::BadMagic)
        );
        // Stale format version.
        let mut stale = frame.clone();
        stale[8] ^= 0xff;
        assert_eq!(verify_entry(&stale, 7, 9), Err(EntryDefect::StaleFormat));
        // Wrong epoch / wrong key (entry copied onto the wrong address).
        assert_eq!(verify_entry(&frame, 8, 9), Err(EntryDefect::WrongEpoch));
        assert_eq!(verify_entry(&frame, 7, 10), Err(EntryDefect::WrongKey));
        // A bit flip anywhere in the payload.
        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(
            verify_entry(&flipped, 7, 9),
            Err(EntryDefect::ChecksumMismatch)
        );
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_counted() {
        let dir = tmp("quarantine");
        let c = DiskCache::open_with_epoch(&dir, 5).unwrap();
        c.store(b"spec", b"good bytes");
        let path = dir.join(format!("{:016x}-{:016x}.art", 5u64, c.key(b"spec")));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(c.load(b"spec"), None, "tampered entry must not hit");
        assert!(!path.exists(), "tampered entry must be quarantined");
        let s = c.stats();
        assert_eq!((s.corrupt, s.misses, s.hits), (1, 1, 0));
        // The slot heals: recompute, store, hit.
        c.store(b"spec", b"good bytes");
        assert_eq!(c.load(b"spec").as_deref(), Some(&b"good bytes"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_framing_entries_self_heal() {
        let dir = tmp("preframing");
        let c = DiskCache::open_with_epoch(&dir, 6).unwrap();
        // An entry written by the pre-framing code: raw payload bytes.
        let path = dir.join(format!("{:016x}-{:016x}.art", 6u64, c.key(b"spec")));
        std::fs::write(&path, b"raw unframed payload from an older format").unwrap();
        assert_eq!(c.load(b"spec"), None, "unframed entry must not be served");
        assert!(!path.exists());
        assert_eq!(c.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_tmp_files_are_swept_at_open() {
        let dir = tmp("orphans");
        let c = DiskCache::open_with_epoch(&dir, 4).unwrap();
        c.store(b"spec", b"entry");
        // A crashed writer's leftovers, plus foreign junk that is not ours.
        std::fs::write(
            dir.join(format!("{:016x}-{:016x}.tmp.12345", 4u64, c.key(b"spec"))),
            b"half-written",
        )
        .unwrap();
        std::fs::write(dir.join("README.txt"), b"not a cache file").unwrap();
        let reopened = DiskCache::open_with_epoch(&dir, 4).unwrap();
        let s = reopened.stats();
        assert_eq!((s.orphans_swept, s.invalidated), (1, 0));
        assert_eq!(reopened.entries(), 1, "the published entry survives");
        assert!(
            dir.join("README.txt").exists(),
            "files that are not cache-shaped are left alone"
        );
        assert_eq!(reopened.load(b"spec").as_deref(), Some(&b"entry"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_counts_only_well_formed_entry_names() {
        let dir = tmp("strict_names");
        let c = DiskCache::open_with_epoch(&dir, 0xab).unwrap();
        c.store(b"a", b"1");
        c.store(b"b", b"2");
        // None of these are entries, whatever their names suggest.
        let prefix = format!("{:016x}-", 0xabu64);
        std::fs::write(dir.join(format!("{prefix}0123456789abcdef.tmp.7")), b"x").unwrap();
        std::fs::write(dir.join(format!("{prefix}short.art")), b"x").unwrap();
        std::fs::write(dir.join(format!("{prefix}zzzzzzzzzzzzzzzz.art")), b"x").unwrap();
        std::fs::write(dir.join("junk.art"), b"x").unwrap();
        assert_eq!(c.entries(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_chaos_enospc_counts_store_failures() {
        let dir = tmp("chaos_enospc");
        let c = DiskCache::open_with_epoch(&dir, 9)
            .unwrap()
            .with_io_chaos(IoChaosPlan::new(1).with_write_rates(0.0, 1.0));
        c.store(b"spec", b"bytes");
        let s = c.stats();
        assert_eq!((s.stores, s.store_failures), (0, 1));
        assert_eq!(c.entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_chaos_torn_rename_leaves_a_sweepable_orphan() {
        let dir = tmp("chaos_torn");
        let c = DiskCache::open_with_epoch(&dir, 9)
            .unwrap()
            .with_io_chaos(IoChaosPlan::new(1).with_torn_rename(1.0));
        c.store(b"spec", b"bytes");
        assert_eq!(c.stats().store_failures, 1);
        assert_eq!(c.entries(), 0, "nothing was published");
        assert_eq!(c.load(b"spec"), None);
        let reopened = DiskCache::open_with_epoch(&dir, 9).unwrap();
        assert_eq!(reopened.stats().orphans_swept, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_chaos_short_write_is_caught_by_verification() {
        let dir = tmp("chaos_short");
        let c = DiskCache::open_with_epoch(&dir, 9)
            .unwrap()
            .with_io_chaos(IoChaosPlan::new(2).with_write_rates(1.0, 0.0));
        c.store(b"spec", b"a payload long enough that a prefix is plausible");
        // The torn frame landed at the final path claiming success …
        assert_eq!(c.stats().stores, 1);
        // … and load refuses to serve it.
        assert_eq!(c.load(b"spec"), None);
        assert_eq!(c.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_chaos_bit_flips_on_read_never_serve_corrupt_bytes() {
        let dir = tmp("chaos_flip");
        let c = DiskCache::open_with_epoch(&dir, 9)
            .unwrap()
            .with_io_chaos(IoChaosPlan::new(3).with_read_rates(0.0, 1.0));
        c.store(b"spec", b"bytes under test");
        // Every read comes back with one bit flipped somewhere in the
        // frame; whichever field it hits, verification must reject it.
        assert_eq!(c.load(b"spec"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.corrupt), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
