//! Persistent, content-addressed result cache (`artifacts/cache/`).
//!
//! Every entry is addressed by `fnv1a64(code_epoch ‖ canonical-spec-bytes)`
//! where the *code epoch* fingerprints the running binary: rebuild the
//! code and every old entry is invalidated (and garbage-collected the
//! next time the cache is opened). Canonical spec bytes come from the
//! sweep layer ([`super::CellSpec::canonical_bytes`], the experiments'
//! [`Experiment::spec_bytes`](crate::runner::Experiment::spec_bytes)),
//! so two requests share an entry exactly when their specs are
//! canonically equal.
//!
//! Policy, enforced by the callers in `report_gen` / `csv_export` /
//! `sweep`:
//!
//! * only deterministic payloads are stored (rendered section bytes, CSV
//!   bytes, sweep-cell results) — never wall-clock;
//! * a degraded cell is cached **as the error it produced**, never as a
//!   success; panics and retried/degraded experiment runs are not
//!   persisted at all;
//! * chaos runs (`MLPERF_CHAOS`) disable the cache entirely, so injected
//!   failures can never be masked by a warm entry.
//!
//! Escape hatches: `--no-cache` on the `repro` CLI, `MLPERF_CACHE=off` in
//! the environment. `MLPERF_CACHE_DIR` moves the directory,
//! `MLPERF_CACHE_EPOCH` pins the epoch (tests use this to exercise
//! invalidation deterministically).

use mlperf_testkit::hash::{fnv1a64, Fnv1a64};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable: `off` (or `0`) disables the persistent cache.
pub const CACHE_ENV: &str = "MLPERF_CACHE";
/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "MLPERF_CACHE_DIR";
/// Environment variable pinning the code epoch (u64; tests only).
pub const CACHE_EPOCH_ENV: &str = "MLPERF_CACHE_EPOCH";
/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "artifacts/cache";

/// Deterministic-by-construction counters of one cache handle's traffic.
/// These are *live* (a warm run reports hits where a cold run reported
/// misses), so they are surfaced on stderr and in tests — never in
/// report bytes, which must be identical cold vs warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Stale-epoch entries garbage-collected when the cache was opened.
    pub invalidated: u64,
}

impl DiskStats {
    /// Fraction of lookups served from disk.
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// A handle on the on-disk cache directory. Opening it garbage-collects
/// entries from other code epochs; lookups and stores are lock-free
/// (atomic counters, write-to-temp + rename stores).
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidated: AtomicU64,
}

/// Fingerprint of the running binary: FNV-1a over the executable's bytes
/// (falling back to the crate version if the executable is unreadable).
/// Computed once per process.
pub fn code_epoch() -> u64 {
    static EPOCH: OnceLock<u64> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        if let Some(e) = std::env::var(CACHE_EPOCH_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            return e;
        }
        std::env::current_exe()
            .ok()
            .and_then(|p| std::fs::read(p).ok())
            .map_or_else(
                || fnv1a64(env!("CARGO_PKG_VERSION").as_bytes()),
                |bytes| fnv1a64(&bytes),
            )
    })
}

impl DiskCache {
    /// Open (creating if needed) the cache at `dir` under the process's
    /// [`code_epoch`], garbage-collecting entries from other epochs.
    ///
    /// # Errors
    ///
    /// Propagates [`std::io::Error`] if the directory cannot be created
    /// or scanned.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        DiskCache::open_with_epoch(dir, code_epoch())
    }

    /// [`DiskCache::open`] under an explicit epoch (tests pin this to
    /// exercise key derivation and invalidation deterministically).
    ///
    /// # Errors
    ///
    /// Propagates [`std::io::Error`] if the directory cannot be created
    /// or scanned.
    pub fn open_with_epoch(dir: &Path, epoch: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let prefix = format!("{epoch:016x}-");
        let mut invalidated = 0;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".art") && !name.starts_with(&prefix) {
                // A different build wrote this; its numbers may no longer
                // be reproducible by the current code, so drop it.
                if std::fs::remove_file(entry.path()).is_ok() {
                    invalidated += 1;
                }
            }
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            epoch,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidated: AtomicU64::new(invalidated),
        })
    }

    /// Open the cache as the environment dictates: `None` when
    /// `MLPERF_CACHE=off`/`0`, when a chaos run is configured
    /// (`MLPERF_CHAOS` — injected failures must never be masked by warm
    /// entries), or when the directory cannot be opened. Knobs are
    /// resolved through the typed [`Config`](crate::config::Config).
    pub fn from_env() -> Option<DiskCache> {
        DiskCache::from_config(&crate::config::Config::from_env())
    }

    /// Open the cache an explicitly resolved
    /// [`Config`](crate::config::Config) dictates (`None` when it says
    /// the cache is disabled, or when the directory cannot be opened).
    pub fn from_config(config: &crate::config::Config) -> Option<DiskCache> {
        if !config.cache_enabled {
            return None;
        }
        match DiskCache::open(&config.cache_dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "persistent cache disabled: {}: {e}",
                    config.cache_dir.display()
                );
                None
            }
        }
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The epoch this handle addresses entries under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The content address of `spec`: `fnv1a64(epoch ‖ spec)`.
    pub fn key(&self, spec: &[u8]) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.epoch);
        h.update(spec);
        h.finish()
    }

    fn path_for(&self, spec: &[u8]) -> PathBuf {
        self.dir
            .join(format!("{:016x}-{:016x}.art", self.epoch, self.key(spec)))
    }

    /// Load the entry for `spec`, counting a hit or a miss.
    pub fn load(&self, spec: &[u8]) -> Option<Vec<u8>> {
        match std::fs::read(self.path_for(spec)) {
            Ok(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `bytes` under `spec`, best-effort (an unwritable cache never
    /// fails the run): write to a temp file, then rename, so a concurrent
    /// reader sees either the old entry or the complete new one.
    pub fn store(&self, spec: &[u8], bytes: &[u8]) {
        let path = self.path_for(spec);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Remove the entry for `spec`, if present (tests exercise the
    /// evict-and-reproduce property with this).
    pub fn evict(&self, spec: &[u8]) -> bool {
        std::fs::remove_file(self.path_for(spec)).is_ok()
    }

    /// Entries currently on disk for this epoch.
    pub fn entries(&self) -> usize {
        let prefix = format!("{:016x}-", self.epoch);
        std::fs::read_dir(&self.dir).map_or(0, |rd| {
            rd.filter_map(Result::ok)
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy();
                    n.starts_with(&prefix) && n.ends_with(".art")
                })
                .count()
        })
    }

    /// This handle's traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// One stderr line of live counters. Never rendered into report
    /// bytes: a warm run's counters differ from a cold run's, and the
    /// report must be byte-identical across the two.
    pub fn summary(&self) -> String {
        let s = self.stats();
        format!(
            "persistent cache [{}]: {} hits / {} misses ({:.0}% hit rate), \
             {} stored, {} invalidated\n",
            self.dir.display(),
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.stores,
            s.invalidated,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlperf_diskcache_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = tmp("round_trip");
        let c = DiskCache::open_with_epoch(&dir, 7).unwrap();
        assert_eq!(c.load(b"spec-a"), None);
        c.store(b"spec-a", b"payload");
        assert_eq!(c.load(b"spec-a").as_deref(), Some(&b"payload"[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert_eq!(c.entries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_entries_are_invalidated_on_open() {
        let dir = tmp("invalidate");
        let old = DiskCache::open_with_epoch(&dir, 1).unwrap();
        old.store(b"spec", b"old-build");
        let new = DiskCache::open_with_epoch(&dir, 2).unwrap();
        assert_eq!(new.stats().invalidated, 1);
        assert_eq!(new.load(b"spec"), None, "old-epoch entry must not hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mixes_epoch_and_spec() {
        let dir = tmp("keys");
        let a = DiskCache::open_with_epoch(&dir, 1).unwrap();
        let b = DiskCache::open_with_epoch(&dir, 2).unwrap();
        assert_ne!(a.key(b"x"), b.key(b"x"), "epoch must re-key entries");
        assert_ne!(a.key(b"x"), a.key(b"y"));
        assert_eq!(a.key(b"x"), a.key(b"x"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_removes_exactly_one_entry() {
        let dir = tmp("evict");
        let c = DiskCache::open_with_epoch(&dir, 3).unwrap();
        c.store(b"a", b"1");
        c.store(b"b", b"2");
        assert!(c.evict(b"a"));
        assert!(!c.evict(b"a"), "second evict finds nothing");
        assert_eq!(c.load(b"a"), None);
        assert_eq!(c.load(b"b").as_deref(), Some(&b"2"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
