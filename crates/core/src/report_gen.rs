//! One-shot markdown report generation (`repro --report FILE`).
//!
//! Assembles every regenerated artifact, the validation summary, and the
//! extension studies into a single self-contained markdown document — the
//! shape of an artifact-evaluation appendix. The experiments are scheduled
//! as a dependency DAG onto the [`runner`](crate::runner) pool with shared
//! memoization; the document is assembled in declaration order, so its
//! bytes are identical for any `MLPERF_JOBS` worker count.

use crate::report::Table;
use crate::runner::{
    self, CacheStats, Ctx, Experiment, ExecutorStats, ExperimentError, Pool, ResilienceConfig,
};
use crate::sweep::{DiskCache, DiskStats};
use std::time::Duration;

/// How many of the scheduled experiments belong to the "Paper artifacts"
/// section (Tables I–V and Figures 1–5, in [`runner::all_experiments`]
/// order); the next is the validation scorecard and the rest are the
/// extension studies.
const PAPER_ARTIFACTS: usize = 10;

/// Build the full report as a markdown string, with pool and worker count
/// taken from the environment (`MLPERF_JOBS`). Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build() -> Result<String, ExperimentError> {
    build_with(&Pool::from_env(), &Ctx::new()).map(|(md, _)| md)
}

/// Build the full report on an explicit pool and context, returning the
/// executor's instrumentation alongside the markdown. The markdown bytes
/// depend only on the simulated numbers — never on the pool size or the
/// wall-clock — which is what the golden-file and parity tests pin down.
/// Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build_with(pool: &Pool, ctx: &Ctx) -> Result<(String, ExecutorStats), ExperimentError> {
    // Table I cross-checks six other artifacts; before the shared artifact
    // store existed, including it would have doubled the report's cost, so
    // it was left out. Under the executor it reuses the stored results and
    // the complete artifact set ships in one document.
    let experiments = runner::all_experiments();
    let execution = runner::execute(pool, ctx, &experiments)?;
    let stats = execution.stats.clone();
    Ok((assemble(&execution, None), stats))
}

/// Build the full report with failure isolation: failed experiments
/// contribute a deterministic placeholder section plus a row in the
/// failure appendix, and every healthy section's bytes are identical to a
/// fully-healthy run. Inspect [`runner::Execution::degraded`] on the
/// returned execution to decide the exit status.
pub fn build_resilient(
    pool: &Pool,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
) -> (String, runner::Execution) {
    let experiments = runner::all_experiments();
    let execution = runner::execute_resilient(pool, ctx, &experiments, cfg);
    (assemble(&execution, None), execution)
}

/// The persistent-cache entry spec of one experiment's rendered section:
/// `report-section:` plus the experiment's canonical
/// [`spec_bytes`](Experiment::spec_bytes) (public so the cache test
/// battery can address individual sections for eviction).
pub fn section_spec(e: &dyn Experiment) -> Vec<u8> {
    let mut s = b"report-section:".to_vec();
    s.extend_from_slice(&e.spec_bytes());
    s
}

/// The manifest's entry spec: the concatenation of every experiment's
/// spec bytes, so adding, removing, reordering, or re-parameterizing any
/// experiment retires the whole warm path at once (public for the cache
/// test battery).
pub fn manifest_spec(experiments: &[&dyn Experiment]) -> Vec<u8> {
    let mut s = b"report-manifest:".to_vec();
    for e in experiments {
        s.extend_from_slice(&e.spec_bytes());
        s.push(b'|');
    }
    s
}

/// Serialize the cold run's memo counters into the manifest, so a warm
/// run can render the *same* execution appendix without recomputing
/// anything (the counters are provenance of the cold run, and the
/// appendix stays byte-identical by construction).
fn encode_stats(c: &CacheStats) -> Vec<u8> {
    format!(
        "stats v1\nstep_hits={}\nstep_misses={}\nkernel_hits={}\nkernel_misses={}\nuncached={}\n",
        c.step_hits, c.step_misses, c.kernel_hits, c.kernel_misses, c.uncached
    )
    .into_bytes()
}

/// Parse a manifest payload; `None` (manifest treated as absent, forcing
/// a full cold run) on any malformed byte.
fn decode_stats(bytes: &[u8]) -> Option<CacheStats> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "stats v1" {
        return None;
    }
    let mut field = |name: &str| -> Option<u64> {
        let line = lines.next()?;
        line.strip_prefix(name)?.strip_prefix('=')?.parse().ok()
    };
    Some(CacheStats {
        step_hits: field("step_hits")?,
        step_misses: field("step_misses")?,
        kernel_hits: field("kernel_hits")?,
        kernel_misses: field("kernel_misses")?,
        uncached: field("uncached")?,
    })
}

/// [`build_resilient`] through the persistent result cache.
///
/// - `cache == None` (disabled via `--no-cache` / `MLPERF_CACHE=off`, or
///   chaos injection active): plain [`build_resilient`].
/// - Manifest present and every section on disk: the report is assembled
///   entirely from cached sections — zero experiment recomputation — and
///   the appendix renders the manifest's cold-run memo counters, so the
///   bytes are identical to the cold run's.
/// - Manifest present, some sections missing (evicted): only the missing
///   experiments re-run; their healthy sections are re-stored. The
///   manifest is never rewritten by a partial run.
/// - Manifest absent: full cold run. Sections and manifest are stored
///   only when the run is fully healthy with no retries — a degraded or
///   flaky run never poisons the warm path.
pub fn build_cached(
    pool: &Pool,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
    cache: Option<&DiskCache>,
) -> (String, runner::Execution) {
    let Some(cache) = cache else {
        return build_resilient(pool, ctx, cfg);
    };
    let experiments = runner::all_experiments();
    let man_spec = manifest_spec(&experiments);
    let Some(manifest) = cache.load(&man_spec).and_then(|b| decode_stats(&b)) else {
        let execution = runner::execute_resilient(pool, ctx, &experiments, cfg);
        if execution.failures.is_empty() && execution.recoveries.is_empty() {
            for (e, r) in experiments.iter().zip(&execution.reports) {
                cache.store(&section_spec(*e), r.rendered.as_bytes());
            }
            cache.store(&man_spec, &encode_stats(&execution.stats.cache));
        }
        return (assemble(&execution, Some(cache.stats())), execution);
    };

    let cached: Vec<Option<String>> = experiments
        .iter()
        .map(|e| {
            cache
                .load(&section_spec(*e))
                .and_then(|b| String::from_utf8(b).ok())
        })
        .collect();
    let missing: Vec<usize> = (0..experiments.len()).filter(|&i| cached[i].is_none()).collect();

    // Re-run only the evicted experiments (none, when fully warm). Their
    // dependencies outside the subset fall back to the memoized context.
    let sub_exec = if missing.is_empty() {
        None
    } else {
        let subset: Vec<&dyn Experiment> = missing.iter().map(|&i| experiments[i]).collect();
        let sub = runner::execute_resilient(pool, ctx, &subset, cfg);
        for (&i, r) in missing.iter().zip(&sub.reports) {
            if r.error.is_none() {
                cache.store(&section_spec(experiments[i]), r.rendered.as_bytes());
            }
        }
        Some(sub)
    };

    let mut fresh = sub_exec
        .as_ref()
        .map(|s| s.reports.iter())
        .into_iter()
        .flatten();
    let reports: Vec<runner::ExperimentReport> = experiments
        .iter()
        .zip(cached)
        .map(|(e, c)| match c {
            Some(rendered) => runner::ExperimentReport {
                id: e.id(),
                title: e.title(),
                deps: e.deps(),
                rendered,
                error: None,
                wall: Duration::ZERO,
            },
            None => fresh.next().expect("one fresh report per missing section").clone(),
        })
        .collect();
    let execution = runner::Execution {
        reports,
        failures: sub_exec.as_ref().map(|s| s.failures.clone()).unwrap_or_default(),
        recoveries: sub_exec.as_ref().map(|s| s.recoveries.clone()).unwrap_or_default(),
        stats: ExecutorStats {
            workers: pool.workers(),
            total_wall: sub_exec.as_ref().map(|s| s.stats.total_wall).unwrap_or(Duration::ZERO),
            per_experiment: sub_exec.map(|s| s.stats.per_experiment).unwrap_or_default(),
            // The cold run's counters, from the manifest: the appendix is
            // provenance of the experiments' numbers, not of this process,
            // so warm and cold runs render identical bytes.
            cache: manifest,
        },
    };
    (assemble(&execution, Some(cache.stats())), execution)
}

/// Assemble the markdown from an execution (healthy or degraded). The
/// failure appendix is appended only when there is something to report,
/// so healthy-run bytes are untouched by the resilience layer. `disk` is
/// the persistent cache's counters *after* this run's stores (absent
/// when the cache is disabled); only its degradation counter can reach
/// the document, and only when nonzero.
fn assemble(execution: &runner::Execution, disk: Option<DiskStats>) -> String {
    let rendered: Vec<&str> = execution
        .reports
        .iter()
        .map(|r| r.rendered.as_str())
        .collect();

    let mut md = String::from(
        "# Reproduction report — Demystifying the MLPerf Training Benchmark Suite\n\n\
         Regenerated end-to-end on the simulated substrate. Sections mirror the\n\
         paper's tables and figures; extension studies and validation follow.\n\n",
    );

    md.push_str("## Paper artifacts\n\n");
    md.push_str("```text\n");
    md.push_str(&rendered[..PAPER_ARTIFACTS].join("\n"));
    md.push_str("```\n\n");

    md.push_str("## Validation\n\n```text\n");
    md.push_str(rendered[PAPER_ARTIFACTS]);
    md.push_str("```\n\n");

    md.push_str("## Extension studies\n\n```text\n");
    md.push_str(&rendered[PAPER_ARTIFACTS + 1..].join("\n"));
    md.push_str("```\n");

    md.push('\n');
    md.push_str(&appendix(execution, disk));
    md.push_str(&failure_appendix(execution));
    md
}

/// Render the failure appendix: one row per failed experiment (error
/// kind, retry count, recorded backoff draws, retry stream) plus the
/// recovered-after-retry table. Empty string for a fully-healthy,
/// no-retry run — the appendix never perturbs healthy-run bytes.
fn failure_appendix(execution: &runner::Execution) -> String {
    if execution.failures.is_empty() && execution.recoveries.is_empty() {
        return String::new();
    }
    let backoffs = |retries: &[runner::RetryEvent]| -> String {
        if retries.is_empty() {
            "-".to_string()
        } else {
            retries
                .iter()
                .map(|r| r.backoff_ms.to_string())
                .collect::<Vec<_>>()
                .join("+")
        }
    };
    let mut md = String::from(
        "\n## Appendix: failures\n\n\
         Degraded mode: the experiments below produced no artifact. Every\n\
         unaffected section above is byte-identical to a fully-healthy run;\n\
         retry backoff is drawn from the seeded per-experiment stream and\n\
         recorded (never slept), so this appendix replays byte-identically.\n\n",
    );
    md.push_str("```text\n");
    if !execution.failures.is_empty() {
        let mut t = Table::new(
            "Failure appendix",
            ["Experiment", "Error", "Retries", "Backoff (ms)", "Retry stream"],
        );
        for f in &execution.failures {
            t.add_row([
                f.id.to_string(),
                f.error.to_string(),
                f.retries.len().to_string(),
                backoffs(&f.retries),
                format!("{:#018x}", f.stream),
            ]);
        }
        md.push_str(&t.to_string());
    }
    if !execution.recoveries.is_empty() {
        let mut t = Table::new(
            "Recovered after retry",
            ["Experiment", "Retries", "Backoff (ms)", "Retry stream"],
        );
        for r in &execution.recoveries {
            t.add_row([
                r.id.to_string(),
                r.retries.len().to_string(),
                backoffs(&r.retries),
                format!("{:#018x}", r.stream),
            ]);
        }
        md.push_str(&t.to_string());
    }
    md.push_str("```\n");
    md
}

/// The deterministic execution appendix: the experiment DAG and the cache
/// counters. Wall-clock never appears here (it is nondeterministic and
/// lives in [`ExecutorStats`], printed to stderr / the bench JSON).
fn appendix(execution: &runner::Execution, disk: Option<DiskStats>) -> String {
    let mut md = String::from(
        "## Appendix: execution\n\n\
         Experiments run as a dependency DAG on a work-stealing pool\n\
         (`MLPERF_JOBS` workers) sharing one memoized simulation cache;\n\
         output is assembled in declaration order, so this document is\n\
         byte-identical for any worker count.\n\n",
    );
    md.push_str("```text\n");
    let mut t = Table::new(
        "Experiment DAG (declaration order)",
        ["Experiment", "Title", "Depends on"],
    );
    for r in &execution.reports {
        t.add_row([
            r.id.to_string(),
            r.title.to_string(),
            if r.deps.is_empty() {
                "-".to_string()
            } else {
                r.deps.join(", ")
            },
        ]);
    }
    md.push_str(&t.to_string());
    let c = execution.stats.cache;
    md.push_str(&format!(
        "simulation-point cache: {} training-step hits / {} misses; \
         {} kernel hits / {} misses\n\
         hit rate: {:.1}% over {} cacheable requests; {} uncached \
         (perturbed-knob) runs\n",
        c.step_hits,
        c.step_misses,
        c.kernel_hits,
        c.kernel_misses,
        c.hit_rate() * 100.0,
        c.requests(),
        c.uncached,
    ));
    // Static description of the persistent result cache (a pure function
    // of the experiment set, so cold, warm, and cache-disabled runs all
    // render the same bytes; the *live* hit/miss counters of this process
    // go to stderr, never into the document).
    md.push_str(&format!(
        "persistent result cache: {} rendered sections + 1 manifest, keyed by\n\
         fnv1a64(code_epoch || canonical spec bytes) under artifacts/cache/;\n\
         a warm `repro --report` run replays every section from disk with zero\n\
         experiment recomputation (escape hatches: --no-cache, MLPERF_CACHE=off)\n",
        execution.reports.len(),
    ));
    // Storage degradation is the one cache counter allowed into the
    // document, and only when nonzero: every healthy run renders zero
    // failures and therefore no line (cold == warm == no-cache bytes),
    // while a run on broken storage reports it — reproducibly, because a
    // deterministic failure source (full disk, seeded I/O chaos) fails
    // the same stores on every run.
    if let Some(d) = disk {
        if d.store_failures > 0 {
            md.push_str(&format!(
                "persistent-cache degradation: {} failed store(s); affected \
                 entries were recomputed, not served (output bytes unaffected)\n",
                d.store_failures,
            ));
        }
    }
    md.push_str("```\n");
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let md = build().unwrap();
        for needle in [
            "# Reproduction report",
            "Table I:",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "## Validation",
            "Sensitivity",
            "Cluster study",
            "Energy & cost",
            "Storage staging",
            "Batch-size sweep",
            "Fault study",
            "daly-optimal",
            "## Appendix: execution",
            "hit rate:",
        ] {
            assert!(md.contains(needle), "report missing: {needle}");
        }
        assert!(md.len() > 10_000, "report suspiciously short: {}", md.len());
    }

    #[test]
    fn report_shares_points_across_experiments() {
        // The whole point of the executor: the full report answers a large
        // share of its simulation requests from the memo cache.
        let ctx = Ctx::new();
        let (_, stats) = build_with(&Pool::with_workers(1), &ctx).unwrap();
        assert!(
            stats.cache.hits() > 0,
            "full report produced no cache hits: {:?}",
            stats.cache
        );
        assert!(
            stats.cache.hit_rate() > 0.3,
            "hit rate suspiciously low: {:.2}",
            stats.cache.hit_rate()
        );
    }
}
