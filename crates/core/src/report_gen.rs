//! One-shot markdown report generation (`repro --report FILE`).
//!
//! Assembles every regenerated artifact, the validation summary, and the
//! extension studies into a single self-contained markdown document — the
//! shape of an artifact-evaluation appendix. The experiments are scheduled
//! as a dependency DAG onto the [`runner`](crate::runner) pool with shared
//! memoization; the document is assembled in declaration order, so its
//! bytes are identical for any `MLPERF_JOBS` worker count.

use crate::report::Table;
use crate::runner::{self, Ctx, ExecutorStats, Pool};
use mlperf_sim::SimError;

/// How many of the scheduled experiments belong to the "Paper artifacts"
/// section (Tables I–V and Figures 1–5, in [`runner::all_experiments`]
/// order); the next is the validation scorecard and the rest are the
/// extension studies.
const PAPER_ARTIFACTS: usize = 10;

/// Build the full report as a markdown string, with pool and worker count
/// taken from the environment (`MLPERF_JOBS`).
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
pub fn build() -> Result<String, SimError> {
    build_with(&Pool::from_env(), &Ctx::new()).map(|(md, _)| md)
}

/// Build the full report on an explicit pool and context, returning the
/// executor's instrumentation alongside the markdown. The markdown bytes
/// depend only on the simulated numbers — never on the pool size or the
/// wall-clock — which is what the golden-file and parity tests pin down.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
pub fn build_with(pool: &Pool, ctx: &Ctx) -> Result<(String, ExecutorStats), SimError> {
    // Table I cross-checks six other artifacts; before the shared artifact
    // store existed, including it would have doubled the report's cost, so
    // it was left out. Under the executor it reuses the stored results and
    // the complete artifact set ships in one document.
    let experiments = runner::all_experiments();
    let execution = runner::execute(pool, ctx, &experiments)?;
    let rendered: Vec<&str> = execution
        .reports
        .iter()
        .map(|r| r.rendered.as_str())
        .collect();

    let mut md = String::from(
        "# Reproduction report — Demystifying the MLPerf Training Benchmark Suite\n\n\
         Regenerated end-to-end on the simulated substrate. Sections mirror the\n\
         paper's tables and figures; extension studies and validation follow.\n\n",
    );

    md.push_str("## Paper artifacts\n\n");
    md.push_str("```text\n");
    md.push_str(&rendered[..PAPER_ARTIFACTS].join("\n"));
    md.push_str("```\n\n");

    md.push_str("## Validation\n\n```text\n");
    md.push_str(rendered[PAPER_ARTIFACTS]);
    md.push_str("```\n\n");

    md.push_str("## Extension studies\n\n```text\n");
    md.push_str(&rendered[PAPER_ARTIFACTS + 1..].join("\n"));
    md.push_str("```\n");

    md.push('\n');
    md.push_str(&appendix(&execution));

    Ok((md, execution.stats))
}

/// The deterministic execution appendix: the experiment DAG and the cache
/// counters. Wall-clock never appears here (it is nondeterministic and
/// lives in [`ExecutorStats`], printed to stderr / the bench JSON).
fn appendix(execution: &runner::Execution) -> String {
    let mut md = String::from(
        "## Appendix: execution\n\n\
         Experiments run as a dependency DAG on a work-stealing pool\n\
         (`MLPERF_JOBS` workers) sharing one memoized simulation cache;\n\
         output is assembled in declaration order, so this document is\n\
         byte-identical for any worker count.\n\n",
    );
    md.push_str("```text\n");
    let mut t = Table::new(
        "Experiment DAG (declaration order)",
        ["Experiment", "Title", "Depends on"],
    );
    for r in &execution.reports {
        t.add_row([
            r.id.to_string(),
            r.title.to_string(),
            if r.deps.is_empty() {
                "-".to_string()
            } else {
                r.deps.join(", ")
            },
        ]);
    }
    md.push_str(&t.to_string());
    let c = execution.stats.cache;
    md.push_str(&format!(
        "simulation-point cache: {} training-step hits / {} misses; \
         {} kernel hits / {} misses\n\
         hit rate: {:.1}% over {} cacheable requests; {} uncached \
         (perturbed-knob) runs\n",
        c.step_hits,
        c.step_misses,
        c.kernel_hits,
        c.kernel_misses,
        c.hit_rate() * 100.0,
        c.requests(),
        c.uncached,
    ));
    md.push_str("```\n");
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let md = build().unwrap();
        for needle in [
            "# Reproduction report",
            "Table I:",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "## Validation",
            "Sensitivity",
            "Cluster study",
            "Energy & cost",
            "Storage staging",
            "Batch-size sweep",
            "Fault study",
            "daly-optimal",
            "## Appendix: execution",
            "hit rate:",
        ] {
            assert!(md.contains(needle), "report missing: {needle}");
        }
        assert!(md.len() > 10_000, "report suspiciously short: {}", md.len());
    }

    #[test]
    fn report_shares_points_across_experiments() {
        // The whole point of the executor: the full report answers a large
        // share of its simulation requests from the memo cache.
        let ctx = Ctx::new();
        let (_, stats) = build_with(&Pool::with_workers(1), &ctx).unwrap();
        assert!(
            stats.cache.hits() > 0,
            "full report produced no cache hits: {:?}",
            stats.cache
        );
        assert!(
            stats.cache.hit_rate() > 0.3,
            "hit rate suspiciously low: {:.2}",
            stats.cache.hit_rate()
        );
    }
}
