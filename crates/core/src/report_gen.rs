//! One-shot markdown report generation (`repro --report FILE`).
//!
//! Assembles every regenerated artifact, the validation summary, and the
//! extension studies into a single self-contained markdown document — the
//! shape of an artifact-evaluation appendix. The experiments are scheduled
//! as a dependency DAG onto the [`runner`](crate::runner) pool with shared
//! memoization; the document is assembled in declaration order, so its
//! bytes are identical for any `MLPERF_JOBS` worker count.

use crate::report::Table;
use crate::runner::{self, Ctx, ExecutorStats, ExperimentError, Pool, ResilienceConfig};

/// How many of the scheduled experiments belong to the "Paper artifacts"
/// section (Tables I–V and Figures 1–5, in [`runner::all_experiments`]
/// order); the next is the validation scorecard and the rest are the
/// extension studies.
const PAPER_ARTIFACTS: usize = 10;

/// Build the full report as a markdown string, with pool and worker count
/// taken from the environment (`MLPERF_JOBS`). Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build() -> Result<String, ExperimentError> {
    build_with(&Pool::from_env(), &Ctx::new()).map(|(md, _)| md)
}

/// Build the full report on an explicit pool and context, returning the
/// executor's instrumentation alongside the markdown. The markdown bytes
/// depend only on the simulated numbers — never on the pool size or the
/// wall-clock — which is what the golden-file and parity tests pin down.
/// Strict (fail-fast).
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from the underlying
/// experiments.
pub fn build_with(pool: &Pool, ctx: &Ctx) -> Result<(String, ExecutorStats), ExperimentError> {
    // Table I cross-checks six other artifacts; before the shared artifact
    // store existed, including it would have doubled the report's cost, so
    // it was left out. Under the executor it reuses the stored results and
    // the complete artifact set ships in one document.
    let experiments = runner::all_experiments();
    let execution = runner::execute(pool, ctx, &experiments)?;
    let stats = execution.stats.clone();
    Ok((assemble(&execution), stats))
}

/// Build the full report with failure isolation: failed experiments
/// contribute a deterministic placeholder section plus a row in the
/// failure appendix, and every healthy section's bytes are identical to a
/// fully-healthy run. Inspect [`runner::Execution::degraded`] on the
/// returned execution to decide the exit status.
pub fn build_resilient(
    pool: &Pool,
    ctx: &Ctx,
    cfg: &ResilienceConfig,
) -> (String, runner::Execution) {
    let experiments = runner::all_experiments();
    let execution = runner::execute_resilient(pool, ctx, &experiments, cfg);
    (assemble(&execution), execution)
}

/// Assemble the markdown from an execution (healthy or degraded). The
/// failure appendix is appended only when there is something to report,
/// so healthy-run bytes are untouched by the resilience layer.
fn assemble(execution: &runner::Execution) -> String {
    let rendered: Vec<&str> = execution
        .reports
        .iter()
        .map(|r| r.rendered.as_str())
        .collect();

    let mut md = String::from(
        "# Reproduction report — Demystifying the MLPerf Training Benchmark Suite\n\n\
         Regenerated end-to-end on the simulated substrate. Sections mirror the\n\
         paper's tables and figures; extension studies and validation follow.\n\n",
    );

    md.push_str("## Paper artifacts\n\n");
    md.push_str("```text\n");
    md.push_str(&rendered[..PAPER_ARTIFACTS].join("\n"));
    md.push_str("```\n\n");

    md.push_str("## Validation\n\n```text\n");
    md.push_str(rendered[PAPER_ARTIFACTS]);
    md.push_str("```\n\n");

    md.push_str("## Extension studies\n\n```text\n");
    md.push_str(&rendered[PAPER_ARTIFACTS + 1..].join("\n"));
    md.push_str("```\n");

    md.push('\n');
    md.push_str(&appendix(execution));
    md.push_str(&failure_appendix(execution));
    md
}

/// Render the failure appendix: one row per failed experiment (error
/// kind, retry count, recorded backoff draws, retry stream) plus the
/// recovered-after-retry table. Empty string for a fully-healthy,
/// no-retry run — the appendix never perturbs healthy-run bytes.
fn failure_appendix(execution: &runner::Execution) -> String {
    if execution.failures.is_empty() && execution.recoveries.is_empty() {
        return String::new();
    }
    let backoffs = |retries: &[runner::RetryEvent]| -> String {
        if retries.is_empty() {
            "-".to_string()
        } else {
            retries
                .iter()
                .map(|r| r.backoff_ms.to_string())
                .collect::<Vec<_>>()
                .join("+")
        }
    };
    let mut md = String::from(
        "\n## Appendix: failures\n\n\
         Degraded mode: the experiments below produced no artifact. Every\n\
         unaffected section above is byte-identical to a fully-healthy run;\n\
         retry backoff is drawn from the seeded per-experiment stream and\n\
         recorded (never slept), so this appendix replays byte-identically.\n\n",
    );
    md.push_str("```text\n");
    if !execution.failures.is_empty() {
        let mut t = Table::new(
            "Failure appendix",
            ["Experiment", "Error", "Retries", "Backoff (ms)", "Retry stream"],
        );
        for f in &execution.failures {
            t.add_row([
                f.id.to_string(),
                f.error.to_string(),
                f.retries.len().to_string(),
                backoffs(&f.retries),
                format!("{:#018x}", f.stream),
            ]);
        }
        md.push_str(&t.to_string());
    }
    if !execution.recoveries.is_empty() {
        let mut t = Table::new(
            "Recovered after retry",
            ["Experiment", "Retries", "Backoff (ms)", "Retry stream"],
        );
        for r in &execution.recoveries {
            t.add_row([
                r.id.to_string(),
                r.retries.len().to_string(),
                backoffs(&r.retries),
                format!("{:#018x}", r.stream),
            ]);
        }
        md.push_str(&t.to_string());
    }
    md.push_str("```\n");
    md
}

/// The deterministic execution appendix: the experiment DAG and the cache
/// counters. Wall-clock never appears here (it is nondeterministic and
/// lives in [`ExecutorStats`], printed to stderr / the bench JSON).
fn appendix(execution: &runner::Execution) -> String {
    let mut md = String::from(
        "## Appendix: execution\n\n\
         Experiments run as a dependency DAG on a work-stealing pool\n\
         (`MLPERF_JOBS` workers) sharing one memoized simulation cache;\n\
         output is assembled in declaration order, so this document is\n\
         byte-identical for any worker count.\n\n",
    );
    md.push_str("```text\n");
    let mut t = Table::new(
        "Experiment DAG (declaration order)",
        ["Experiment", "Title", "Depends on"],
    );
    for r in &execution.reports {
        t.add_row([
            r.id.to_string(),
            r.title.to_string(),
            if r.deps.is_empty() {
                "-".to_string()
            } else {
                r.deps.join(", ")
            },
        ]);
    }
    md.push_str(&t.to_string());
    let c = execution.stats.cache;
    md.push_str(&format!(
        "simulation-point cache: {} training-step hits / {} misses; \
         {} kernel hits / {} misses\n\
         hit rate: {:.1}% over {} cacheable requests; {} uncached \
         (perturbed-knob) runs\n",
        c.step_hits,
        c.step_misses,
        c.kernel_hits,
        c.kernel_misses,
        c.hit_rate() * 100.0,
        c.requests(),
        c.uncached,
    ));
    md.push_str("```\n");
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let md = build().unwrap();
        for needle in [
            "# Reproduction report",
            "Table I:",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "## Validation",
            "Sensitivity",
            "Cluster study",
            "Energy & cost",
            "Storage staging",
            "Batch-size sweep",
            "Fault study",
            "daly-optimal",
            "## Appendix: execution",
            "hit rate:",
        ] {
            assert!(md.contains(needle), "report missing: {needle}");
        }
        assert!(md.len() > 10_000, "report suspiciously short: {}", md.len());
    }

    #[test]
    fn report_shares_points_across_experiments() {
        // The whole point of the executor: the full report answers a large
        // share of its simulation requests from the memo cache.
        let ctx = Ctx::new();
        let (_, stats) = build_with(&Pool::with_workers(1), &ctx).unwrap();
        assert!(
            stats.cache.hits() > 0,
            "full report produced no cache hits: {:?}",
            stats.cache
        );
        assert!(
            stats.cache.hit_rate() > 0.3,
            "hit rate suspiciously low: {:.2}",
            stats.cache.hit_rate()
        );
    }
}
