//! One-shot markdown report generation (`repro --report FILE`).
//!
//! Assembles every regenerated artifact, the validation summary, and the
//! extension studies into a single self-contained markdown document — the
//! shape of an artifact-evaluation appendix.

use crate::experiments::{
    batch_sweep, cluster_study, energy_cost, figure1, figure2, figure3, figure4, figure5,
    storage_study, table2, table3, table4, table5,
};
use crate::{sensitivity, validation, BenchmarkId};
use mlperf_sim::SimError;

/// Build the full report as a markdown string.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying experiments.
pub fn build() -> Result<String, SimError> {
    let mut md = String::from(
        "# Reproduction report — Demystifying the MLPerf Training Benchmark Suite\n\n\
         Regenerated end-to-end on the simulated substrate. Sections mirror the\n\
         paper's tables and figures; extension studies and validation follow.\n\n",
    );

    md.push_str("## Paper artifacts\n\n");
    md.push_str("```text\n");
    md.push_str(&table2::render());
    md.push('\n');
    md.push_str(&table3::render());
    md.push('\n');
    md.push_str(&table4::render(&table4::run()?));
    md.push('\n');
    md.push_str(&table5::render(&table5::run()?));
    md.push('\n');
    md.push_str(&figure1::render(&figure1::run()?));
    md.push('\n');
    md.push_str(&figure2::render(&figure2::run()?));
    md.push('\n');
    md.push_str(&figure3::render(&figure3::run()?));
    md.push('\n');
    md.push_str(&figure4::render(&figure4::run()?));
    md.push('\n');
    md.push_str(&figure5::render(&figure5::run()?));
    md.push_str("```\n\n");

    md.push_str("## Validation\n\n```text\n");
    md.push_str(&validation::render(&validation::run()?));
    md.push_str("```\n\n");

    md.push_str("## Extension studies\n\n```text\n");
    md.push_str(&sensitivity::render(&sensitivity::run()?));
    md.push('\n');
    md.push_str(&cluster_study::render(&cluster_study::run()?));
    md.push('\n');
    md.push_str(&energy_cost::render(&energy_cost::run()?));
    md.push('\n');
    md.push_str(&storage_study::render(&storage_study::run()?));
    md.push('\n');
    md.push_str(&batch_sweep::render(&batch_sweep::run(
        BenchmarkId::MlpfRes50Mx,
    )?));
    md.push_str("```\n");

    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let md = build().unwrap();
        for needle in [
            "# Reproduction report",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "## Validation",
            "Sensitivity",
            "Cluster study",
            "Energy & cost",
            "Storage staging",
            "Batch-size sweep",
        ] {
            assert!(md.contains(needle), "report missing: {needle}");
        }
        assert!(md.len() > 10_000, "report suspiciously short: {}", md.len());
    }
}
