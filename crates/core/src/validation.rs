//! Quantitative validation against the paper's published numbers.
//!
//! Collects every numeric cell the paper prints that this reproduction
//! also produces, computes per-cell relative errors and per-artifact
//! aggregate metrics (MAPE, worst cell), and reports which cells were
//! *calibrated* (fitted by construction) versus *derived* (free
//! predictions of the simulator). `repro --validate` prints the report;
//! EXPERIMENTS.md narrates it.

use crate::benchmark::BenchmarkId;
use crate::experiments::{figure5, table4, table5};
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError};
use mlperf_sim::SimError;
use std::fmt;

/// Whether a compared cell was fitted or predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Fitted during calibration (matches by construction).
    Calibrated,
    /// A free prediction of the simulator.
    Derived,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Calibrated => f.write_str("calibrated"),
            CellKind::Derived => f.write_str("derived"),
        }
    }
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which artifact the cell belongs to.
    pub artifact: &'static str,
    /// Human-readable cell label (benchmark + column).
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// The simulated value.
    pub simulated: f64,
    /// Fitted or predicted.
    pub kind: CellKind,
}

impl Cell {
    /// Relative error |sim − paper| / |paper|.
    pub fn relative_error(&self) -> f64 {
        (self.simulated - self.paper).abs() / self.paper.abs()
    }
}

/// The validation corpus.
#[derive(Debug, Clone)]
pub struct Validation {
    /// All compared cells.
    pub cells: Vec<Cell>,
}

/// Paper Table V single-GPU anchor cells we calibrate CPU utilization
/// against, under the row reconstruction of DESIGN.md.
const PAPER_TABLE_V_CPU_1GPU: [(BenchmarkId, f64); 7] = [
    (BenchmarkId::MlpfRes50Tf, 10.76),
    (BenchmarkId::MlpfRes50Mx, 4.56),
    (BenchmarkId::MlpfSsdPy, 3.89),
    (BenchmarkId::MlpfMrcnnPy, 2.45),
    (BenchmarkId::MlpfXfmrPy, 1.80),
    (BenchmarkId::MlpfGnmtPy, 1.91),
    (BenchmarkId::MlpfNcfPy, 0.76),
];

/// Paper Figure 5 NVLink-vs-worst improvements quoted in §V-E.
const PAPER_FIG5_IMPROVEMENT: [(BenchmarkId, f64); 4] = [
    (BenchmarkId::MlpfXfmrPy, 0.42),
    (BenchmarkId::MlpfGnmtPy, 0.17),
    (BenchmarkId::MlpfMrcnnPy, 0.30),
    (BenchmarkId::MlpfRes50Tf, 0.11),
];

/// Run every comparable experiment and assemble the corpus.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Validation, SimError> {
    run_ctx(&Ctx::new())
}

/// Assemble the corpus over a shared executor context. The three compared
/// artifacts come from the context's store when the executor already
/// produced them; standalone runs recompute them against the shared memo
/// cache.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Validation, SimError> {
    let mut cells = Vec::new();

    // --- Table IV ---------------------------------------------------------
    let t4 = ctx.dep_or("table4", Artifact::as_table4, table4::run_ctx)?;
    for ((id, p100, v100, s2, s4, s8), row) in table4::PAPER_TABLE_IV.iter().zip(&t4.rows) {
        cells.push(Cell {
            artifact: "Table IV",
            label: format!("{id} 1xP100 min"),
            paper: *p100,
            simulated: row.p100_minutes(),
            kind: CellKind::Calibrated,
        });
        cells.push(Cell {
            artifact: "Table IV",
            label: format!("{id} 1xV100 min"),
            paper: *v100,
            simulated: row.v100_minutes(1).expect("anchor measured"),
            kind: CellKind::Calibrated,
        });
        for (n, paper) in [(2u64, s2), (4, s4), (8, s8)] {
            cells.push(Cell {
                artifact: "Table IV",
                label: format!("{id} 1-to-{n} speedup"),
                paper: *paper,
                simulated: row.speedup(n).expect("measured"),
                kind: CellKind::Derived,
            });
        }
    }

    // --- Table V (single-GPU CPU utilization anchors) ----------------------
    let t5 = ctx.dep_or("table5", Artifact::as_table5, table5::run_ctx)?;
    for (id, paper) in PAPER_TABLE_V_CPU_1GPU {
        let run = t5
            .runs
            .iter()
            .find(|r| r.name == id.abbreviation() && r.n_gpus == 1)
            .expect("Table V covers every MLPerf benchmark at 1 GPU");
        cells.push(Cell {
            artifact: "Table V",
            label: format!("{id} CPU% @1 GPU"),
            paper,
            simulated: run.usage.cpu_util_pct,
            kind: CellKind::Calibrated,
        });
    }
    // Multi-GPU CPU growth is derived: compare the 4-GPU/1-GPU ratio for
    // the rows the paper gives us (Res50_TF: 29.06/10.76).
    let tf1 = t5
        .runs
        .iter()
        .find(|r| r.name == "MLPf_Res50_TF" && r.n_gpus == 1)
        .expect("row present");
    let tf4 = t5
        .runs
        .iter()
        .find(|r| r.name == "MLPf_Res50_TF" && r.n_gpus == 4)
        .expect("row present");
    cells.push(Cell {
        artifact: "Table V",
        label: "Res50_TF CPU% growth 1→4".into(),
        paper: 29.06 / 10.76,
        simulated: tf4.usage.cpu_util_pct / tf1.usage.cpu_util_pct,
        kind: CellKind::Derived,
    });

    // --- Figure 5 (NVLink improvements, §V-E prose) -------------------------
    let f5 = ctx.dep_or("figure5", Artifact::as_figure5, figure5::run_ctx)?;
    for (id, paper) in PAPER_FIG5_IMPROVEMENT {
        let row = f5.rows.iter().find(|r| r.id == id).expect("row present");
        cells.push(Cell {
            artifact: "Figure 5",
            label: format!("{id} NVLink gain"),
            paper,
            simulated: row.nvlink_improvement(),
            kind: CellKind::Derived,
        });
    }

    Ok(Validation { cells })
}

impl Validation {
    /// Mean absolute percentage error over a subset.
    pub fn mape(&self, kind: Option<CellKind>, artifact: Option<&str>) -> f64 {
        let errs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| kind.is_none_or(|k| c.kind == k))
            .filter(|c| artifact.is_none_or(|a| c.artifact == a))
            .map(Cell::relative_error)
            .collect();
        assert!(!errs.is_empty(), "no cells match the filter");
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// The worst cell of a subset.
    pub fn worst(&self, kind: Option<CellKind>) -> &Cell {
        self.cells
            .iter()
            .filter(|c| kind.is_none_or(|k| c.kind == k))
            .max_by(|a, b| {
                a.relative_error()
                    .partial_cmp(&b.relative_error())
                    .expect("errors are finite")
            })
            .expect("corpus is non-empty")
    }
}

/// Render the per-cell table plus the aggregate summary.
pub fn render(v: &Validation) -> String {
    let mut t = Table::new(
        "Validation: simulated vs published cells",
        [
            "Artifact",
            "Cell",
            "Paper",
            "Simulated",
            "Rel. error",
            "Kind",
        ],
    );
    for c in &v.cells {
        t.add_row([
            c.artifact.to_string(),
            c.label.clone(),
            format!("{:.2}", c.paper),
            format!("{:.2}", c.simulated),
            format!("{:.1}%", c.relative_error() * 100.0),
            c.kind.to_string(),
        ]);
    }
    let worst = v.worst(Some(CellKind::Derived));
    format!(
        "{t}\
         calibrated cells: MAPE {:.1}% over {} cells\n\
         derived cells:    MAPE {:.1}% over {} cells\n\
         worst derived cell: {} ({:.2} vs paper {:.2}, {:.0}% off)\n",
        v.mape(Some(CellKind::Calibrated), None) * 100.0,
        v.cells
            .iter()
            .filter(|c| c.kind == CellKind::Calibrated)
            .count(),
        v.mape(Some(CellKind::Derived), None) * 100.0,
        v.cells
            .iter()
            .filter(|c| c.kind == CellKind::Derived)
            .count(),
        worst.label,
        worst.simulated,
        worst.paper,
        worst.relative_error() * 100.0,
    )
}

/// The validation scorecard as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "validation"
    }

    fn title(&self) -> &'static str {
        "Validation: simulated vs published cells"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["table4", "table5", "figure5"]
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Validation).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Validation(v) => render(v),
            other => unreachable!("validation asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_all_three_artifacts() {
        let v = run().unwrap();
        for artifact in ["Table IV", "Table V", "Figure 5"] {
            assert!(
                v.cells.iter().any(|c| c.artifact == artifact),
                "{artifact} missing"
            );
        }
        // 6 benchmarks x 5 cells + 7 CPU anchors + 1 growth + 4 Fig5.
        assert_eq!(v.cells.len(), 30 + 7 + 1 + 4);
    }

    #[test]
    fn calibrated_cells_are_tight() {
        let v = run().unwrap();
        let mape = v.mape(Some(CellKind::Calibrated), None);
        assert!(mape < 0.10, "calibrated MAPE {:.1}%", mape * 100.0);
    }

    #[test]
    fn derived_cells_are_reasonable() {
        let v = run().unwrap();
        let mape = v.mape(Some(CellKind::Derived), None);
        assert!(mape < 0.35, "derived MAPE {:.1}%", mape * 100.0);
        // Table IV's derived speedups specifically stay tight.
        let t4 = v.mape(Some(CellKind::Derived), Some("Table IV"));
        assert!(t4 < 0.12, "Table IV derived MAPE {:.1}%", t4 * 100.0);
    }

    #[test]
    fn render_summarizes_both_kinds() {
        let v = run().unwrap();
        let s = render(&v);
        assert!(s.contains("calibrated cells"));
        assert!(s.contains("derived cells"));
        assert!(s.contains("worst derived cell"));
    }
}
