//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro              # everything
//! repro --table 4        # one table
//! repro --figure 5       # one figure
//! repro --figure fault   # the seeded fault-injection study
//! repro sweep --list     # declarative parameter sweeps
//! repro serve            # long-lived what-if query server (Unix socket)
//! repro query            # client: replay NDJSON queries from stdin
//! repro --list           # what's available
//! ```

use mlperf_suite::experiments as exp;
use mlperf_suite::runner::{Ctx, Pool, ResilienceConfig};
use mlperf_suite::serve::{self, ServeOptions, Server};
use mlperf_suite::sweep::{self, DiskCache};
use mlperf_suite::Config;
use std::process::ExitCode;

/// Exit code for a degraded-but-complete run: every requested output was
/// written, but one or more experiments failed (see the failure appendix
/// or the `# degraded:` CSV placeholders). `MLPERF_STRICT=1` turns these
/// into hard failures (exit 1) instead.
const EXIT_DEGRADED: u8 = 2;

fn usage() -> &'static str {
    "usage: repro [--table N | --figure N | --extra NAME | --csv DIR | --report FILE | --list]\n\
     \u{20}      repro sweep [--list | NAME... | --all] [--out DIR]   (long-form CSV per sweep)\n\
     \u{20}      repro serve [--socket PATH] [--max-active N] [--queue N] [--shard N]\n\
     \u{20}                  [--read-timeout-ms N] [--write-timeout-ms N] [--max-frame BYTES]\n\
     \u{20}      repro query [--socket PATH]   (NDJSON requests on stdin, responses on stdout)\n\
     tables: 1 (insights) 2 (suites) 3 (systems) 4 (scaling) 5 (resources)\n\
     figures: 1 (PCA) 2 (roofline) 3 (mixed precision) 4 (scheduling) 5 (topology)\n\
              fault (seeded fault injection, checkpoint/restart, expected TTT)\n\
     extras: cluster (online scheduling study beyond the paper)\n\
             fault   (alias for --figure fault)\n\
             validate (per-cell error metrics vs the published numbers)\n\
             batch    (batch-size sweep of ResNet-50 to the OOM wall)\n\
             energy   (kWh and USD to train, DAWNBench's second metric)\n\
             storage  (disk-staging feasibility per benchmark and device)\n\
             sensitivity (derived-output elasticity to calibration knobs)\n\
             variance (run-to-run variance decomposition: seed vs batch vs precision)\n\
     cache: --report/--csv/sweep answer from the persistent result cache in\n\
            artifacts/cache/ when warm; disable with --no-cache or MLPERF_CACHE=off,\n\
            relocate with MLPERF_CACHE_DIR=DIR\n\
     env: MLPERF_JOBS=N (workers), MLPERF_STRICT=1 (fail fast, no degraded mode),\n\
          MLPERF_RETRIES=N, MLPERF_STEP_BUDGET=N, MLPERF_FASTPATH=off (force the\n\
          full DES engine; output bytes are identical either way — see README),\n\
          MLPERF_RUNS=N (seeded replications per training cell; 1 = point estimate),\n\
          MLPERF_PARTITION=TOKEN (run sweeps on a fractional device, e.g. 1of4x3;\n\
          'full' = whole device; pinned report sections ignore it),\n\
          MLPERF_IO_CHAOS=SPEC (seeded cache I/O fault injection, e.g.\n\
          seed=7,bit_flip=0.25 — see DESIGN.md §2h), MLPERF_SERVE_READ_TIMEOUT_MS,\n\
          MLPERF_SERVE_WRITE_TIMEOUT_MS, MLPERF_SERVE_MAX_FRAME (serve hardening)\n\
     exit: 0 healthy, 1 error, 2 degraded-but-complete (--report/--csv only)"
}

/// `repro serve ...`: bind the Unix socket and answer typed what-if
/// queries until a `shutdown` query arrives. The environment is resolved
/// into one typed [`Config`] here, once, at startup — per-request
/// variation happens through the request API (e.g. `budget`), not by
/// mutating the daemon's environment.
fn run_serve(args: &[String], no_cache: bool) -> Result<ExitCode, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                opts.socket = it.next().ok_or("--socket needs a path")?.into();
            }
            "--max-active" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-active needs a count")?
                    .parse()
                    .map_err(|e| format!("--max-active: {e}"))?;
                opts.max_active = Some(n.max(1));
            }
            "--queue" => {
                opts.queue = it
                    .next()
                    .ok_or("--queue needs a depth")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--shard" => {
                let n: usize = it
                    .next()
                    .ok_or("--shard needs a cell count")?
                    .parse()
                    .map_err(|e| format!("--shard: {e}"))?;
                opts.shard = n.max(1);
            }
            "--read-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--read-timeout-ms needs milliseconds (0 = none)")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                opts.read_timeout_ms = Some(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--write-timeout-ms needs milliseconds (0 = none)")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                opts.write_timeout_ms = Some(ms);
            }
            "--max-frame" => {
                let bytes: usize = it
                    .next()
                    .ok_or("--max-frame needs bytes (0 = unbounded)")?
                    .parse()
                    .map_err(|e| format!("--max-frame: {e}"))?;
                opts.max_frame = Some(bytes);
            }
            other => return Err(format!("unknown serve flag '{other}'; {}", usage())),
        }
    }
    let mut cfg = Config::from_env();
    if no_cache {
        cfg.cache_enabled = false;
    }
    let server =
        Server::bind(&opts, &cfg).map_err(|e| format!("binding {}: {e}", opts.socket.display()))?;
    eprintln!("serve: listening on {}", opts.socket.display());
    server.run().map_err(|e| format!("serve: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// `repro query ...`: replay newline-delimited requests from stdin
/// against a running server, echoing response frames to stdout.
fn run_query(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = std::path::PathBuf::from(serve::DEFAULT_SOCKET);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = it.next().ok_or("--socket needs a path")?.into();
            }
            other => return Err(format!("unknown query flag '{other}'; {}", usage())),
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    serve::replay_client(&socket, &mut input, &mut out)
        .map_err(|e| format!("query ({}): {e}", socket.display()))?;
    Ok(ExitCode::SUCCESS)
}

/// `repro sweep ...`: run registered sweeps and write one long-form CSV
/// each (a cell that degrades is a data row with `status=error`, not a
/// process failure — the grid shape is part of the output contract).
fn run_sweeps(args: &[String], cache: Option<&DiskCache>) -> Result<ExitCode, String> {
    let registry = sweep::registry();
    let mut out_dir = String::from("artifacts/sweeps");
    let mut names: Vec<&str> = Vec::new();
    let mut all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for s in &registry {
                    println!("{:<18} {} ({} cells)", s.name, s.title, s.len());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--all" => all = true,
            "--out" => {
                out_dir = it.next().ok_or("--out needs a directory")?.clone();
            }
            name if !name.starts_with('-') => names.push(name),
            other => return Err(format!("unknown sweep flag '{other}'; {}", usage())),
        }
    }
    let selected: Vec<sweep::SweepSpec> = if all {
        registry.clone()
    } else {
        names
            .iter()
            .map(|n| {
                registry
                    .iter()
                    .find(|s| s.name == *n)
                    .cloned()
                    .ok_or_else(|| format!("no sweep '{n}' (try: repro sweep --list)"))
            })
            .collect::<Result<_, _>>()?
    };
    if selected.is_empty() {
        return Err(format!("no sweep named; {}", usage()));
    }
    // MLPERF_PARTITION re-bases every selected sweep onto a fractional
    // device. A sweep with its own partition axis overrides the base per
    // cell, so the knob never fights an explicit grid; unset, the specs
    // are untouched and the output bytes are exactly the historical ones.
    let selected: Vec<sweep::SweepSpec> = match Config::from_env().partition {
        Some(p) => selected
            .into_iter()
            .map(|s| s.fix(sweep::AxisValue::Partition(Some(p))))
            .collect(),
        None => selected,
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    let pool = Pool::from_env();
    // Memo-free context: sweep cells are pairwise distinct, so the step
    // memo would only grow O(grid) without ever hitting — the disk cache
    // (content-addressed, batched) is the persistence layer here.
    let ctx = Ctx::without_memo();
    // Rows are streamed to disk one shard at a time, so memory is bounded
    // by the shard regardless of the grid (the million-cell sweep never
    // materializes). Bytes are identical to the in-memory rendering.
    const SHARD: usize = 1024;
    for spec in &selected {
        let path = format!("{out_dir}/{}.csv", spec.name);
        let file =
            std::fs::File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        let summary = sweep::run_streamed(&pool, &ctx, spec, cache, &mut out, SHARD)
            .and_then(|s| std::io::Write::flush(&mut out).map(|()| s))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} ({} cells, {} degraded, {} from cache)",
            summary.cells, summary.errors, summary.disk_hits,
        );
    }
    let (attempts, hits) = ctx.fast_stats();
    if attempts > 0 {
        eprintln!("fast path: {hits}/{attempts} cells priced analytically");
    }
    if let Some(c) = cache {
        eprint!("{}", c.summary());
    }
    Ok(ExitCode::SUCCESS)
}

fn run_extra(ctx: &Ctx, name: &str) -> Result<String, String> {
    match name {
        "cluster" => exp::cluster_study::run_ctx(ctx)
            .map(|s| exp::cluster_study::render(&s))
            .map_err(|e| e.to_string()),
        "fault" => exp::fault_study::run_ctx(ctx)
            .map(|s| exp::fault_study::render(&s))
            .map_err(|e| e.to_string()),
        "sensitivity" => mlperf_suite::sensitivity::run_ctx(ctx)
            .map(|s| mlperf_suite::sensitivity::render(&s))
            .map_err(|e| e.to_string()),
        "storage" => exp::storage_study::run_ctx(ctx)
            .map(|rows| exp::storage_study::render(&rows))
            .map_err(|e| e.to_string()),
        "energy" => exp::energy_cost::run_on_ctx(ctx, mlperf_hw::SystemId::Dss8440, 8)
            .map(|e| exp::energy_cost::render(&e))
            .map_err(|e| e.to_string()),
        "batch" => exp::batch_sweep::run_ctx(ctx, mlperf_suite::BenchmarkId::MlpfRes50Mx)
            .map(|s| exp::batch_sweep::render(&s))
            .map_err(|e| e.to_string()),
        "validate" => mlperf_suite::validation::run_ctx(ctx)
            .map(|v| mlperf_suite::validation::render(&v))
            .map_err(|e| e.to_string()),
        "variance" => exp::variance_decomposition::run_ctx(ctx)
            .map(|v| exp::variance_decomposition::render(&v))
            .map_err(|e| e.to_string()),
        _ => Err(format!("no extra '{name}'; {}", usage())),
    }
}

fn run_table(ctx: &Ctx, n: u32) -> Result<String, String> {
    match n {
        1 => exp::table1::run_ctx(ctx)
            .map(|t| exp::table1::render(&t))
            .map_err(|e| e.to_string()),
        2 => Ok(exp::table2::render()),
        3 => Ok(exp::table3::render()),
        4 => exp::table4::run_ctx(ctx)
            .map(|t| exp::table4::render(&t))
            .map_err(|e| e.to_string()),
        5 => exp::table5::run_ctx(ctx)
            .map(|t| exp::table5::render(&t))
            .map_err(|e| e.to_string()),
        _ => Err(format!("no table {n}; {}", usage())),
    }
}

fn run_figure(ctx: &Ctx, n: u32) -> Result<String, String> {
    match n {
        1 => exp::figure1::run_ctx(ctx)
            .map(|f| exp::figure1::render(&f))
            .map_err(|e| e.to_string()),
        2 => exp::figure2::run_ctx(ctx)
            .map(|f| exp::figure2::render(&f))
            .map_err(|e| e.to_string()),
        3 => exp::figure3::run_ctx(ctx)
            .map(|f| exp::figure3::render(&f))
            .map_err(|e| e.to_string()),
        4 => exp::figure4::run_ctx(ctx)
            .map(|f| exp::figure4::render(&f))
            .map_err(|e| e.to_string()),
        5 => exp::figure5::run_ctx(ctx)
            .map(|f| exp::figure5::render(&f))
            .map_err(|e| e.to_string()),
        _ => Err(format!("no figure {n}; {}", usage())),
    }
}

/// Report the failed experiments on stderr (degraded-mode diagnostics).
fn report_failures(execution: &mlperf_suite::runner::Execution) {
    for f in &execution.failures {
        eprintln!(
            "degraded: {} ({}) failed after {} retries: {}",
            f.id,
            f.title,
            f.retries.len(),
            f.error
        );
    }
}

fn main() -> ExitCode {
    // Strict knob check up front: a typo'd MLPERF_IO_CHAOS or serve knob
    // aborts before any output is written, instead of silently running
    // with a default that would make the configured scenario vacuous.
    if let Err(e) = Config::try_from_env() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--no-cache` is positionless and composes with every mode; it (or
    // MLPERF_CACHE=off, or active chaos injection) disables the
    // persistent result cache for this invocation.
    let no_cache = args.iter().any(|a| a == "--no-cache");
    args.retain(|a| a != "--no-cache");
    let cache = if no_cache { None } else { DiskCache::from_env() };
    // One memoized context per invocation: tables and figures share their
    // overlapping simulation points instead of re-pricing them.
    let ctx = Ctx::new();
    let result: Result<ExitCode, String> = match args.as_slice() {
        [] => {
            let mut out = String::new();
            for n in 1..=5u32 {
                match run_table(&ctx, n) {
                    Ok(s) => out.push_str(&format!("{s}\n")),
                    Err(e) => {
                        eprintln!("table {n} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            for n in 1..=5u32 {
                match run_figure(&ctx, n) {
                    Ok(s) => out.push_str(&format!("{s}\n")),
                    Err(e) => {
                        eprintln!("figure {n} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            print!("{out}");
            Ok(ExitCode::SUCCESS)
        }
        [flag] if flag == "--list" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        [cmd, rest @ ..] if cmd == "sweep" => run_sweeps(rest, cache.as_ref()),
        [cmd, rest @ ..] if cmd == "serve" => run_serve(rest, no_cache),
        [cmd, rest @ ..] if cmd == "query" => run_query(rest),
        [flag, n] if flag == "--table" => n
            .parse::<u32>()
            .map_err(|e| e.to_string())
            .and_then(|n| run_table(&ctx, n))
            .map(|s| {
                print!("{s}");
                ExitCode::SUCCESS
            }),
        [flag, name] if flag == "--extra" => run_extra(&ctx, name).map(|s| {
            print!("{s}");
            ExitCode::SUCCESS
        }),
        [flag, file] if flag == "--report" => {
            let cfg = ResilienceConfig::from_env();
            if cfg.strict {
                // Fail-fast for CI: the first root-cause failure aborts
                // the run before anything is written. The strict config
                // still honors chaos injection and step budgets, so the
                // gate itself is testable.
                let (md, execution) =
                    mlperf_suite::report_gen::build_resilient(&Pool::from_env(), &ctx, &cfg);
                match execution.root_cause() {
                    Some(f) => Err(f.error.to_string()),
                    None => {
                        eprint!("{}", execution.stats.summary());
                        std::fs::write(file, md)
                            .map(|()| {
                                println!("wrote {file}");
                                ExitCode::SUCCESS
                            })
                            .map_err(|e| e.to_string())
                    }
                }
            } else {
                // Degraded-but-complete: failed experiments become
                // placeholder sections + a failure appendix; exit 2 tells
                // callers the document is incomplete. A warm persistent
                // cache answers every section from disk.
                let (md, execution) = mlperf_suite::report_gen::build_cached(
                    &Pool::from_env(),
                    &ctx,
                    &cfg,
                    cache.as_ref(),
                );
                eprint!("{}", execution.stats.summary());
                if let Some(c) = &cache {
                    eprint!("{}", c.summary());
                }
                report_failures(&execution);
                std::fs::write(file, md)
                    .map(|()| {
                        println!("wrote {file}");
                        if execution.degraded() {
                            ExitCode::from(EXIT_DEGRADED)
                        } else {
                            ExitCode::SUCCESS
                        }
                    })
                    .map_err(|e| e.to_string())
            }
        }
        [flag, dir] if flag == "--csv" => {
            let cfg = ResilienceConfig::from_env();
            if cfg.strict {
                match mlperf_suite::csv_export::write_all_strict(std::path::Path::new(dir), &cfg) {
                    Ok(written) => {
                        for path in written {
                            println!("wrote {path}");
                        }
                        Ok(ExitCode::SUCCESS)
                    }
                    Err(e) => Err(e.to_string()),
                }
            } else {
                match mlperf_suite::csv_export::write_all_cached(
                    std::path::Path::new(dir),
                    &cfg,
                    cache.as_ref(),
                ) {
                    Ok((written, execution)) => {
                        for path in written {
                            println!("wrote {path}");
                        }
                        if let Some(c) = &cache {
                            eprint!("{}", c.summary());
                        }
                        report_failures(&execution);
                        Ok(if execution.degraded() {
                            ExitCode::from(EXIT_DEGRADED)
                        } else {
                            ExitCode::SUCCESS
                        })
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
        }
        // `--figure fault` names the extension study; numbers name the
        // paper's figures.
        [flag, n] if flag == "--figure" && n == "fault" => {
            run_extra(&ctx, "fault").map(|s| {
                print!("{s}");
                ExitCode::SUCCESS
            })
        }
        [flag, n] if flag == "--figure" => n
            .parse::<u32>()
            .map_err(|e| e.to_string())
            .and_then(|n| run_figure(&ctx, n))
            .map(|s| {
                print!("{s}");
                ExitCode::SUCCESS
            }),
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
