//! Calibration harness: prints simulated-vs-paper Table IV anchors.

fn main() {
    match mlperf_suite::experiments::table4::run() {
        Ok(t) => print!("{}", mlperf_suite::experiments::table4::render(&t)),
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}
