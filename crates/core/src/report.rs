//! Plain-text table rendering for experiment reports.
//!
//! Every experiment renders its result the way the paper prints it — as a
//! table of labelled rows — so `repro`'s output can be eyeballed against
//! the publication directly.

use std::fmt;

/// A simple aligned ASCII table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavored markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|").replace('\n', " ");
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        out.push_str(&"---|".repeat(self.headers.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Render as RFC-4180-style CSV (header row first; cells containing
    /// commas, quotes, or newlines are quoted with doubled quotes).
    pub fn to_csv(&self) -> String {
        let mut out = csv_line(self.headers.iter().map(String::as_str));
        for row in &self.rows {
            out.push_str(&csv_line(row.iter().map(String::as_str)));
        }
        out
    }
}

/// Serialize one CSV record — the exact quoting [`Table::to_csv`] uses,
/// exposed so streaming writers (which never materialize a `Table`) emit
/// byte-identical rows. Includes the trailing newline.
pub fn csv_line<'a>(cells: impl IntoIterator<Item = &'a str>) -> String {
    fn cell(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = cells.into_iter().map(cell).collect::<Vec<_>>().join(",");
    out.push('\n');
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        writeln!(f, "+{sep}+")?;
        let fmt_row = |row: &[String]| -> String {
            let cells: Vec<String> = (0..cols)
                .map(|i| format!(" {:<width$} ", row[i], width = widths[i]))
                .collect();
            format!("|{}|", cells.join("|"))
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "+{sep}+")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        writeln!(f, "+{sep}+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_grid() {
        let mut t = Table::new("Demo", ["name", "value"]);
        t.add_row(["short", "1"]);
        t.add_row(["much longer name", "23456"]);
        let s = t.to_string();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("| name             | value |"));
        assert!(s.contains("| much longer name | 23456 |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", ["a", "b"]);
        t.add_row(["only one"]);
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = Table::new("Empty", ["col"]);
        assert!(t.to_string().contains("| col |"));
    }

    #[test]
    fn markdown_escapes_pipes() {
        let mut t = Table::new("MD", ["name", "value"]);
        t.add_row(["a|b", "1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### MD\n"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("a\\|b"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn csv_quotes_awkward_cells() {
        let mut t = Table::new("q", ["a", "b"]);
        t.add_row(["plain", "with,comma"]);
        t.add_row(["has \"quote\"", "multi\nline"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert!(lines[2].starts_with("\"has \"\"quote\"\"\","));
    }
}
