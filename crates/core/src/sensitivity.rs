//! Sensitivity analysis: how robust are the derived conclusions to the
//! calibration constants?
//!
//! The calibration policy (DESIGN.md) fits single-GPU anchors and lets the
//! simulator derive everything else. This module perturbs each calibrated
//! knob by ±20 % and measures how a headline *derived* quantity — the
//! 8-GPU speedup on the DSS 8440 — responds, reporting the elasticity
//! `Δoutput% / Δknob%`. Small elasticities mean the paper-shape conclusions
//! do not hinge on the fitted values.

use crate::benchmark::BenchmarkId;
use crate::report::Table;
use crate::runner::{Artifact, Ctx, Experiment, ExperimentError, TrainPoint};
use mlperf_hw::SystemId;
use mlperf_sim::{Efficiency, SimError, TrainingJob};
use std::fmt;

/// The calibrated knobs perturbed by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Sustained Tensor-Core efficiency (the main anchor-fitting knob).
    TensorEfficiency,
    /// Sustained memory-bandwidth efficiency.
    MemoryEfficiency,
    /// Comm/compute overlap fraction.
    CommOverlap,
}

impl Knob {
    /// All perturbed knobs.
    pub const ALL: [Knob; 3] = [
        Knob::TensorEfficiency,
        Knob::MemoryEfficiency,
        Knob::CommOverlap,
    ];

    /// Apply a multiplicative factor to this knob on a job copy.
    fn scaled(self, job: &TrainingJob, factor: f64) -> TrainingJob {
        match self {
            Knob::TensorEfficiency => {
                let e = job.efficiency();
                job.with_efficiency(Efficiency::new(
                    e.simt,
                    (e.tensor * factor).min(1.0),
                    e.memory,
                ))
            }
            Knob::MemoryEfficiency => {
                let e = job.efficiency();
                job.with_efficiency(Efficiency::new(
                    e.simt,
                    e.tensor,
                    (e.memory * factor).min(1.0),
                ))
            }
            Knob::CommOverlap => {
                job.with_comm_overlap((job.comm_overlap() * factor).clamp(0.0, 1.0))
            }
        }
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Knob::TensorEfficiency => "tensor efficiency",
            Knob::MemoryEfficiency => "memory efficiency",
            Knob::CommOverlap => "comm overlap",
        };
        f.write_str(s)
    }
}

/// One (benchmark, knob) elasticity measurement.
#[derive(Debug, Clone)]
pub struct SensitivityCell {
    /// Benchmark measured.
    pub id: BenchmarkId,
    /// Knob perturbed.
    pub knob: Knob,
    /// The baseline 8-GPU speedup.
    pub baseline: f64,
    /// Speedup with the knob at 0.8x.
    pub low: f64,
    /// Speedup with the knob at 1.2x.
    pub high: f64,
}

impl SensitivityCell {
    /// Elasticity: percent output change per percent knob change, averaged
    /// over the two perturbation directions.
    pub fn elasticity(&self) -> f64 {
        let d_low = (self.low - self.baseline) / self.baseline / -0.2;
        let d_high = (self.high - self.baseline) / self.baseline / 0.2;
        (d_low + d_high) / 2.0
    }
}

/// The full sensitivity study.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// All measured cells.
    pub cells: Vec<SensitivityCell>,
}

/// The derived quantity for an unmodified job: 1-to-8 speedup on the DSS
/// 8440. Uses the memoized training points (they are Table IV's).
fn baseline_speedup8(ctx: &Ctx, id: BenchmarkId) -> Result<f64, SimError> {
    let t1 = ctx
        .outcome(&TrainPoint::new(id, SystemId::Dss8440, 1))?
        .total_time
        .as_secs();
    let t8 = ctx
        .outcome(&TrainPoint::new(id, SystemId::Dss8440, 8))?
        .total_time
        .as_secs();
    Ok(t1 / t8)
}

/// The derived quantity for a knob-perturbed job. Perturbed efficiencies
/// have no stable cache identity, so these runs bypass the memo cache.
fn perturbed_speedup8(ctx: &Ctx, job: &TrainingJob) -> Result<f64, SimError> {
    let t1 = ctx
        .train_uncached(SystemId::Dss8440, job, 1)?
        .total_time
        .as_secs();
    let t8 = ctx
        .train_uncached(SystemId::Dss8440, job, 8)?
        .total_time
        .as_secs();
    Ok(t1 / t8)
}

/// Run the study over a representative benchmark subset.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run() -> Result<Sensitivity, SimError> {
    run_ctx(&Ctx::new())
}

/// Run the study through a shared executor context.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_ctx(ctx: &Ctx) -> Result<Sensitivity, SimError> {
    let subset = [
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfXfmrPy,
        BenchmarkId::MlpfNcfPy,
    ];
    let mut cells = Vec::new();
    for id in subset {
        let job = id.job();
        let baseline = baseline_speedup8(ctx, id)?;
        for knob in Knob::ALL {
            let low = perturbed_speedup8(ctx, &knob.scaled(&job, 0.8))?;
            let high = perturbed_speedup8(ctx, &knob.scaled(&job, 1.2))?;
            cells.push(SensitivityCell {
                id,
                knob,
                baseline,
                low,
                high,
            });
        }
    }
    Ok(Sensitivity { cells })
}

/// Render the elasticity table.
pub fn render(s: &Sensitivity) -> String {
    let mut t = Table::new(
        "Sensitivity of the derived 1-to-8 speedup to ±20% knob perturbations",
        [
            "Benchmark",
            "Knob",
            "Speedup @0.8x",
            "baseline",
            "@1.2x",
            "Elasticity",
        ],
    );
    for c in &s.cells {
        t.add_row([
            c.id.abbreviation().to_string(),
            c.knob.to_string(),
            format!("{:.2}x", c.low),
            format!("{:.2}x", c.baseline),
            format!("{:.2}x", c.high),
            format!("{:+.2}", c.elasticity()),
        ]);
    }
    t.to_string()
}

/// The sensitivity study as the executor schedules it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "sensitivity"
    }

    fn title(&self) -> &'static str {
        "Extension: calibration-knob sensitivity"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        run_ctx(ctx).map(Artifact::Sensitivity).map_err(ExperimentError::from)
    }

    fn render(&self, artifact: &Artifact) -> String {
        match artifact {
            Artifact::Sensitivity(s) => render(s),
            other => unreachable!("sensitivity asked to render {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_speedups_are_knob_insensitive() {
        // The core robustness claim: ±20% on any fitted knob moves the
        // derived 8-GPU speedup by well under 20% (|elasticity| < 1).
        let s = run().unwrap();
        assert_eq!(s.cells.len(), 9);
        for c in &s.cells {
            assert!(
                c.elasticity().abs() < 1.0,
                "{} / {}: elasticity {:.2}",
                c.id,
                c.knob,
                c.elasticity()
            );
        }
    }

    #[test]
    fn faster_compute_means_worse_scaling() {
        // Raising tensor efficiency shortens compute, making communication
        // relatively larger: the speedup must not improve.
        let s = run().unwrap();
        for c in s.cells.iter().filter(|c| c.knob == Knob::TensorEfficiency) {
            assert!(
                c.high <= c.baseline + 0.05,
                "{}: speedup rose with faster compute ({:.2} -> {:.2})",
                c.id,
                c.baseline,
                c.high
            );
        }
    }

    #[test]
    fn render_shows_elasticities() {
        let s = run().unwrap();
        let text = render(&s);
        assert!(text.contains("Elasticity"));
        assert!(text.contains("comm overlap"));
    }
}
