//! The benchmark registry: every workload of Table II, with the
//! configuration and calibration needed to run it on the simulator.
//!
//! Calibration policy (see DESIGN.md): per-benchmark constants — batch
//! size, epochs-to-target, sustained-efficiency factors, host-cost
//! multipliers — are fitted against the paper's *single-GPU* anchors
//! (Table IV) and single-GPU utilization rows (Table V). Everything else
//! (scaling, topology sensitivity, bus traffic growth) is derived by the
//! engine.

use mlperf_data::{DatasetId, InputPipeline};
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_models::zoo::{detection, drqa, ncf, resnet, translation};
use mlperf_models::{ModelGraph, Optimizer};
use mlperf_sim::{ConvergenceModel, Efficiency, TrainingJob};
use std::fmt;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// MLPerf v0.5 training.
    MlPerf,
    /// Stanford DAWNBench.
    DawnBench,
    /// Baidu DeepBench.
    DeepBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::MlPerf => "MLPerf",
            Suite::DawnBench => "DAWNBench",
            Suite::DeepBench => "DeepBench",
        };
        f.write_str(s)
    }
}

/// The trainable benchmarks of the study (Table II, top and middle).
///
/// DeepBench's kernel workloads are not end-to-end training jobs; they are
/// handled by the unified [`run`](crate::workloads::run) entry point under
/// [`WorkloadSpec::DeepBench`](crate::workloads::WorkloadSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// ResNet-50 image classification, TensorFlow (Google submission).
    MlpfRes50Tf,
    /// ResNet-50 image classification, MXNet (NVIDIA submission).
    MlpfRes50Mx,
    /// SSD light-weight object detection, PyTorch.
    MlpfSsdPy,
    /// Mask R-CNN heavy-weight object detection, PyTorch.
    MlpfMrcnnPy,
    /// Transformer translation, PyTorch.
    MlpfXfmrPy,
    /// GNMT translation, PyTorch.
    MlpfGnmtPy,
    /// Neural collaborative filtering recommendation, PyTorch.
    MlpfNcfPy,
    /// DAWNBench CIFAR10 ResNet-18 (bkj submission).
    DawnRes18Py,
    /// DAWNBench SQuAD DrQA (Yang et al. submission).
    DawnDrqaPy,
}

impl BenchmarkId {
    /// All trainable benchmarks, in Table II order.
    pub const ALL: [BenchmarkId; 9] = [
        BenchmarkId::MlpfRes50Tf,
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfSsdPy,
        BenchmarkId::MlpfMrcnnPy,
        BenchmarkId::MlpfXfmrPy,
        BenchmarkId::MlpfGnmtPy,
        BenchmarkId::MlpfNcfPy,
        BenchmarkId::DawnRes18Py,
        BenchmarkId::DawnDrqaPy,
    ];

    /// The seven MLPerf workloads (the Fig. 4 scheduling mix).
    pub const MLPERF: [BenchmarkId; 7] = [
        BenchmarkId::MlpfRes50Tf,
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfSsdPy,
        BenchmarkId::MlpfMrcnnPy,
        BenchmarkId::MlpfXfmrPy,
        BenchmarkId::MlpfGnmtPy,
        BenchmarkId::MlpfNcfPy,
    ];

    /// The six MLPerf benchmarks of Table IV (GNMT is excluded there).
    pub const TABLE_IV: [BenchmarkId; 6] = [
        BenchmarkId::MlpfRes50Tf,
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfSsdPy,
        BenchmarkId::MlpfMrcnnPy,
        BenchmarkId::MlpfXfmrPy,
        BenchmarkId::MlpfNcfPy,
    ];

    /// The abbreviation used throughout the paper's tables and figures.
    pub fn abbreviation(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf => "MLPf_Res50_TF",
            BenchmarkId::MlpfRes50Mx => "MLPf_Res50_MX",
            BenchmarkId::MlpfSsdPy => "MLPf_SSD_Py",
            BenchmarkId::MlpfMrcnnPy => "MLPf_MRCNN_Py",
            BenchmarkId::MlpfXfmrPy => "MLPf_XFMR_Py",
            BenchmarkId::MlpfGnmtPy => "MLPf_GNMT_Py",
            BenchmarkId::MlpfNcfPy => "MLPf_NCF_Py",
            BenchmarkId::DawnRes18Py => "Dawn_Res18_Py",
            BenchmarkId::DawnDrqaPy => "Dawn_DrQA_Py",
        }
    }

    /// The inverse of [`BenchmarkId::abbreviation`]: the benchmark a
    /// paper-table abbreviation names, if any. This is the single
    /// workload vocabulary of the `repro serve` wire schema.
    pub fn from_abbreviation(s: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL.into_iter().find(|b| b.abbreviation() == s)
    }

    /// The suite this benchmark belongs to.
    pub fn suite(self) -> Suite {
        match self {
            BenchmarkId::DawnRes18Py | BenchmarkId::DawnDrqaPy => Suite::DawnBench,
            _ => Suite::MlPerf,
        }
    }

    /// The application domain (Table II column 2).
    pub fn domain(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf | BenchmarkId::MlpfRes50Mx => "Image Classification",
            BenchmarkId::MlpfSsdPy | BenchmarkId::MlpfMrcnnPy => "Object Detection",
            BenchmarkId::MlpfXfmrPy | BenchmarkId::MlpfGnmtPy => "Translation",
            BenchmarkId::MlpfNcfPy => "Recommendation",
            BenchmarkId::DawnRes18Py => "Image Classification",
            BenchmarkId::DawnDrqaPy => "Question Answering",
        }
    }

    /// The model name (Table II column 3).
    pub fn model_name(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf | BenchmarkId::MlpfRes50Mx => "ResNet-50",
            BenchmarkId::MlpfSsdPy => "SSD (light-weight)",
            BenchmarkId::MlpfMrcnnPy => "Mask RCNN (heavy-weight)",
            BenchmarkId::MlpfXfmrPy => "Transformer",
            BenchmarkId::MlpfGnmtPy => "RNN GNMT",
            BenchmarkId::MlpfNcfPy => "Neural Collaborative Filtering",
            BenchmarkId::DawnRes18Py => "ResNet-18 (modified)",
            BenchmarkId::DawnDrqaPy => "DrQA",
        }
    }

    /// The framework of the submitted implementation.
    pub fn framework(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf => "TensorFlow",
            BenchmarkId::MlpfRes50Mx => "MXNet",
            _ => "PyTorch",
        }
    }

    /// The submitter of the measured code.
    pub fn submitter(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf => "Google",
            BenchmarkId::DawnRes18Py => "bkj",
            BenchmarkId::DawnDrqaPy => "Yang et al.",
            _ => "NVIDIA",
        }
    }

    /// The training corpus.
    pub fn dataset(self) -> DatasetId {
        match self {
            BenchmarkId::MlpfRes50Tf | BenchmarkId::MlpfRes50Mx => DatasetId::ImageNet,
            BenchmarkId::MlpfSsdPy | BenchmarkId::MlpfMrcnnPy => DatasetId::Coco,
            BenchmarkId::MlpfXfmrPy | BenchmarkId::MlpfGnmtPy => DatasetId::Wmt17,
            BenchmarkId::MlpfNcfPy => DatasetId::MovieLens20M,
            BenchmarkId::DawnRes18Py => DatasetId::Cifar10,
            BenchmarkId::DawnDrqaPy => DatasetId::Squad,
        }
    }

    /// The quality target defining "trained" (Table II last column).
    pub fn quality_target(self) -> &'static str {
        match self {
            BenchmarkId::MlpfRes50Tf | BenchmarkId::MlpfRes50Mx => "Accuracy: 0.749",
            BenchmarkId::MlpfSsdPy => "mAP: 0.212",
            BenchmarkId::MlpfMrcnnPy => "Box mAP: 0.377, Mask mAP: 0.339",
            BenchmarkId::MlpfXfmrPy => "BLEU score (uncased): 25",
            BenchmarkId::MlpfGnmtPy => "Sacre BLEU score (uncased): 21.80",
            BenchmarkId::MlpfNcfPy => "Hit rate @ 10: 0.635",
            BenchmarkId::DawnRes18Py => "Test accuracy: 94%",
            BenchmarkId::DawnDrqaPy => "F1 score: 0.75",
        }
    }

    /// Build the operator graph for this benchmark's model.
    pub fn model(self) -> ModelGraph {
        match self {
            BenchmarkId::MlpfRes50Tf | BenchmarkId::MlpfRes50Mx => resnet::resnet50(),
            BenchmarkId::MlpfSsdPy => detection::ssd300(),
            BenchmarkId::MlpfMrcnnPy => detection::mask_rcnn(),
            BenchmarkId::MlpfXfmrPy => translation::transformer_big(),
            BenchmarkId::MlpfGnmtPy => translation::gnmt(),
            BenchmarkId::MlpfNcfPy => ncf::ncf(),
            BenchmarkId::DawnRes18Py => resnet::resnet18_cifar(),
            BenchmarkId::DawnDrqaPy => drqa::drqa(),
        }
    }

    /// Build the runnable training job, with per-benchmark calibration.
    pub fn job(self) -> TrainingJob {
        let cal = self.calibration();
        let pipeline = InputPipeline::new(self.dataset(), cal.device_bytes_per_sample)
            .with_host_cost_multiplier(cal.host_cost_multiplier);
        let mut builder = TrainingJob::builder(
            self.abbreviation(),
            self.model(),
            pipeline,
            cal.per_gpu_batch,
            ConvergenceModel::new(cal.epochs, cal.per_gpu_batch, cal.epoch_penalty),
        )
        .optimizer(cal.optimizer)
        .efficiency(cal.efficiency)
        .comm_overlap(cal.comm_overlap)
        .host_step_core_secs(cal.host_step_core_secs)
        .dram_base(cal.dram_base)
        .hbm_overhead(cal.hbm_overhead)
        .gpu_step_overhead(cal.gpu_step_overhead)
        .allreduce_period(cal.allreduce_period)
        .host_fixed_core_secs(cal.host_fixed_core_secs)
        .host_poll_cores(cal.host_poll_cores);
        if let Some(cap) = cal.max_global_batch {
            builder = builder.max_global_batch(cap);
        }
        builder.build()
    }

    /// The job as the *MLPerf reference implementation* would run it on the
    /// P100 reference machine: FP16 arithmetic (Pascal has no Tensor
    /// Cores), a smaller batch, and unoptimized-kernel efficiencies. This
    /// is what the paper's single-P100 anchors (Table IV) measure.
    pub fn reference_job(self) -> TrainingJob {
        let cal = self.calibration();
        let batch = (cal.per_gpu_batch / 2).max(1);
        self.job()
            .with_efficiency(cal.reference_efficiency)
            .with_per_gpu_batch(batch)
    }

    fn calibration(self) -> Calibration {
        match self {
            // Input: 224x224x3 FP16 tensors under AMP.
            BenchmarkId::MlpfRes50Tf => Calibration {
                per_gpu_batch: 256,
                epochs: 63.0,
                epoch_penalty: 0.04,
                max_global_batch: None,
                optimizer: Optimizer::SgdMomentum,
                device_bytes_per_sample: Bytes::new(224 * 224 * 3 * 2),
                host_cost_multiplier: 1.05, // TF's input pipeline is heavier
                host_step_core_secs: 0.055,
                efficiency: Efficiency::new(0.97, 0.40, 0.72),
                comm_overlap: 0.55,
                dram_base: Bytes::from_gib(14),
                hbm_overhead: Bytes::from_gib_f64(1.5),
                reference_efficiency: Efficiency::new(0.30, 0.22, 0.50),
                gpu_step_overhead: Seconds::new(0.004),
                allreduce_period: 2,
                host_fixed_core_secs: 0.86,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfRes50Mx => Calibration {
                per_gpu_batch: 256,
                epochs: 63.0,
                epoch_penalty: 0.09,
                max_global_batch: None,
                optimizer: Optimizer::SgdMomentum,
                device_bytes_per_sample: Bytes::new(224 * 224 * 3 * 2),
                host_cost_multiplier: 0.7, // DALI-style pipeline
                host_step_core_secs: 0.005,
                efficiency: Efficiency::new(1.00, 0.43, 0.75),
                comm_overlap: 0.45,
                dram_base: Bytes::from_gib(3),
                hbm_overhead: Bytes::from_gib(1),
                reference_efficiency: Efficiency::new(0.30, 0.22, 0.50),
                gpu_step_overhead: Seconds::new(0.002),
                allreduce_period: 2,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfSsdPy => Calibration {
                per_gpu_batch: 64,
                epochs: 55.0,
                epoch_penalty: 0.02,
                max_global_batch: None,
                optimizer: Optimizer::SgdMomentum,
                device_bytes_per_sample: Bytes::new(300 * 300 * 3 * 2),
                host_cost_multiplier: 0.78,
                host_step_core_secs: 0.006,
                efficiency: Efficiency::new(1.00, 0.52, 0.72),
                comm_overlap: 0.55,
                dram_base: Bytes::from_gib(3),
                hbm_overhead: Bytes::from_gib(1),
                reference_efficiency: Efficiency::new(0.70, 0.72, 0.75),
                gpu_step_overhead: Seconds::new(0.003),
                allreduce_period: 2,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfMrcnnPy => Calibration {
                per_gpu_batch: 4,
                epochs: 13.0,
                epoch_penalty: 0.17,
                max_global_batch: None,
                optimizer: Optimizer::SgdMomentum,
                device_bytes_per_sample: Bytes::new(800 * 1344 * 3 * 2),
                host_cost_multiplier: 1.2,
                host_step_core_secs: 0.600,
                efficiency: Efficiency::new(0.95, 0.29, 0.55),
                comm_overlap: 0.35,
                dram_base: Bytes::from_gib(6),
                hbm_overhead: Bytes::from_gib(2),
                reference_efficiency: Efficiency::new(0.55, 0.58, 0.70),
                gpu_step_overhead: Seconds::new(0.015),
                allreduce_period: 1,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfXfmrPy => Calibration {
                per_gpu_batch: 160, // sentence pairs (~5k tokens)
                epochs: 8.0,
                epoch_penalty: 0.06,
                max_global_batch: None,
                optimizer: Optimizer::Adam,
                device_bytes_per_sample: Bytes::new(2 * 32 * 4), // token ids
                host_cost_multiplier: 1.0,
                host_step_core_secs: 0.170,
                efficiency: Efficiency::new(0.90, 0.41, 0.70),
                comm_overlap: 0.15,
                dram_base: Bytes::from_gib(6),
                hbm_overhead: Bytes::from_gib(2),
                reference_efficiency: Efficiency::new(0.60, 0.78, 0.75),
                gpu_step_overhead: Seconds::new(0.004),
                allreduce_period: 2,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfGnmtPy => Calibration {
                per_gpu_batch: 128,
                epochs: 5.0,
                epoch_penalty: 0.08,
                max_global_batch: None,
                optimizer: Optimizer::AdamGnmt,
                device_bytes_per_sample: Bytes::new(2 * 32 * 4),
                host_cost_multiplier: 1.2,
                host_step_core_secs: 0.100,
                efficiency: Efficiency::new(0.90, 0.28, 0.65),
                comm_overlap: 0.30,
                dram_base: Bytes::from_gib(6),
                hbm_overhead: Bytes::from_gib(2),
                reference_efficiency: Efficiency::new(0.35, 0.35, 0.55),
                gpu_step_overhead: Seconds::new(0.006),
                allreduce_period: 10,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::MlpfNcfPy => Calibration {
                per_gpu_batch: 1 << 17,
                epochs: 13.0,
                epoch_penalty: 0.0,
                max_global_batch: Some(1 << 18), // the small-dataset cap
                optimizer: Optimizer::Adam,
                device_bytes_per_sample: Bytes::new(16), // two ids + label
                host_cost_multiplier: 1.0,
                host_step_core_secs: 0.023,
                efficiency: Efficiency::new(0.100, 0.044, 0.120),
                comm_overlap: 0.2,
                dram_base: Bytes::from_gib(2),
                hbm_overhead: Bytes::from_gib(1),
                reference_efficiency: Efficiency::new(0.0071, 0.0046, 0.0129),
                gpu_step_overhead: Seconds::new(0.030),
                allreduce_period: 1,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.30,
            },
            BenchmarkId::DawnRes18Py => Calibration {
                per_gpu_batch: 512,
                epochs: 24.0,
                epoch_penalty: 0.05,
                max_global_batch: Some(2048),
                optimizer: Optimizer::SgdMomentum,
                device_bytes_per_sample: Bytes::new(32 * 32 * 3 * 2),
                host_cost_multiplier: 1.0,
                host_step_core_secs: 0.004,
                efficiency: Efficiency::new(0.45, 0.28, 0.60),
                comm_overlap: 0.50,
                dram_base: Bytes::from_gib(2),
                hbm_overhead: Bytes::from_gib(1),
                reference_efficiency: Efficiency::new(0.40, 0.40, 0.55),
                gpu_step_overhead: Seconds::new(0.002),
                allreduce_period: 1,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
            BenchmarkId::DawnDrqaPy => Calibration {
                per_gpu_batch: 32,
                epochs: 20.0,
                epoch_penalty: 0.0,
                max_global_batch: Some(32), // single-GPU submission
                optimizer: Optimizer::Adam,
                device_bytes_per_sample: Bytes::new(430 * 4 * 4),
                host_cost_multiplier: 1.3,
                host_step_core_secs: 0.020,
                efficiency: Efficiency::new(0.30, 0.20, 0.45),
                comm_overlap: 0.20,
                dram_base: Bytes::from_gib(5),
                hbm_overhead: Bytes::from_gib(1),
                reference_efficiency: Efficiency::new(0.25, 0.25, 0.40),
                gpu_step_overhead: Seconds::new(0.080),
                allreduce_period: 1,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
            },
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// The per-benchmark calibration constants (see DESIGN.md §"Calibration
/// policy").
#[derive(Debug, Clone)]
struct Calibration {
    per_gpu_batch: u64,
    epochs: f64,
    epoch_penalty: f64,
    max_global_batch: Option<u64>,
    optimizer: Optimizer,
    device_bytes_per_sample: Bytes,
    host_cost_multiplier: f64,
    host_step_core_secs: f64,
    efficiency: Efficiency,
    comm_overlap: f64,
    dram_base: Bytes,
    hbm_overhead: Bytes,
    reference_efficiency: Efficiency,
    gpu_step_overhead: Seconds,
    allreduce_period: u64,
    host_fixed_core_secs: f64,
    host_poll_cores: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        assert_eq!(BenchmarkId::ALL.len(), 9);
        for id in BenchmarkId::ALL {
            assert!(!id.abbreviation().is_empty());
            assert!(!id.quality_target().is_empty());
            let job = id.job();
            assert_eq!(job.name(), id.abbreviation());
            assert!(job.model().params() > 0);
        }
    }

    #[test]
    fn mlperf_subset_is_seven() {
        assert_eq!(BenchmarkId::MLPERF.len(), 7);
        assert!(BenchmarkId::MLPERF
            .iter()
            .all(|b| b.suite() == Suite::MlPerf));
        // Table IV drops GNMT.
        assert_eq!(BenchmarkId::TABLE_IV.len(), 6);
        assert!(!BenchmarkId::TABLE_IV.contains(&BenchmarkId::MlpfGnmtPy));
    }

    #[test]
    fn frameworks_match_table_ii() {
        assert_eq!(BenchmarkId::MlpfRes50Tf.framework(), "TensorFlow");
        assert_eq!(BenchmarkId::MlpfRes50Mx.framework(), "MXNet");
        assert_eq!(BenchmarkId::MlpfSsdPy.framework(), "PyTorch");
        assert_eq!(BenchmarkId::MlpfRes50Tf.submitter(), "Google");
        assert_eq!(BenchmarkId::MlpfRes50Mx.submitter(), "NVIDIA");
    }

    #[test]
    fn datasets_match_table_ii() {
        assert_eq!(BenchmarkId::MlpfNcfPy.dataset(), DatasetId::MovieLens20M);
        assert_eq!(BenchmarkId::MlpfXfmrPy.dataset(), DatasetId::Wmt17);
        assert_eq!(BenchmarkId::DawnDrqaPy.dataset(), DatasetId::Squad);
    }

    #[test]
    fn ncf_is_globally_capped() {
        let job = BenchmarkId::MlpfNcfPy.job();
        assert!(job.max_global_batch().is_some());
        assert!(job.effective_per_gpu_batch(8) < job.per_gpu_batch());
    }

    #[test]
    fn drqa_is_single_gpu() {
        let job = BenchmarkId::DawnDrqaPy.job();
        assert_eq!(job.max_global_batch(), Some(32));
    }
}
