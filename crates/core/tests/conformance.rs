//! Golden conformance suite: fixed-seed FNV-1a fingerprints of every
//! experiment's rendered section.
//!
//! The golden-artifacts test pins CSV bytes; this battery pins the
//! *report* sections, one named test per experiment, so a regression
//! points straight at the experiment that drifted instead of a giant
//! report diff. On failure the message prints the offending section —
//! inspect it, and if the change is intentional regenerate the constants
//! with:
//!
//! ```text
//! cargo test -p mlperf-suite --test conformance -- --ignored --nocapture
//! ```

use mlperf_suite::runner::{self, Ctx, Pool};
use mlperf_testkit::hash::fnv1a64_str;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// One strict execution shared by every fingerprint test.
fn rendered() -> &'static BTreeMap<&'static str, String> {
    static SECTIONS: OnceLock<BTreeMap<&'static str, String>> = OnceLock::new();
    SECTIONS.get_or_init(|| {
        let execution = runner::execute(
            &Pool::with_workers(1),
            &Ctx::new(),
            &runner::all_experiments(),
        )
        .expect("all experiments healthy");
        execution
            .reports
            .iter()
            .map(|r| (r.id, r.rendered.clone()))
            .collect()
    })
}

macro_rules! conformance {
    ($($test:ident => ($id:literal, $fp:literal)),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                let section = rendered()
                    .get($id)
                    .unwrap_or_else(|| panic!("experiment '{}' not scheduled", $id));
                let got = fnv1a64_str(section);
                let want: u64 = $fp;
                assert_eq!(
                    got, want,
                    "\nsection '{}' drifted from its golden fingerprint \
                     (got {:#018x}, want {:#018x});\noffending section:\n{}",
                    $id, got, want, section
                );
            }
        )+

        /// Regenerator: prints the current fingerprint table in macro
        /// syntax (run with `-- --ignored --nocapture` after an
        /// intentional change, then paste over the invocation below).
        #[test]
        #[ignore = "regenerates the golden constants; not a gate"]
        fn print_fingerprints() {
            for (id, section) in rendered() {
                let slug = id.replace(|c: char| !c.is_ascii_alphanumeric(), "_");
                println!(
                    "    {}_fingerprint => (\"{}\", {:#018x}),",
                    slug,
                    id,
                    fnv1a64_str(section)
                );
            }
        }

        /// The table above must cover the full experiment set — a new
        /// experiment has to come with a fingerprint.
        #[test]
        fn fingerprint_table_is_complete() {
            let pinned: &[&str] = &[$($id),+];
            let all = runner::all_experiments();
            assert_eq!(pinned.len(), all.len(), "fingerprint table out of sync");
            for e in all {
                assert!(
                    pinned.contains(&e.id()),
                    "experiment '{}' has no golden fingerprint",
                    e.id()
                );
            }
        }
    };
}

conformance! {
    batch_sweep_fingerprint => ("batch_sweep", 0xaca8d63b127022bc),
    cluster_study_fingerprint => ("cluster_study", 0x86bd653f59f3b623),
    colocation_study_fingerprint => ("colocation_study", 0x9e4138f10cbb30a5),
    energy_cost_fingerprint => ("energy_cost", 0xd86f11075749179e),
    fault_study_fingerprint => ("fault_study", 0xcb40352502963c14),
    figure1_fingerprint => ("figure1", 0x081a800b4753d117),
    figure2_fingerprint => ("figure2", 0x273fc4ce61050e6a),
    figure3_fingerprint => ("figure3", 0xbaa5f129a6ad24d6),
    figure4_fingerprint => ("figure4", 0xe08d8c325bf46110),
    figure5_fingerprint => ("figure5", 0x15de211c4021faff),
    partition_study_fingerprint => ("partition_study", 0xe8e321d4f1d3be8f),
    sensitivity_fingerprint => ("sensitivity", 0x80c59403b7ec1498),
    storage_study_fingerprint => ("storage_study", 0x7ef9d762fad32c2a),
    table1_fingerprint => ("table1", 0xa44eacb108f49693),
    table2_fingerprint => ("table2", 0xe64e401631951e1d),
    table3_fingerprint => ("table3", 0xe0fb6a89541bf797),
    table4_fingerprint => ("table4", 0xf45a845a3cddde58),
    table5_fingerprint => ("table5", 0x8d1f009188be0de8),
    validation_fingerprint => ("validation", 0xba688635a7b06efe),
    variance_decomposition_fingerprint => ("variance_decomposition", 0xe6c1f36d72100968),
}

/// The million-cell stress grid rides the registry truncated to its CI
/// prefix; its CSV bytes are pinned here like any other golden section —
/// and pinned *twice*, once per pricing engine, so the analytic fast
/// path can never drift the rendered output. (Registry sweeps are not
/// report experiments, so this lives outside the macro's pinned table.)
#[test]
fn million_cell_ci_prefix_fingerprint() {
    use mlperf_suite::sweep;
    let spec = sweep::registry()
        .into_iter()
        .find(|s| s.name == "million_cell")
        .expect("million_cell registered");
    assert_eq!(spec.len(), sweep::MILLION_CELL_CI_PREFIX);
    let fast = sweep::to_csv(&sweep::run_serial(
        &Ctx::new().with_fastpath(true),
        &spec,
        None,
    ));
    let slow = sweep::to_csv(&sweep::run_serial(
        &Ctx::new().with_fastpath(false),
        &spec,
        None,
    ));
    assert_eq!(fast, slow, "fast path changed million_cell CSV bytes");
    let got = fnv1a64_str(&fast);
    let want: u64 = 0x4c343ad7848663f1;
    assert_eq!(
        got, want,
        "million_cell CI prefix drifted (got {got:#018x}, want {want:#018x});\n{fast}"
    );
}
