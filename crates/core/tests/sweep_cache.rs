//! Property battery for the persistent content-addressed result cache.
//!
//! The cache's contract (DESIGN.md "Sweep & cache model") has three legs,
//! each tested here at 1 and 4 pool workers:
//!
//! (a) **warm = cold**: a second `build_cached` answers every section and
//!     export from disk — zero experiment recomputation — and the output
//!     bytes are identical to the cold run's;
//! (b) **keys collide only for canonically-equal specs**: fuzzed cell
//!     specs hash equal iff their canonical bytes are equal;
//! (c) **eviction is self-healing**: evicting a seeded-random entry (or
//!     the manifest itself) and re-running reproduces identical bytes.

use mlperf_suite::runner::{self, Ctx, Pool, ResilienceConfig};
use mlperf_suite::sweep::{self, DiskCache};
use mlperf_suite::{csv_export, report_gen, BenchmarkId};
use mlperf_testkit::rng::Rng;
use std::path::PathBuf;

/// A fixed cache epoch so test keys never depend on the build fingerprint.
const EPOCH: u64 = 0x5EED_CAFE;

/// Worker counts every property must hold at (the `MLPERF_JOBS` axis of
/// the determinism contract).
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlperf_sweep_cache_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> ResilienceConfig {
    ResilienceConfig::resilient()
}

#[test]
fn warm_report_is_byte_identical_with_zero_recomputation() {
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("report_w{workers}"));
        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let pool = Pool::with_workers(workers);

        // One cache entry per scheduled section, plus the manifest (the
        // count tracks the experiment registry, never a literal here).
        let entries = runner::all_experiments().len() as u64 + 1;

        let (cold, cold_exec) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert!(!cold_exec.degraded(), "cold run must be healthy");
        // Cold: one manifest probe missed, every section + manifest stored.
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (0, 1, entries), "cold counters");

        let (warm, warm_exec) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert_eq!(cold, warm, "warm report bytes differ at {workers} workers");
        // Warm: manifest + every section hit, nothing stored, and no
        // experiment ran (per-experiment wall list stays empty).
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (entries, 1, entries), "warm counters");
        assert!(
            warm_exec.stats.per_experiment.is_empty(),
            "warm run recomputed an experiment"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn warm_csv_exports_are_byte_identical_with_zero_recomputation() {
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("csv_w{workers}"));
        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let pool = Pool::with_workers(workers);

        // One entry per export file (counted off the export registry).
        let files = csv_export::EXPORT_FILES.len() as u64;
        let (cold, cold_exec) =
            csv_export::build_all_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert!(!cold_exec.degraded());
        assert_eq!(cold.len() as u64, files);

        let (warm, warm_exec) =
            csv_export::build_all_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert_eq!(a.file, b.file);
            assert_eq!(a.contents, b.contents, "{} differs warm", a.file);
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.stores), (files, files), "csv cache counters");
        assert!(
            warm_exec.stats.per_experiment.is_empty(),
            "warm csv run recomputed an experiment"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Draw a random cell spec: each dimension independently absent or one of
/// a few representative values (floats get bit-level perturbations so the
/// canonical-bytes-as-bit-pattern rule is actually exercised).
fn arbitrary_cell(rng: &mut Rng) -> sweep::CellSpec {
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::{PartitionProfile, PartitionSpec};
    use mlperf_models::PrecisionPolicy;
    let kind = if rng.gen_u64().is_multiple_of(2) {
        sweep::CellKind::Training
    } else {
        sweep::CellKind::ExpectedTtt
    };
    let pick = |rng: &mut Rng, n: u64| rng.gen_u64() % n;
    let mut cell = sweep::CellSpec {
        kind,
        workload: None,
        system: None,
        gpus: None,
        batch: None,
        precision: None,
        mtbf_hours: None,
        interval: None,
        runs: None,
        partition: None,
    };
    if pick(rng, 4) > 0 {
        cell.workload = Some(BenchmarkId::MLPERF[pick(rng, 7) as usize]);
    }
    if pick(rng, 4) > 0 {
        cell.system = Some([SystemId::Dss8440, SystemId::C4140K][pick(rng, 2) as usize]);
    }
    if pick(rng, 4) > 0 {
        cell.gpus = Some([1u32, 2, 4, 8][pick(rng, 4) as usize]);
    }
    if pick(rng, 3) == 0 {
        cell.batch = Some(16u64 << pick(rng, 8));
    }
    if pick(rng, 3) == 0 {
        cell.precision = Some([PrecisionPolicy::Fp32, PrecisionPolicy::Amp][pick(rng, 2) as usize]);
    }
    if pick(rng, 3) == 0 {
        let base = [1.0f64, 4.0, 24.0][pick(rng, 3) as usize];
        // Perturb the mantissa: specs must canonicalize by exact bits.
        let bits = base.to_bits() + pick(rng, 3);
        cell.mtbf_hours = Some(f64::from_bits(bits));
    }
    if pick(rng, 3) == 0 {
        cell.interval = Some(if pick(rng, 2) == 0 {
            sweep::IntervalChoice::Daly
        } else {
            sweep::IntervalChoice::FixedMin(f64::from_bits(
                [1.0f64, 10.0, 240.0][pick(rng, 3) as usize].to_bits() + pick(rng, 2),
            ))
        });
    }
    if pick(rng, 3) == 0 {
        cell.runs = Some([2u32, 8, 16, 512][pick(rng, 4) as usize]);
    }
    if pick(rng, 3) == 0 {
        let profile = PartitionProfile::ALL[pick(rng, 3) as usize];
        let tenants = 1 + pick(rng, u64::from(profile.slice_count())) as u32;
        cell.partition =
            Some(PartitionSpec::new(profile, tenants).expect("tenants within slice count"));
    }
    cell
}

#[test]
fn cache_keys_collide_only_for_canonically_equal_specs() {
    let dir = tmp("keys");
    let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
    let mut rng = Rng::new(0xC0FFEE);
    let specs: Vec<sweep::CellSpec> = (0..200).map(|_| arbitrary_cell(&mut rng)).collect();
    for (i, a) in specs.iter().enumerate() {
        // A re-derived spec is canonically equal and must key identically.
        let clone = a.clone();
        assert_eq!(
            cache.key(&a.canonical_bytes()),
            cache.key(&clone.canonical_bytes())
        );
        for b in specs.iter().skip(i + 1) {
            let same_canon = a.canonical_bytes() == b.canonical_bytes();
            let same_key = cache.key(&a.canonical_bytes()) == cache.key(&b.canonical_bytes());
            assert_eq!(
                same_canon, same_key,
                "key collision disagreement between {a:?} and {b:?}"
            );
        }
    }
    // The epoch is part of the key: same spec, different epoch, new key.
    let other = DiskCache::open_with_epoch(&dir, EPOCH + 1).unwrap();
    assert_ne!(
        cache.key(&specs[0].canonical_bytes()),
        other.key(&specs[0].canonical_bytes())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicting_a_random_section_reproduces_identical_report_bytes() {
    let mut rng = Rng::new(0xE71C7);
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("evict_w{workers}"));
        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let pool = Pool::with_workers(workers);
        let (cold, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));

        let experiments = runner::all_experiments();
        let victim = experiments[(rng.gen_u64() % experiments.len() as u64) as usize];
        assert!(
            cache.evict(&report_gen::section_spec(victim)),
            "victim section '{}' was not in the cache",
            victim.id()
        );
        let (healed, exec) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert_eq!(
            cold,
            healed,
            "evicting '{}' changed the rebuilt report bytes",
            victim.id()
        );
        // Exactly the victim re-ran.
        let reran: Vec<&str> = exec.stats.per_experiment.iter().map(|(id, _)| *id).collect();
        assert_eq!(reran, [victim.id()], "partial rebuild ran the wrong set");

        // Evicting the manifest forces a full cold rebuild — same bytes.
        assert!(cache.evict(&report_gen::manifest_spec(&experiments)));
        let (rebuilt, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert_eq!(cold, rebuilt, "manifest eviction changed report bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn evicting_a_random_csv_entry_reproduces_identical_bytes() {
    let mut rng = Rng::new(0xCC5);
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("csv_evict_w{workers}"));
        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let pool = Pool::with_workers(workers);
        let (cold, _) = csv_export::build_all_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));

        // Pick a seeded-random export file and evict its entry.
        let files: Vec<&str> = cold.files().collect();
        let victim = files[(rng.gen_u64() % files.len() as u64) as usize];
        let owner_id = cold.get(victim).expect("present").experiment;
        let owner = *runner::all_experiments()
            .iter()
            .find(|e| e.id() == owner_id)
            .expect("owner registered");
        assert!(
            cache.evict(&csv_export::file_spec(victim, owner)),
            "victim file '{victim}' was not in the cache"
        );
        let (healed, _) = csv_export::build_all_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        for (a, b) in cold.iter().zip(healed.iter()) {
            assert_eq!(a.contents, b.contents, "{} changed after evicting {victim}", a.file);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The analytic fast path must be invisible to the cache: a grid priced
/// with the fast path enabled produces byte-identical CSV — including
/// every degraded `status=error` row — to the same grid priced through
/// the full DES engine, and the two populate interchangeable cache
/// entries. A warm replay answers every cell from disk (fast-path cells
/// are never silently re-priced) whichever engine warms it.
#[test]
fn fast_path_cells_cache_identically_and_never_mask_errors() {
    let spec = sweep::batch_wall(BenchmarkId::MlpfRes50Mx);
    let pool = Pool::with_workers(4);

    // Cold-price the grid twice, once per engine, in separate caches.
    let fast_dir = tmp("fastpath_on");
    let fast_cache = DiskCache::open_with_epoch(&fast_dir, EPOCH).unwrap();
    let fast_ctx = Ctx::new().with_fastpath(true);
    let fast = sweep::run_pooled(&pool, &fast_ctx, &spec, Some(&fast_cache));

    let slow_dir = tmp("fastpath_off");
    let slow_cache = DiskCache::open_with_epoch(&slow_dir, EPOCH).unwrap();
    let slow = sweep::run_pooled(
        &pool,
        &Ctx::new().with_fastpath(false),
        &spec,
        Some(&slow_cache),
    );

    // Identical bytes — the OOM wall degrades the same cells to the same
    // error rows regardless of engine (the fast path cannot turn an
    // error into a success or vice versa).
    assert_eq!(sweep::to_csv(&fast), sweep::to_csv(&slow));
    assert!(fast.errors() > 0, "the batch wall must be hit");
    let (attempts, _) = fast_ctx.fast_stats();
    assert!(attempts > 0, "fast path was never consulted");

    // Cross-warm: the DES-priced cache answers a fast-path context (and
    // vice versa) from disk, with zero recomputation and the same bytes.
    for (cache, ctx) in [
        (&slow_cache, Ctx::new().with_fastpath(true)),
        (&fast_cache, Ctx::new().with_fastpath(false)),
    ] {
        let warm = sweep::run_pooled(&pool, &ctx, &spec, Some(cache));
        assert_eq!(warm.disk_hits(), warm.cells.len(), "warm run recomputed");
        assert_eq!(sweep::to_csv(&warm), sweep::to_csv(&fast));
        let (attempts, _) = ctx.fast_stats();
        assert_eq!(attempts, 0, "a disk hit must never re-price a cell");
    }
    let _ = std::fs::remove_dir_all(&fast_dir);
    let _ = std::fs::remove_dir_all(&slow_dir);
}

#[test]
fn sweep_cells_cache_and_replay_through_the_engine() {
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("cells_w{workers}"));
        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let pool = Pool::with_workers(workers);
        for spec in sweep::registry() {
            let cold = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&cache));
            let warm = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&cache));
            assert_eq!(
                sweep::to_csv(&cold),
                sweep::to_csv(&warm),
                "sweep '{}' warm bytes differ",
                spec.name
            );
            assert_eq!(
                warm.disk_hits(),
                warm.cells.len(),
                "sweep '{}' warm run recomputed cells",
                spec.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
