//! Differential battery for the replication layer (DESIGN.md "Variance
//! model").
//!
//! The contract under test:
//!
//! (a) **runs=1 is invisible** — a sweep priced at `MLPERF_RUNS=1` (or
//!     with the knob unset) produces byte-identical CSVs to the pre-knob
//!     code path: same header, same rows, no distribution columns;
//! (b) **replicated sweeps replay** — at `MLPERF_RUNS=8` the streamed
//!     bytes are identical across two replays and across 1 vs 4 pool
//!     workers;
//! (c) **base columns never move** — every replicated row is the runs=1
//!     row plus exactly the six distribution columns, and the summary is
//!     internally ordered (p5 ≤ median ≤ p95, CI brackets the median);
//! (d) **cache keys are run-count-aware** — a shared disk cache never
//!     serves a runs=1 entry to a runs=8 sweep or vice versa, and both
//!     warm up to byte-identical replays.

use mlperf_suite::runner::{Ctx, Pool};
use mlperf_suite::sweep::{self, DiskCache, RunStats};
use std::path::PathBuf;

/// A fixed cache epoch so test keys never depend on the build fingerprint.
const EPOCH: u64 = 0x5EED_BEEF;

/// The `MLPERF_JOBS` axis every replicated byte must be invariant to.
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlperf_replication_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn streamed(ctx: &Ctx, workers: usize, grid: &sweep::SweepSpec) -> String {
    let mut out = Vec::new();
    sweep::run_streamed(&Pool::with_workers(workers), ctx, grid, None, &mut out, 8)
        .expect("streamed sweep");
    String::from_utf8(out).expect("utf8 csv")
}

#[test]
fn runs_one_is_byte_identical_to_the_unset_knob() {
    let grid = sweep::figure4_scaling();
    let unset = sweep::to_csv(&sweep::run_serial(&Ctx::new(), &grid, None));
    let one = sweep::to_csv(&sweep::run_serial(&Ctx::new().with_runs(1), &grid, None));
    assert_eq!(unset, one, "MLPERF_RUNS=1 must be the pre-knob bytes");
    let header = unset.lines().next().expect("header");
    for col in RunStats::COLUMNS {
        assert!(!header.contains(col), "runs=1 header leaked '{col}'");
    }
}

#[test]
fn replicated_sweep_replays_bitwise_across_replays_and_workers() {
    let grid = sweep::figure4_scaling();
    let ctx = Ctx::new().with_runs(8);
    let mut transcripts = Vec::new();
    for workers in WORKER_COUNTS {
        for _replay in 0..2 {
            transcripts.push(streamed(&ctx, workers, &grid));
        }
    }
    assert!(
        transcripts.windows(2).all(|w| w[0] == w[1]),
        "replicated sweep bytes differ across replays or worker counts"
    );
    let header = transcripts[0].lines().next().expect("header");
    assert!(
        header.ends_with("runs,epochs_median,epochs_p5,epochs_p95,epochs_ci_lo,epochs_ci_hi,error"),
        "replicated header misses the distribution columns: {header}"
    );
}

#[test]
fn replicated_rows_extend_the_point_rows_and_order_their_quantiles() {
    let grid = sweep::figure4_scaling();
    let one = sweep::to_csv(&sweep::run_serial(&Ctx::new(), &grid, None));
    let eight = sweep::to_csv(&sweep::run_serial(&Ctx::new().with_runs(8), &grid, None));

    let ones: Vec<&str> = one.lines().skip(1).collect();
    let eights: Vec<&str> = eight.lines().skip(1).collect();
    assert_eq!(ones.len(), eights.len(), "row count changed under replication");

    let extra = RunStats::COLUMNS.len();
    let mut checked = 0;
    for (narrow, wide) in ones.iter().zip(&eights) {
        let n: Vec<&str> = narrow.split(',').collect();
        let w: Vec<&str> = wide.split(',').collect();
        // Error rows quote free-form messages; the battery's base-column
        // law is about priced rows (errors are covered by byte equality
        // of the runs=1 sweep above).
        if !narrow.contains(",ok,") {
            continue;
        }
        checked += 1;
        assert_eq!(w.len(), n.len() + extra, "column arithmetic: {wide}");
        // Base columns (everything before the trailing error column) are
        // byte-identical; the six distribution columns slot in before it.
        assert_eq!(n[..n.len() - 1], w[..n.len() - 1], "base columns moved: {wide}");
        let stats: Vec<f64> = w[n.len() - 1..w.len() - 1]
            .iter()
            .map(|v| v.parse().expect("numeric distribution column"))
            .collect();
        let (runs, median, p5, p95, ci_lo, ci_hi) =
            (stats[0], stats[1], stats[2], stats[3], stats[4], stats[5]);
        assert_eq!(runs, 8.0, "{wide}");
        assert!(p5 <= median && median <= p95, "quantile order: {wide}");
        assert!(ci_lo <= median && median <= ci_hi, "CI bracket: {wide}");
    }
    assert!(checked > 0, "the grid priced no cells at all");
}

#[test]
fn disk_cache_keys_are_run_count_aware_and_round_trip() {
    let dir = tmp("cache");
    let cache = DiskCache::open_with_epoch(&dir, EPOCH).expect("open cache");
    let grid = sweep::figure4_scaling();
    let cells = grid.len() as u64;

    let one_cold = sweep::to_csv(&sweep::run_serial(&Ctx::new(), &grid, Some(&cache)));
    let eight_cold =
        sweep::to_csv(&sweep::run_serial(&Ctx::new().with_runs(8), &grid, Some(&cache)));
    // Distinct run counts must found distinct entries: the second cold
    // sweep stores every cell again instead of hitting the first's.
    let s = cache.stats();
    assert_eq!((s.hits, s.stores), (0, 2 * cells), "runs=1 and runs=8 shared a cache slot");

    let one_warm = sweep::to_csv(&sweep::run_serial(&Ctx::new(), &grid, Some(&cache)));
    let eight_warm =
        sweep::to_csv(&sweep::run_serial(&Ctx::new().with_runs(8), &grid, Some(&cache)));
    let s = cache.stats();
    assert_eq!((s.hits, s.stores), (2 * cells, 2 * cells), "warm sweeps missed the cache");
    assert_eq!(one_cold, one_warm, "runs=1 bytes drifted through the cache");
    assert_eq!(eight_cold, eight_warm, "runs=8 bytes drifted through the cache");
    assert_ne!(one_cold, eight_cold, "replication never widened the rows");

    let _ = std::fs::remove_dir_all(&dir);
}
