//! Golden-file tests: the CSV exports regenerate the checked-in
//! `artifacts/` byte-for-byte.
//!
//! The whole pipeline behind these files — synthetic data, simulation,
//! analysis, rendering — is deterministic (see the "Offline build &
//! determinism policy" section in DESIGN.md), so exact equality is the
//! contract. If an intentional model change shifts numbers, regenerate
//! with `cargo run -p mlperf-suite --bin repro -- --csv artifacts`
//! and commit the diff alongside the change that caused it.

use mlperf_suite::csv_export;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn artifacts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../artifacts")
}

#[test]
fn regenerated_csvs_match_checked_in_artifacts_byte_for_byte() {
    let built = csv_export::build_all().expect("export builds");
    assert!(!built.is_empty());
    for export in &built {
        let name = export.file;
        let path = artifacts_dir().join(name);
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("artifacts/{name} unreadable: {e}"));
        assert_eq!(
            export.contents, on_disk,
            "artifacts/{name} drifted from the generator; regenerate and commit if intended"
        );
    }
}

#[test]
fn every_artifact_on_disk_is_still_generated() {
    // Coverage in the other direction: no orphaned CSVs lingering after a
    // rename, and no generated table missing from the repo.
    let built: BTreeSet<String> = csv_export::build_all()
        .expect("export builds")
        .files()
        .map(str::to_string)
        .collect();
    let on_disk: BTreeSet<String> = std::fs::read_dir(artifacts_dir())
        .expect("artifacts/ exists")
        .map(|e| e.expect("dir entry").file_name().into_string().expect("utf-8 name"))
        .filter(|n| n.ends_with(".csv"))
        .collect();
    assert_eq!(built, on_disk, "artifacts/ and csv_export::build_all() must list the same files");
}
