//! Hostile-client battery for `repro serve` (DESIGN.md "Durability
//! model"): clients that misbehave at the transport layer — oversized
//! frames, half-written requests, slow-loris senders, stalled readers —
//! must get deterministic typed error frames (or a quiet reap), never
//! hang a handler thread or take the server down; and shutdown must
//! drain established connections with a typed frame instead of cutting
//! them off mid-protocol.

use mlperf_suite::serve::{self, protocol, ServeOptions, ServeStats, Server};
use mlperf_suite::Config;
use std::io::{Cursor, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn test_config(jobs: usize) -> Config {
    Config { jobs, cache_enabled: false, ..Config::default() }
}

fn sock(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mlperf_hostile_{name}.sock"));
    let _ = std::fs::remove_file(&p);
    p
}

fn shut_down(socket: &Path) {
    let mut input = Cursor::new(br#"{"v":1,"kind":"shutdown"}"#.to_vec());
    let mut out = Vec::new();
    serve::replay_client(socket, &mut input, &mut out).expect("shutdown");
}

/// Connect a raw (non-protocol) client. The generous client-side read
/// timeout turns a server that never closes into a test failure instead
/// of a hang.
fn connect(socket: &Path) -> UnixStream {
    let stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
}

/// Read until the server closes the connection; panics if it never does.
fn read_to_eof(stream: &mut UnixStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) => panic!("server never closed the hostile connection: {e}"),
        }
    }
}

/// Read until the connection goes away, by clean EOF *or* reset — a
/// forcibly reaped client has no claim to a graceful close.
fn read_until_closed(stream: &mut UnixStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return out,
            Err(e) => panic!("server neither closed nor reset the connection: {e}"),
        }
    }
}

/// Read one `\n`-terminated frame.
fn read_frame(stream: &mut UnixStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("connection closed mid-frame: {out:?}"),
            Ok(_) if byte[0] == b'\n' => {
                out.push(b'\n');
                return String::from_utf8(out).expect("utf8 frame");
            }
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("read stalled mid-frame: {e}"),
        }
    }
}

/// Bind a server, run the hostile scenario against it, then shut it
/// down cleanly and hand back the stats — proving the server survived
/// the abuse well enough to exit on request.
fn with_server<T>(
    opts: &ServeOptions,
    cfg: &Config,
    scenario: impl FnOnce(&Path) -> T,
) -> (T, ServeStats) {
    let server = Server::bind(opts, cfg).expect("bind");
    let out = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run().expect("serve"));
        // Shut the server down even when the scenario fails an
        // assertion; otherwise the scope hangs joining the daemon and
        // the panic never surfaces.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scenario(server.socket())
        }));
        shut_down(server.socket());
        daemon.join().expect("daemon panicked");
        out.unwrap_or_else(|p| std::panic::resume_unwind(p))
    });
    (out, server.stats())
}

/// A healthy protocol exchange proving the server still answers.
fn assert_alive(socket: &Path) {
    let mut input = Cursor::new(br#"{"v":1,"id":"alive","kind":"ping"}"#.to_vec());
    let mut out = Vec::new();
    serve::replay_client(socket, &mut input, &mut out).expect("liveness ping");
    assert_eq!(
        String::from_utf8(out).unwrap(),
        protocol::pong_frame("alive"),
        "server stopped answering after hostile traffic"
    );
}

#[test]
fn oversized_frames_get_a_typed_error_then_the_connection_closes() {
    for jobs in [1usize, 4] {
        let opts = ServeOptions {
            socket: sock(&format!("oversize_j{jobs}")),
            max_frame: Some(128),
            ..ServeOptions::default()
        };
        let expected =
            protocol::error_frame("-", protocol::FRAME_TOO_LARGE, "request frame exceeds 128 bytes");
        let (frames, stats) = with_server(&opts, &test_config(jobs), |socket| {
            // A terminated oversized line, and an unterminated flood (the
            // limit must trip on buffered bytes without waiting for a
            // newline that may never come).
            let mut frames = Vec::new();
            for terminated in [true, false] {
                let mut s = connect(socket);
                let mut payload = vec![b'x'; 4096];
                if terminated {
                    payload.push(b'\n');
                }
                s.write_all(&payload).expect("hostile write");
                frames.push(String::from_utf8(read_to_eof(&mut s)).unwrap());
            }
            assert_alive(socket);
            frames
        });
        for frame in &frames {
            assert_eq!(frame, &expected, "oversized-frame answer must be typed and exact");
        }
        assert_eq!(stats.frames_too_large, 2);
        // A frame of exactly the limit is legal: the limit is a max, not
        // a fence below it (the bad-request answer proves it was parsed).
        let opts = ServeOptions {
            socket: sock(&format!("exact_j{jobs}")),
            max_frame: Some(128),
            ..ServeOptions::default()
        };
        let ((), stats) = with_server(&opts, &test_config(jobs), |socket| {
            let mut s = connect(socket);
            let mut line = vec![b'y'; 127];
            line.push(b'\n');
            s.write_all(&line).expect("write");
            let frame = read_frame(&mut s);
            assert!(
                frame.contains(protocol::BAD_REQUEST),
                "an exactly-max frame must reach the parser: {frame}"
            );
        });
        assert_eq!(stats.frames_too_large, 0);
    }
}

#[test]
fn half_written_requests_are_dropped_without_a_response() {
    let opts = ServeOptions { socket: sock("partial"), ..ServeOptions::default() };
    let ((), stats) = with_server(&opts, &test_config(2), |socket| {
        let mut s = connect(socket);
        s.write_all(br#"{"v":1,"kind":"pi"#).expect("partial write");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let answer = read_to_eof(&mut s);
        assert!(
            answer.is_empty(),
            "a fragment must never be parsed or answered: {answer:?}"
        );
        assert_alive(socket);
    });
    assert_eq!(stats.dropped_partial, 1);
    assert_eq!(stats.error_responses, 0, "the fragment must not count as a bad request");
}

#[test]
fn slow_loris_senders_are_reaped_at_the_frame_deadline() {
    let opts = ServeOptions {
        socket: sock("loris"),
        read_timeout_ms: Some(300),
        ..ServeOptions::default()
    };
    let ((), stats) = with_server(&opts, &test_config(2), |socket| {
        // A mute connection: never sends a byte.
        let mut mute = connect(socket);
        assert!(read_to_eof(&mut mute).is_empty(), "mute client got a response");

        // A trickler: keeps the socket technically active, one byte at a
        // time, but never finishes a frame inside the deadline. Per-read
        // timeouts alone would never fire; the per-frame budget must.
        let mut trickle = connect(socket);
        let query = br#"{"v":1,"kind":"ping"}"#;
        let mut cut_off = false;
        for byte in query.iter().cycle().take(40) {
            if trickle.write_all(std::slice::from_ref(byte)).is_err() {
                cut_off = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(150));
        }
        if !cut_off {
            // The write side may outlive the reap by one buffered byte;
            // the read side must still see the hang-up.
            let _ = read_until_closed(&mut trickle);
        }
        assert_alive(socket);
    });
    assert!(
        stats.reaped >= 2,
        "both the mute and the trickling client must be reaped, got {}",
        stats.reaped
    );
    assert_eq!(stats.queries, 2, "only the liveness ping and shutdown were parsed");
}

#[test]
fn stalled_readers_are_reaped_at_the_write_deadline() {
    let opts = ServeOptions {
        socket: sock("stalled_reader"),
        write_timeout_ms: Some(300),
        ..ServeOptions::default()
    };
    let ((), stats) = with_server(&opts, &test_config(2), |socket| {
        let mut s = connect(socket);
        // Demand far more response bytes than a socket buffer holds and
        // never read them: the server's writes must hit the deadline
        // instead of blocking this handler thread forever. Pings keep
        // the response volume exact (one pong per query) and the server
        // CPU-idle, so only the stalled read side can be what trips it.
        let query = b"{\"v\":1,\"id\":\"flood\",\"kind\":\"ping\"}\n";
        for _ in 0..40_000 {
            if s.write_all(query).is_err() {
                break; // the reap can close the socket mid-flood
            }
        }
        // Drain whatever was buffered; the reap shows up as EOF or a
        // reset (the server closed with our unread flood still queued).
        let _ = read_until_closed(&mut s);
        assert_alive(socket);
    });
    assert!(stats.reaped >= 1, "the stalled reader was never reaped");
}

#[test]
fn shutdown_drains_established_connections_with_a_typed_frame() {
    for jobs in [1usize, 4] {
        let opts = ServeOptions {
            socket: sock(&format!("drain_j{jobs}")),
            ..ServeOptions::default()
        };
        let server = Server::bind(&opts, &test_config(jobs)).expect("bind");
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run().expect("serve"));

            // Client A establishes a healthy session...
            let mut a = connect(server.socket());
            a.write_all(b"{\"v\":1,\"id\":\"a1\",\"kind\":\"ping\"}\n").unwrap();
            assert_eq!(read_frame(&mut a), protocol::pong_frame("a1"));

            // ...then client B orders shutdown and holds the ack. The
            // flag is stored before the ack is written, so A's next
            // query is guaranteed to see the drain.
            shut_down(server.socket());
            a.write_all(
                b"{\"v\":1,\"id\":\"a2\",\"kind\":\"cell\",\"workload\":\"MLPf_Res50_MX\",\"system\":\"DSS_8440\",\"gpus\":4}\n",
            )
            .unwrap();
            assert_eq!(
                read_frame(&mut a),
                protocol::error_frame("a2", protocol::SHUTTING_DOWN, "server is draining"),
                "drained query must get the typed shutting-down frame"
            );
            // The drain frame is the connection's last: the server closes
            // A, joins every handler, and exits cleanly.
            assert!(read_to_eof(&mut a).is_empty());
            daemon.join().expect("daemon panicked");
        });
        let stats = server.stats();
        assert_eq!(stats.drained, 1, "exactly one query was drained");
        assert!(!server.socket().exists(), "socket must be unlinked on exit");
    }
}
