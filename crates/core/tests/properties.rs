//! Property-based tests for the suite layer: report rendering and the
//! benchmark registry.

use mlperf_suite::{BenchmarkId, Table};
use mlperf_testkit::prop::*;

/// Cells drawn from a pool that includes every character the CSV and
/// markdown escapers special-case.
fn arb_cell() -> impl Gen<Value = String> {
    let ch = elements(&['a', 'B', '3', ' ', ',', '"', '|', '\n', '-']);
    vec_of(ch, 0usize..8).prop_map(|cs| cs.into_iter().collect())
}

/// A table with 1..5 columns and 0..6 rows of arbitrary cells.
fn arb_table() -> impl Gen<Value = Table> {
    (1usize..5).prop_flat_map(|cols| {
        (
            vec_of(arb_cell(), just(cols)),
            vec_of(vec_of(arb_cell(), just(cols)), 0usize..6),
        )
            .prop_map(|(headers, rows)| {
                let mut t = Table::new("t", headers);
                for row in rows {
                    t.add_row(row);
                }
                t
            })
    })
}

/// A minimal RFC-4180 reader: the inverse of [`Table::to_csv`].
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut cell_started = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push(c);
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    cell_started = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut cell));
                    cell_started = false;
                }
                '\n' => {
                    record.push(std::mem::take(&mut cell));
                    records.push(std::mem::take(&mut record));
                    cell_started = false;
                }
                other => {
                    cell.push(other);
                    cell_started = true;
                }
            }
        }
    }
    if cell_started || !cell.is_empty() || !record.is_empty() {
        record.push(cell);
        records.push(record);
    }
    records
}

mlperf_testkit::properties! {
    /// CSV export round-trips arbitrary cells — commas, quotes, and
    /// newlines included — through an RFC-4180 reader.
    #[test]
    fn csv_round_trips_arbitrary_cells(
        cells in vec_of(arb_cell(), 1usize..5),
        extra_rows in vec_of(just(()), 0usize..3)
    ) {
        let mut t = Table::new("t", cells.clone());
        for _ in &extra_rows {
            t.add_row(cells.clone());
        }
        let parsed = parse_csv(&t.to_csv());
        prop_assert_eq!(parsed.len(), 1 + extra_rows.len(), "header + data rows");
        for record in &parsed {
            prop_assert_eq!(record, &cells);
        }
    }

    /// Generated tables round-trip too, independent of shape.
    #[test]
    fn csv_record_count_tracks_rows(t in arb_table()) {
        let parsed = parse_csv(&t.to_csv());
        prop_assert_eq!(parsed.len(), t.row_count() + 1);
        let width = parsed[0].len();
        prop_assert!(parsed.iter().all(|r| r.len() == width), "rectangular output");
    }

    /// Markdown never leaks a raw newline or pipe out of a cell: the
    /// rendered line count depends only on the row count.
    #[test]
    fn markdown_line_count_is_shape_determined(t in arb_table()) {
        let md = t.to_markdown();
        // Heading, blank, header row, separator, then one line per row.
        prop_assert_eq!(md.lines().count(), 4 + t.row_count());
    }

    /// The plain-text rendering is rectangular for newline-free cells:
    /// every bordered line has the same width.
    #[test]
    fn display_is_rectangular(widths in vec_of(0usize..7, 1usize..5), rows in 0usize..5) {
        let headers: Vec<String> = widths.iter().map(|&w| "h".repeat(w)).collect();
        let mut t = Table::new("title", headers);
        for i in 0..rows {
            t.add_row(widths.iter().map(|&w| "c".repeat(w.saturating_sub(i % 2))));
        }
        let text = t.to_string();
        let bordered: Vec<&str> = text.lines().skip(1).collect();
        let first = bordered.first().map(|l| l.len()).unwrap_or(0);
        prop_assert!(bordered.iter().all(|l| l.len() == first), "{text}");
    }

    /// Registry containment: Table IV rows are MLPerf benchmarks, MLPerf
    /// benchmarks are registered, and identity accessors are total.
    #[test]
    fn registry_is_consistent(idx in 0usize..9) {
        let b = BenchmarkId::ALL[idx];
        prop_assert!(!b.abbreviation().is_empty());
        prop_assert!(!b.domain().is_empty());
        prop_assert!(!b.quality_target().is_empty());
        prop_assert!(b.model().params() > 0, "{} has a non-trivial model", b.abbreviation());
        if BenchmarkId::TABLE_IV.contains(&b) {
            prop_assert!(BenchmarkId::MLPERF.contains(&b));
        }
        if BenchmarkId::MLPERF.contains(&b) {
            prop_assert!(BenchmarkId::ALL.contains(&b));
        }
        // Abbreviations identify benchmarks uniquely.
        for other in BenchmarkId::ALL {
            if other != b {
                prop_assert_ne!(other.abbreviation(), b.abbreviation());
            }
        }
    }

    /// Every benchmark's training job is runnable metadata: positive batch
    /// and a dataset that matches the registry.
    #[test]
    fn jobs_are_well_formed(idx in 0usize..9) {
        let b = BenchmarkId::ALL[idx];
        let job = b.job();
        prop_assert!(job.per_gpu_batch() >= 1);
        prop_assert_eq!(job.pipeline().dataset(), b.dataset());
    }
}
