//! The streaming-sweep contract at scale.
//!
//! `sweep::run_streamed` promises the bytes of the in-memory path —
//! header plus one row per cell in odometer order, identical quoting —
//! while holding only one shard of priced cells resident at a time. This
//! battery runs a 10^5-cell prefix of the million-cell stress grid both
//! ways and compares the output byte for byte, checks that degraded
//! cells still stream as `status=error` rows, and uses the summary's
//! `peak_resident` counter to prove buffering stayed shard-bounded.

use mlperf_suite::runner::{Ctx, Pool};
use mlperf_suite::sweep;

/// 10^5-cell prefix: 16 full (workload, system, gpus, precision) blocks
/// of the batch axis plus a partial 17th.
const PREFIX: usize = 100_032;

#[test]
fn streamed_hundred_thousand_cells_match_in_memory_bytes() {
    let spec = sweep::million_cell().truncate(PREFIX);
    assert_eq!(spec.len(), PREFIX);

    let pool = Pool::with_workers(4);
    let shard = 1024;
    let mut streamed = Vec::new();
    let summary = sweep::run_streamed(
        &pool,
        &Ctx::new(),
        &spec,
        None,
        &mut streamed,
        shard,
    )
    .unwrap();
    assert_eq!(summary.cells, PREFIX);
    assert!(
        summary.peak_resident <= shard,
        "streaming held {} cells resident, shard bound is {shard}",
        summary.peak_resident
    );
    // The grid crosses the OOM wall thousands of times; those cells must
    // stream as data rows, not abort the run.
    assert!(summary.errors > 0, "prefix never hit the OOM wall");
    assert!(summary.errors < summary.cells, "every cell degraded");

    let in_memory = sweep::to_csv(&sweep::run_pooled(&pool, &Ctx::new(), &spec, None));
    let streamed = String::from_utf8(streamed).unwrap();
    assert_eq!(streamed, in_memory, "streamed bytes diverge from to_csv");

    // Row accounting: header + one line per cell, errors spelled as rows.
    assert_eq!(streamed.lines().count(), PREFIX + 1);
    let error_rows = streamed.lines().filter(|l| l.contains(",error,")).count();
    assert_eq!(error_rows, summary.errors);
}

/// The streamed rows come out in exactly the odometer order `cell_at`
/// defines — spot-checked against decoded coordinates at both ends and
/// across a shard boundary.
#[test]
fn streamed_rows_follow_odometer_order() {
    let spec = sweep::million_cell().truncate(2100);
    let mut out = Vec::new();
    let shard = 512;
    sweep::run_streamed(&Pool::with_workers(2), &Ctx::new(), &spec, None, &mut out, shard)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    let rows: Vec<&str> = text.lines().skip(1).collect();
    assert_eq!(rows.len(), 2100);
    for i in [0, 1, shard - 1, shard, shard + 1, 2099] {
        let cell = spec.cell_at(i);
        let batch = cell.batch.expect("batch axis always set").to_string();
        let cols: Vec<&str> = rows[i].split(',').collect();
        assert_eq!(cols[3], batch, "row {i} batch column");
    }
}

/// A truncated spec and the full grid must never share cache entries:
/// their canonical identities differ even though the prefix cells agree.
#[test]
fn truncated_grid_has_its_own_identity() {
    let full = sweep::million_cell();
    let cut = sweep::million_cell().truncate(PREFIX);
    assert_eq!(full.len(), 999_936);
    assert_ne!(full.canonical_bytes(), cut.canonical_bytes());
    // The prefix cells themselves are the same cells.
    assert_eq!(full.cell_at(0), cut.cell_at(0));
    assert_eq!(full.cell_at(PREFIX - 1), cut.cell_at(PREFIX - 1));
}
