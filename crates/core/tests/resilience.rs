//! Integration tests for the resilient executor: panic isolation, typed
//! errors, deterministic retry traces, cooperative step budgets, chaos
//! injection, and degraded-mode report/CSV placeholders.
//!
//! The contract under test is DESIGN.md's "Executor failure model": a
//! failing experiment never takes the run down with it, its transitive
//! dependents fail typed as `DependencyFailed`, every unaffected
//! experiment's bytes are identical to a fully-healthy run, and the
//! retry trace replays byte-for-byte from the public seed.

use mlperf_hw::SystemId;
use mlperf_sim::SimError;
use mlperf_suite::runner::{
    self, fnv1a64, Artifact, BudgetExceeded, ChaosSpec, Ctx, Experiment, ExperimentError, Pool,
    ResilienceConfig, TrainPoint, DEFAULT_RETRY_SEED,
};
use mlperf_suite::{csv_export, report_gen, BenchmarkId};
use mlperf_testkit::chaos::{ChaosAction, ChaosPlan};
use mlperf_testkit::prop::*;
use mlperf_testkit::rng::Rng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, Once};

/// Injected panics unwind through the executor's catch boundary by
/// design; keep the default hook from spraying their backtraces over the
/// test output while leaving every other panic (real assertion failures)
/// untouched.
fn quiet_chaos_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("chaos") && !info.payload().is::<BudgetExceeded>() {
                prev(info);
            }
        }));
    });
}

/// A minimal experiment: prices one real simulation point and renders a
/// fixed one-line section, so byte comparisons are meaningful but cheap.
struct PointExp {
    id: &'static str,
    deps: &'static [&'static str],
    system: SystemId,
    gpus: u32,
}

impl Experiment for PointExp {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        "synthetic point experiment"
    }
    fn deps(&self) -> &'static [&'static str] {
        self.deps
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        let point = TrainPoint::new(BenchmarkId::MlpfRes50Mx, self.system, self.gpus);
        ctx.step(&point)?;
        Ok(Artifact::Table2)
    }
    fn render(&self, _artifact: &Artifact) -> String {
        format!("{}: ok\n", self.id)
    }
}

/// A five-node DAG with two independent chains, so sabotaging one chain
/// must leave the other's bytes untouched:
/// `alpha -> gamma -> delta` and `beta -> epsilon`.
const ALPHA: PointExp = PointExp {
    id: "syn-alpha",
    deps: &[],
    system: SystemId::C4140K,
    gpus: 1,
};
const BETA: PointExp = PointExp {
    id: "syn-beta",
    deps: &[],
    system: SystemId::T640,
    gpus: 1,
};
const GAMMA: PointExp = PointExp {
    id: "syn-gamma",
    deps: &["syn-alpha"],
    system: SystemId::C4140K,
    gpus: 2,
};
const DELTA: PointExp = PointExp {
    id: "syn-delta",
    deps: &["syn-gamma"],
    system: SystemId::C4140K,
    gpus: 4,
};
const EPSILON: PointExp = PointExp {
    id: "syn-epsilon",
    deps: &["syn-beta"],
    system: SystemId::T640,
    gpus: 2,
};

fn synthetic_dag() -> Vec<&'static dyn Experiment> {
    vec![&ALPHA, &BETA, &GAMMA, &DELTA, &EPSILON]
}

/// Everything reachable from `roots` by following dependency edges
/// forward (the experiments whose sections are allowed to degrade).
fn transitive_dependents(
    experiments: &[&dyn Experiment],
    roots: &HashSet<&str>,
) -> HashSet<&'static str> {
    let mut affected: HashSet<&'static str> = HashSet::new();
    loop {
        let mut changed = false;
        for e in experiments {
            if !affected.contains(e.id())
                && e.deps()
                    .iter()
                    .any(|d| roots.contains(d) || affected.contains(d))
            {
                affected.insert(e.id());
                changed = true;
            }
        }
        if !changed {
            return affected;
        }
    }
}

/// Wraps an experiment behind the testkit's seeded [`ChaosPlan`]: at the
/// run site the plan decides whether to proceed, panic, return a typed
/// error, or emit a non-finite result — and records what it did so the
/// property can compute the expected blast radius.
struct ChaosExp<'a> {
    inner: &'a dyn Experiment,
    plan: &'a Mutex<ChaosPlan>,
    acted: &'a Mutex<Vec<(&'static str, ChaosAction)>>,
}

impl Experiment for ChaosExp<'_> {
    fn id(&self) -> &'static str {
        self.inner.id()
    }
    fn title(&self) -> &'static str {
        self.inner.title()
    }
    fn deps(&self) -> &'static [&'static str] {
        self.inner.deps()
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        let action = self.plan.lock().unwrap().decide(self.id());
        if action != ChaosAction::Proceed {
            self.acted.lock().unwrap().push((self.id(), action));
        }
        match action {
            ChaosAction::Proceed => self.inner.run(ctx),
            ChaosAction::Panic => std::panic::panic_any(format!(
                "chaos: scripted panic in '{}'",
                self.id()
            )),
            ChaosAction::Error => Err(ExperimentError::from(SimError::BadGpuSet(format!(
                "chaos: scripted error in '{}'",
                self.id()
            )))),
            ChaosAction::NonFinite => Err(ExperimentError::NonFiniteOutput {
                context: format!("chaos: scripted NaN in '{}'", self.id()),
            }),
        }
    }
    fn render(&self, artifact: &Artifact) -> String {
        self.inner.render(artifact)
    }
}

mlperf_testkit::properties! {
    /// For any seed, fault mix, and worker count: experiments outside the
    /// blast radius of the injected failures render byte-identically to a
    /// fully-healthy run, and everything inside it fails typed.
    #[test]
    fn healthy_subgraph_bytes_survive_injected_failures(
        seed in 0u64..1 << 48,
        workers in 1usize..=4
    ) {
        quiet_chaos_panics();
        let experiments = synthetic_dag();
        let cfg = ResilienceConfig {
            retries: 0,
            ..ResilienceConfig::resilient()
        };
        let baseline = runner::execute_resilient(
            &Pool::with_workers(workers),
            &Ctx::new(),
            &experiments,
            &cfg,
        );
        prop_assert!(!baseline.degraded(), "baseline run must be healthy");

        let plan = Mutex::new(ChaosPlan::new(seed).with_rates(0.25, 0.15, 0.10));
        let acted = Mutex::new(Vec::new());
        let wrapped: Vec<ChaosExp> = experiments
            .iter()
            .map(|&e| ChaosExp { inner: e, plan: &plan, acted: &acted })
            .collect();
        let wrapped_dyn: Vec<&dyn Experiment> =
            wrapped.iter().map(|w| w as &dyn Experiment).collect();
        let chaotic = runner::execute_resilient(
            &Pool::with_workers(workers),
            &Ctx::new(),
            &wrapped_dyn,
            &cfg,
        );

        let sabotaged: HashSet<&str> =
            acted.lock().unwrap().iter().map(|(id, _)| *id).collect();
        let affected = transitive_dependents(&experiments, &sabotaged);
        for (b, c) in baseline.reports.iter().zip(&chaotic.reports) {
            prop_assert_eq!(b.id, c.id);
            if sabotaged.contains(b.id) || affected.contains(b.id) {
                prop_assert!(
                    c.error.is_some(),
                    "{} is in the blast radius but carries no error", c.id
                );
            } else {
                prop_assert!(
                    c.error.is_none(),
                    "{} is outside the blast radius but failed: {:?}", c.id, c.error
                );
                prop_assert_eq!(
                    &b.rendered, &c.rendered,
                    "healthy-subgraph bytes changed under chaos: {}", b.id
                );
            }
        }
        // Sabotaged experiments and their dependents are disjoint (a
        // dependent of a failure never reaches its own run site), so the
        // failure count is exactly the blast radius.
        prop_assert_eq!(chaotic.failures.len(), sabotaged.len() + affected.len());
    }
}

#[test]
fn chaos_isolates_the_victim_and_preserves_sibling_bytes() {
    quiet_chaos_panics();
    let experiments = runner::all_experiments();
    let cfg = ResilienceConfig::resilient();
    let baseline =
        runner::execute_resilient(&Pool::with_workers(4), &Ctx::new(), &experiments, &cfg);
    assert!(!baseline.degraded(), "baseline full DAG must be healthy");

    let chaos_cfg = ResilienceConfig {
        chaos: Some(ChaosSpec {
            target: "figure3".to_string(),
            attempts: u32::MAX,
        }),
        ..ResilienceConfig::resilient()
    };
    let chaotic =
        runner::execute_resilient(&Pool::with_workers(4), &Ctx::new(), &experiments, &chaos_cfg);
    assert!(chaotic.degraded());
    assert_eq!(
        chaotic.reports.len(),
        experiments.len(),
        "degraded mode must still produce one report per experiment"
    );

    let roots: HashSet<&str> = ["figure3"].into_iter().collect();
    let affected = transitive_dependents(&experiments, &roots);
    assert!(
        affected.contains("table1"),
        "table1 consumes figure3; the cascade test would be vacuous without it"
    );

    let victim = chaotic
        .failures
        .iter()
        .find(|f| f.id == "figure3")
        .expect("figure3 failure recorded in the appendix data");
    assert!(
        matches!(victim.error, ExperimentError::Panicked { .. }),
        "chaos panics must surface typed as Panicked: {}",
        victim.error
    );
    assert_eq!(victim.retries.len(), 2, "both configured retries recorded");

    for (b, c) in baseline.reports.iter().zip(&chaotic.reports) {
        if c.id == "figure3" {
            assert!(matches!(c.error, Some(ExperimentError::Panicked { .. })));
            assert!(c.rendered.contains("[degraded]"));
        } else if affected.contains(c.id) {
            assert!(
                matches!(c.error, Some(ExperimentError::DependencyFailed { .. })),
                "{} depends on the victim and must fail as DependencyFailed: {:?}",
                c.id,
                c.error
            );
        } else {
            assert_eq!(
                b.rendered, c.rendered,
                "unaffected sibling bytes changed under chaos: {}",
                c.id
            );
        }
    }
}

#[test]
fn retry_trace_replays_byte_identically_from_the_seed() {
    quiet_chaos_panics();
    let experiments: Vec<&dyn Experiment> = vec![&ALPHA, &GAMMA];
    let cfg = ResilienceConfig {
        chaos: Some(ChaosSpec {
            target: "syn-alpha".to_string(),
            attempts: u32::MAX,
        }),
        ..ResilienceConfig::resilient()
    };
    let run = |workers| {
        runner::execute_resilient(&Pool::with_workers(workers), &Ctx::new(), &experiments, &cfg)
    };
    let (a, b) = (run(1), run(4));
    assert_eq!(a.failures.len(), 2, "victim plus its dependent");
    let (fa, fb) = (&a.failures[0], &b.failures[0]);
    assert_eq!(fa.id, "syn-alpha");
    assert_eq!(
        fa.retries, fb.retries,
        "the retry trace must be schedule-invariant"
    );
    assert_eq!(fa.retries.len(), 2);

    // The trace is recomputable from the public contract alone: stream
    // fnv1a64(id) of the default seed, exponential backoff plus jitter.
    assert_eq!(fa.stream, fnv1a64("syn-alpha"));
    let mut rng = Rng::stream(DEFAULT_RETRY_SEED, fnv1a64("syn-alpha"));
    for (i, ev) in fa.retries.iter().enumerate() {
        let attempt = i as u32 + 1;
        let draw = rng.gen_u64();
        assert_eq!(ev.attempt, attempt);
        assert_eq!(ev.draw, draw, "recorded draw diverges from the seeded stream");
        assert_eq!(ev.backoff_ms, (50u64 << (attempt - 1).min(6)) + draw % 50);
    }
}

#[test]
fn transient_chaos_recovers_after_retry_and_records_it() {
    quiet_chaos_panics();
    let experiments: Vec<&dyn Experiment> = vec![&ALPHA, &GAMMA];
    let cfg = ResilienceConfig {
        chaos: Some(ChaosSpec {
            target: "syn-alpha".to_string(),
            attempts: 1,
        }),
        ..ResilienceConfig::resilient()
    };
    let ctx = Ctx::new();
    let execution =
        runner::execute_resilient(&Pool::with_workers(2), &ctx, &experiments, &cfg);
    assert!(
        !execution.degraded(),
        "one sabotaged attempt with two retries must recover"
    );
    assert_eq!(execution.recoveries.len(), 1);
    let r = &execution.recoveries[0];
    assert_eq!(r.id, "syn-alpha");
    assert_eq!(r.retries.len(), 1);
    assert_eq!(r.stream, fnv1a64("syn-alpha"));
    assert!(execution.reports.iter().all(|rep| rep.error.is_none()));
    assert!(
        ctx.artifact("syn-alpha").is_some(),
        "the recovered attempt must store its artifact"
    );
}

/// Panics on its first attempt *before* pricing anything; the retry
/// prices one point and succeeds.
struct FlakyBeforePricing {
    attempts: AtomicU32,
}

impl Experiment for FlakyBeforePricing {
    fn id(&self) -> &'static str {
        "syn-flaky-before"
    }
    fn title(&self) -> &'static str {
        "flaky before pricing"
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        if self.attempts.fetch_add(1, Ordering::SeqCst) == 0 {
            std::panic::panic_any("chaos: flaky before pricing".to_string());
        }
        ctx.step(&TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 1))?;
        Ok(Artifact::Table2)
    }
    fn render(&self, _artifact: &Artifact) -> String {
        "flaky-before: ok\n".to_string()
    }
}

/// Prices one point successfully, then panics on its first attempt; the
/// retry re-asks that point (cache hit) and prices a second one.
struct FlakyMidPricing {
    attempts: AtomicU32,
}

impl Experiment for FlakyMidPricing {
    fn id(&self) -> &'static str {
        "syn-flaky-mid"
    }
    fn title(&self) -> &'static str {
        "flaky mid pricing"
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        ctx.step(&TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 1))?;
        if self.attempts.fetch_add(1, Ordering::SeqCst) == 0 {
            std::panic::panic_any("chaos: flaky mid pricing".to_string());
        }
        ctx.step(&TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 2))?;
        Ok(Artifact::Table2)
    }
    fn render(&self, _artifact: &Artifact) -> String {
        "flaky-mid: ok\n".to_string()
    }
}

/// Prices a point that cannot fit in device memory: a deterministic
/// `SimError`, memoized as an error — never as a success.
struct OomExp;

impl Experiment for OomExp {
    fn id(&self) -> &'static str {
        "syn-oom"
    }
    fn title(&self) -> &'static str {
        "guaranteed out-of-memory point"
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        let point = TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 1)
            .with_per_gpu_batch(1 << 14);
        ctx.step(&point)?;
        Ok(Artifact::Table2)
    }
    fn render(&self, _artifact: &Artifact) -> String {
        "oom: unreachable\n".to_string()
    }
}

#[test]
fn failed_attempts_never_pollute_the_memo_cache() {
    quiet_chaos_panics();
    let cfg = ResilienceConfig::resilient();
    for workers in [1usize, 4] {
        // A panic before any pricing caches nothing; the successful retry
        // populates the point exactly once.
        let ctx = Ctx::new();
        let flaky = FlakyBeforePricing {
            attempts: AtomicU32::new(0),
        };
        let experiments: [&dyn Experiment; 1] = [&flaky];
        let execution =
            runner::execute_resilient(&Pool::with_workers(workers), &ctx, &experiments, &cfg);
        assert!(!execution.degraded(), "workers={workers}");
        assert_eq!(execution.recoveries.len(), 1);
        let stats = ctx.cache_stats();
        assert_eq!(
            stats.step_misses, 1,
            "retry must populate the cache exactly once (workers={workers}): {stats:?}"
        );
        assert_eq!(stats.step_hits, 0, "workers={workers}");

        // A panic *after* a point completed keeps that point cached (it
        // is deterministic; retrying re-derives the same answer): the
        // retry hits it and prices only the new point.
        let ctx = Ctx::new();
        let flaky = FlakyMidPricing {
            attempts: AtomicU32::new(0),
        };
        let experiments: [&dyn Experiment; 1] = [&flaky];
        let execution =
            runner::execute_resilient(&Pool::with_workers(workers), &ctx, &experiments, &cfg);
        assert!(!execution.degraded(), "workers={workers}");
        let stats = ctx.cache_stats();
        assert_eq!(stats.step_misses, 2, "workers={workers}: {stats:?}");
        assert_eq!(stats.step_hits, 1, "workers={workers}: {stats:?}");

        // A point that fails with a SimError is memoized as that error —
        // not as a success — and the failed experiment never stores an
        // artifact. A second run over the same ctx answers the error
        // from the cache instead of re-pricing.
        let ctx = Ctx::new();
        let experiments: [&dyn Experiment; 1] = [&OomExp];
        let first =
            runner::execute_resilient(&Pool::with_workers(workers), &ctx, &experiments, &cfg);
        assert!(first.degraded(), "workers={workers}");
        assert!(
            matches!(first.failures[0].error, ExperimentError::Sim(SimError::OutOfMemory { .. })),
            "workers={workers}: {}",
            first.failures[0].error
        );
        assert!(
            ctx.artifact("syn-oom").is_none(),
            "a failed experiment must not be cached as success (workers={workers})"
        );
        let second =
            runner::execute_resilient(&Pool::with_workers(workers), &ctx, &experiments, &cfg);
        assert!(second.degraded(), "workers={workers}");
        let stats = ctx.cache_stats();
        assert_eq!(stats.step_misses, 1, "workers={workers}: {stats:?}");
        assert_eq!(stats.step_hits, 1, "workers={workers}: {stats:?}");
    }
}

/// Prices five distinct points; with a budget below five, the budget
/// guard trips mid-sweep.
struct SweepExp;

impl Experiment for SweepExp {
    fn id(&self) -> &'static str {
        "syn-sweep"
    }
    fn title(&self) -> &'static str {
        "five-point sweep"
    }
    fn run(&self, ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        for gpus in 1..=5u32 {
            ctx.step(&TrainPoint::new(
                BenchmarkId::MlpfRes50Mx,
                SystemId::Dss8440,
                gpus,
            ))?;
        }
        Ok(Artifact::Table2)
    }
    fn render(&self, _artifact: &Artifact) -> String {
        "sweep: ok\n".to_string()
    }
}

#[test]
fn step_budget_trips_deterministically_and_is_typed() {
    quiet_chaos_panics();
    let experiments: [&dyn Experiment; 1] = [&SweepExp];
    let tight = ResilienceConfig {
        step_budget: Some(3),
        ..ResilienceConfig::resilient()
    };
    let run = |cfg: &ResilienceConfig| {
        runner::execute_resilient(&Pool::with_workers(2), &Ctx::new(), &experiments, cfg)
    };
    let (a, b) = (run(&tight), run(&tight));
    assert!(a.degraded());
    match &a.failures[0].error {
        ExperimentError::DeadlineExceeded { used, budget } => {
            assert_eq!(*budget, 3);
            assert_eq!(*used, 4, "the fourth request trips a budget of three");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    assert_eq!(
        a.failures[0].error, b.failures[0].error,
        "the budget trip must be deterministic — it counts requests, not wall-clock"
    );
    assert!(
        a.failures[0].retries.is_empty(),
        "a budget trip is deterministic, never retried"
    );

    let generous = ResilienceConfig {
        step_budget: Some(100),
        ..ResilienceConfig::resilient()
    };
    assert!(!run(&generous).degraded(), "a generous budget must pass");
}

/// Always panics — the root cause for the strict-mode cascade test.
struct DoomedExp;

impl Experiment for DoomedExp {
    fn id(&self) -> &'static str {
        "syn-doomed"
    }
    fn title(&self) -> &'static str {
        "always panics"
    }
    fn run(&self, _ctx: &Ctx) -> Result<Artifact, ExperimentError> {
        std::panic::panic_any("chaos: doomed".to_string());
    }
    fn render(&self, _artifact: &Artifact) -> String {
        "doomed: unreachable\n".to_string()
    }
}

#[test]
fn strict_execute_surfaces_the_root_cause_not_the_cascade() {
    quiet_chaos_panics();
    let dependent = PointExp {
        id: "syn-dependent",
        deps: &["syn-doomed"],
        system: SystemId::C4140K,
        gpus: 1,
    };
    let experiments: [&dyn Experiment; 2] = [&DoomedExp, &dependent];
    let err = runner::execute(&Pool::with_workers(2), &Ctx::new(), &experiments)
        .expect_err("a panicking experiment must fail a strict run");
    assert!(
        matches!(err, ExperimentError::Panicked { .. }),
        "strict mode must report the root cause, not the dependency cascade: {err}"
    );
}

#[test]
fn degraded_report_carries_the_failure_appendix_and_replays() {
    quiet_chaos_panics();
    let cfg = ResilienceConfig {
        chaos: Some(ChaosSpec {
            target: "figure3".to_string(),
            attempts: u32::MAX,
        }),
        ..ResilienceConfig::resilient()
    };
    let (md_a, execution) = report_gen::build_resilient(&Pool::with_workers(2), &Ctx::new(), &cfg);
    assert!(execution.degraded());
    for needle in [
        "## Appendix: failures",
        "Failure appendix",
        "figure3",
        "[degraded]",
        "Retry stream",
    ] {
        assert!(md_a.contains(needle), "degraded report missing: {needle}");
    }
    // The victim's placeholder never leaks into the healthy sections:
    // Figure 3's real heading is gone, every other section still renders.
    assert!(md_a.contains("Figure 2"));
    assert!(md_a.contains("Figure 4"));

    let (md_b, _) = report_gen::build_resilient(&Pool::with_workers(4), &Ctx::new(), &cfg);
    assert_eq!(
        md_a, md_b,
        "degraded report (failure appendix included) must replay byte-identically"
    );
}

#[test]
fn degraded_csv_export_isolates_the_victims_files() {
    quiet_chaos_panics();
    let healthy = csv_export::build_all_with(&Pool::with_workers(2), &Ctx::new()).unwrap();
    let cfg = ResilienceConfig {
        chaos: Some(ChaosSpec {
            target: "figure3".to_string(),
            attempts: u32::MAX,
        }),
        ..ResilienceConfig::resilient()
    };
    let (degraded, execution) =
        csv_export::build_all_resilient(&Pool::with_workers(2), &Ctx::new(), &cfg);
    assert!(execution.degraded());
    assert_eq!(
        healthy.len(),
        degraded.len(),
        "degraded export must still emit every file"
    );
    let mut placeholders = 0;
    for (h, d) in healthy.iter().zip(degraded.iter()) {
        assert_eq!(h.file, d.file);
        if d.experiment == "figure3" {
            placeholders += 1;
            assert!(
                d.contents.contains("# degraded: figure3"),
                "placeholder must name the failed experiment: {}",
                d.file
            );
            // The placeholder keeps the real header row, so downstream
            // parsers see a valid (empty) table.
            assert_eq!(
                h.contents.lines().next(),
                d.contents.lines().next(),
                "placeholder header must match the real export: {}",
                d.file
            );
        } else {
            assert_eq!(
                h.contents, d.contents,
                "unaffected CSV bytes changed under chaos: {}",
                d.file
            );
        }
    }
    assert!(placeholders > 0, "figure3 exports at least one file");
}
