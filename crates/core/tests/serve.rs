//! Load-test battery for `repro serve` (DESIGN.md §2f).
//!
//! The service contract under test:
//!
//! (a) **replay determinism** — a seeded workload of ≥1000 concurrent
//!     queries produces per-client transcripts that are byte-identical
//!     across two replays *and* across servers built at 1 vs 4 workers;
//! (b) **coalescing** — identical cells asked by many clients are priced
//!     once: the request-layer cache's hit/miss split equals
//!     `priced draws − unique cells / unique cells` exactly;
//! (c) **budgets** — per-connection step budgets trip deterministically,
//!     as typed `deadline-exceeded` frames, and replay identically;
//! (d) **degradation** — malformed and invalid queries get typed error
//!     frames and the server keeps answering;
//! (e) **sweep streaming** — a streamed sweep's frames carry exactly the
//!     bytes `repro sweep` would write for the same grid;
//! (f) **shared disk cache** — a warm server and a concurrent batch sweep
//!     hammering one `MLPERF_CACHE_DIR` never corrupt an entry and never
//!     cache an error as a success.

use mlperf_suite::serve::{self, protocol, ServeOptions, Server};
use mlperf_suite::sweep::{self, DiskCache};
use mlperf_suite::{Config, runner::{Ctx, Pool}};
use mlperf_testkit::loadgen::LoadSpec;
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// How each scripted query must be treated by the server (drives the
/// exact coalescing arithmetic in the load test).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Reaches the coalescing cache and is priced (ok or typed error).
    Priced,
    /// Rejected by the engine preflight before the coalescing layer.
    Rejected,
    /// Control-plane query; never touches the executor.
    Ping,
}

/// The seeded query vocabulary: valid training cells, OOM and bad-GPU
/// cells, expected-TTT cells (valid and invalid), and a ping.
fn vocabulary() -> Vec<(String, Expect)> {
    let mut v: Vec<(String, Expect)> = Vec::new();
    for workload in ["MLPf_Res50_MX", "MLPf_SSD_Py", "MLPf_XFMR_Py", "MLPf_GNMT_Py"] {
        for gpus in [1u32, 2, 4] {
            v.push((
                format!(
                    r#"{{"v":1,"kind":"cell","workload":"{workload}","system":"DSS_8440","gpus":{gpus}}}"#
                ),
                Expect::Priced,
            ));
        }
    }
    // Past the OOM wall (the batch_wall sweep's last doublings): the
    // preflight memory gate rejects these before pricing.
    for batch in [8192u64, 16384] {
        v.push((
            format!(
                r#"{{"v":1,"kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":{batch}}}"#
            ),
            Expect::Rejected,
        ));
    }
    // Bad GPU sets: more ordinals than the chassis has, and none at all.
    v.push((
        r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440","gpus":16}"#.into(),
        Expect::Rejected,
    ));
    v.push((
        r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440","gpus":0}"#.into(),
        Expect::Rejected,
    ));
    // Expected-TTT cells price through the analytic path (no preflight:
    // their own invalid-spec checks come first, and the third one proves
    // an invalid spec is a *priced, cacheable* typed error).
    v.push((
        r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt","mtbf_hours":4,"interval":"daly"}"#.into(),
        Expect::Priced,
    ));
    v.push((
        r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt","mtbf_hours":24,"interval":10}"#.into(),
        Expect::Priced,
    ));
    v.push((
        r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt"}"#.into(),
        Expect::Priced,
    ));
    v.push((r#"{"v":1,"kind":"ping"}"#.into(), Expect::Ping));
    v
}

fn test_config(jobs: usize) -> Config {
    Config { jobs, cache_enabled: false, ..Config::default() }
}

fn sock(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mlperf_serve_{name}.sock"));
    let _ = std::fs::remove_file(&p);
    p
}

fn replay(socket: &Path, lines: &[String]) -> Vec<u8> {
    let mut input = Cursor::new(lines.join("\n").into_bytes());
    let mut out = Vec::new();
    serve::replay_client(socket, &mut input, &mut out).expect("replay");
    out
}

fn shut_down(socket: &Path) {
    let mut input = Cursor::new(br#"{"v":1,"kind":"shutdown"}"#.to_vec());
    let mut out = Vec::new();
    serve::replay_client(socket, &mut input, &mut out).expect("shutdown");
}

/// Serve `client_lines` (one Vec per concurrent client) and return
/// `(per-client transcripts, stats)`.
fn serve_workload(
    cfg: &Config,
    opts: &ServeOptions,
    client_lines: &[Vec<String>],
) -> (Vec<Vec<u8>>, serve::ServeStats) {
    let server = Server::bind(opts, cfg).expect("bind");
    let transcripts = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run().expect("serve"));
        let clients: Vec<_> = client_lines
            .iter()
            .map(|lines| scope.spawn(|| replay(server.socket(), lines)))
            .collect();
        let transcripts: Vec<Vec<u8>> =
            clients.into_iter().map(|c| c.join().expect("client")).collect();
        shut_down(server.socket());
        daemon.join().expect("daemon");
        transcripts
    });
    (transcripts, server.stats())
}

#[test]
fn seeded_load_replays_byte_identical_and_coalesces() {
    let vocab = vocabulary();
    let spec = LoadSpec { vocab: vocab.len(), hot: 6, hot_pct: 70, queries: 140 };
    const CLIENTS: u64 = 8;
    let plans = spec.plans(0x4D4C_5045, CLIENTS);
    let total: usize = plans.iter().map(Vec::len).sum();
    assert!(total >= 1000, "the load-test floor is 1000 queries, got {total}");
    let workload: Vec<Vec<String>> = plans
        .iter()
        .map(|plan| plan.iter().map(|&i| vocab[i].0.clone()).collect())
        .collect();

    // The exact coalescing arithmetic this workload must produce: every
    // draw that reaches the pricing layer either founds a cache slot
    // (unique cell) or coalesces onto one.
    let drawn: std::collections::BTreeSet<usize> =
        plans.iter().flatten().copied().collect();
    let unique_priced =
        drawn.iter().filter(|&&i| vocab[i].1 == Expect::Priced).count() as u64;
    let priced_draws = plans
        .iter()
        .flatten()
        .filter(|&&i| vocab[i].1 == Expect::Priced)
        .count() as u64;

    let opts = ServeOptions { socket: sock("load_a"), ..ServeOptions::default() };
    let (first, stats) = serve_workload(&test_config(4), &opts, &workload);

    assert_eq!(stats.queries as usize, total + 1, "every line parsed (plus shutdown)");
    assert_eq!(stats.busy_responses, 0, "the default queue must absorb 8 clients");
    assert_eq!(
        (stats.coalesce_misses, stats.coalesce_hits),
        (unique_priced, priced_draws - unique_priced),
        "coalescing must price each unique cell exactly once"
    );
    assert!(stats.coalesce_hits > 500, "the hot-set skew must actually collide");

    // Replay determinism: same seed, fresh server -> same bytes; and the
    // worker count (the classic nondeterminism lever) must not leak into
    // any transcript.
    let opts_b = ServeOptions { socket: sock("load_b"), ..ServeOptions::default() };
    let (second, _) = serve_workload(&test_config(4), &opts_b, &workload);
    assert_eq!(first, second, "replay produced different bytes");
    let opts_c = ServeOptions { socket: sock("load_c"), ..ServeOptions::default() };
    let (serial, _) = serve_workload(&test_config(1), &opts_c, &workload);
    assert_eq!(first, serial, "MLPERF_JOBS=1 vs 4 leaked into response bytes");
}

#[test]
fn per_connection_budgets_trip_deterministically() {
    // Four *distinct* cells, each charged one step against a two-step
    // budget: the third and fourth answers must be typed
    // deadline-exceeded errors with the exact meter readings.
    let lines: Vec<String> = [1u32, 2, 4, 8]
        .iter()
        .map(|gpus| {
            format!(
                r#"{{"v":1,"id":"b{gpus}","kind":"cell","workload":"MLPf_NCF_Py","system":"DSS_8440","gpus":{gpus},"budget":2}}"#
            )
        })
        .collect();
    let run = |name: &str| {
        let opts = ServeOptions { socket: sock(name), ..ServeOptions::default() };
        let (transcripts, _) = serve_workload(&test_config(2), &opts, std::slice::from_ref(&lines));
        String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap()
    };
    let text = run("budget_a");
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), 4, "{text}");
    assert!(frames[0].contains("\"status\":\"ok\""), "{text}");
    assert!(frames[1].contains("\"status\":\"ok\""), "{text}");
    assert_eq!(
        frames[2],
        protocol::error_frame("b4", "deadline-exceeded", "step budget exceeded: 3 of 2 simulation requests").trim_end(),
    );
    assert_eq!(
        frames[3],
        protocol::error_frame("b8", "deadline-exceeded", "step budget exceeded: 4 of 2 simulation requests").trim_end(),
    );
    assert_eq!(text, run("budget_b"), "budget verdicts must replay");

    // Another connection of the same server is a fresh meter: the same
    // first query answers ok, unaffected by this connection's spent meter.
    let opts = ServeOptions { socket: sock("budget_c"), ..ServeOptions::default() };
    let (transcripts, _) = serve_workload(
        &test_config(2),
        &opts,
        &[lines.clone(), vec![lines[0].clone()]],
    );
    let solo = String::from_utf8(transcripts[1].clone()).unwrap();
    assert!(solo.trim_end().contains("\"status\":\"ok\""), "{solo}");
}

#[test]
fn partition_queries_price_normalize_and_reject_through_the_server() {
    // Batch 16 fits the quarter slice (the default batch OOMs it).
    const CELL: &str =
        r#""kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":16"#;
    let lines: Vec<String> = vec![
        // A sliced cell prices like any other (a distinct coalescing slot).
        format!(r#"{{"v":1,"id":"sliced",{CELL},"partition":"1of4x2"}}"#),
        // `partition:"full"` normalizes to the whole device, so it must
        // coalesce with the partition-free spelling of the same cell …
        format!(r#"{{"v":1,"id":"spelled",{CELL},"partition":"full"}}"#),
        format!(r#"{{"v":1,"id":"bare",{CELL}}}"#),
        // … and a malformed token is a typed bad-request, not a crash.
        format!(r#"{{"v":1,"id":"bad",{CELL},"partition":"1of3"}}"#),
        r#"{"v":1,"id":"alive","kind":"ping"}"#.into(),
    ];
    let opts = ServeOptions { socket: sock("partition"), ..ServeOptions::default() };
    let (transcripts, stats) = serve_workload(&test_config(2), &opts, std::slice::from_ref(&lines));
    let text = String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap();
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), lines.len(), "{text}");
    for ok in &frames[..3] {
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    }
    // The quarter slice runs slower than the whole device: the sliced
    // frame must carry its own numbers, not the full-device ones.
    assert_ne!(frames[0].replace("sliced", "bare"), frames[2], "{text}");
    assert_eq!(frames[1].replace("spelled", "bare"), frames[2], "'full' must normalize");
    assert!(
        frames[3].contains("bad-request") && frames[3].contains("partition"),
        "{text}"
    );
    assert_eq!(frames[4], protocol::pong_frame("alive").trim_end(), "{text}");
    // Two unique physical cells (sliced, whole); the normalized spelling
    // coalesces onto the whole-device slot.
    assert_eq!((stats.coalesce_misses, stats.coalesce_hits), (2, 1), "{text}");
    assert_eq!(stats.error_responses, 1);

    let opts_b = ServeOptions { socket: sock("partition_b"), ..ServeOptions::default() };
    let (second, _) = serve_workload(&test_config(2), &opts_b, &[lines]);
    assert_eq!(text.as_bytes(), &second[0][..], "partition frames must replay");
}

#[test]
fn malformed_queries_get_typed_errors_and_the_server_survives() {
    let lines: Vec<String> = vec![
        "not json".into(),
        r#"{"v":2,"id":"vv","kind":"ping"}"#.into(),
        r#"{"v":1,"kind":"cell","workload":"resnet","system":"DSS_8440","gpus":4}"#.into(),
        r#"{"v":1,"kind":"ping","extra":true}"#.into(),
        r#"{"v":1,"kind":"sweep","sweep":"nope"}"#.into(),
        r#"{"v":1,"id":"alive","kind":"ping"}"#.into(),
    ];
    let opts = ServeOptions { socket: sock("malformed"), ..ServeOptions::default() };
    let (transcripts, stats) = serve_workload(&test_config(2), &opts, std::slice::from_ref(&lines));
    let text = String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap();
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), lines.len(), "{text}");
    for bad in &frames[..5] {
        assert!(
            bad.contains("\"status\":\"error\"") && bad.contains("bad-request"),
            "{bad}"
        );
    }
    assert_eq!(frames[5], protocol::pong_frame("alive").trim_end(), "{text}");
    assert_eq!(stats.error_responses, 5);

    let opts_b = ServeOptions { socket: sock("malformed_b"), ..ServeOptions::default() };
    let (second, _) = serve_workload(&test_config(2), &opts_b, &[lines]);
    assert_eq!(text.as_bytes(), &second[0][..], "error frames must replay");
}

#[test]
fn streamed_sweep_frames_carry_the_batch_csv_bytes() {
    // What `repro sweep` would write for this grid, computed in-process.
    let grid = sweep::fault_ttt();
    let run = sweep::run_pooled(&Pool::with_workers(2), &Ctx::without_memo(), &grid, None);
    let csv = sweep::to_csv(&run);
    let mut lines = csv.lines();
    let columns: Vec<&str> = lines.next().expect("header").split(',').collect();
    let rows: Vec<String> = lines.map(str::to_string).collect();
    assert_eq!(rows.len(), grid.len());

    // The expected transcript, frame by frame, at a 4-cell shard.
    let mut expected = protocol::stream_header_frame("s1", "fault_ttt", grid.len(), &columns);
    for chunk in rows.chunks(4) {
        expected.push_str(&protocol::rows_frame("s1", chunk));
    }
    expected.push_str(&protocol::done_frame("s1", grid.len(), run.errors()));

    let opts = ServeOptions {
        socket: sock("sweep_stream"),
        shard: 4,
        ..ServeOptions::default()
    };
    let query = vec![r#"{"v":1,"id":"s1","kind":"sweep","sweep":"fault_ttt"}"#.to_string()];
    let (transcripts, stats) = serve_workload(&test_config(2), &opts, &[query]);
    assert_eq!(
        String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap(),
        expected,
        "streamed frames must carry exactly the batch CSV bytes"
    );
    assert_eq!(stats.ok_responses, 2, "sweep + shutdown");

    let unknown = vec![r#"{"v":1,"kind":"sweep","sweep":"nope"}"#.to_string()];
    let opts_b = ServeOptions { socket: sock("sweep_unknown"), ..ServeOptions::default() };
    let (transcripts, _) = serve_workload(&test_config(2), &opts_b, &[unknown]);
    let text = String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap();
    assert!(text.contains("unknown sweep 'nope'") && text.contains("figure4_scaling"), "{text}");
}

#[test]
fn replicated_cell_queries_answer_distributions_and_bad_runs_get_typed_errors() {
    const CELL: &str = r#""kind":"cell","workload":"MLPf_Res50_MX","system":"DSS_8440","gpus":4"#;
    let lines: Vec<String> = vec![
        format!(r#"{{"v":1,"id":"r8",{CELL},"runs":8}}"#),
        // runs:1 spells the point estimate: the frame must be bytes-equal
        // to the runs-free query below (same id on purpose).
        format!(r#"{{"v":1,"id":"pt",{CELL},"runs":1}}"#),
        format!(r#"{{"v":1,"id":"pt",{CELL}}}"#),
        // Out-of-range run counts are typed bad-requests, never clamps.
        format!(r#"{{"v":1,"id":"z",{CELL},"runs":0}}"#),
        format!(r#"{{"v":1,"id":"n",{CELL},"runs":-3}}"#),
        format!(r#"{{"v":1,"id":"h",{CELL},"runs":513}}"#),
        format!(r#"{{"v":1,"id":"g",{CELL},"runs":1000000000000}}"#),
    ];
    let opts = ServeOptions { socket: sock("runs"), ..ServeOptions::default() };
    let (transcripts, stats) = serve_workload(&test_config(2), &opts, std::slice::from_ref(&lines));
    let text = String::from_utf8(transcripts.into_iter().next().unwrap()).unwrap();
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), lines.len(), "{text}");

    // The replicated frame names every distribution column; the point
    // frames name none of them.
    assert!(frames[0].contains("\"status\":\"ok\""), "{text}");
    for col in ["runs", "epochs_median", "epochs_p5", "epochs_p95", "epochs_ci_lo", "epochs_ci_hi"]
    {
        assert!(frames[0].contains(col), "replicated frame misses '{col}': {}", frames[0]);
        if col != "runs" {
            assert!(!frames[1].contains(col), "point frame leaked '{col}': {}", frames[1]);
        }
    }
    assert_eq!(frames[1], frames[2], "runs:1 must normalize to the runs-free spelling");

    for bad in &frames[3..] {
        assert!(
            bad.contains("\"status\":\"error\"")
                && bad.contains("bad-request")
                && bad.contains("runs"),
            "{bad}"
        );
    }
    assert_eq!(stats.error_responses, 4);

    let opts_b = ServeOptions { socket: sock("runs_b"), ..ServeOptions::default() };
    let (second, _) = serve_workload(&test_config(2), &opts_b, &[lines]);
    assert_eq!(text.as_bytes(), &second[0][..], "replicated frames must replay");
}

#[test]
fn warm_server_and_batch_sweep_share_one_disk_cache_safely() {
    let dir = std::env::temp_dir().join("mlperf_serve_shared_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = test_config(2);
    cfg.cache_enabled = true;
    cfg.cache_dir = dir.clone();

    let grid = sweep::batch_wall(mlperf_suite::BenchmarkId::MlpfRes50Mx);
    // The server-side view of the same grid: identical canonical cells,
    // so the daemon and the batch runner contend on the same entries
    // (including the OOM cells past the wall, which must round-trip as
    // errors, never as successes).
    let cell_queries: Vec<String> = (0..grid.len())
        .map(|i| {
            let cell = grid.cell_at(i);
            format!(
                r#"{{"v":1,"kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":{}}}"#,
                cell.batch.expect("batch axis")
            )
        })
        .collect();

    // Phase 1: a warm server and a concurrent batch `run_streamed` hammer
    // the same cache directory from many threads at once.
    let opts = ServeOptions { socket: sock("shared_cache"), ..ServeOptions::default() };
    let server = Server::bind(&opts, &cfg).expect("bind");
    let streamed = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run().expect("serve"));
        let clients: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| replay(server.socket(), &cell_queries)))
            .collect();
        let batch = scope.spawn(|| {
            let cache = DiskCache::from_config(&cfg).expect("cache enabled");
            let mut out = Vec::new();
            sweep::run_streamed(
                &Pool::from_config(&cfg),
                &Ctx::without_memo(),
                &grid,
                Some(&cache),
                &mut out,
                4,
            )
            .expect("batch sweep");
            out
        });
        let transcripts: Vec<Vec<u8>> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let streamed = batch.join().unwrap();
        assert!(transcripts.windows(2).all(|w| w[0] == w[1]), "client transcripts diverged");
        shut_down(server.socket());
        daemon.join().unwrap();
        streamed
    });

    // Phase 2: the ground truth is a cache-free run. Every byte the
    // contended runs produced — and a warm re-run answered purely from
    // the shared directory — must match it exactly: no corrupted entry,
    // no error cached as a success.
    let reference = {
        let mut out = Vec::new();
        sweep::run_streamed(
            &Pool::with_workers(1),
            &Ctx::without_memo(),
            &grid,
            None,
            &mut out,
            4,
        )
        .expect("reference sweep");
        out
    };
    assert_eq!(streamed, reference, "contended batch sweep bytes drifted");
    let warm = {
        let cache = DiskCache::from_config(&cfg).expect("cache enabled");
        let mut out = Vec::new();
        let summary = sweep::run_streamed(
            &Pool::with_workers(1),
            &Ctx::without_memo(),
            &grid,
            Some(&cache),
            &mut out,
            4,
        )
        .expect("warm sweep");
        assert!(summary.errors > 0, "the grid must cross the OOM wall");
        out
    };
    assert_eq!(warm, reference, "warm bytes drifted after concurrent access");
    let warm_csv = String::from_utf8(warm).unwrap();
    assert!(warm_csv.contains(",error,"), "OOM cells must stay typed errors when cached");

    // Phase 3: a fresh server over the now-warm directory answers with
    // the same bytes a cache-free server produces (cache state is
    // invisible in responses).
    let opts_warm = ServeOptions { socket: sock("shared_cache_warm"), ..ServeOptions::default() };
    let (warm_t, _) = serve_workload(&cfg, &opts_warm, std::slice::from_ref(&cell_queries));
    let opts_cold = ServeOptions { socket: sock("shared_cache_cold"), ..ServeOptions::default() };
    let (cold_t, _) = serve_workload(&test_config(2), &opts_cold, &[cell_queries]);
    assert_eq!(warm_t, cold_t, "a warm disk cache leaked into response bytes");

    let _ = std::fs::remove_dir_all(&dir);
}
