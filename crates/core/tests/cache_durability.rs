//! Corruption and crash battery for the persistent cache (DESIGN.md
//! "Durability model").
//!
//! The durability contract has two halves, each tested at 1 and 4 pool
//! workers:
//!
//! (a) **tampering is invisible in the output**: after a fuzzed battery
//!     of on-disk mutilations — truncation, bit flips, foreign bytes,
//!     wrong-key entry copies, orphan temp files — a warm run produces
//!     bytes identical to the cold run's, quarantines every tampered
//!     entry it touches, and heals the cache so the next run is fully
//!     warm again;
//! (b) **crashes mid-store are survivable**: under the seeded I/O-chaos
//!     plan (short writes, torn renames, ENOSPC, unreadable and
//!     bit-flipped reads) the run's output stays correct, degradation
//!     is counted deterministically, and a clean reopen sweeps the
//!     debris and converges back to a fully-warm cache.

use mlperf_suite::runner::{self, Ctx, Pool, ResilienceConfig};
use mlperf_suite::sweep::{self, DiskCache};
use mlperf_suite::{report_gen, BenchmarkId};
use mlperf_testkit::iochaos::IoChaosPlan;
use mlperf_testkit::rng::Rng;
use std::path::{Path, PathBuf};

/// A fixed cache epoch so test keys never depend on the build fingerprint.
const EPOCH: u64 = 0xD00D_5EED;

const WORKER_COUNTS: [usize; 2] = [1, 4];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlperf_durability_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> ResilienceConfig {
    ResilienceConfig::resilient()
}

/// Mutilate one entry file with a seeded-random scheme. `donor` is the
/// bytes of a *different* entry, used for the wrong-key-copy scheme.
/// Every scheme produces a file that cannot verify: truncation and
/// appends break the framed length, flips break the checksum (or a
/// header field), garbage breaks the magic, and a donor copy carries a
/// key that disagrees with the file it now sits under.
fn tamper(path: &Path, rng: &mut Rng, donor: &[u8]) -> &'static str {
    let bytes = std::fs::read(path).expect("entry readable before tampering");
    match rng.gen_u64() % 5 {
        0 => {
            let keep = (rng.gen_u64() as usize) % bytes.len();
            std::fs::write(path, &bytes[..keep]).unwrap();
            "truncate"
        }
        1 => {
            let mut b = bytes;
            let bit = (rng.gen_u64() as usize) % (b.len() * 8);
            b[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(path, b).unwrap();
            "bit-flip"
        }
        2 => {
            std::fs::write(path, b"this is not a cache frame").unwrap();
            "foreign-bytes"
        }
        3 => {
            let mut b = bytes;
            b.extend_from_slice(b"trailing garbage");
            std::fs::write(path, b).unwrap();
            "append"
        }
        _ => {
            std::fs::write(path, donor).unwrap();
            "wrong-key-copy"
        }
    }
}

/// The entry files currently in `dir`, sorted for determinism.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "art"))
        .collect();
    v.sort();
    v
}

/// Drop the (only-when-degraded) store-failure line so healthy and
/// degraded reports can be compared on their experiment content.
fn without_degradation_line(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("persistent-cache degradation:"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn fuzzed_tampering_never_changes_report_bytes() {
    let mut rng = Rng::new(0x7A3B);
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("tamper_report_w{workers}"));
        let pool = Pool::with_workers(workers);
        let cold_cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let (cold, cold_exec) =
            report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cold_cache));
        assert!(!cold_exec.degraded(), "cold run must be healthy");

        // Mutilate every section entry (sparing the manifest so the warm
        // path walks the full section list and meets each tampered file).
        let manifest = dir.join(format!(
            "{EPOCH:016x}-{:016x}.art",
            cold_cache.key(&report_gen::manifest_spec(&runner::all_experiments()))
        ));
        let files = entry_files(&dir);
        // The spared manifest donates bytes for the wrong-key-copy
        // scheme, so the copy's embedded key always disagrees with the
        // file it lands under.
        let donor = std::fs::read(&manifest).unwrap();
        let mut tampered = 0u64;
        for f in files.iter().filter(|f| **f != manifest) {
            tamper(f, &mut rng, &donor);
            tampered += 1;
        }
        assert!(tampered >= 18, "expected every section entry on disk");

        // Plus crash debris and foreign junk the sweep must distinguish:
        // the orphan temp file goes, the junk stays.
        let orphan = dir.join(format!("{EPOCH:016x}-{:016x}.tmp.424242", 0xDEAD_u64));
        std::fs::write(&orphan, b"half a store").unwrap();
        let junk = dir.join("README.txt");
        std::fs::write(&junk, b"hands off").unwrap();

        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        assert_eq!(cache.stats().orphans_swept, 1, "orphan tmp not swept");
        assert!(!orphan.exists(), "orphan tmp survived the sweep");
        assert!(junk.exists(), "sweep deleted a non-cache file");

        let (warm, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache));
        assert_eq!(cold, warm, "tampering changed report bytes at {workers} workers");
        let s = cache.stats();
        assert_eq!(s.corrupt, tampered, "every tampered entry must be quarantined");
        assert_eq!(s.store_failures, 0, "re-stores on healthy disk must succeed");

        // The cache healed: the next run answers everything from disk.
        let healed = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let (again, exec) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&healed));
        assert_eq!(cold, again);
        assert!(
            exec.stats.per_experiment.is_empty(),
            "healed cache still recomputed an experiment"
        );
        assert_eq!(healed.stats().corrupt, 0, "healed cache reported corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fuzzed_tampering_never_changes_sweep_csv_bytes() {
    let mut rng = Rng::new(0x5EEDBEEF);
    let spec = sweep::batch_wall(BenchmarkId::MlpfRes50Mx);
    for workers in WORKER_COUNTS {
        let dir = tmp(&format!("tamper_sweep_w{workers}"));
        let pool = Pool::with_workers(workers);
        let cold_cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let cold = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&cold_cache));
        let cold_csv = sweep::to_csv(&cold);

        let files = entry_files(&dir);
        assert!(files.len() > 1, "sweep stored too few cells");
        // The first cell is spared and donates bytes for the
        // wrong-key-copy scheme (a self-copy would verify fine).
        let donor = std::fs::read(&files[0]).unwrap();
        let mut tampered = 0u64;
        for f in files.iter().skip(1) {
            // Tamper a seeded ~half of the cells; leave the rest warm.
            if rng.gen_u64().is_multiple_of(2) {
                tamper(f, &mut rng, &donor);
                tampered += 1;
            }
        }
        assert!(tampered > 0, "seeded battery tampered nothing");

        let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let warm = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&cache));
        assert_eq!(cold_csv, sweep::to_csv(&warm), "tampering changed sweep CSV");
        let s = cache.stats();
        assert_eq!(s.corrupt, tampered, "quarantine count != tampered count");
        assert_eq!(s.hits as usize + s.corrupt as usize, files.len());

        // Healed: fully warm replay.
        let healed = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
        let again = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&healed));
        assert_eq!(again.disk_hits(), again.cells.len(), "healed sweep recomputed");
        assert_eq!(cold_csv, sweep::to_csv(&again));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn io_chaos_store_faults_degrade_loudly_but_never_change_results() {
    // The no-cache run is the ground truth every chaos run must match.
    let pool = Pool::with_workers(4);
    let (reference, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), None);
    assert!(
        !reference.contains("persistent-cache degradation:"),
        "healthy reference must not report degradation"
    );

    let chaos_plan = || {
        IoChaosPlan::new(0xC4A5)
            .with_write_rates(0.25, 0.15)
            .with_torn_rename(0.15)
    };

    // Two cold chaos runs from identical initial conditions: same seed,
    // same serial store order, so the same stores fail and the two
    // degraded reports are byte-identical — degradation is reproducible,
    // not noise.
    let dir_a = tmp("chaos_a");
    let cache_a = DiskCache::open_with_epoch(&dir_a, EPOCH)
        .unwrap()
        .with_io_chaos(chaos_plan());
    let (report_a, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache_a));
    let sa = cache_a.stats();
    assert!(sa.store_failures > 0, "chaos rates fired no store fault");
    assert!(
        report_a.contains(&format!(
            "persistent-cache degradation: {} failed store(s)",
            sa.store_failures
        )),
        "degraded run must surface its store failures in the appendix"
    );
    assert_eq!(
        without_degradation_line(&report_a),
        without_degradation_line(&reference),
        "chaos changed experiment content, not just the degradation note"
    );

    let dir_b = tmp("chaos_b");
    let cache_b = DiskCache::open_with_epoch(&dir_b, EPOCH)
        .unwrap()
        .with_io_chaos(chaos_plan());
    let (report_b, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&cache_b));
    assert_eq!(report_a, report_b, "same seed, same degradation, same bytes");
    assert_eq!(sa.store_failures, cache_b.stats().store_failures);

    // A clean reopen sweeps the torn-rename debris, quarantines any
    // short-write frame that landed torn at its final path, and heals:
    // the warm run matches the ground truth exactly (no degradation
    // line — this handle's stores succeed).
    let leftover_tmp = std::fs::read_dir(&dir_a)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .count();
    let clean = DiskCache::open_with_epoch(&dir_a, EPOCH).unwrap();
    assert_eq!(clean.stats().orphans_swept as usize, leftover_tmp);
    let (warm, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&clean));
    assert_eq!(warm, reference, "post-chaos warm bytes differ from ground truth");
    assert_eq!(clean.stats().store_failures, 0);

    // Converged: a final clean run is fully warm.
    let settled = DiskCache::open_with_epoch(&dir_a, EPOCH).unwrap();
    let (final_report, exec) =
        report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&settled));
    assert_eq!(final_report, reference);
    assert!(exec.stats.per_experiment.is_empty(), "cache failed to converge");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn io_chaos_read_faults_fall_back_to_recomputation() {
    let pool = Pool::with_workers(4);
    let (reference, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), None);

    // Warm a healthy cache, then read it through a hostile seam:
    // unreadable files and in-flight bit flips.
    let dir = tmp("chaos_read");
    let warmer = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
    let _ = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&warmer));

    let hostile = DiskCache::open_with_epoch(&dir, EPOCH)
        .unwrap()
        .with_io_chaos(IoChaosPlan::new(0xBADC0DE).with_read_rates(0.25, 0.25));
    let (report, _) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&hostile));
    assert_eq!(report, reference, "read faults changed report bytes");
    let s = hostile.stats();
    assert!(s.misses > 0, "chaos read rates fired no fault");
    assert!(s.corrupt > 0, "bit-flip reads must be caught by verification");
    assert_eq!(s.store_failures, 0, "read chaos must not fail stores");

    // Quarantined entries were re-stored healthy: a clean run is warm.
    let clean = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();
    let (again, exec) = report_gen::build_cached(&pool, &Ctx::new(), &cfg(), Some(&clean));
    assert_eq!(again, reference);
    assert!(exec.stats.per_experiment.is_empty(), "cache did not re-heal");
    let _ = std::fs::remove_dir_all(&dir);
}
