//! Differential battery for multi-tenant partitioning: slicing a device
//! must never disturb anything that does not ask for it.
//!
//! Four legs:
//!
//! (a) **absence is identity**: a whole-device cell's canonical bytes,
//!     CSV schema, and cache key spell exactly as they did before
//!     partitioning existed (the conformance suite pins the report-side
//!     half of this contract);
//! (b) **partitioned sweeps are deterministic**: the partition-scaling
//!     grid emits byte-identical CSV across replays and across
//!     `MLPERF_JOBS`-style worker counts;
//! (c) **the engines agree on slices**: the analytic fast path and the
//!     full DES price every sliced cell to the same bytes;
//! (d) **the disk cache is partition-aware**: sliced and whole-device
//!     twins key differently, and a warm replay answers every sliced
//!     cell from disk with identical bytes.

use mlperf_suite::runner::{Ctx, Pool};
use mlperf_suite::sweep::{self, DiskCache};
use mlperf_hw::{PartitionProfile, PartitionSpec};
use std::path::PathBuf;

/// A fixed cache epoch so test keys never depend on the build fingerprint.
const EPOCH: u64 = 0x9A27_1710;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlperf_partition_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn partition_scaling() -> sweep::SweepSpec {
    sweep::registry()
        .into_iter()
        .find(|s| s.name == "partition_scaling")
        .expect("partition_scaling registered")
}

#[test]
fn whole_device_cells_spell_exactly_as_before_partitioning() {
    // The first cell of every partition-free registry sweep must not
    // mention partitioning anywhere in its canonical identity, and the
    // sweep must not grow a partition column.
    for spec in sweep::registry() {
        if spec.name == "partition_scaling" {
            assert!(spec.partitioned());
            continue;
        }
        assert!(!spec.partitioned(), "{} unexpectedly partitioned", spec.name);
        let bytes = spec.cell_at(0).canonical_bytes();
        let text = String::from_utf8(bytes).expect("canonical bytes are ASCII");
        assert!(
            !text.contains("part"),
            "{}: whole-device cell identity drifted: {text}",
            spec.name
        );
    }
    // Setting then clearing the partition is a no-op on the identity.
    let mut cell = partition_scaling().cell_at(0);
    assert_eq!(cell.partition, None, "grid's first layout is the whole device");
    let plain = cell.canonical_bytes();
    cell.partition = Some(PartitionSpec::packed(PartitionProfile::Half));
    assert_ne!(cell.canonical_bytes(), plain, "slicing must change identity");
    cell.partition = None;
    assert_eq!(cell.canonical_bytes(), plain, "clearing must restore identity");
}

#[test]
fn partitioned_sweep_bytes_are_identical_across_replays_and_workers() {
    let spec = partition_scaling();
    let reference = sweep::to_csv(&sweep::run_serial(&Ctx::new(), &spec, None));
    assert!(
        reference.lines().next().expect("header").contains("partition"),
        "partitioned sweep must carry the partition column"
    );
    // Every layout token appears in the data rows.
    for token in ["full", "1of2x2", "1of4x4", "1of7x7"] {
        assert!(reference.contains(token), "missing layout {token}");
    }
    for workers in [1usize, 4] {
        for replay in 0..2 {
            let pool = Pool::with_workers(workers);
            let run = sweep::run_pooled(&pool, &Ctx::new(), &spec, None);
            assert_eq!(
                sweep::to_csv(&run),
                reference,
                "replay {replay} at {workers} workers drifted"
            );
        }
    }
}

#[test]
fn both_engines_price_sliced_cells_to_the_same_bytes() {
    let spec = partition_scaling();
    let fast_ctx = Ctx::new().with_fastpath(true);
    let fast = sweep::to_csv(&sweep::run_serial(&fast_ctx, &spec, None));
    let slow = sweep::to_csv(&sweep::run_serial(
        &Ctx::new().with_fastpath(false),
        &spec,
        None,
    ));
    assert_eq!(fast, slow, "fast path changed partitioned CSV bytes");
    let (attempts, hits) = fast_ctx.fast_stats();
    assert!(attempts > 0, "fast path was never consulted");
    assert!(hits > 0, "no sliced cell priced analytically");
}

#[test]
fn disk_cache_keys_are_partition_aware_and_replay_warm() {
    let dir = tmp("warm");
    let cache = DiskCache::open_with_epoch(&dir, EPOCH).unwrap();

    // Sliced and whole-device twins of the same physical point must
    // never share a cache entry.
    let whole = partition_scaling().cell_at(0);
    let mut sliced = whole.clone();
    sliced.partition = Some(PartitionSpec::packed(PartitionProfile::Quarter));
    assert_ne!(
        cache.key(&whole.canonical_bytes()),
        cache.key(&sliced.canonical_bytes()),
        "partition is not part of the cache key"
    );

    // Cold-fill, then a warm replay answers every cell — sliced layouts
    // included — from disk, byte-identically.
    let spec = partition_scaling();
    let pool = Pool::with_workers(4);
    let cold = sweep::run_pooled(&pool, &Ctx::new(), &spec, Some(&cache));
    let warm_ctx = Ctx::new();
    let warm = sweep::run_pooled(&pool, &warm_ctx, &spec, Some(&cache));
    assert_eq!(sweep::to_csv(&cold), sweep::to_csv(&warm), "warm bytes differ");
    assert_eq!(warm.disk_hits(), warm.cells.len(), "warm run recomputed cells");
    let (attempts, _) = warm_ctx.fast_stats();
    assert_eq!(attempts, 0, "a disk hit must never re-price a cell");
    let _ = std::fs::remove_dir_all(&dir);
}
