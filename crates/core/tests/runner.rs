//! Integration tests for the experiment executor: schedule invariance,
//! memo-cache keying, and panic containment.
//!
//! The determinism contract under test is the one DESIGN.md's "Execution
//! model" section states: nothing a consumer can observe — report bytes,
//! CSV bytes, DAG results — may depend on the worker count or on the
//! interleaving the work-stealing pool happens to pick.

use mlperf_hw::SystemId;
use mlperf_models::PrecisionPolicy;
use mlperf_suite::runner::{Ctx, Pool, TrainPoint};
use mlperf_suite::{csv_export, report_gen, BenchmarkId};
use mlperf_testkit::prop::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

mlperf_testkit::properties! {
    /// A random DAG of pure tasks returns the same result vector on one
    /// worker and on N workers: the schedule never leaks into the output.
    #[test]
    fn pool_results_match_serial_for_any_worker_count(
        workers in 2usize..=8,
        n in 1usize..40,
        seed in 0u64..1 << 48
    ) {
        // Forward edges only (j -> i for j < i), picked by a seeded hash,
        // so the DAG is acyclic by construction yet varied across cases.
        let edge = |i: usize, j: usize| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i * 131 + j) as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (h >> 32) % 3 == 0
        };
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..i).filter(|&j| edge(i, j)).collect())
            .collect();
        let tasks = |offset: u64| -> Vec<_> {
            (0..n as u64)
                .map(move |i| move || i.wrapping_mul(i).wrapping_add(offset))
                .collect()
        };
        let serial = Pool::with_workers(1).run_dag(tasks(seed), &deps);
        let parallel = Pool::with_workers(workers).run_dag(tasks(seed), &deps);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn report_and_csv_bytes_are_identical_for_any_worker_count() {
    // The full-report path: one serial and one 4-worker build, from cold
    // caches, must agree byte for byte (same for the CSV exports).
    let (serial, _) = report_gen::build_with(&Pool::with_workers(1), &Ctx::new()).unwrap();
    let (parallel, _) = report_gen::build_with(&Pool::with_workers(4), &Ctx::new()).unwrap();
    assert_eq!(serial, parallel, "report bytes depend on the worker count");

    let a = csv_export::build_all_with(&Pool::with_workers(1), &Ctx::new()).unwrap();
    let b = csv_export::build_all_with(&Pool::with_workers(4), &Ctx::new()).unwrap();
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.iter().zip(b.iter()) {
        assert_eq!(ea.file, eb.file);
        assert_eq!(
            ea.contents, eb.contents,
            "{} depends on the worker count",
            ea.file
        );
    }
}

#[test]
fn distinct_train_points_occupy_distinct_cache_entries() {
    // Every key component — benchmark, platform, GPU count, precision,
    // batch — must separate entries; repeats must hit.
    let ctx = Ctx::new();
    let base = TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 1);
    let variants = [
        base.clone(),
        TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 2),
        TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::T640, 1),
        TrainPoint::new(BenchmarkId::MlpfSsdPy, SystemId::C4140K, 1),
        base.clone().with_per_gpu_batch(16),
        base.clone().with_precision(PrecisionPolicy::Fp32),
    ];
    // Outcomes don't matter here (the FP32 variant legitimately OOMs at
    // the AMP batch — that is Figure 3's premise); errors occupy cache
    // entries exactly like values.
    for p in &variants {
        let _ = ctx.step(p);
    }
    let cold = ctx.cache_stats();
    assert_eq!(cold.step_misses, variants.len() as u64, "keys collided");
    assert_eq!(cold.step_hits, 0);

    for p in &variants {
        let _ = ctx.step(p);
    }
    let warm = ctx.cache_stats();
    assert_eq!(warm.step_misses, variants.len() as u64);
    assert_eq!(warm.step_hits, variants.len() as u64, "repeats missed");

    // Equal effective values alias even when reached differently: setting
    // the batch to the job's own default must be a hit, not a new entry.
    let default_batch = BenchmarkId::MlpfRes50Mx.job().per_gpu_batch();
    let _ = ctx.step(&base.clone().with_per_gpu_batch(default_batch));
    let aliased = ctx.cache_stats();
    assert_eq!(aliased.step_misses, variants.len() as u64);
    assert_eq!(aliased.step_hits, variants.len() as u64 + 1);
}

#[test]
fn worker_panic_propagates_and_pool_stays_usable() {
    let pool = Pool::with_workers(2);
    let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
        Box::new(|| 1),
        Box::new(|| panic!("injected failure")),
        Box::new(|| 3),
    ];
    let err = catch_unwind(AssertUnwindSafe(|| pool.run_all(tasks)))
        .expect_err("the task panic must reach the caller");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("injected failure"), "payload was {msg:?}");

    // The pool carries no state across runs: a poisoned mutex or a stale
    // abort flag from the panicking DAG must not wedge the next one.
    let tasks: Vec<_> = (0..16u32).map(|i| move || i + 1).collect();
    let ok = pool.run_all(tasks);
    assert_eq!(ok, (1..=16).collect::<Vec<_>>());
}

#[test]
fn errors_are_memoized_like_values() {
    // An OOM point fails identically from cold and warm cache, and the
    // repeat is answered without re-simulation.
    let ctx = Ctx::new();
    let point = TrainPoint::new(BenchmarkId::MlpfRes50Mx, SystemId::C4140K, 1)
        .with_per_gpu_batch(1 << 14);
    let cold = ctx.step(&point).expect_err("64k images cannot fit");
    let warm = ctx.step(&point).expect_err("cached failure");
    assert_eq!(cold.to_string(), warm.to_string());
    let stats = ctx.cache_stats();
    assert_eq!(stats.step_misses, 1);
    assert_eq!(stats.step_hits, 1);
}
