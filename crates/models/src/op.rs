//! Analytical operator cost models.
//!
//! Each [`Op`] records, per training sample, how many floating-point
//! operations its forward pass performs and how many activation elements it
//! moves through device memory, plus its trainable parameter count. Backward
//! costs follow the standard rule of thumb (gradient w.r.t. inputs + gradient
//! w.r.t. weights ≈ 2× forward FLOPs) with per-operator overrides where the
//! rule is wrong (embeddings back-propagate by scatter-add, normalizations are
//! bandwidth-bound both ways).
//!
//! Element counts convert to bytes only when a precision is applied, so a
//! single graph prices FP32 and mixed-precision (Tensor Core) training runs.

use crate::tensor::conv_out_dim;
use mlperf_hw::units::Flops;
use std::fmt;

/// Coarse operator category, used for kernel-statistics reporting
/// (the `nvprof` analogue groups kernels by this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// 2-D convolution.
    Conv,
    /// Dense matrix multiply (fully-connected layer).
    Gemm,
    /// Batch/layer normalization.
    Norm,
    /// Pointwise activation.
    Activation,
    /// Spatial pooling.
    Pool,
    /// Embedding table lookup.
    Embedding,
    /// Scaled dot-product attention (projections + score matmuls).
    Attention,
    /// Recurrent cell sweep (RNN/GRU/LSTM over a sequence).
    Recurrent,
    /// Miscellaneous elementwise arithmetic.
    ElementWise,
    /// Softmax.
    Softmax,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Conv => "conv",
            OpKind::Gemm => "gemm",
            OpKind::Norm => "norm",
            OpKind::Activation => "activation",
            OpKind::Pool => "pool",
            OpKind::Embedding => "embedding",
            OpKind::Attention => "attention",
            OpKind::Recurrent => "recurrent",
            OpKind::ElementWise => "elementwise",
            OpKind::Softmax => "softmax",
        };
        f.write_str(s)
    }
}

/// One operator in a model graph, with per-sample analytical costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    name: String,
    kind: OpKind,
    /// Forward FLOPs per sample.
    fwd_flops: u64,
    /// Activation elements read+written per sample in the forward pass.
    fwd_act_elems: u64,
    /// Trainable parameters (elements, read once per iteration).
    params: u64,
    /// Whether mixed-precision execution can route this op to Tensor Cores.
    tensor_core_eligible: bool,
    /// Backward FLOPs as a multiple of forward FLOPs.
    bwd_flop_factor: f64,
    /// Backward activation traffic as a multiple of forward traffic.
    bwd_mem_factor: f64,
}

impl Op {
    /// Raw constructor for custom operators.
    ///
    /// # Panics
    ///
    /// Panics if either backward factor is negative or not finite.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        kind: OpKind,
        fwd_flops: u64,
        fwd_act_elems: u64,
        params: u64,
        tensor_core_eligible: bool,
        bwd_flop_factor: f64,
        bwd_mem_factor: f64,
    ) -> Self {
        assert!(
            bwd_flop_factor.is_finite() && bwd_flop_factor >= 0.0,
            "backward flop factor must be finite and non-negative"
        );
        assert!(
            bwd_mem_factor.is_finite() && bwd_mem_factor >= 0.0,
            "backward memory factor must be finite and non-negative"
        );
        Op {
            name: name.into(),
            kind,
            fwd_flops,
            fwd_act_elems,
            params,
            tensor_core_eligible,
            bwd_flop_factor,
            bwd_mem_factor,
        }
    }

    /// A 2-D convolution over a `[in_ch, in_h, in_w]` input.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlperf_models::Op;
    ///
    /// // The ResNet stem: 3->64 channels, 7x7 stride 2 on a 224x224 image.
    /// let stem = Op::conv2d("stem", 3, 64, 7, 2, 3, 224, 224);
    /// assert_eq!(stem.params(), 3 * 7 * 7 * 64);
    /// assert!(stem.tensor_core_eligible());
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        let out_h = conv_out_dim(in_h, kernel, stride, padding);
        let out_w = conv_out_dim(in_w, kernel, stride, padding);
        let macs = (in_ch * kernel * kernel * out_ch) as u64 * (out_h * out_w) as u64;
        let in_elems = (in_ch * in_h * in_w) as u64;
        let out_elems = (out_ch * out_h * out_w) as u64;
        let weights = (in_ch * kernel * kernel * out_ch) as u64;
        Op::custom(
            name,
            OpKind::Conv,
            2 * macs,
            in_elems + out_elems,
            weights,
            true,
            2.0,
            2.0,
        )
    }

    /// A fully-connected layer (`in_features × out_features` GEMM).
    ///
    /// # Examples
    ///
    /// ```
    /// use mlperf_models::Op;
    ///
    /// let fc = Op::dense("classifier", 2048, 1000);
    /// assert_eq!(fc.fwd_flops(1).as_u64(), 2 * 2048 * 1000);
    /// ```
    pub fn dense(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        let macs = (in_features * out_features) as u64;
        Op::custom(
            name,
            OpKind::Gemm,
            2 * macs,
            (in_features + out_features) as u64,
            macs + out_features as u64,
            true,
            2.0,
            2.0,
        )
    }

    /// A raw `M×N×K` GEMM with no trainable parameters (DeepBench kernels).
    pub fn gemm(name: impl Into<String>, m: usize, n: usize, k: usize) -> Self {
        let macs = m as u64 * n as u64 * k as u64;
        let elems = (m * k + k * n + m * n) as u64;
        Op::custom(name, OpKind::Gemm, 2 * macs, elems, 0, true, 2.0, 2.0)
    }

    /// Batch normalization over `channels` maps of `spatial` positions.
    pub fn batch_norm(name: impl Into<String>, channels: usize, spatial: usize) -> Self {
        let elems = (channels * spatial) as u64;
        Op::custom(
            name,
            OpKind::Norm,
            5 * elems,
            2 * elems,
            2 * channels as u64,
            false,
            1.0,
            1.0,
        )
    }

    /// Layer normalization over vectors of `dim` at `positions` positions.
    pub fn layer_norm(name: impl Into<String>, dim: usize, positions: usize) -> Self {
        let elems = (dim * positions) as u64;
        Op::custom(
            name,
            OpKind::Norm,
            8 * elems,
            2 * elems,
            2 * dim as u64,
            false,
            1.0,
            1.0,
        )
    }

    /// Pointwise activation (ReLU, GELU, sigmoid…) over `elems` elements.
    pub fn activation(name: impl Into<String>, elems: u64) -> Self {
        Op::custom(
            name,
            OpKind::Activation,
            elems,
            2 * elems,
            0,
            false,
            1.0,
            1.0,
        )
    }

    /// Spatial pooling with a `kernel × kernel` window producing `out_elems`.
    pub fn pool(name: impl Into<String>, kernel: usize, out_elems: u64, in_elems: u64) -> Self {
        let flops = out_elems * (kernel * kernel) as u64;
        Op::custom(
            name,
            OpKind::Pool,
            flops,
            in_elems + out_elems,
            0,
            false,
            1.0,
            1.0,
        )
    }

    /// Embedding lookup: `lookups` rows of a `vocab × dim` table per sample.
    pub fn embedding(name: impl Into<String>, vocab: usize, dim: usize, lookups: usize) -> Self {
        let moved = (lookups * dim) as u64;
        Op::custom(
            name,
            OpKind::Embedding,
            moved, // gather/accumulate cost, essentially copies
            2 * moved,
            (vocab * dim) as u64,
            false,
            1.0, // backward is a scatter-add of the same volume
            1.0,
        )
    }

    /// Multi-head self-attention block at one layer: Q/K/V/out projections
    /// plus the two score GEMMs, over a sequence of `seq` tokens.
    pub fn attention(name: impl Into<String>, seq: usize, d_model: usize) -> Self {
        let s = seq as u64;
        let d = d_model as u64;
        let proj_macs = 4 * s * d * d; // Q, K, V, output projections
        let score_macs = 2 * s * s * d; // QK^T and attn·V
        let act = 6 * s * d + 2 * s * s; // projected tensors + score matrix
        Op::custom(
            name,
            OpKind::Attention,
            2 * (proj_macs + score_macs),
            act,
            4 * d * d,
            true,
            2.0,
            2.0,
        )
    }

    /// The kind of recurrent cell a [`Op::recurrent`] sweep uses.
    ///
    /// Gate counts: vanilla = 1, GRU = 3, LSTM = 4.
    pub fn recurrent(
        name: impl Into<String>,
        cell: RecurrentCell,
        input: usize,
        hidden: usize,
        seq_len: usize,
    ) -> Self {
        let gates = cell.gate_count() as u64;
        let i = input as u64;
        let h = hidden as u64;
        let t = seq_len as u64;
        // Per timestep: gates × (h×i + h×h) MACs.
        let macs = gates * h * (i + h) * t;
        let act = t * (i + 2 * h * gates);
        let params = gates * (h * (i + h) + h);
        Op::custom(
            name,
            OpKind::Recurrent,
            2 * macs,
            act,
            params,
            true,
            2.0,
            2.0,
        )
    }

    /// Softmax over `elems` elements.
    pub fn softmax(name: impl Into<String>, elems: u64) -> Self {
        Op::custom(
            name,
            OpKind::Softmax,
            5 * elems,
            2 * elems,
            0,
            false,
            1.0,
            1.0,
        )
    }

    /// Generic elementwise arithmetic (residual adds, scaling, box decode…).
    pub fn elementwise(name: impl Into<String>, elems: u64, flops_per_elem: u64) -> Self {
        Op::custom(
            name,
            OpKind::ElementWise,
            elems * flops_per_elem,
            2 * elems,
            0,
            false,
            1.0,
            1.0,
        )
    }

    /// Operator name (unique within a graph by convention, not enforced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Coarse category.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Trainable parameter count.
    pub fn params(&self) -> u64 {
        self.params
    }

    /// Whether mixed precision can run this op on Tensor Cores.
    pub fn tensor_core_eligible(&self) -> bool {
        self.tensor_core_eligible
    }

    /// Forward FLOPs for a batch of the given size.
    pub fn fwd_flops(&self, batch: u64) -> Flops {
        Flops::new(self.fwd_flops * batch)
    }

    /// Backward FLOPs for a batch of the given size.
    pub fn bwd_flops(&self, batch: u64) -> Flops {
        Flops::new(((self.fwd_flops * batch) as f64 * self.bwd_flop_factor).round() as u64)
    }

    /// Forward activation traffic in elements for a batch.
    pub fn fwd_act_elems(&self, batch: u64) -> u64 {
        self.fwd_act_elems * batch
    }

    /// Backward activation traffic in elements for a batch.
    pub fn bwd_act_elems(&self, batch: u64) -> u64 {
        ((self.fwd_act_elems * batch) as f64 * self.bwd_mem_factor).round() as u64
    }

    /// Per-sample forward FLOPs (the raw coefficient behind
    /// [`Op::fwd_flops`]), for cost-table extraction.
    pub(crate) fn fwd_flops_per_sample(&self) -> u64 {
        self.fwd_flops
    }

    /// Per-sample forward activation elements, for cost-table extraction.
    pub(crate) fn fwd_act_elems_per_sample(&self) -> u64 {
        self.fwd_act_elems
    }

    /// Backward-FLOP multiple, for cost-table extraction.
    pub(crate) fn bwd_flop_factor(&self) -> f64 {
        self.bwd_flop_factor
    }

    /// Backward-traffic multiple, for cost-table extraction.
    pub(crate) fn bwd_mem_factor(&self) -> f64 {
        self.bwd_mem_factor
    }

    /// Fraction of this op's nominal activation traffic that actually
    /// reaches HBM. Pointwise and normalization ops fuse into the epilogue
    /// of the producing conv/GEMM kernel (cuDNN/XLA fusion), so most of
    /// their traffic never leaves registers.
    pub fn fused_traffic_factor(&self) -> f64 {
        match self.kind {
            OpKind::Norm | OpKind::Activation | OpKind::ElementWise | OpKind::Softmax => 0.3,
            _ => 1.0,
        }
    }

    /// Multiplier from effective (cache-friendly) traffic to the L2/DRAM
    /// *transactions* a profiler counts: tiled GEMM and convolution kernels
    /// re-read operands once per tile pass, so `nvprof`-style transaction
    /// counts exceed the compulsory traffic severalfold. Used by the
    /// measurement layer only — kernel *timing* follows the effective
    /// traffic, which the cache mostly serves.
    pub fn profiled_traffic_factor(&self) -> f64 {
        match self.kind {
            OpKind::Conv => 2.8,
            OpKind::Gemm => 8.0,
            OpKind::Attention => 4.0,
            OpKind::Recurrent => 6.0,
            _ => 1.0,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.3} GFLOP/sample, {} params",
            self.name,
            self.kind,
            self.fwd_flops as f64 / 1e9,
            self.params
        )
    }
}

/// Recurrent cell flavors, matching the DeepBench `rnn_bench` kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecurrentCell {
    /// Vanilla (tanh) RNN — one gate.
    Vanilla,
    /// Gated recurrent unit — three gates.
    Gru,
    /// Long short-term memory — four gates.
    Lstm,
}

impl RecurrentCell {
    /// Number of gate matrices the cell multiplies per timestep.
    pub fn gate_count(self) -> u32 {
        match self {
            RecurrentCell::Vanilla => 1,
            RecurrentCell::Gru => 3,
            RecurrentCell::Lstm => 4,
        }
    }
}

impl fmt::Display for RecurrentCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecurrentCell::Vanilla => "vanilla",
            RecurrentCell::Gru => "GRU",
            RecurrentCell::Lstm => "LSTM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_match_hand_count() {
        // ResNet stem: 3->64, 7x7/2 pad 3 on 224x224 -> 112x112 output.
        let op = Op::conv2d("stem", 3, 64, 7, 2, 3, 224, 224);
        let expected_macs = 3u64 * 7 * 7 * 64 * 112 * 112;
        assert_eq!(op.fwd_flops(1).as_u64(), 2 * expected_macs);
        assert_eq!(op.params(), 3 * 7 * 7 * 64);
        assert!(op.tensor_core_eligible());
    }

    #[test]
    fn conv_backward_is_double_forward() {
        let op = Op::conv2d("c", 64, 64, 3, 1, 1, 56, 56);
        assert_eq!(op.bwd_flops(1).as_u64(), 2 * op.fwd_flops(1).as_u64());
        assert_eq!(op.bwd_act_elems(1), 2 * op.fwd_act_elems(1));
    }

    #[test]
    fn dense_flops_and_params() {
        let op = Op::dense("fc", 2048, 1000);
        assert_eq!(op.fwd_flops(1).as_u64(), 2 * 2048 * 1000);
        assert_eq!(op.params(), 2048 * 1000 + 1000);
    }

    #[test]
    fn batch_scaling_is_linear() {
        let op = Op::dense("fc", 128, 64);
        assert_eq!(op.fwd_flops(32).as_u64(), 32 * op.fwd_flops(1).as_u64());
        assert_eq!(op.fwd_act_elems(32), 32 * op.fwd_act_elems(1));
    }

    #[test]
    fn embedding_moves_rows_not_table() {
        let op = Op::embedding("emb", 32_000, 1024, 20);
        assert_eq!(op.params(), 32_000 * 1024);
        assert_eq!(op.fwd_act_elems(1), 2 * 20 * 1024);
        assert!(!op.tensor_core_eligible());
        // Backward is a scatter-add, not a 2x matmul.
        assert_eq!(op.bwd_flops(1), op.fwd_flops(1));
    }

    #[test]
    fn attention_dominated_by_projections_at_short_seq() {
        let op = Op::attention("mha", 64, 1024);
        let proj = 2 * 4 * 64u64 * 1024 * 1024;
        let score = 2 * 2 * 64u64 * 64 * 1024;
        assert_eq!(op.fwd_flops(1).as_u64(), proj + score);
        assert_eq!(op.params(), 4 * 1024 * 1024);
    }

    #[test]
    fn lstm_gate_math() {
        // DeepBench machine-translation LSTM: input 512, hidden 512.
        let op = Op::recurrent("lstm", RecurrentCell::Lstm, 512, 512, 25);
        let per_step_macs = 4u64 * 512 * (512 + 512);
        assert_eq!(op.fwd_flops(1).as_u64(), 2 * per_step_macs * 25);
        assert_eq!(op.params(), 4 * (512 * 1024 + 512));
    }

    #[test]
    fn cell_gate_counts() {
        assert_eq!(RecurrentCell::Vanilla.gate_count(), 1);
        assert_eq!(RecurrentCell::Gru.gate_count(), 3);
        assert_eq!(RecurrentCell::Lstm.gate_count(), 4);
    }

    #[test]
    fn norm_ops_are_bandwidth_bound_both_ways() {
        let bn = Op::batch_norm("bn", 64, 56 * 56);
        assert_eq!(bn.bwd_flops(1), bn.fwd_flops(1));
        assert!(!bn.tensor_core_eligible());
        assert_eq!(bn.params(), 128);
    }

    #[test]
    fn gemm_kernel_has_no_params() {
        let op = Op::gemm("deepbench", 1760, 128, 1760);
        assert_eq!(op.params(), 0);
        assert_eq!(op.fwd_flops(1).as_u64(), 2 * 1760 * 128 * 1760);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_bwd_factor_rejected() {
        let _ = Op::custom("bad", OpKind::ElementWise, 1, 1, 0, false, -1.0, 1.0);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let s = Op::dense("fc1", 10, 10).to_string();
        assert!(s.contains("fc1") && s.contains("gemm"));
    }
}
