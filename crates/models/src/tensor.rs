//! Tensor shapes and element counting.
//!
//! The cost models in this crate work in *elements*; byte counts materialize
//! only once a [`Precision`](mlperf_hw::Precision) is chosen, so the same
//! operator graph prices both FP32 and mixed-precision executions.

use std::fmt;

/// The shape of a dense tensor (row-major, arbitrary rank).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorShape(Vec<usize>);

impl TensorShape {
    /// Construct from dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (degenerate tensors have no place in
    /// a cost model) or the shape is empty.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(
            !dims.is_empty(),
            "tensor shape must have at least one dimension"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "tensor dimensions must be positive"
        );
        TensorShape(dims)
    }

    /// A rank-1 shape.
    pub fn vector(len: usize) -> Self {
        TensorShape::new([len])
    }

    /// A rank-2 shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        TensorShape::new([rows, cols])
    }

    /// Feature-map shape `[channels, height, width]` (per sample).
    pub fn chw(channels: usize, height: usize, width: usize) -> Self {
        TensorShape::new([channels, height, width])
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of dimensions).
    pub fn elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for TensorShape {
    fn from(dims: &[usize]) -> Self {
        TensorShape::new(dims.to_vec())
    }
}

/// Output spatial size of a convolution/pooling along one axis.
///
/// # Panics
///
/// Panics if the kernel (after padding) does not fit in the input.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        assert_eq!(TensorShape::vector(10).elements(), 10);
        assert_eq!(TensorShape::matrix(3, 4).elements(), 12);
        assert_eq!(TensorShape::chw(64, 56, 56).elements(), 64 * 56 * 56);
        assert_eq!(TensorShape::new([2, 3, 4, 5]).rank(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = TensorShape::new([3, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_shape_rejected() {
        let _ = TensorShape::new(Vec::new());
    }

    #[test]
    fn conv_output_arithmetic() {
        // 224x224, 7x7 kernel, stride 2, pad 3 -> 112 (ResNet stem).
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        // 56x56, 3x3, stride 1, pad 1 -> 56 (same-padding).
        assert_eq!(conv_out_dim(56, 3, 1, 1), 56);
        // 112x112, 3x3 maxpool stride 2 pad 1 -> 56.
        assert_eq!(conv_out_dim(112, 3, 2, 1), 56);
    }

    #[test]
    #[should_panic(expected = "larger than padded")]
    fn oversized_kernel_rejected() {
        let _ = conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(TensorShape::new([3, 224, 224]).to_string(), "[3x224x224]");
    }
}
