//! Vectorized per-op cost accumulation.
//!
//! [`ModelGraph::pass_cost`](crate::ModelGraph::pass_cost) is the hottest
//! model-side loop in a sweep: it walks every [`Op`](crate::Op) — name
//! strings, enum matches and all — once per priced cell. A
//! [`PassCostTable`] hoists everything batch-independent out of that walk
//! into structure-of-arrays form at graph-build time (per-sample FLOP and
//! activation counts, backward factors, the Tensor-Core routing decision,
//! fusion and precision byte factors, and the fully batch-independent
//! weight-stream and gradient totals), leaving a tight numeric loop per
//! evaluation.
//!
//! The table is an *exact* transcription, not an approximation: every
//! per-op `u64` multiply and `f64 → round → u64` conversion happens in the
//! same order with the same operands as the scalar walk, so the result is
//! bit-identical — `mlperf-models/tests/properties.rs` pins
//! `PassCostTable::pass_cost == ModelGraph::pass_cost_scalar` over fuzzed
//! graphs, batches, and policies.

use crate::graph::IterationCost;
use crate::op::Op;
use crate::precision::PrecisionPolicy;
use mlperf_hw::units::{Bytes, Flops};

/// Batch-independent pass-cost coefficients for one (graph, policy) pair,
/// in structure-of-arrays form.
#[derive(Debug, Clone, PartialEq)]
pub struct PassCostTable {
    policy: PrecisionPolicy,
    /// Per-sample forward FLOPs, one entry per op.
    fwd_flops: Vec<u64>,
    /// Backward FLOPs as a multiple of forward.
    bwd_flop_factor: Vec<f64>,
    /// Whether this op's FLOPs route to the Tensor-Core accumulator.
    on_tensor: Vec<bool>,
    /// Per-sample forward activation elements.
    fwd_act: Vec<u64>,
    /// Backward activation traffic as a multiple of forward.
    bwd_mem_factor: Vec<f64>,
    /// Fusion survival factor for activation traffic.
    fused_traffic: Vec<f64>,
    /// Activation element width under the policy, pre-converted to f64.
    act_bytes: Vec<f64>,
    /// Σ 2 · params · activation_bytes — the weight/gradient streams,
    /// batch-independent and integer, so pre-summed exactly.
    weight_stream_bytes: u64,
    /// Σ params · gradient_bytes_per_param, likewise exact.
    gradient_bytes: u64,
}

impl PassCostTable {
    /// Extract the coefficients of `ops` under `policy`.
    pub fn build(ops: &[Op], policy: PrecisionPolicy) -> Self {
        let mut table = PassCostTable {
            policy,
            fwd_flops: Vec::with_capacity(ops.len()),
            bwd_flop_factor: Vec::with_capacity(ops.len()),
            on_tensor: Vec::with_capacity(ops.len()),
            fwd_act: Vec::with_capacity(ops.len()),
            bwd_mem_factor: Vec::with_capacity(ops.len()),
            fused_traffic: Vec::with_capacity(ops.len()),
            act_bytes: Vec::with_capacity(ops.len()),
            weight_stream_bytes: 0,
            gradient_bytes: 0,
        };
        for op in ops {
            let act_bytes = policy.activation_bytes(op.tensor_core_eligible());
            table.fwd_flops.push(op.fwd_flops_per_sample());
            table.bwd_flop_factor.push(op.bwd_flop_factor());
            table
                .on_tensor
                .push(policy == PrecisionPolicy::Amp && op.tensor_core_eligible());
            table.fwd_act.push(op.fwd_act_elems_per_sample());
            table.bwd_mem_factor.push(op.bwd_mem_factor());
            table.fused_traffic.push(op.fused_traffic_factor());
            table.act_bytes.push(act_bytes as f64);
            table.weight_stream_bytes += 2 * op.params() * act_bytes;
            table.gradient_bytes += op.params() * policy.gradient_bytes_per_param();
        }
        table
    }

    /// The policy the table was built under.
    pub fn policy(&self) -> PrecisionPolicy {
        self.policy
    }

    /// Number of operators the table covers.
    pub fn len(&self) -> usize {
        self.fwd_flops.len()
    }

    /// Whether the table covers no operators.
    pub fn is_empty(&self) -> bool {
        self.fwd_flops.is_empty()
    }

    /// The forward+backward pass cost at `batch` — bit-identical to the
    /// scalar op walk
    /// ([`ModelGraph::pass_cost_scalar`](crate::ModelGraph::pass_cost_scalar)):
    /// integer sums are associative, and every rounded f64 product keeps
    /// its original operand order.
    pub fn pass_cost(&self, batch: u64) -> IterationCost {
        let mut simt = 0u64;
        let mut tensor = 0u64;
        let mut mem_bytes = 0u64;
        for i in 0..self.fwd_flops.len() {
            let fwd = self.fwd_flops[i] * batch;
            let flops = fwd + (fwd as f64 * self.bwd_flop_factor[i]).round() as u64;
            if self.on_tensor[i] {
                tensor += flops;
            } else {
                simt += flops;
            }
            let fwd_act = self.fwd_act[i] * batch;
            let act_elems = fwd_act + (fwd_act as f64 * self.bwd_mem_factor[i]).round() as u64;
            mem_bytes +=
                (act_elems as f64 * self.fused_traffic[i] * self.act_bytes[i]).round() as u64;
        }
        IterationCost {
            simt_flops: Flops::new(simt),
            tensor_flops: Flops::new(tensor),
            mem_bytes: Bytes::new(mem_bytes + self.weight_stream_bytes),
            gradient_bytes: Bytes::new(self.gradient_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ModelGraph;

    fn graph() -> ModelGraph {
        let mut g = ModelGraph::new("t");
        g.push(Op::conv2d("c", 3, 16, 3, 1, 1, 32, 32));
        g.push(Op::batch_norm("bn", 16, 32 * 32));
        g.push(Op::activation("relu", 16 * 32 * 32));
        g.push(Op::dense("fc", 256, 10));
        g
    }

    #[test]
    fn table_matches_scalar_walk_exactly() {
        let g = graph();
        for policy in [PrecisionPolicy::Fp32, PrecisionPolicy::Amp] {
            let table = PassCostTable::build(g.ops(), policy);
            for batch in [1u64, 7, 128, 4096] {
                assert_eq!(table.pass_cost(batch), g.pass_cost_scalar(batch, policy));
            }
        }
    }

    #[test]
    fn weight_and_gradient_totals_are_batch_independent() {
        let g = graph();
        let table = PassCostTable::build(g.ops(), PrecisionPolicy::Fp32);
        assert_eq!(
            table.pass_cost(1).gradient_bytes,
            table.pass_cost(512).gradient_bytes
        );
    }

    #[test]
    fn empty_table_prices_zero() {
        let table = PassCostTable::build(&[], PrecisionPolicy::Amp);
        assert!(table.is_empty());
        let cost = table.pass_cost(64);
        assert_eq!(cost.mem_bytes, Bytes::ZERO);
        assert_eq!(cost.total_flops(), Flops::ZERO);
    }
}
