//! Optimizer update-step cost models.
//!
//! The weight update is bandwidth-bound bookkeeping over every parameter.
//! Its cost matters for small models with tiny iterations (NCF) where the
//! update is a visible slice of step time, and it contributes the per-step
//! parameter traffic the HBM counters see.

use mlperf_hw::units::{Bytes, Flops};
use std::fmt;

/// The optimizers used by the MLPerf v0.5 submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Optimizer {
    /// Stochastic gradient descent with momentum (ResNet, SSD, Mask R-CNN).
    SgdMomentum,
    /// Adam (Transformer, NCF, DrQA).
    Adam,
    /// Adam variant with GNMT's update schedule — same per-param cost as Adam.
    AdamGnmt,
}

impl Optimizer {
    /// FLOPs per parameter per update step.
    pub fn flops_per_param(self) -> u64 {
        match self {
            // v += m*v - lr*g ; w += v
            Optimizer::SgdMomentum => 4,
            // two moment updates, bias correction, rsqrt, update
            Optimizer::Adam | Optimizer::AdamGnmt => 12,
        }
    }

    /// Optimizer-state elements per parameter (momentum buffers etc.).
    pub fn state_elems_per_param(self) -> u64 {
        match self {
            Optimizer::SgdMomentum => 1,
            Optimizer::Adam | Optimizer::AdamGnmt => 2,
        }
    }

    /// Total FLOPs of one update step over `params` parameters.
    pub fn step_flops(self, params: u64) -> Flops {
        Flops::new(self.flops_per_param() * params)
    }

    /// Device-memory traffic of one update step: read gradient + weights +
    /// state, write weights + state, at 4 bytes each (masters stay FP32).
    pub fn step_bytes(self, params: u64) -> Bytes {
        let state = self.state_elems_per_param();
        // reads: grad + weight + state; writes: weight + state.
        let elems = params * (2 + 2 * state + 1);
        Bytes::new(elems * 4)
    }

    /// Resident optimizer-state footprint (FP32 state).
    pub fn state_bytes(self, params: u64) -> Bytes {
        Bytes::new(self.state_elems_per_param() * params * 4)
    }
}

impl fmt::Display for Optimizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Optimizer::SgdMomentum => "SGD+momentum",
            Optimizer::Adam => "Adam",
            Optimizer::AdamGnmt => "Adam (GNMT schedule)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_costs_more_than_sgd() {
        let p = 25_000_000;
        assert!(
            Optimizer::Adam.step_flops(p).as_u64() > Optimizer::SgdMomentum.step_flops(p).as_u64()
        );
        assert!(
            Optimizer::Adam.step_bytes(p).as_u64() > Optimizer::SgdMomentum.step_bytes(p).as_u64()
        );
        assert_eq!(Optimizer::Adam.state_bytes(p), Bytes::new(2 * p * 4));
    }

    #[test]
    fn sgd_step_math() {
        let p = 1000;
        assert_eq!(Optimizer::SgdMomentum.step_flops(p).as_u64(), 4000);
        // grad + weight + 1 state read, weight + 1 state write = 5 elems.
        assert_eq!(Optimizer::SgdMomentum.step_bytes(p), Bytes::new(5 * 4 * p));
    }

    #[test]
    fn zero_params_cost_nothing() {
        assert_eq!(Optimizer::Adam.step_flops(0), Flops::ZERO);
        assert_eq!(Optimizer::Adam.step_bytes(0), Bytes::ZERO);
    }
}
