//! Residual networks: ResNet-50 (MLPerf image classification) and the
//! modified CIFAR ResNet-18 of the DAWNBench `bkj` submission.
//!
//! Built block-by-block from He et al.'s published configurations, so the
//! parameter and FLOP totals fall out of the architecture rather than being
//! transcribed (ResNet-50 lands at ≈25.6 M parameters and ≈4 GFLOP/image at
//! 224², the figures the literature quotes).

use crate::graph::ModelGraph;
use crate::op::Op;
use crate::tensor::conv_out_dim;

/// Running spatial/channel state while stacking layers.
struct Stacker {
    graph: ModelGraph,
    ch: usize,
    h: usize,
    w: usize,
    layer: usize,
}

impl Stacker {
    fn new(name: &str, in_ch: usize, h: usize, w: usize) -> Self {
        Stacker {
            graph: ModelGraph::new(name),
            ch: in_ch,
            h,
            w,
            layer: 0,
        }
    }

    fn next_name(&mut self, kind: &str) -> String {
        self.layer += 1;
        format!("{kind}{}", self.layer)
    }

    /// conv → batch-norm → ReLU.
    fn conv_bn_relu(&mut self, out_ch: usize, kernel: usize, stride: usize, padding: usize) {
        self.conv_bn(out_ch, kernel, stride, padding);
        let elems = (self.ch * self.h * self.w) as u64;
        let name = self.next_name("relu");
        self.graph.push(Op::activation(name, elems));
    }

    /// conv → batch-norm (no activation — used before residual adds).
    fn conv_bn(&mut self, out_ch: usize, kernel: usize, stride: usize, padding: usize) {
        let name = self.next_name("conv");
        self.graph.push(Op::conv2d(
            name, self.ch, out_ch, kernel, stride, padding, self.h, self.w,
        ));
        self.h = conv_out_dim(self.h, kernel, stride, padding);
        self.w = conv_out_dim(self.w, kernel, stride, padding);
        self.ch = out_ch;
        let name = self.next_name("bn");
        self.graph
            .push(Op::batch_norm(name, self.ch, self.h * self.w));
    }

    fn max_pool(&mut self, kernel: usize, stride: usize, padding: usize) {
        let in_elems = (self.ch * self.h * self.w) as u64;
        self.h = conv_out_dim(self.h, kernel, stride, padding);
        self.w = conv_out_dim(self.w, kernel, stride, padding);
        let out_elems = (self.ch * self.h * self.w) as u64;
        let name = self.next_name("maxpool");
        self.graph.push(Op::pool(name, kernel, out_elems, in_elems));
    }

    fn residual_add(&mut self) {
        let elems = (self.ch * self.h * self.w) as u64;
        let name = self.next_name("add");
        self.graph.push(Op::elementwise(name, elems, 1));
    }

    fn global_avg_pool(&mut self) {
        let in_elems = (self.ch * self.h * self.w) as u64;
        let name = self.next_name("avgpool");
        self.graph.push(Op::pool(name, 1, self.ch as u64, in_elems));
        self.h = 1;
        self.w = 1;
    }

    fn classifier(&mut self, classes: usize) {
        let name = self.next_name("fc");
        self.graph.push(Op::dense(name, self.ch, classes));
        let name = self.next_name("softmax");
        self.graph.push(Op::softmax(name, classes as u64));
    }
}

/// A bottleneck residual block (1×1 reduce, 3×3, 1×1 expand).
fn bottleneck(s: &mut Stacker, mid_ch: usize, stride: usize, project: bool) {
    let in_ch = s.ch;
    let in_h = s.h;
    let in_w = s.w;
    s.conv_bn_relu(mid_ch, 1, 1, 0);
    s.conv_bn_relu(mid_ch, 3, stride, 1);
    s.conv_bn(mid_ch * 4, 1, 1, 0);
    if project {
        // Projection shortcut runs on the block's *input*.
        let name = s.next_name("proj_conv");
        s.graph.push(Op::conv2d(
            name,
            in_ch,
            mid_ch * 4,
            1,
            stride,
            0,
            in_h,
            in_w,
        ));
        let name = s.next_name("proj_bn");
        s.graph.push(Op::batch_norm(name, mid_ch * 4, s.h * s.w));
    }
    s.residual_add();
    let elems = (s.ch * s.h * s.w) as u64;
    let name = s.next_name("relu");
    s.graph.push(Op::activation(name, elems));
}

/// A basic residual block (two 3×3 convolutions).
fn basic_block(s: &mut Stacker, out_ch: usize, stride: usize, project: bool) {
    let in_ch = s.ch;
    let in_h = s.h;
    let in_w = s.w;
    s.conv_bn_relu(out_ch, 3, stride, 1);
    s.conv_bn(out_ch, 3, 1, 1);
    if project {
        let name = s.next_name("proj_conv");
        s.graph
            .push(Op::conv2d(name, in_ch, out_ch, 1, stride, 0, in_h, in_w));
        let name = s.next_name("proj_bn");
        s.graph.push(Op::batch_norm(name, out_ch, s.h * s.w));
    }
    s.residual_add();
    let elems = (s.ch * s.h * s.w) as u64;
    let name = s.next_name("relu");
    s.graph.push(Op::activation(name, elems));
}

/// ResNet-50 for 224×224 ImageNet classification (He et al. 2015).
///
/// # Examples
///
/// ```
/// let g = mlperf_models::zoo::resnet::resnet50();
/// let m_params = g.params() as f64 / 1e6;
/// assert!(m_params > 25.0 && m_params < 26.0);
/// ```
pub fn resnet50() -> ModelGraph {
    let mut s = Stacker::new("ResNet-50", 3, 224, 224);
    s.conv_bn_relu(64, 7, 2, 3);
    s.max_pool(3, 2, 1);
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage_idx, (mid_ch, blocks)) in stages.into_iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage_idx > 0 && block == 0 { 2 } else { 1 };
            let project = block == 0;
            bottleneck(&mut s, mid_ch, stride, project);
        }
    }
    s.global_avg_pool();
    s.classifier(1000);
    s.graph
}

/// ResNet-34 backbone truncated for SSD detection: stages 1–3 kept at
/// full resolution behaviour (stage 3 stride removed per the MLPerf SSD
/// reference), returning the graph and its output feature-map geometry.
pub fn resnet34_ssd_backbone(input: usize) -> (ModelGraph, usize, usize) {
    let mut s = Stacker::new("ResNet-34-SSD-backbone", 3, input, input);
    s.conv_bn_relu(64, 7, 2, 3);
    s.max_pool(3, 2, 1);
    let stages: [(usize, usize, usize); 3] = [(64, 3, 1), (128, 4, 2), (256, 6, 1)];
    for (out_ch, blocks, first_stride) in stages {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            let project = block == 0 && (out_ch != s.ch || stride != 1);
            basic_block(&mut s, out_ch, stride, project);
        }
    }
    let (ch, hw) = (s.ch, s.h);
    (s.graph, ch, hw)
}

/// The DAWNBench `bkj` entry: a CIFAR-10 ResNet-18 variant (basic blocks,
/// 3×3 stem, 32×32 input).
pub fn resnet18_cifar() -> ModelGraph {
    let mut s = Stacker::new("ResNet-18-CIFAR", 3, 32, 32);
    s.conv_bn_relu(64, 3, 1, 1);
    let stages: [(usize, usize); 4] = [(64, 2), (128, 2), (256, 2), (512, 2)];
    for (stage_idx, (out_ch, blocks)) in stages.into_iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage_idx > 0 && block == 0 { 2 } else { 1 };
            let project = block == 0 && stage_idx > 0;
            basic_block(&mut s, out_ch, stride, project);
        }
    }
    s.global_avg_pool();
    s.classifier(10);
    s.graph
}

/// ResNet-50 backbone at detection resolution (used by Mask R-CNN).
/// Returns the graph plus the stage-4 output geometry.
pub fn resnet50_fpn_backbone(h: usize, w: usize) -> (ModelGraph, usize, usize, usize) {
    let mut s = Stacker::new("ResNet-50-FPN-backbone", 3, h, w);
    s.conv_bn_relu(64, 7, 2, 3);
    s.max_pool(3, 2, 1);
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage_idx, (mid_ch, blocks)) in stages.into_iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage_idx > 0 && block == 0 { 2 } else { 1 };
            bottleneck(&mut s, mid_ch, stride, block == 0);
        }
    }
    let (ch, oh, ow) = (s.ch, s.h, s.w);
    (s.graph, ch, oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_parameter_count_matches_literature() {
        let g = resnet50();
        let m = g.params() as f64 / 1e6;
        assert!(
            (25.0..26.0).contains(&m),
            "ResNet-50 params = {m} M, expected ~25.6 M"
        );
    }

    #[test]
    fn resnet50_forward_flops_match_literature() {
        let g = resnet50();
        let gf = g.fwd_flops(1).as_gflops();
        // Literature: ~4.1 GMAC per 224x224 image = ~8.2 GFLOP at the
        // 2-ops-per-MAC convention nvprof uses.
        assert!((7.5..9.0).contains(&gf), "ResNet-50 fwd = {gf} GFLOP");
    }

    #[test]
    fn resnet18_cifar_counts() {
        let g = resnet18_cifar();
        let m = g.params() as f64 / 1e6;
        assert!((10.5..11.5).contains(&m), "CIFAR ResNet-18 params = {m} M");
        let gf = g.fwd_flops(1).as_gflops();
        // ~0.56 GMAC = ~1.1 GFLOP at 32x32.
        assert!((0.8..1.4).contains(&gf), "CIFAR ResNet-18 fwd = {gf} GFLOP");
    }

    #[test]
    fn resnet50_is_mostly_tensor_core_eligible() {
        let g = resnet50();
        assert!(g.tensor_core_fraction(32) > 0.9);
    }

    #[test]
    fn ssd_backbone_keeps_38x38_maps() {
        // 300x300 input: stem /2, pool /2, stage2 /2 => 38x38 (stage 3
        // stride removed per the MLPerf reference).
        let (_, ch, hw) = resnet34_ssd_backbone(300);
        assert_eq!(ch, 256);
        assert_eq!(hw, 38);
    }

    #[test]
    fn fpn_backbone_reduces_by_32() {
        let (_, ch, oh, ow) = resnet50_fpn_backbone(800, 1344);
        assert_eq!(ch, 2048);
        assert_eq!(oh, 25);
        assert_eq!(ow, 42);
    }

    #[test]
    fn deeper_nets_cost_more() {
        assert!(resnet50().fwd_flops(1).as_u64() > resnet18_cifar().fwd_flops(1).as_u64());
    }
}
