//! Translation models: the Transformer ("big") and GNMT, MLPerf v0.5's two
//! WMT17 English-German benchmarks.
//!
//! A "sample" for both models is one sentence pair at the average WMT17
//! training length (`SRC_LEN`/`TGT_LEN` tokens), so per-sample costs compose
//! with batch sizes the same way the image models do.

use crate::graph::ModelGraph;
use crate::op::{Op, OpKind, RecurrentCell};

/// Average source-sentence token count used for per-sample costing.
pub const SRC_LEN: usize = 32;
/// Average target-sentence token count used for per-sample costing.
pub const TGT_LEN: usize = 32;
/// Shared sub-word vocabulary size of the MLPerf WMT17 setup.
pub const VOCAB: usize = 32_768;

/// A dense layer applied at every position of a length-`seq` sequence.
fn seq_dense(name: &str, seq: usize, in_f: usize, out_f: usize) -> Op {
    let macs = (seq * in_f * out_f) as u64;
    Op::custom(
        name,
        OpKind::Gemm,
        2 * macs,
        (seq * (in_f + out_f)) as u64,
        (in_f * out_f + out_f) as u64,
        true,
        2.0,
        2.0,
    )
}

/// The output-vocabulary projection (weights shared with the embedding, so
/// zero *new* parameters, but the full GEMM cost).
fn logits(name: &str, seq: usize, d_model: usize, vocab: usize) -> Op {
    let macs = (seq * d_model * vocab) as u64;
    Op::custom(
        name,
        OpKind::Gemm,
        2 * macs,
        (seq * (d_model + vocab)) as u64,
        0,
        true,
        2.0,
        2.0,
    )
}

/// Transformer "big" (Vaswani et al. 2017): 6 encoder + 6 decoder layers,
/// d_model = 1024, d_ff = 4096, 16 heads, shared 32 k sub-word vocabulary.
pub fn transformer_big() -> ModelGraph {
    let d = 1024;
    let dff = 4096;
    let mut g = ModelGraph::new("Transformer-big");

    // Shared source/target embedding table; both sequences look up rows.
    g.push(Op::embedding("embed", VOCAB, d, SRC_LEN + TGT_LEN));

    for layer in 0..6 {
        g.push(Op::attention(format!("enc{layer}_self_attn"), SRC_LEN, d));
        g.push(Op::layer_norm(format!("enc{layer}_ln1"), d, SRC_LEN));
        g.push(seq_dense(&format!("enc{layer}_ffn_up"), SRC_LEN, d, dff));
        g.push(Op::activation(
            format!("enc{layer}_ffn_act"),
            (SRC_LEN * dff) as u64,
        ));
        g.push(seq_dense(&format!("enc{layer}_ffn_down"), SRC_LEN, dff, d));
        g.push(Op::layer_norm(format!("enc{layer}_ln2"), d, SRC_LEN));
    }
    for layer in 0..6 {
        g.push(Op::attention(format!("dec{layer}_self_attn"), TGT_LEN, d));
        g.push(Op::layer_norm(format!("dec{layer}_ln1"), d, TGT_LEN));
        // Cross attention: queries from target, keys/values from source.
        // Cost ~ self-attention at the target length.
        g.push(Op::attention(format!("dec{layer}_cross_attn"), TGT_LEN, d));
        g.push(Op::layer_norm(format!("dec{layer}_ln2"), d, TGT_LEN));
        g.push(seq_dense(&format!("dec{layer}_ffn_up"), TGT_LEN, d, dff));
        g.push(Op::activation(
            format!("dec{layer}_ffn_act"),
            (TGT_LEN * dff) as u64,
        ));
        g.push(seq_dense(&format!("dec{layer}_ffn_down"), TGT_LEN, dff, d));
        g.push(Op::layer_norm(format!("dec{layer}_ln3"), d, TGT_LEN));
    }
    g.push(logits("logits", TGT_LEN, d, VOCAB));
    g.push(Op::softmax("softmax", (TGT_LEN * VOCAB) as u64));
    g
}

/// GNMT (Wu et al. 2016) as configured for MLPerf v0.5: 1024-wide LSTMs,
/// a 4-layer encoder whose first layer is bidirectional, a 4-layer decoder
/// with additive attention, separate 32 k vocabularies.
pub fn gnmt() -> ModelGraph {
    let h = 1024;
    let mut g = ModelGraph::new("GNMT");

    g.push(Op::embedding("src_embed", VOCAB, h, SRC_LEN));
    g.push(Op::embedding("tgt_embed", VOCAB, h, TGT_LEN));

    // Encoder: bidirectional first layer (two sweeps), then 3 unidirectional.
    g.push(Op::recurrent(
        "enc0_fwd",
        RecurrentCell::Lstm,
        h,
        h,
        SRC_LEN,
    ));
    g.push(Op::recurrent(
        "enc0_bwd",
        RecurrentCell::Lstm,
        h,
        h,
        SRC_LEN,
    ));
    // Layer 1 consumes the concatenated 2h bidirectional output.
    g.push(Op::recurrent(
        "enc1",
        RecurrentCell::Lstm,
        2 * h,
        h,
        SRC_LEN,
    ));
    for layer in 2..4 {
        g.push(Op::recurrent(
            format!("enc{layer}"),
            RecurrentCell::Lstm,
            h,
            h,
            SRC_LEN,
        ));
    }

    // Decoder: 4 LSTM layers; the first also ingests the attention context.
    g.push(Op::recurrent(
        "dec0",
        RecurrentCell::Lstm,
        2 * h,
        h,
        TGT_LEN,
    ));
    for layer in 1..4 {
        g.push(Op::recurrent(
            format!("dec{layer}"),
            RecurrentCell::Lstm,
            h,
            h,
            TGT_LEN,
        ));
    }

    // Additive (Bahdanau) attention: for every target step, score every
    // source position through a tanh MLP.
    let score_macs = (TGT_LEN * SRC_LEN) as u64 * (2 * h + h) as u64;
    g.push(Op::custom(
        "attention",
        OpKind::Attention,
        2 * score_macs,
        (TGT_LEN * SRC_LEN) as u64 + (TGT_LEN * h) as u64 * 2,
        (2 * h * h + h) as u64,
        true,
        2.0,
        2.0,
    ));

    g.push(logits("logits", TGT_LEN, h, VOCAB));
    // GNMT does not share its projection with the embedding: count weights.
    g.push(Op::custom(
        "logits_weights",
        OpKind::ElementWise,
        0,
        0,
        (h * VOCAB) as u64,
        false,
        0.0,
        0.0,
    ));
    g.push(Op::softmax("softmax", (TGT_LEN * VOCAB) as u64));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_big_parameter_count() {
        let m = transformer_big().params() as f64 / 1e6;
        // Vaswani et al. report 213 M for the big model.
        assert!(
            (170.0..240.0).contains(&m),
            "Transformer-big params = {m} M"
        );
    }

    #[test]
    fn gnmt_parameter_count() {
        let m = gnmt().params() as f64 / 1e6;
        // MLPerf GNMT is ~160 M parameters.
        assert!((120.0..200.0).contains(&m), "GNMT params = {m} M");
    }

    #[test]
    fn both_models_cost_gigaflops_per_pair() {
        let xf = transformer_big().fwd_flops(1).as_gflops();
        let gn = gnmt().fwd_flops(1).as_gflops();
        assert!(xf > 5.0, "Transformer fwd = {xf} GFLOP");
        assert!(gn > 5.0, "GNMT fwd = {gn} GFLOP");
    }

    #[test]
    fn recurrence_dominates_gnmt_attention_dominates_transformer() {
        use crate::op::OpKind;
        let gn = gnmt();
        let breakdown = gn.kind_breakdown(1);
        let rec = breakdown
            .get(&OpKind::Recurrent)
            .copied()
            .unwrap_or_default();
        assert!(rec.as_f64() > 0.3 * gn.training_flops(1).as_f64());

        let xf = transformer_big();
        let breakdown = xf.kind_breakdown(1);
        let attn = breakdown
            .get(&OpKind::Attention)
            .copied()
            .unwrap_or_default();
        assert!(attn.as_f64() > 0.15 * xf.training_flops(1).as_f64());
    }

    #[test]
    fn high_tensor_core_eligibility() {
        assert!(transformer_big().tensor_core_fraction(1) > 0.9);
        assert!(gnmt().tensor_core_fraction(1) > 0.9);
    }
}
