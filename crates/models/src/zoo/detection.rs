//! Object-detection models: SSD (the MLPerf "light-weight" benchmark) and
//! Mask R-CNN (the "heavy-weight" one).
//!
//! SSD follows the MLPerf v0.5 reference: a ResNet-34 backbone truncated at
//! stage 3 (38×38 maps on a 300×300 input), extra stride-2 feature layers
//! down to 1×1, and per-map location/confidence heads over ~8700 default
//! boxes. Mask R-CNN follows He et al.: ResNet-50-FPN backbone at 800×1344,
//! RPN over five pyramid levels, a 1024-d two-FC box head over 512 sampled
//! RoIs, and a four-conv mask head.

use crate::graph::ModelGraph;
use crate::op::{Op, OpKind};
use crate::zoo::resnet::{resnet34_ssd_backbone, resnet50_fpn_backbone};

/// COCO has 80 object classes + background.
const COCO_CLASSES: usize = 81;

/// A dense layer applied independently to `count` region proposals
/// (so per-sample costs scale by the proposal count).
fn roi_dense(name: &str, count: usize, in_f: usize, out_f: usize) -> Op {
    let macs = (count * in_f * out_f) as u64;
    Op::custom(
        name,
        OpKind::Gemm,
        2 * macs,
        (count * (in_f + out_f)) as u64,
        (in_f * out_f + out_f) as u64,
        true,
        2.0,
        2.0,
    )
}

/// A 3×3 same-padding convolution applied to `count` fixed-size RoI maps.
fn roi_conv(name: &str, count: usize, ch_in: usize, ch_out: usize, hw: usize) -> Op {
    let macs = (count * ch_in * 9 * ch_out * hw * hw) as u64;
    Op::custom(
        name,
        OpKind::Conv,
        2 * macs,
        (count * hw * hw * (ch_in + ch_out)) as u64,
        (ch_in * 9 * ch_out) as u64,
        true,
        2.0,
        2.0,
    )
}

/// Single-shot detector on 300×300 inputs (MLPerf object detection,
/// light-weight).
pub fn ssd300() -> ModelGraph {
    let (backbone, mut ch, mut hw) = resnet34_ssd_backbone(300);
    let mut g = ModelGraph::new("SSD-ResNet34");
    g.extend(backbone.ops().iter().cloned());

    // Feature maps: (channels, spatial, anchors per location).
    // The 38x38 backbone output is the first head input; extra layers
    // generate 19, 10, 5, 3, 1.
    let mut maps: Vec<(usize, usize, usize)> = vec![(ch, hw, 4)];
    let extra: [(usize, usize, usize); 5] = [
        (512, 19, 6),
        (512, 10, 6),
        (256, 5, 6),
        (256, 3, 4),
        (256, 1, 4),
    ];
    for (i, (out_ch, out_hw, anchors)) in extra.into_iter().enumerate() {
        // 1x1 bottleneck then 3x3 stride-2 (SSD's extra-layer pattern).
        g.push(Op::conv2d(
            format!("extra{i}_1x1"),
            ch,
            out_ch / 2,
            1,
            1,
            0,
            hw,
            hw,
        ));
        let stride = if hw / out_hw >= 2 { 2 } else { 1 };
        let pad = 1;
        g.push(Op::custom(
            format!("extra{i}_3x3"),
            OpKind::Conv,
            2 * ((out_ch / 2) * 9 * out_ch) as u64 * (out_hw * out_hw) as u64,
            ((out_ch / 2) * hw * hw + out_ch * out_hw * out_hw) as u64,
            ((out_ch / 2) * 9 * out_ch) as u64,
            true,
            2.0,
            2.0,
        ));
        let _ = (stride, pad);
        ch = out_ch;
        hw = out_hw;
        maps.push((ch, hw, anchors));
    }

    // Detection heads: per map a 3x3 conv to 4*anchors (loc) and
    // classes*anchors (conf).
    let mut total_boxes = 0u64;
    for (i, (mch, mhw, anchors)) in maps.iter().copied().enumerate() {
        g.push(Op::conv2d(
            format!("loc_head{i}"),
            mch,
            4 * anchors,
            3,
            1,
            1,
            mhw,
            mhw,
        ));
        g.push(Op::conv2d(
            format!("conf_head{i}"),
            mch,
            COCO_CLASSES * anchors,
            3,
            1,
            1,
            mhw,
            mhw,
        ));
        total_boxes += (mhw * mhw * anchors) as u64;
    }
    // Box decode + NMS over all default boxes.
    g.push(Op::elementwise("box_decode", total_boxes * 4, 4));
    g.push(Op::softmax(
        "conf_softmax",
        total_boxes * COCO_CLASSES as u64,
    ));
    g
}

/// The number of default boxes SSD300 predicts (~8732 in the original paper;
/// the ResNet-34 variant differs slightly).
pub fn ssd300_default_boxes() -> u64 {
    let maps: [(usize, usize); 6] = [(38, 4), (19, 6), (10, 6), (5, 6), (3, 4), (1, 4)];
    maps.iter().map(|&(hw, a)| (hw * hw * a) as u64).sum()
}

/// RoIs sampled per image during Mask R-CNN training.
const TRAIN_ROIS: usize = 512;

/// Mask R-CNN with ResNet-50-FPN on 800×1344 inputs (MLPerf object
/// detection, heavy-weight).
pub fn mask_rcnn() -> ModelGraph {
    let (backbone, c5, h5, w5) = resnet50_fpn_backbone(800, 1344);
    let mut g = ModelGraph::new("Mask-R-CNN-R50-FPN");
    g.extend(backbone.ops().iter().cloned());

    // FPN: lateral 1x1 convs on C2..C5 plus 3x3 output convs, all to 256ch.
    // Geometry: C2=200x336, C3=100x168, C4=50x84, C5=25x42.
    let levels: [(usize, usize, usize); 4] = [
        (256, h5 * 8, w5 * 8),
        (512, h5 * 4, w5 * 4),
        (1024, h5 * 2, w5 * 2),
        (c5, h5, w5),
    ];
    for (i, (ch, h, w)) in levels.into_iter().enumerate() {
        g.push(Op::conv2d(
            format!("fpn_lateral{i}"),
            ch,
            256,
            1,
            1,
            0,
            h,
            w,
        ));
        g.push(Op::conv2d(
            format!("fpn_output{i}"),
            256,
            256,
            3,
            1,
            1,
            h,
            w,
        ));
    }

    // RPN head shared across 5 levels (P2..P6): 3x3 conv + two 1x1s over
    // 3 anchors per location.
    for (i, (_, h, w)) in levels.into_iter().enumerate() {
        g.push(Op::conv2d(
            format!("rpn_conv_p{}", i + 2),
            256,
            256,
            3,
            1,
            1,
            h,
            w,
        ));
        g.push(Op::conv2d(
            format!("rpn_cls_p{}", i + 2),
            256,
            3,
            1,
            1,
            0,
            h,
            w,
        ));
        g.push(Op::conv2d(
            format!("rpn_box_p{}", i + 2),
            256,
            12,
            1,
            1,
            0,
            h,
            w,
        ));
    }

    // RoIAlign is a gather: bandwidth, not FLOPs.
    let roi_feat = 7 * 7 * 256;
    g.push(Op::custom(
        "roi_align_box",
        OpKind::Pool,
        (TRAIN_ROIS * roi_feat * 4) as u64, // bilinear: 4 taps per output
        (2 * TRAIN_ROIS * roi_feat) as u64,
        0,
        false,
        1.0,
        1.0,
    ));

    // Box head: two 1024-d FCs, then class + box predictors.
    g.push(roi_dense("box_fc1", TRAIN_ROIS, roi_feat, 1024));
    g.push(roi_dense("box_fc2", TRAIN_ROIS, 1024, 1024));
    g.push(roi_dense("box_cls", TRAIN_ROIS, 1024, COCO_CLASSES));
    g.push(roi_dense("box_reg", TRAIN_ROIS, 1024, 4 * COCO_CLASSES));

    // Mask head: RoIAlign at 14x14, four 3x3 convs, deconv to 28x28, then
    // per-class mask predictor.
    let mask_rois = TRAIN_ROIS / 4; // only foreground RoIs reach the mask head
    g.push(Op::custom(
        "roi_align_mask",
        OpKind::Pool,
        (mask_rois * 14 * 14 * 256 * 4) as u64,
        (2 * mask_rois * 14 * 14 * 256) as u64,
        0,
        false,
        1.0,
        1.0,
    ));
    for i in 0..4 {
        g.push(roi_conv(&format!("mask_conv{i}"), mask_rois, 256, 256, 14));
    }
    g.push(roi_conv("mask_deconv", mask_rois, 256, 256, 28));
    g.push(Op::custom(
        "mask_pred",
        OpKind::Conv,
        2 * (mask_rois * 256 * COCO_CLASSES * 28 * 28) as u64,
        (mask_rois * 28 * 28 * (256 + COCO_CLASSES)) as u64,
        (256 * COCO_CLASSES) as u64,
        true,
        2.0,
        2.0,
    ));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_parameter_count_plausible() {
        let g = ssd300();
        let m = g.params() as f64 / 1e6;
        // MLPerf SSD-ResNet34 is ~25-36 M params depending on head config.
        assert!((15.0..45.0).contains(&m), "SSD params = {m} M");
    }

    #[test]
    fn ssd_forward_flops_plausible() {
        let gf = ssd300().fwd_flops(1).as_gflops();
        // Light-weight detector: tens of GFLOP per 300x300 image
        // (the truncated ResNet-34 keeps stage 3 at 38x38).
        assert!((15.0..50.0).contains(&gf), "SSD fwd = {gf} GFLOP");
    }

    #[test]
    fn ssd_default_box_count_near_8732() {
        let boxes = ssd300_default_boxes();
        assert!((8000..9500).contains(&boxes), "{boxes} default boxes");
    }

    #[test]
    fn mask_rcnn_parameter_count_plausible() {
        let m = mask_rcnn().params() as f64 / 1e6;
        // Literature: ~44 M for R50-FPN Mask R-CNN.
        assert!((35.0..55.0).contains(&m), "Mask R-CNN params = {m} M");
    }

    #[test]
    fn mask_rcnn_is_heavyweight() {
        let ssd = ssd300().fwd_flops(1).as_gflops();
        let mrcnn = mask_rcnn().fwd_flops(1).as_gflops();
        // Paper calls Mask R-CNN "heavy-weight": order-of-magnitude costlier.
        assert!(mrcnn > 8.0 * ssd, "MRCNN {mrcnn} vs SSD {ssd} GFLOP");
        assert!((200.0..900.0).contains(&mrcnn), "MRCNN fwd = {mrcnn} GFLOP");
    }

    #[test]
    fn heads_are_tensor_core_eligible() {
        assert!(mask_rcnn().tensor_core_fraction(1) > 0.85);
        assert!(ssd300().tensor_core_fraction(1) > 0.85);
    }
}
