//! DrQA document reader — DAWNBench's SQuAD question-answering entry.
//!
//! The Chen et al. reader encodes a ~400-token paragraph and a ~30-token
//! question with stacked bidirectional LSTMs over 300-d GloVe embeddings,
//! then predicts answer spans with bilinear attention. Feature engineering
//! (tokenization, TF, exact-match, POS/NER features) happens on the host,
//! which is why the paper's Table V shows DrQA with ~49 % CPU and only
//! ~20 % GPU utilization — that split is configured at the workload level.

use crate::graph::ModelGraph;
use crate::op::{Op, OpKind, RecurrentCell};

/// Paragraph length (tokens) used for per-sample costing.
pub const DOC_LEN: usize = 400;
/// Question length (tokens) used for per-sample costing.
pub const Q_LEN: usize = 30;
/// GloVe vocabulary rows kept by the DAWNBench submission.
pub const VOCAB: usize = 118_655;
/// GloVe embedding width.
pub const EMBED_DIM: usize = 300;
/// LSTM hidden width per direction.
pub const HIDDEN: usize = 128;

/// The DrQA document-reader graph.
pub fn drqa() -> ModelGraph {
    let mut g = ModelGraph::new("DrQA");

    // One shared GloVe table serves both document and question lookups.
    g.push(Op::embedding("embed", VOCAB, EMBED_DIM, DOC_LEN + Q_LEN));

    // Aligned question embedding: doc-to-question soft attention.
    let score_macs = (DOC_LEN * Q_LEN * EMBED_DIM) as u64;
    g.push(Op::custom(
        "aligned_attn",
        OpKind::Attention,
        2 * 2 * score_macs, // scores + weighted sum
        (DOC_LEN * Q_LEN) as u64 + (DOC_LEN * EMBED_DIM) as u64,
        (EMBED_DIM * EMBED_DIM) as u64,
        true,
        2.0,
        2.0,
    ));

    // Document encoder: 3 stacked BiLSTMs (input = embed + aligned = 600).
    let mut in_dim = 2 * EMBED_DIM;
    for layer in 0..3 {
        for dir in ["fwd", "bwd"] {
            g.push(Op::recurrent(
                format!("doc_lstm{layer}_{dir}"),
                RecurrentCell::Lstm,
                in_dim,
                HIDDEN,
                DOC_LEN,
            ));
        }
        in_dim = 2 * HIDDEN;
    }

    // Question encoder: 3 stacked BiLSTMs.
    let mut in_dim = EMBED_DIM;
    for layer in 0..3 {
        for dir in ["fwd", "bwd"] {
            g.push(Op::recurrent(
                format!("q_lstm{layer}_{dir}"),
                RecurrentCell::Lstm,
                in_dim,
                HIDDEN,
                Q_LEN,
            ));
        }
        in_dim = 2 * HIDDEN;
    }

    // Question self-attention pooling + bilinear start/end span scores.
    let h2 = 2 * HIDDEN;
    g.push(Op::dense("q_self_attn", h2, 1));
    for which in ["start", "end"] {
        g.push(Op::custom(
            format!("span_{which}"),
            OpKind::Attention,
            2 * (h2 * h2 + DOC_LEN * h2) as u64,
            (DOC_LEN * h2) as u64,
            (h2 * h2) as u64,
            true,
            2.0,
            2.0,
        ));
    }
    g.push(Op::softmax("span_softmax", 2 * DOC_LEN as u64));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_dominate_parameters() {
        let g = drqa();
        let emb = (VOCAB * EMBED_DIM) as f64;
        assert!(g.params() as f64 > emb, "params include the GloVe table");
        let m = g.params() as f64 / 1e6;
        assert!((35.0..45.0).contains(&m), "DrQA params = {m} M");
    }

    #[test]
    fn per_sample_compute_modest() {
        let gf = drqa().fwd_flops(1).as_gflops();
        // A few hundred MFLOP to ~2 GFLOP per QA pair.
        assert!((0.1..4.0).contains(&gf), "DrQA fwd = {gf} GFLOP");
    }

    #[test]
    fn document_encoder_is_the_big_piece() {
        use crate::op::OpKind;
        let g = drqa();
        let rec = g
            .kind_breakdown(1)
            .get(&OpKind::Recurrent)
            .copied()
            .unwrap_or_default();
        assert!(rec.as_f64() > 0.5 * g.training_flops(1).as_f64());
    }
}
