//! DeepBench micro-kernels: raw GEMM, convolution, recurrent-layer, and
//! all-reduce benchmarks (Baidu Research, 2017).
//!
//! DeepBench sits below any framework: it times individual library calls.
//! The study used four of its NVIDIA training benchmarks — `gemm_bench`,
//! `conv_bench`, `rnn_bench` (the six Table II configurations), and
//! `nccl_single_all_reduce` — and aggregated over kernel sizes. This module
//! reproduces those kernel lists so the telemetry and PCA layers can treat
//! them as workloads alongside the end-to-end suites.

use crate::graph::ModelGraph;
use crate::op::{Op, RecurrentCell};
use mlperf_hw::units::Bytes;

/// One DeepBench kernel invocation: an operator at a fixed batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepBenchKernel {
    /// Kernel label, e.g. `"gemm_1760x128x1760"`.
    pub name: String,
    /// The operator executed.
    pub op: Op,
    /// The batch ("N") dimension the kernel runs at.
    pub batch: u64,
}

impl DeepBenchKernel {
    /// Wrap this kernel as a one-op model graph (for reuse of graph-level
    /// costing and telemetry).
    pub fn as_graph(&self) -> ModelGraph {
        let mut g = ModelGraph::new(self.name.clone());
        g.push(self.op.clone());
        g
    }
}

/// The `gemm_bench` training problem set (M, N, K), a representative slice
/// of the published kernel list across DeepSpeech, translation, and
/// language-model shapes.
pub fn gemm_kernels() -> Vec<DeepBenchKernel> {
    const SHAPES: [(usize, usize, usize); 12] = [
        (1760, 16, 1760),
        (1760, 32, 1760),
        (1760, 64, 1760),
        (1760, 128, 1760),
        (1760, 7000, 1760),
        (2048, 16, 2048),
        (2048, 32, 2048),
        (2048, 128, 2048),
        (2048, 7000, 2048),
        (2560, 64, 2560),
        (4096, 128, 4096),
        (5124, 9136, 2560),
    ];
    SHAPES
        .iter()
        .map(|&(m, n, k)| DeepBenchKernel {
            name: format!("gemm_{m}x{n}x{k}"),
            op: Op::gemm(format!("gemm_{m}x{n}x{k}"), m, n, k),
            batch: 1,
        })
        .collect()
}

/// The `conv_bench` training problem set: (W, H, C, N, K, R/S, pad, stride).
pub fn conv_kernels() -> Vec<DeepBenchKernel> {
    /// (width, height, in_ch, batch, out_ch, kernel, pad, stride)
    type ConvShape = (usize, usize, usize, u64, usize, usize, usize, usize);
    const SHAPES: [ConvShape; 8] = [
        (700, 161, 1, 4, 32, 5, 0, 2),   // DeepSpeech front-end
        (341, 79, 32, 4, 32, 5, 0, 2),   // DeepSpeech layer 2
        (224, 224, 3, 16, 64, 7, 3, 2),  // vision stem
        (112, 112, 64, 8, 128, 3, 1, 1), // vision stage
        (56, 56, 128, 8, 256, 3, 1, 1),
        (28, 28, 256, 16, 512, 3, 1, 1),
        (14, 14, 512, 16, 512, 3, 1, 1),
        (7, 7, 832, 16, 256, 1, 0, 1), // GoogLeNet tail
    ];
    SHAPES
        .iter()
        .map(|&(w, h, c, n, k, r, pad, stride)| {
            let name = format!("conv_{w}x{h}x{c}_k{k}r{r}s{stride}");
            DeepBenchKernel {
                op: Op::conv2d(name.clone(), c, k, r, stride, pad, h, w),
                name,
                batch: n,
            }
        })
        .collect()
}

/// The six `rnn_bench` configurations of Table II.
pub fn rnn_kernels() -> Vec<DeepBenchKernel> {
    /// Timesteps DeepBench sweeps its recurrent kernels over.
    const T: usize = 50;
    let configs: [(&str, RecurrentCell, usize, usize, u64); 6] = [
        ("rnn_vanilla_1760", RecurrentCell::Vanilla, 1760, 1760, 16), // DeepSpeech
        ("rnn_gru_2816", RecurrentCell::Gru, 2816, 2816, 32),
        ("rnn_gru_1024", RecurrentCell::Gru, 1024, 1024, 32), // Speaker ID
        ("rnn_lstm_512", RecurrentCell::Lstm, 512, 512, 16),  // Machine Translation
        ("rnn_lstm_4096", RecurrentCell::Lstm, 4096, 4096, 16), // Language Modeling
        ("rnn_lstm_256", RecurrentCell::Lstm, 256, 256, 16),  // Char LM
    ];
    configs
        .iter()
        .map(|&(name, cell, input, hidden, n)| DeepBenchKernel {
            name: name.to_string(),
            op: Op::recurrent(name, cell, input, hidden, T),
            batch: n,
        })
        .collect()
}

/// The `nccl_single_all_reduce` payload sizes (FP32 element counts from the
/// published problem set).
pub fn allreduce_sizes() -> Vec<Bytes> {
    const ELEMS: [u64; 7] = [
        100_000, 3_097_600, 4_194_304, 6_553_600, 16_777_217, 38_360_000, 64_500_000,
    ];
    ELEMS.iter().map(|&e| Bytes::new(e * 4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sets_are_nonempty_and_named() {
        for k in gemm_kernels()
            .iter()
            .chain(&conv_kernels())
            .chain(&rnn_kernels())
        {
            assert!(!k.name.is_empty());
            assert!(k.batch >= 1);
            assert!(k.op.fwd_flops(k.batch).as_u64() > 0);
        }
        assert_eq!(
            rnn_kernels().len(),
            6,
            "Table II lists six rnn_bench configs"
        );
    }

    #[test]
    fn gemm_kernels_have_no_trainable_params() {
        for k in gemm_kernels() {
            assert_eq!(k.op.params(), 0, "{}", k.name);
        }
    }

    #[test]
    fn rnn_configs_match_table_ii() {
        let rnns = rnn_kernels();
        assert!(rnns[0].name.contains("vanilla") && rnns[0].batch == 16);
        assert!(rnns[1].name.contains("gru_2816") && rnns[1].batch == 32);
        assert!(rnns[3].name.contains("lstm_512") && rnns[3].batch == 16);
    }

    #[test]
    fn allreduce_sizes_span_kb_to_hundreds_of_mb() {
        let sizes = allreduce_sizes();
        assert!(sizes.first().unwrap().as_mib() < 1.0);
        assert!(sizes.last().unwrap().as_mib() > 200.0);
        // Monotonically increasing.
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kernel_graph_roundtrip() {
        let k = &gemm_kernels()[0];
        let g = k.as_graph();
        assert_eq!(g.len(), 1);
        assert_eq!(g.fwd_flops(1), k.op.fwd_flops(1));
    }

    #[test]
    fn big_gemm_dwarfs_small_gemm() {
        let ks = gemm_kernels();
        let small = ks.iter().find(|k| k.name == "gemm_1760x16x1760").unwrap();
        let large = ks.iter().find(|k| k.name == "gemm_5124x9136x2560").unwrap();
        assert!(large.op.fwd_flops(1).as_u64() > 100 * small.op.fwd_flops(1).as_u64());
    }
}
