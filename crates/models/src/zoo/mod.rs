//! The model zoo: analytical graphs for every network the study trains.
//!
//! | Builder | Benchmark | Suite |
//! |---|---|---|
//! | [`resnet::resnet50`] | Image classification (ImageNet) | MLPerf |
//! | [`detection::ssd300`] | Object detection, light-weight (COCO) | MLPerf |
//! | [`detection::mask_rcnn`] | Object detection, heavy-weight (COCO) | MLPerf |
//! | [`translation::transformer_big`] | Translation (WMT17) | MLPerf |
//! | [`translation::gnmt`] | Translation (WMT17) | MLPerf |
//! | [`ncf::ncf`] | Recommendation (MovieLens-20M) | MLPerf |
//! | [`resnet::resnet18_cifar`] | Image classification (CIFAR10) | DAWNBench |
//! | [`drqa::drqa`] | Question answering (SQuAD) | DAWNBench |
//! | [`deepbench`] | GEMM/conv/RNN/all-reduce kernels | DeepBench |

pub mod deepbench;
pub mod detection;
pub mod drqa;
pub mod ncf;
pub mod resnet;
pub mod translation;
