//! Neural Collaborative Filtering (NeuMF) on MovieLens-20M — MLPerf v0.5's
//! recommendation benchmark.
//!
//! NeuMF fuses a generalized-matrix-factorization (GMF) branch with an MLP
//! branch; both own user and item embedding tables. One "sample" is one
//! (user, item) interaction, which makes the per-sample compute minuscule —
//! the property behind the paper's NCF observations (tiny training time,
//! poor multi-GPU scaling, all-reduce-dominated steps).

use crate::graph::ModelGraph;
use crate::op::Op;

/// MovieLens-20M user count.
pub const USERS: usize = 138_493;
/// MovieLens-20M item count.
pub const ITEMS: usize = 26_744;
/// GMF embedding width.
pub const MF_DIM: usize = 64;
/// MLP tower widths (first entry is the concatenated embedding width).
pub const MLP_LAYERS: [usize; 4] = [256, 256, 128, 64];

/// NeuMF as configured by the MLPerf v0.5 NCF reference.
pub fn ncf() -> ModelGraph {
    let mut g = ModelGraph::new("NCF-NeuMF");
    let mlp_emb = MLP_LAYERS[0] / 2;

    // GMF branch: user ⊙ item.
    g.push(Op::embedding("gmf_user_embed", USERS, MF_DIM, 1));
    g.push(Op::embedding("gmf_item_embed", ITEMS, MF_DIM, 1));
    g.push(Op::elementwise("gmf_mul", MF_DIM as u64, 1));

    // MLP branch: concat(user, item) through the tower.
    g.push(Op::embedding("mlp_user_embed", USERS, mlp_emb, 1));
    g.push(Op::embedding("mlp_item_embed", ITEMS, mlp_emb, 1));
    for w in MLP_LAYERS.windows(2) {
        g.push(Op::dense(format!("mlp_fc_{}x{}", w[0], w[1]), w[0], w[1]));
        g.push(Op::activation(format!("mlp_relu_{}", w[1]), w[1] as u64));
    }

    // Fusion: concat(GMF out, MLP out) -> score.
    g.push(Op::dense("predict", MF_DIM + MLP_LAYERS[3], 1));
    g.push(Op::activation("sigmoid", 1));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_dominated_by_embeddings() {
        let g = ncf();
        let m = g.params() as f64 / 1e6;
        // (USERS+ITEMS) * (64 + 128) ≈ 31.7 M plus small MLP weights.
        assert!((30.0..34.0).contains(&m), "NCF params = {m} M");
    }

    #[test]
    fn per_sample_compute_is_tiny() {
        let g = ncf();
        let mflop = g.fwd_flops(1).as_f64() / 1e6;
        // Sub-MFLOP per interaction: the benchmark is all-reduce bound.
        assert!(mflop < 1.0, "NCF fwd = {mflop} MFLOP/sample");
    }

    #[test]
    fn flops_to_params_ratio_is_extreme() {
        // NCF's defining trait: gradient volume (params) dwarfs per-sample
        // compute, unlike every other MLPerf model.
        let g = ncf();
        let flops_per_param = g.fwd_flops(1).as_f64() / g.params() as f64;
        assert!(flops_per_param < 0.1, "ratio = {flops_per_param}");
    }

    #[test]
    fn mostly_not_tensor_core_bound() {
        // Embedding gathers dominate; the MLP is a rounding error.
        let g = ncf();
        assert!(g.tensor_core_fraction(1) > 0.0);
    }
}
