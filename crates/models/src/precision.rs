//! Training numeric policy: single precision vs. automatic mixed precision.
//!
//! Section IV-C of the paper measures 1.5×–3.3× speedups from NVIDIA AMP,
//! which (a) routes eligible matrix math to Tensor Cores and (b) halves the
//! memory traffic of the tensors kept in FP16. The policy here captures both
//! effects; per-op eligibility comes from [`Op::tensor_core_eligible`]
//! (convolutions, GEMMs, attention, recurrent cells — the cuDNN/cuBLAS paths
//! AMP lists as allow-listed).
//!
//! [`Op::tensor_core_eligible`]: crate::op::Op::tensor_core_eligible

use mlperf_hw::Precision;
use std::fmt;

/// The numeric policy of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionPolicy {
    /// Everything in FP32 on the SIMT pipeline.
    #[default]
    Fp32,
    /// Automatic mixed precision: allow-listed ops in FP16 on Tensor Cores,
    /// FP32 master weights, loss scaling.
    Amp,
}

impl PrecisionPolicy {
    /// The device precision an op with the given eligibility executes at.
    pub fn execution_precision(self, tensor_core_eligible: bool) -> Precision {
        match (self, tensor_core_eligible) {
            (PrecisionPolicy::Amp, true) => Precision::TensorCore,
            // AMP keeps non-allow-listed math in FP32.
            _ => Precision::Single,
        }
    }

    /// Bytes per activation element for an op under this policy.
    pub fn activation_bytes(self, tensor_core_eligible: bool) -> u64 {
        self.execution_precision(tensor_core_eligible)
            .element_bytes()
    }

    /// Bytes per gradient element exchanged in the all-reduce.
    ///
    /// AMP submissions all-reduce FP16 gradients (half the wire volume);
    /// FP32 training exchanges 4-byte gradients.
    pub fn gradient_bytes_per_param(self) -> u64 {
        match self {
            PrecisionPolicy::Fp32 => 4,
            PrecisionPolicy::Amp => 2,
        }
    }

    /// Bytes per parameter for the resident master copy of the weights
    /// (AMP keeps FP32 masters *plus* an FP16 working copy).
    pub fn weight_bytes_per_param(self) -> u64 {
        match self {
            PrecisionPolicy::Fp32 => 4,
            PrecisionPolicy::Amp => 6,
        }
    }
}

impl fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionPolicy::Fp32 => f.write_str("FP32"),
            PrecisionPolicy::Amp => f.write_str("AMP (mixed)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_routes_eligible_ops_to_tensor_cores() {
        assert_eq!(
            PrecisionPolicy::Amp.execution_precision(true),
            Precision::TensorCore
        );
        assert_eq!(
            PrecisionPolicy::Amp.execution_precision(false),
            Precision::Single
        );
        assert_eq!(
            PrecisionPolicy::Fp32.execution_precision(true),
            Precision::Single
        );
    }

    #[test]
    fn amp_halves_activation_and_gradient_bytes() {
        assert_eq!(PrecisionPolicy::Amp.activation_bytes(true), 2);
        assert_eq!(PrecisionPolicy::Fp32.activation_bytes(true), 4);
        assert_eq!(PrecisionPolicy::Amp.gradient_bytes_per_param(), 2);
        assert_eq!(PrecisionPolicy::Fp32.gradient_bytes_per_param(), 4);
    }

    #[test]
    fn amp_weights_cost_more_residency() {
        // FP32 master + FP16 copy.
        assert!(
            PrecisionPolicy::Amp.weight_bytes_per_param()
                > PrecisionPolicy::Fp32.weight_bytes_per_param()
        );
    }

    #[test]
    fn default_is_fp32() {
        assert_eq!(PrecisionPolicy::default(), PrecisionPolicy::Fp32);
    }
}
