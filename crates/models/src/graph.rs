//! Operator graphs and whole-iteration cost assembly.
//!
//! A [`ModelGraph`] is an ordered collection of [`Op`]s — order is execution
//! order, which matters only for reporting. Its headline product is
//! [`ModelGraph::iteration_cost`]: the FLOPs (split by SIMT vs Tensor Core),
//! device-memory traffic, and gradient volume of one training step at a given
//! batch size and [`PrecisionPolicy`]. The simulator prices these against a
//! GPU's roofline to get step time.

use crate::op::{Op, OpKind};
use crate::optimizer::Optimizer;
use crate::passcost::PassCostTable;
use crate::precision::PrecisionPolicy;
use mlperf_hw::units::{Bytes, Flops};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Cap on memoized batch sizes per (graph, policy) — a sweep's batch axis
/// fits comfortably; an adversarial caller cannot grow the memo without
/// bound (inserts stop at the cap, correctness is unaffected).
const PASS_MEMO_CAP: usize = 1 << 16;

/// The lazily-built cost tables of one graph, one per precision policy,
/// plus a per-batch result memo. Grid sweeps revisit the same batch from
/// many (system, gpus) cells; the memo turns every revisit into a map
/// hit instead of an op walk. Shared by clones through the `tables` Arc,
/// so every cell of a sweep that starts from one interned template feeds
/// the same memo.
#[derive(Debug)]
struct PassTables {
    fp32: PassCostTable,
    amp: PassCostTable,
    fp32_memo: Mutex<HashMap<u64, IterationCost>>,
    amp_memo: Mutex<HashMap<u64, IterationCost>>,
}

/// An ordered operator graph with a name.
///
/// The op list is `Arc`-shared: cloning a graph (and therefore cloning a
/// training job per sweep cell) is a reference bump, not a deep copy of
/// every operator's name string. Mutation goes through copy-on-write
/// (`Arc::make_mut`) and drops the cached cost tables.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    name: String,
    ops: Arc<Vec<Op>>,
    /// Vectorized pass-cost coefficients, built on first pricing and
    /// shared by clones (a clone prices the same ops).
    tables: Arc<OnceLock<PassTables>>,
}

impl PartialEq for ModelGraph {
    fn eq(&self, other: &Self) -> bool {
        // The tables are a cache of `ops`, not state.
        self.name == other.name && self.ops == other.ops
    }
}

impl ModelGraph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        ModelGraph {
            name: name.into(),
            ops: Arc::new(Vec::new()),
            tables: Arc::new(OnceLock::new()),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append an operator.
    pub fn push(&mut self, op: Op) -> &mut Self {
        Arc::make_mut(&mut self.ops).push(op);
        self.tables = Arc::new(OnceLock::new());
        self
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.ops.iter().map(Op::params).sum()
    }

    /// Forward FLOPs for one batch.
    pub fn fwd_flops(&self, batch: u64) -> Flops {
        self.ops.iter().map(|op| op.fwd_flops(batch)).sum()
    }

    /// Forward + backward FLOPs for one batch.
    pub fn training_flops(&self, batch: u64) -> Flops {
        self.ops
            .iter()
            .map(|op| op.fwd_flops(batch) + op.bwd_flops(batch))
            .sum()
    }

    /// Fraction of training FLOPs eligible for Tensor Cores.
    pub fn tensor_core_fraction(&self, batch: u64) -> f64 {
        let total = self.training_flops(batch).as_f64();
        if total == 0.0 {
            return 0.0;
        }
        let eligible: f64 = self
            .ops
            .iter()
            .filter(|op| op.tensor_core_eligible())
            .map(|op| (op.fwd_flops(batch) + op.bwd_flops(batch)).as_f64())
            .sum();
        eligible / total
    }

    /// Training FLOPs broken down by operator kind.
    pub fn kind_breakdown(&self, batch: u64) -> BTreeMap<OpKind, Flops> {
        let mut map = BTreeMap::new();
        for op in self.ops.iter() {
            let entry = map.entry(op.kind()).or_insert(Flops::ZERO);
            *entry = *entry + op.fwd_flops(batch) + op.bwd_flops(batch);
        }
        map
    }

    /// Activation elements that must stay resident between forward and
    /// backward (the dominant term of per-sample activation memory).
    pub fn resident_activation_elems_per_sample(&self) -> u64 {
        /// Fraction of produced activations frameworks actually keep:
        /// in-place ops, fused kernels, and buffer reuse free the rest.
        const RESIDENT_FRACTION: f64 = 0.55;
        // Half of the fwd read+write traffic is the written (kept) half.
        let written: u64 = self.ops.iter().map(|op| op.fwd_act_elems(1) / 2).sum();
        (written as f64 * RESIDENT_FRACTION).round() as u64
    }

    /// The cost of the forward+backward passes alone (no optimizer step) —
    /// what the simulator prices as the "compute" phase, with the update
    /// priced separately so it can sit after the gradient all-reduce.
    ///
    /// Evaluated through the graph's cached [`PassCostTable`]s — bit-
    /// identical to the scalar walk
    /// ([`ModelGraph::pass_cost_scalar`]), just without re-touching every
    /// `Op` per call — and memoized per batch, since a grid sweep prices
    /// the same (template, policy, batch) from many cells. The memo
    /// stores exact results of the table walk, so hits are bit-identical
    /// by construction.
    pub fn pass_cost(&self, batch: u64, policy: PrecisionPolicy) -> IterationCost {
        let tables = self.tables.get_or_init(|| PassTables {
            fp32: PassCostTable::build(&self.ops, PrecisionPolicy::Fp32),
            amp: PassCostTable::build(&self.ops, PrecisionPolicy::Amp),
            fp32_memo: Mutex::new(HashMap::new()),
            amp_memo: Mutex::new(HashMap::new()),
        });
        let (table, memo) = match policy {
            PrecisionPolicy::Fp32 => (&tables.fp32, &tables.fp32_memo),
            PrecisionPolicy::Amp => (&tables.amp, &tables.amp_memo),
        };
        if let Some(&hit) = memo.lock().expect("pass-cost memo poisoned").get(&batch) {
            return hit;
        }
        // Computed outside the lock: a racing duplicate computes the same
        // deterministic value, which beats holding the lock over the walk.
        let cost = table.pass_cost(batch);
        let mut memo = memo.lock().expect("pass-cost memo poisoned");
        if memo.len() < PASS_MEMO_CAP {
            memo.insert(batch, cost);
        }
        cost
    }

    /// The original per-op pass-cost walk, kept verbatim as the oracle for
    /// the vectorized table: the differential battery in
    /// `tests/properties.rs` demands `pass_cost == pass_cost_scalar` on
    /// fuzzed graphs, batches, and policies.
    pub fn pass_cost_scalar(&self, batch: u64, policy: PrecisionPolicy) -> IterationCost {
        let mut simt = 0u64;
        let mut tensor = 0u64;
        let mut mem_bytes = 0u64;
        for op in self.ops.iter() {
            let flops = op.fwd_flops(batch).as_u64() + op.bwd_flops(batch).as_u64();
            if policy == PrecisionPolicy::Amp && op.tensor_core_eligible() {
                tensor += flops;
            } else {
                simt += flops;
            }
            let act_elems = op.fwd_act_elems(batch) + op.bwd_act_elems(batch);
            let act_bytes = (act_elems as f64
                * op.fused_traffic_factor()
                * policy.activation_bytes(op.tensor_core_eligible()) as f64)
                .round() as u64;
            mem_bytes += act_bytes;
            mem_bytes += 2 * op.params() * policy.activation_bytes(op.tensor_core_eligible());
        }
        IterationCost {
            simt_flops: Flops::new(simt),
            tensor_flops: Flops::new(tensor),
            mem_bytes: Bytes::new(mem_bytes),
            gradient_bytes: Bytes::new(self.params() * policy.gradient_bytes_per_param()),
        }
    }

    /// The complete cost of one training iteration.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlperf_models::zoo::resnet::resnet18_cifar;
    /// use mlperf_models::{Optimizer, PrecisionPolicy};
    ///
    /// let g = resnet18_cifar();
    /// let amp = g.iteration_cost(128, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
    /// let fp32 = g.iteration_cost(128, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
    /// assert!(amp.tensor_flops.as_u64() > 0);
    /// assert!(amp.mem_bytes < fp32.mem_bytes);
    /// ```
    pub fn iteration_cost(
        &self,
        batch: u64,
        policy: PrecisionPolicy,
        optimizer: Optimizer,
    ) -> IterationCost {
        let pass = self.pass_cost(batch, policy);
        let params = self.params();
        IterationCost {
            simt_flops: pass.simt_flops + optimizer.step_flops(params),
            tensor_flops: pass.tensor_flops,
            mem_bytes: pass.mem_bytes + optimizer.step_bytes(params),
            gradient_bytes: pass.gradient_bytes,
        }
    }

    /// Resident device-memory footprint of a training replica at the given
    /// per-GPU batch: weights + gradients + optimizer state + activations.
    pub fn replica_footprint(
        &self,
        batch: u64,
        policy: PrecisionPolicy,
        optimizer: Optimizer,
    ) -> Bytes {
        let params = self.params();
        let weights = params * policy.weight_bytes_per_param();
        let grads = params * policy.gradient_bytes_per_param();
        let opt_state = optimizer.state_bytes(params).as_u64();
        let act_elem_bytes = match policy {
            PrecisionPolicy::Fp32 => 4,
            PrecisionPolicy::Amp => 2,
        };
        let acts = self.resident_activation_elems_per_sample() * batch * act_elem_bytes;
        Bytes::new(weights + grads + opt_state + acts)
    }
}

impl fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ops, {:.1} M params, {:.2} GFLOP/sample fwd",
            self.name,
            self.ops.len(),
            self.params() as f64 / 1e6,
            self.fwd_flops(1).as_gflops(),
        )
    }
}

impl Extend<Op> for ModelGraph {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        Arc::make_mut(&mut self.ops).extend(iter);
        self.tables = Arc::new(OnceLock::new());
    }
}

/// The priced cost of one training iteration (one batch, fwd+bwd+update).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationCost {
    /// FLOPs executed on the regular FP32 SIMT pipeline.
    pub simt_flops: Flops,
    /// FLOPs executed on Tensor Cores (zero under [`PrecisionPolicy::Fp32`]).
    pub tensor_flops: Flops,
    /// Device-memory traffic (activations both passes + weight streams +
    /// optimizer step).
    pub mem_bytes: Bytes,
    /// Gradient bytes exchanged by the data-parallel all-reduce.
    pub gradient_bytes: Bytes,
}

impl IterationCost {
    /// Total FLOPs across both pipelines.
    pub fn total_flops(&self) -> Flops {
        self.simt_flops + self.tensor_flops
    }

    /// Arithmetic intensity of the iteration (FLOP per byte of HBM traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() / self.mem_bytes
    }

    /// The integrity violation this cost would inject into downstream f64
    /// pricing, if any.
    ///
    /// The cost fields themselves are integers (always finite), so the
    /// dangerous shapes are the *degenerate* ones: zero memory traffic
    /// makes [`arithmetic_intensity`](IterationCost::arithmetic_intensity)
    /// and every roofline division non-finite, and an all-zero cost prices
    /// to a zero step time that later shows up as infinite throughput.
    /// The simulation engine checks this at the model boundary and turns a
    /// violation into a typed `NonFinite` error naming the offending
    /// point instead of letting NaN/Inf propagate into reports.
    pub fn finite_violation(&self) -> Option<&'static str> {
        if self.mem_bytes.as_u64() == 0 {
            return Some("zero device-memory traffic (arithmetic intensity diverges)");
        }
        if self.total_flops().as_u64() == 0 && self.gradient_bytes.as_u64() == 0 {
            return Some("all-zero iteration cost (degenerate model graph)");
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn tiny_graph() -> ModelGraph {
        let mut g = ModelGraph::new("tiny");
        g.push(Op::conv2d("c1", 3, 8, 3, 1, 1, 8, 8));
        g.push(Op::activation("relu", 8 * 8 * 8));
        g.push(Op::dense("fc", 512, 10));
        g
    }

    #[test]
    fn totals_are_sums() {
        let g = tiny_graph();
        let by_hand: u64 = g.ops().iter().map(|o| o.fwd_flops(4).as_u64()).sum();
        assert_eq!(g.fwd_flops(4).as_u64(), by_hand);
        assert_eq!(g.params(), g.ops()[0].params() + g.ops()[2].params());
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn training_flops_exceed_forward() {
        let g = tiny_graph();
        assert!(g.training_flops(1).as_u64() > g.fwd_flops(1).as_u64());
    }

    #[test]
    fn tensor_core_fraction_between_zero_and_one() {
        let g = tiny_graph();
        let f = g.tensor_core_fraction(1);
        assert!(f > 0.9 && f < 1.0, "conv+fc dominate: {f}");
        let empty = ModelGraph::new("empty");
        assert_eq!(empty.tensor_core_fraction(1), 0.0);
    }

    #[test]
    fn kind_breakdown_partitions_total() {
        let g = tiny_graph();
        let total: u64 = g.kind_breakdown(2).values().map(|f| f.as_u64()).sum();
        assert_eq!(total, g.training_flops(2).as_u64());
    }

    #[test]
    fn amp_moves_flops_to_tensor_cores_and_shrinks_traffic() {
        let g = tiny_graph();
        let fp32 = g.iteration_cost(32, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
        let amp = g.iteration_cost(32, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
        assert_eq!(fp32.tensor_flops, Flops::ZERO);
        assert!(amp.tensor_flops.as_u64() > 0);
        assert_eq!(fp32.total_flops(), amp.total_flops());
        assert!(amp.mem_bytes < fp32.mem_bytes);
        assert!(amp.gradient_bytes < fp32.gradient_bytes);
    }

    #[test]
    fn gradient_bytes_track_params() {
        let g = tiny_graph();
        let cost = g.iteration_cost(8, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
        assert_eq!(cost.gradient_bytes.as_u64(), g.params() * 4);
    }

    #[test]
    fn footprint_grows_with_batch() {
        let g = tiny_graph();
        let small = g.replica_footprint(8, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
        let large = g.replica_footprint(64, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
        assert!(large > small);
    }

    #[test]
    fn amp_footprint_never_exceeds_fp32() {
        // Per-param residency is equal (6+2 vs 4+4 bytes before optimizer
        // state) while activations halve, so AMP fits in less memory.
        let g = tiny_graph();
        for batch in [1, 64] {
            let amp = g.replica_footprint(batch, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
            let fp32 = g.replica_footprint(batch, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
            assert!(amp <= fp32, "batch {batch}: {amp} > {fp32}");
        }
    }

    #[test]
    fn arithmetic_intensity_is_positive() {
        let g = tiny_graph();
        let c = g.iteration_cost(16, PrecisionPolicy::Fp32, Optimizer::SgdMomentum);
        assert!(c.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn extend_appends_ops() {
        let mut g = ModelGraph::new("x");
        g.extend([Op::activation("a", 10), Op::activation("b", 10)]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn display_summary() {
        let s = tiny_graph().to_string();
        assert!(s.contains("tiny") && s.contains("3 ops"));
    }
}
