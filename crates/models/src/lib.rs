//! Analytical deep-learning model substrate.
//!
//! Where the paper trained real networks in PyTorch/TensorFlow/MXNet, this
//! crate builds the same architectures as *operator graphs with closed-form
//! costs*: per-sample FLOPs, activation traffic, and parameter counts for
//! both passes ([`op`], [`graph`]), priced under single- or mixed-precision
//! policies ([`precision`]) and optimizer update rules ([`optimizer`]).
//! The [`zoo`] holds every network the study measures.
//!
//! # Examples
//!
//! ```
//! use mlperf_models::zoo::resnet::resnet50;
//! use mlperf_models::{PrecisionPolicy, Optimizer};
//!
//! let g = resnet50();
//! let cost = g.iteration_cost(32, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
//! assert!(cost.tensor_flops.as_u64() > cost.simt_flops.as_u64());
//! ```

pub mod graph;
pub mod op;
pub mod optimizer;
pub mod passcost;
pub mod precision;
pub mod tensor;
pub mod zoo;

pub use graph::{IterationCost, ModelGraph};
pub use passcost::PassCostTable;
pub use op::{Op, OpKind, RecurrentCell};
pub use optimizer::Optimizer;
pub use precision::PrecisionPolicy;
pub use tensor::TensorShape;
